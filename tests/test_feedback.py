"""Tests for the session feedback store and the learned-estimate loop.

Covers the PR's tentpole contract: executions populate the store for
free, measurements take precedence over System-R heuristics, sessions
are isolated and resettable, the store survives concurrent use, and
probe spend drops to zero once a selectivity has been measured.
"""

import threading

import pytest

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog, load_table
from repro.optimizer.feedback import (
    FeedbackStore,
    estimate_selectivity_with_feedback,
    harvest_plan,
    join_signature,
    predicate_signature,
)
from repro.optimizer.selectivity import estimate_selectivity, probe_selectivity
from repro.planner.database import PushdownDB
from repro.sqlparser.parser import parse_expression
from repro.storage.schema import TableSchema
from repro.workloads.tpch import TABLE_SCHEMAS, TpchGenerator

SCHEMA = TableSchema.of("k:int", "a:int", "b:int")


def _rows(n=400):
    # a == b exactly: the adversarial correlation for the independence
    # assumption (estimate of `a < t AND b < t` is quadratically low).
    return [(i, i % 100, i % 100) for i in range(n)]


def _db(n=400, partitions=4):
    db = PushdownDB()
    db.load_table("t", _rows(n), SCHEMA, partitions=partitions)
    return db


class TestStore:
    def test_signature_normalizes_conjunct_order(self):
        p1 = parse_expression("a < 10 AND b = 3")
        p2 = parse_expression("b = 3 AND a < 10")
        assert predicate_signature(p1) == predicate_signature(p2)

    def test_measurement_overrides_system_r(self):
        store = FeedbackStore()
        predicate = parse_expression("a < 10 AND b < 10")
        db = _db()
        stats = db.table("t").stats_or_default()
        cold = estimate_selectivity_with_feedback(store, "t", predicate, stats)
        assert cold == pytest.approx(estimate_selectivity(predicate, stats))
        store.record_selectivity("t", predicate, 0.1)
        assert estimate_selectivity_with_feedback(
            store, "t", predicate, stats
        ) == pytest.approx(0.1)

    def test_per_conjunct_feedback_combines(self):
        """A measured conjunct improves *similar* queries sharing it."""
        store = FeedbackStore()
        db = _db()
        stats = db.table("t").stats_or_default()
        store.record_selectivity("t", parse_expression("a < 10"), 0.5)
        combined = estimate_selectivity_with_feedback(
            store, "t", parse_expression("a < 10 AND b = 3"), stats
        )
        system_r_b = estimate_selectivity(parse_expression("b = 3"), stats)
        assert combined == pytest.approx(0.5 * system_r_b)

    def test_join_feedback_roundtrip(self):
        store = FeedbackStore()
        sig = join_signature(
            [("x", parse_expression("a < 5")), ("y", None)], [("k", "k")]
        )
        assert store.lookup_join(sig) is None
        store.record_join(sig, 123.0)
        assert store.lookup_join(sig) == pytest.approx(123.0)
        # Same content, different spelling order -> same signature.
        sig2 = join_signature(
            [("y", None), ("x", parse_expression("a < 5"))], [("k", "k")]
        )
        assert store.lookup_join(sig2) == pytest.approx(123.0)

    def test_reset_and_isolation(self):
        db1, db2 = _db(), _db()
        db1.execute("SELECT k FROM t WHERE a < 10")
        assert db1.feedback.summary()["selectivities"] == 1
        assert db2.feedback.summary()["selectivities"] == 0  # isolated
        db1.reset_feedback()
        assert db1.feedback.summary()["selectivities"] == 0

    def test_thread_safety_under_concurrent_sessions(self):
        """Hammer one store from many threads (scans run under workers>1)."""
        store = FeedbackStore()
        predicate = parse_expression("a < 10")
        errors = []

        def worker(i):
            try:
                for j in range(200):
                    store.record_selectivity("t", predicate, (j % 10) / 10.0)
                    value = store.lookup_selectivity("t", predicate)
                    assert value is None or 0.0 <= value <= 1.0
                    store.record_join((("t", ""),), float(j))
                    store.lookup_join((("t", ""),))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.summary()["selectivities"] == 1

    def test_reloading_a_table_forgets_its_measurements(self):
        """Measurements die with the data they were taken on: reloading
        a table drops its selectivities and every join involving it,
        and the next probe is a real metered measurement again."""
        gen = TpchGenerator(scale_factor=0.002)
        db = PushdownDB()
        for table in ("customer", "orders"):
            db.load_table(table, gen.table(table), TABLE_SCHEMAS[table])
        db.load_table("t", _rows(), SCHEMA, partitions=4)
        db.execute(
            "SELECT c_custkey FROM customer, orders"
            " WHERE c_custkey = o_custkey AND c_acctbal < 5000"
        )
        db.execute("SELECT k FROM t WHERE a < 10")
        assert db.feedback.summary()["joins"] == 1
        # The customer scan is the (un-Bloomed) build side: harvested.
        assert db.feedback.lookup_selectivity(
            "customer", parse_expression("c_acctbal < 5000")
        ) is not None
        # Reload `customer` with different rows: its selectivity and the
        # join that touched it are gone; the untouched table's survive.
        db.load_table(
            "customer", gen.table("customer")[:50], TABLE_SCHEMAS["customer"]
        )
        assert db.feedback.lookup_selectivity(
            "customer", parse_expression("c_acctbal < 5000")
        ) is None
        assert db.feedback.summary()["joins"] == 0
        assert db.feedback.lookup_selectivity(
            "t", parse_expression("a < 10")
        ) is not None
        # A fresh probe against the reloaded table is metered again.
        mark = db.ctx.metrics.mark()
        probe_selectivity(
            db.ctx, db.table("customer"),
            parse_expression("c_acctbal < 5000"), fraction=0.5,
        )
        assert len(db.ctx.metrics.records_since(mark)) > 0

    def test_workers_execution_still_harvests(self):
        db = PushdownDB(workers=4)
        db.load_table("t", _rows(), SCHEMA, partitions=8)
        execution = db.execute("SELECT k FROM t WHERE a < 25")
        assert len(execution.rows) == 100
        assert db.feedback.summary()["selectivities"] == 1


class TestHarvest:
    def test_scan_actuals_populate_store(self):
        db = _db()
        db.execute("SELECT k FROM t WHERE a < 10 AND b < 10")
        predicate = parse_expression("a < 10 AND b < 10")
        measured = db.feedback.lookup_selectivity("t", predicate)
        assert measured == pytest.approx(0.1)  # truth, not the 0.01 estimate

    def test_baseline_scans_harvest_too(self):
        db = _db()
        db.execute("SELECT k FROM t WHERE a < 10", mode="baseline")
        assert db.feedback.lookup_selectivity(
            "t", parse_expression("a < 10")
        ) == pytest.approx(0.1)

    def test_limit_cut_scans_are_not_recorded(self):
        """A streaming LIMIT stops the pull early: the observed count is
        a lower bound, not a measurement, so it must not be learned."""
        db = _db()
        db.execute("SELECT k FROM t WHERE a < 50 LIMIT 3")
        assert db.feedback.lookup_selectivity(
            "t", parse_expression("a < 50")
        ) is None

    def test_harvest_plan_returns_entry_count(self):
        db = _db()
        execution = db.execute("SELECT k FROM t WHERE a < 10")
        del execution
        store = FeedbackStore()
        # Re-harvest from a fresh execution's plan through the public hook.
        db2 = _db()
        exec2 = db2.execute("SELECT k FROM t WHERE b < 20")
        del exec2
        assert store.summary()["selectivities"] == 0
        # The planner path harvests internally; the standalone API is
        # exercised against a hand-built scan.
        from repro.planner.physical import ScanNode

        scan = ScanNode(
            db2.table("t"), ["k"], parse_expression("b < 20"), pushdown=True
        )
        scan.actual_rows = 80
        assert harvest_plan(store, scan) == 1
        assert store.lookup_selectivity(
            "t", parse_expression("b < 20")
        ) == pytest.approx(0.2)

    def test_join_actuals_improve_next_plan(self):
        """A repeated 3-way join plans with measured cardinalities: the
        second run's est_rows matches the first run's actuals."""
        gen = TpchGenerator(scale_factor=0.002)
        db = PushdownDB()
        for table in ("customer", "orders", "lineitem"):
            db.load_table(table, gen.table(table), TABLE_SCHEMAS[table])
        sql = (
            "SELECT SUM(l_extendedprice) FROM customer, orders, lineitem"
            " WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
            " AND o_orderdate < '1995-06-01'"
        )
        first = db.execute(sql)
        second = db.execute(sql)
        assert first.rows == second.rows
        actual_by_depth = {
            (r["node"], r["depth"]): r for r in second.details["actuals"]
        }
        for record in actual_by_depth.values():
            if record["q_error"] is not None and "hash-join" in record["node"]:
                assert record["q_error"] == pytest.approx(1.0, abs=1e-3)


class TestProbeCache:
    def test_probe_pays_once_per_session(self):
        db = _db(partitions=4)
        ctx, table = db.ctx, db.table("t")
        predicate = parse_expression("a < 30")
        mark = ctx.metrics.mark()
        first = probe_selectivity(ctx, table, predicate, fraction=0.5)
        paid = len(ctx.metrics.records_since(mark))
        assert paid == 4  # one ScanRange select per partition
        mark = ctx.metrics.mark()
        second = probe_selectivity(ctx, table, predicate, fraction=0.5)
        assert len(ctx.metrics.records_since(mark)) == 0
        assert second == first

    def test_probe_refresh_forces_measurement(self):
        db = _db(partitions=4)
        ctx, table = db.ctx, db.table("t")
        predicate = parse_expression("a < 30")
        probe_selectivity(ctx, table, predicate, fraction=0.5)
        mark = ctx.metrics.mark()
        probe_selectivity(ctx, table, predicate, fraction=0.5, refresh=True)
        assert len(ctx.metrics.records_since(mark)) == 4

    def test_execution_feedback_short_circuits_probe(self):
        """An executed scan's exact measurement also answers probes."""
        db = _db(partitions=4)
        db.execute("SELECT k FROM t WHERE a < 30")
        mark = db.ctx.metrics.mark()
        value = probe_selectivity(
            db.ctx, db.table("t"), parse_expression("a < 30"), fraction=0.5
        )
        assert len(db.ctx.metrics.records_since(mark)) == 0
        assert value == pytest.approx(0.3)
