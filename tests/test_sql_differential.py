"""SQL differential fuzzing: the whole PushdownDB front door vs sqlite3.

A seeded RNG generates ~200 SELECTs over four random tables — filters
(comparisons, IN, BETWEEN, IS NULL, NOT, OR), group-by with aggregates,
HAVING over (possibly unselected) aggregates, CASE expressions in the
select list, order-by/limit, 2–4-way equi-join chains with per-table
and cross-table residual predicates, two-table *cross joins* (no
equi-join condition, exercising the planner's guarded CrossProductNode
fallback), ``LEFT OUTER JOIN ... ON`` clauses with pushable ON
residuals, correlated ``[NOT] EXISTS`` and uncorrelated ``[NOT] IN
(SELECT ...)`` conjuncts (decorrelated into semi / anti / NULL-aware
anti hash joins; the inner key columns are nullable, so NOT IN's
three-valued emptiness rule is continuously exercised) — and every
query must produce the same row set as sqlite3 under
``mode="baseline"``, ``mode="auto"`` and ``mode="adaptive"``.  The
adaptive pass doubles as the acceptance gate that mid-flight join
re-planning never changes result rows, and — because the fixture is one
long-lived session — that plans steered by accumulated execution
feedback stay correct as estimates shift under the fuzzer's feet.

This extends the sqlite-oracle approach of ``test_null_semantics.py``
from single expressions to full queries: parser, planner, join-order
search, pushdown scans, Bloom joins and the local operator tail are all
under test at once.  The seed is pinned so CI failures reproduce.

Design notes for determinism and oracle fidelity:

* every column name is globally unique (``t0_a`` ...), so unqualified
  references are never ambiguous and join outputs cannot collide;
* LIMIT is only generated together with an ORDER BY over *all* output
  columns — the selected prefix is then a deterministic row multiset on
  both sides even with duplicate keys;
* floats are dyadic (quarters), so sums are exact in both engines;
* strings are non-empty (the CSV codec reads ``''`` back as NULL) and
  ASCII (sqlite compares bytes, Python compares code points).
"""

from __future__ import annotations

import random
import sqlite3

import pytest

from repro.planner.database import PushdownDB
from repro.storage.schema import TableSchema

SEED = 0x5EED_2024
NUM_QUERIES = 200

#: Join keys across all tables share this domain so chains fan out.
KEY_DOMAIN = range(0, 18)

_WORDS = ("ash", "birch", "cedar", "elm", "fir", "oak", "pine", "yew")


def _make_tables(rng: random.Random):
    """Four tables with distinct column prefixes and a shared key domain."""

    def key(nullable=False):
        if nullable and rng.random() < 0.15:
            return None
        return rng.choice(KEY_DOMAIN)

    def small_int(lo, hi, nullable=False):
        if nullable and rng.random() < 0.2:
            return None
        return rng.randint(lo, hi)

    t0 = [
        (key(), small_int(-50, 50, nullable=True), small_int(0, 4),
         rng.choice(_WORDS))
        for _ in range(45)
    ]
    t1 = [
        (key(nullable=True), small_int(-30, 30), small_int(0, 3))
        for _ in range(40)
    ]
    t2 = [
        (key(nullable=True), small_int(-20, 20, nullable=True),
         rng.choice(_WORDS))
        for _ in range(35)
    ]
    t3 = [
        (key(), rng.randint(-40, 40) / 4.0, small_int(0, 2))
        for _ in range(30)
    ]
    return {
        "t0": (TableSchema.of("t0_key:int", "t0_a:int", "t0_b:int", "t0_s:str"), t0),
        "t1": (TableSchema.of("t1_key:int", "t1_c:int", "t1_d:int"), t1),
        "t2": (TableSchema.of("t2_key:int", "t2_e:int", "t2_s:str"), t2),
        "t3": (TableSchema.of("t3_key:int", "t3_f:float", "t3_g:int"), t3),
    }


#: Per-table column metadata for the generator: (name, kind).
_COLUMNS = {
    "t0": [("t0_key", "key"), ("t0_a", "int"), ("t0_b", "group"), ("t0_s", "str")],
    "t1": [("t1_key", "key"), ("t1_c", "int"), ("t1_d", "group")],
    "t2": [("t2_key", "key"), ("t2_e", "int"), ("t2_s", "str")],
    "t3": [("t3_key", "key"), ("t3_f", "float"), ("t3_g", "group")],
}
_KEY_OF = {t: cols[0][0] for t, cols in _COLUMNS.items()}


@pytest.fixture(scope="module")
def engines():
    rng = random.Random(SEED)
    tables = _make_tables(rng)

    db = PushdownDB()
    for name, (schema, rows) in tables.items():
        db.load_table(name, rows, schema, partitions=4)

    oracle = sqlite3.connect(":memory:")
    for name, (schema, rows) in tables.items():
        cols = ", ".join(schema.names)
        oracle.execute(f"CREATE TABLE {name} ({cols})")
        oracle.executemany(
            f"INSERT INTO {name} VALUES ({', '.join('?' * len(schema.names))})",
            rows,
        )
    yield db, oracle
    oracle.close()


# ----------------------------------------------------------------------
# query generation
# ----------------------------------------------------------------------

def _literal_for(rng: random.Random, kind: str) -> str:
    if kind == "key":
        return str(rng.randint(-1, 19))
    if kind == "group":
        return str(rng.randint(0, 4))
    if kind == "float":
        return str(rng.randint(-40, 40) / 4.0)
    if kind == "str":
        return f"'{rng.choice(_WORDS)}'"
    return str(rng.randint(-50, 50))


def _simple_predicate(rng: random.Random, column: str, kind: str) -> str:
    roll = rng.random()
    if roll < 0.35:
        op = rng.choice(("=", "<>", "<", "<=", ">", ">="))
        return f"{column} {op} {_literal_for(rng, kind)}"
    if roll < 0.55:
        lo, hi = _literal_for(rng, kind), _literal_for(rng, kind)
        maybe_not = "NOT " if rng.random() < 0.25 else ""
        return f"{column} {maybe_not}BETWEEN {lo} AND {hi}"
    if roll < 0.75:
        n = rng.randint(1, 4)
        values = [_literal_for(rng, kind) for _ in range(n)]
        if rng.random() < 0.2:
            values.append("NULL")
        maybe_not = "NOT " if rng.random() < 0.25 else ""
        return f"{column} {maybe_not}IN ({', '.join(values)})"
    if roll < 0.9:
        maybe_not = "NOT " if rng.random() < 0.5 else ""
        return f"{column} IS {maybe_not}NULL"
    inner = _simple_predicate(rng, column, kind)
    return f"NOT ({inner})"


def _table_predicate(rng: random.Random, table: str) -> str:
    column, kind = rng.choice(_COLUMNS[table])
    pred = _simple_predicate(rng, column, kind)
    if rng.random() < 0.3:
        column2, kind2 = rng.choice(_COLUMNS[table])
        conn = rng.choice(("AND", "OR"))
        pred = f"({pred} {conn} {_simple_predicate(rng, column2, kind2)})"
    return pred


def _case_expr(rng: random.Random, column: str, kind: str) -> str:
    """A CASE over ``column`` usable both standalone and inside SUM()."""
    then = _literal_for(rng, "group")
    other = "NULL" if rng.random() < 0.2 else _literal_for(rng, "group")
    return (
        f"CASE WHEN {_simple_predicate(rng, column, kind)}"
        f" THEN {then} ELSE {other} END"
    )


def _subquery_conjunct(rng: random.Random, tables: list[str],
                       used: set[str]) -> str | None:
    """A correlated [NOT] EXISTS or uncorrelated [NOT] IN conjunct whose
    inner table is not otherwise in the query (keeps resolution and the
    oracle's scoping trivially aligned)."""
    inner_pool = [t for t in _COLUMNS if t not in used]
    if not inner_pool:
        return None
    inner = rng.choice(inner_pool)
    outer = rng.choice(tables)
    maybe_not = "NOT " if rng.random() < 0.5 else ""
    if rng.random() < 0.5:
        cond = f"{_KEY_OF[inner]} = {_KEY_OF[outer]}"
        if rng.random() < 0.4:
            cond += f" AND {_table_predicate(rng, inner)}"
        return f"{maybe_not}EXISTS (SELECT 1 FROM {inner} WHERE {cond})"
    inner_where = (
        f" WHERE {_table_predicate(rng, inner)}" if rng.random() < 0.6 else ""
    )
    return (
        f"{_KEY_OF[outer]} {maybe_not}IN"
        f" (SELECT {_KEY_OF[inner]} FROM {inner}{inner_where})"
    )


def _generate_query(rng: random.Random) -> str:
    """One random SELECT from the grammar described in the module docs."""
    n_tables = rng.choice((1, 1, 1, 1, 2, 2, 2, 3, 3, 4))
    tables = rng.sample(list(_COLUMNS), n_tables)

    where: list[str] = []
    # Occasionally drop the join condition of a 2-table query: the
    # product of two generator tables stays well under the planner's
    # cross-product guard, so these execute as CrossProductNode plans.
    cross_join = n_tables == 2 and rng.random() < 0.12
    if not cross_join:
        for prev, curr in zip(tables, tables[1:]):
            where.append(f"{_KEY_OF[prev]} = {_KEY_OF[curr]}")
    for table in tables:
        if rng.random() < 0.55:
            where.append(_table_predicate(rng, table))
    if n_tables >= 2 and rng.random() < 0.25:
        # Cross-table residual comparison over non-key int columns.
        a = rng.choice([c for t in tables for c, k in _COLUMNS[t]
                        if k in ("int", "group")] or [_KEY_OF[tables[0]]])
        b = rng.choice([c for t in tables for c, k in _COLUMNS[t]
                        if k in ("int", "group")] or [_KEY_OF[tables[-1]]])
        if a != b:
            where.append(f"{a} {rng.choice(('<', '<=', '<>'))} {b}")

    # LEFT OUTER JOIN an unused table onto the core (sqlite's comma and
    # JOIN group left-to-right, so both engines apply it on top).
    left_table = None
    if not cross_join and rng.random() < 0.15:
        unused = [t for t in _COLUMNS if t not in tables]
        if unused:
            left_table = rng.choice(unused)
            on = f"{_KEY_OF[left_table]} = {_KEY_OF[rng.choice(tables)]}"
            if rng.random() < 0.4:
                on += f" AND {_table_predicate(rng, left_table)}"
            left_join_sql = f" LEFT OUTER JOIN {left_table} ON {on}"

    used = set(tables) | ({left_table} if left_table else set())
    if rng.random() < 0.2:
        conjunct = _subquery_conjunct(rng, tables, used)
        if conjunct:
            where.append(conjunct)

    visible = tables + ([left_table] if left_table else [])
    aggregate = rng.random() < 0.4
    group_cols: list[str] = []
    having = None
    agg_pool = [c for t in visible for c, k in _COLUMNS[t]
                if k in ("int", "float", "key")]
    if aggregate:
        if rng.random() < 0.6:
            pool = [c for t in visible for c, k in _COLUMNS[t] if k == "group"]
            if pool:
                group_cols = [rng.choice(pool)]
        n_aggs = rng.randint(1, 2)
        select = list(group_cols)
        for i in range(n_aggs):
            func = rng.choice(("COUNT", "SUM", "MIN", "MAX", "AVG"))
            if func == "COUNT" and rng.random() < 0.5:
                arg = "*"
            elif func == "SUM" and rng.random() < 0.2:
                column, kind = rng.choice(_COLUMNS[rng.choice(visible)])
                arg = _case_expr(rng, column, kind)
            else:
                arg = rng.choice(agg_pool)
            select.append(f"{func}({arg}) AS agg_{i}")
        out_names = group_cols + [f"agg_{i}" for i in range(n_aggs)]
        if group_cols and rng.random() < 0.35:
            # HAVING over an aggregate that need not be selected.
            agg = rng.choice((
                "COUNT(*)", f"SUM({rng.choice(agg_pool)})",
                f"MIN({rng.choice(agg_pool)})",
            ))
            having = (
                f"{agg} {rng.choice(('>', '>=', '<>'))} {rng.randint(-10, 10)}"
            )
    else:
        pool = [c for t in visible for c, _ in _COLUMNS[t]]
        k = rng.randint(1, min(4, len(pool)))
        select = rng.sample(pool, k)
        out_names = list(select)
        if rng.random() < 0.15:
            column, kind = rng.choice(_COLUMNS[rng.choice(visible)])
            select.append(f"{_case_expr(rng, column, kind)} AS case_0")
            out_names.append("case_0")

    sql = f"SELECT {', '.join(select)} FROM {', '.join(tables)}"
    if left_table:
        sql += left_join_sql
    if where:
        sql += " WHERE " + " AND ".join(where)
    if group_cols:
        sql += " GROUP BY " + ", ".join(group_cols)
    if having:
        sql += f" HAVING {having}"

    orderable = not (aggregate and not group_cols)  # single-row: no point
    if orderable and rng.random() < 0.5:
        directions = [
            f"{name} {rng.choice(('ASC', 'DESC'))}" for name in out_names
        ]
        hidden = None
        if not aggregate and rng.random() < 0.25:
            # SQL allows ORDER BY keys outside the select list; row-set
            # equality still holds, but a LIMIT prefix under a hidden
            # key would not be a deterministic multiset — so no LIMIT.
            pool = [c for t in tables for c, _ in _COLUMNS[t]
                    if c not in out_names]
            if pool:
                hidden = f"{rng.choice(pool)} {rng.choice(('ASC', 'DESC'))}"
                directions.insert(0, hidden)
        sql += " ORDER BY " + ", ".join(directions)
        if hidden is None and rng.random() < 0.45:
            sql += f" LIMIT {rng.randint(1, 12)}"
    return sql


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------

def _normalize(rows) -> list[tuple]:
    out = []
    for row in rows:
        out.append(tuple(
            round(float(v), 6) if isinstance(v, (int, float))
            and not isinstance(v, bool) else v
            for v in row
        ))
    return out


def _check(db: PushdownDB, oracle: sqlite3.Connection, sql: str):
    # Row-*set* comparison: without LIMIT both sides hold the same
    # multiset by SQL semantics; with LIMIT the ORDER BY covers every
    # output column, so the selected prefix is a deterministic multiset
    # too (equal-key rows may interleave differently between engines).
    expected = sorted(_normalize(oracle.execute(sql).fetchall()), key=repr)
    for mode in ("baseline", "auto", "adaptive"):
        got = sorted(_normalize(db.execute(sql, mode=mode).rows), key=repr)
        assert got == expected, (
            f"mode={mode}: {sql}\n got {got}\n exp {expected}"
        )


def test_differential_fuzz(engines):
    """~200 random queries agree with sqlite3 in baseline and auto mode."""
    db, oracle = engines
    rng = random.Random(SEED + 1)
    n_joins = 0
    for i in range(NUM_QUERIES):
        sql = _generate_query(rng)
        n_joins += sql.count("_key = t")  # join conditions present
        try:
            _check(db, oracle, sql)
        except AssertionError:
            print(f"failing query #{i}: {sql}")
            raise
    # The pinned seed must actually exercise multi-way joins.
    assert n_joins > 50


def test_fuzz_covers_join_arities(engines):
    """The pinned seed generates 1-, 2-, 3- and 4-table queries."""
    rng = random.Random(SEED + 1)
    arities = set()
    for _ in range(NUM_QUERIES):
        sql = _generate_query(rng)
        # The FROM list ends at the first LEFT JOIN (whose ON clause may
        # carry commas inside IN lists) or at WHERE.
        from_list = (
            sql.split(" FROM ")[1]
            .split(" LEFT OUTER JOIN ")[0]
            .split(" WHERE ")[0]
        )
        arities.add(from_list.count(",") + 1)
    assert arities == {1, 2, 3, 4}


def test_fuzz_covers_cross_joins(engines):
    """The pinned seed generates 2-table queries with no join condition."""
    rng = random.Random(SEED + 1)
    crosses = 0
    for _ in range(NUM_QUERIES):
        sql = _generate_query(rng)
        from_list = sql.split(" FROM ")[1].split(" WHERE ")[0]
        if from_list.count(",") == 1 and "_key = t" not in sql:
            crosses += 1
    assert crosses >= 5


def test_differential_fuzz_warm_cache():
    """The full fuzz workload run twice through one cache-enabled
    session agrees with sqlite3 on both passes.

    Pass 1 populates the semantic cache; pass 2 replays the identical
    query sequence, so pushed scans and aggregates answer from cache
    (exact hits, plus subsumption where the optimizer narrowed a
    predicate differently).  Every result on *both* passes is checked
    against the oracle, pinning the ISSUE's bar that warm hits are
    row-identical — and the second pass must actually hit.
    """
    tables = _make_tables(random.Random(SEED))
    db = PushdownDB(cache_bytes=256 << 20)
    oracle = sqlite3.connect(":memory:")
    for name, (schema, rows) in tables.items():
        db.load_table(name, rows, schema, partitions=4)
        cols = ", ".join(schema.names)
        oracle.execute(f"CREATE TABLE {name} ({cols})")
        oracle.executemany(
            f"INSERT INTO {name} VALUES ({', '.join('?' * len(schema.names))})",
            rows,
        )

    rng = random.Random(SEED + 1)
    queries = [_generate_query(rng) for _ in range(NUM_QUERIES)]
    warm_hits = 0
    for pass_no in range(2):
        for i, sql in enumerate(queries):
            expected = sorted(
                _normalize(oracle.execute(sql).fetchall()), key=repr
            )
            execution = db.execute(sql, mode="auto")
            got = sorted(_normalize(execution.rows), key=repr)
            assert got == expected, (
                f"pass={pass_no + 1} query #{i}: {sql}\n"
                f" got {got}\n exp {expected}"
            )
            if pass_no == 1:
                cache = execution.details.get("cache", {})
                warm_hits += cache.get("hit", 0) + cache.get("subsumed", 0)
    assert warm_hits > 50, f"only {warm_hits} cache reuses on pass 2"


def test_fuzz_covers_extended_grammar(engines):
    """The pinned seed exercises every construct the tentpole added:
    HAVING, LEFT OUTER JOIN, [NOT] EXISTS, [NOT] IN (SELECT), CASE."""
    rng = random.Random(SEED + 1)
    counts = {"HAVING": 0, "LEFT OUTER JOIN": 0, "EXISTS (": 0,
              "NOT EXISTS (": 0, "IN (SELECT": 0, "NOT IN (SELECT": 0,
              "CASE WHEN": 0}
    for _ in range(NUM_QUERIES):
        sql = _generate_query(rng)
        for marker in counts:
            if marker in sql:
                counts[marker] += 1
    assert all(n >= 3 for n in counts.values()), counts
