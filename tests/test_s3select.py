"""Tests for the simulated S3 Select engine and its dialect validator."""

import pytest

from repro.common.errors import (
    ExpressionLimitExceededError,
    UnsupportedFeatureError,
)
from repro.s3select.engine import ScanRange, execute_select
from repro.s3select.validator import expression_complexity, validate_select_sql
from repro.sqlparser.parser import parse
from repro.storage.csvcodec import encode_table
from repro.storage.object_store import StoredObject
from repro.storage.parquet import write_parquet
from repro.storage.schema import TableSchema

SCHEMA = TableSchema.of("k:int", "v:float", "name:str", "day:date")
ROWS = [
    (1, 10.0, "alpha", "1995-01-01"),
    (2, 20.0, "beta", "1995-06-01"),
    (3, 30.0, "gamma", "1996-01-01"),
    (4, 40.0, "delta", "1996-06-01"),
]
SPEC = ["k:int", "v:float", "name:str", "day:date"]


def csv_object(rows=ROWS):
    data, _ = encode_table(rows)
    return StoredObject(data, {"format": "csv", "schema": SPEC, "header": False})


def parquet_object(rows=ROWS):
    data = write_parquet(rows, SCHEMA)
    return StoredObject(data, {"format": "parquet", "schema": SPEC})


class TestProjectionAndFilter:
    def test_star(self):
        result = execute_select(csv_object(), "SELECT * FROM S3Object")
        assert result.rows == ROWS
        assert result.column_names == ["k", "v", "name", "day"]

    def test_projection(self):
        result = execute_select(csv_object(), "SELECT name, k FROM S3Object")
        assert result.rows[0] == ("alpha", 1)

    def test_computed_projection(self):
        result = execute_select(csv_object(), "SELECT k * 10 + 1 FROM S3Object")
        assert result.rows[0] == (11,)

    def test_where(self):
        result = execute_select(
            csv_object(), "SELECT k FROM S3Object WHERE v >= 30"
        )
        assert [r[0] for r in result.rows] == [3, 4]

    def test_date_filter(self):
        result = execute_select(
            csv_object(), "SELECT k FROM S3Object WHERE day < '1996-01-01'"
        )
        assert [r[0] for r in result.rows] == [1, 2]

    def test_limit(self):
        result = execute_select(csv_object(), "SELECT k FROM S3Object LIMIT 2")
        assert len(result.rows) == 2

    def test_substring_bloom_predicate(self):
        sql = (
            "SELECT k FROM S3Object WHERE "
            "SUBSTRING('0101', (k % 97) % 4 + 1, 1) = '1'"
        )
        result = execute_select(csv_object(), sql)
        assert [r[0] for r in result.rows] == [1, 3]


class TestAggregation:
    def test_simple_aggregates(self):
        result = execute_select(
            csv_object(),
            "SELECT SUM(v), COUNT(*), MIN(k), MAX(k), AVG(v) FROM S3Object",
        )
        assert result.rows == [(100.0, 4, 1, 4, 25.0)]

    def test_filtered_aggregate(self):
        result = execute_select(
            csv_object(), "SELECT SUM(v) FROM S3Object WHERE k <= 2"
        )
        assert result.rows == [(30.0,)]

    def test_case_aggregate(self):
        result = execute_select(
            csv_object(),
            "SELECT SUM(CASE WHEN k % 2 = 0 THEN v ELSE 0 END) FROM S3Object",
        )
        assert result.rows == [(60.0,)]

    def test_compound_aggregate_expression(self):
        result = execute_select(
            csv_object(), "SELECT SUM(v) / COUNT(v) FROM S3Object"
        )
        assert result.rows == [(25.0,)]

    def test_empty_input_aggregates(self):
        result = execute_select(
            csv_object(), "SELECT SUM(v), COUNT(*) FROM S3Object WHERE k > 99"
        )
        assert result.rows == [(None, 0)]


class TestAccounting:
    def test_csv_scans_whole_object(self):
        obj = csv_object()
        result = execute_select(obj, "SELECT k FROM S3Object WHERE k = 1")
        assert result.bytes_scanned == len(obj.data)

    def test_returned_bytes_match_payload(self):
        result = execute_select(csv_object(), "SELECT k FROM S3Object")
        assert result.bytes_returned == len(result.payload) > 0

    def test_aggregates_return_tiny_payload(self):
        result = execute_select(csv_object(), "SELECT SUM(v) FROM S3Object")
        assert result.bytes_returned < 20

    def test_parquet_scans_only_referenced_columns(self):
        obj = parquet_object([(i, float(i), f"long-pad-{i:08d}", "1995-01-01")
                              for i in range(300)])
        narrow = execute_select(obj, "SELECT k FROM S3Object")
        wide = execute_select(obj, "SELECT * FROM S3Object")
        assert narrow.bytes_scanned < wide.bytes_scanned
        assert narrow.rows == [(i,) for i in range(300)]

    def test_parquet_where_columns_count_as_scanned(self):
        obj = parquet_object()
        just_k = execute_select(obj, "SELECT k FROM S3Object")
        k_filtered_by_v = execute_select(
            obj, "SELECT k FROM S3Object WHERE v > 0"
        )
        assert k_filtered_by_v.bytes_scanned > just_k.bytes_scanned

    def test_parquet_results_match_csv(self):
        sql = "SELECT name, v FROM S3Object WHERE k >= 2"
        assert (
            execute_select(parquet_object(), sql).rows
            == execute_select(csv_object(), sql).rows
        )

    def test_term_evals_scale_with_select_items(self):
        cheap = execute_select(csv_object(), "SELECT k FROM S3Object")
        costly = execute_select(
            csv_object(),
            "SELECT SUM(CASE WHEN k = 1 THEN v ELSE 0 END),"
            " SUM(CASE WHEN k = 2 THEN v ELSE 0 END) FROM S3Object",
        )
        assert cheap.term_evals == 0
        assert costly.term_evals == 2 * len(ROWS)


class TestScanRange:
    def test_prefix_range_returns_leading_rows(self):
        obj = csv_object()
        full = execute_select(obj, "SELECT k FROM S3Object")
        half = execute_select(
            obj, "SELECT k FROM S3Object",
            scan_range=ScanRange(0, len(obj.data) // 2),
        )
        assert 0 < len(half.rows) < len(full.rows)
        assert half.rows == full.rows[: len(half.rows)]

    def test_range_bills_only_window(self):
        obj = csv_object()
        half = execute_select(
            obj, "SELECT k FROM S3Object",
            scan_range=ScanRange(0, len(obj.data) // 2),
        )
        assert half.bytes_scanned == len(obj.data) // 2

    def test_range_on_parquet_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            execute_select(
                parquet_object(), "SELECT k FROM S3Object",
                scan_range=ScanRange(0, 10),
            )


class TestDialectValidation:
    def test_from_table_must_be_s3object(self):
        with pytest.raises(UnsupportedFeatureError):
            execute_select(csv_object(), "SELECT * FROM lineitem")

    def test_group_by_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            execute_select(csv_object(), "SELECT k FROM S3Object GROUP BY k")

    def test_order_by_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            execute_select(csv_object(), "SELECT k FROM S3Object ORDER BY k")

    def test_join_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            execute_select(csv_object(), "SELECT * FROM S3Object, S3Object2")

    def test_mixed_aggregate_and_scalar_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            execute_select(csv_object(), "SELECT k, SUM(v) FROM S3Object")

    def test_aggregate_in_where_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            execute_select(
                csv_object(), "SELECT k FROM S3Object WHERE SUM(v) > 1"
            )

    def test_expression_limit_enforced(self):
        bits = "1" * 300_000
        sql = f"SELECT k FROM S3Object WHERE SUBSTRING('{bits}', 1, 1) = '1'"
        with pytest.raises(ExpressionLimitExceededError):
            execute_select(csv_object(), sql)

    def test_expression_limit_configurable(self):
        sql = "SELECT k FROM S3Object WHERE k = 1"
        with pytest.raises(ExpressionLimitExceededError):
            execute_select(csv_object(), sql, expression_limit=10)


class TestComplexityMetric:
    def test_bare_columns_are_free(self):
        q = parse("SELECT a, b, c FROM S3Object")
        assert expression_complexity(q) == 0

    def test_computed_items_cost_one_each(self):
        q = parse("SELECT a + 1, SUM(CASE WHEN a = 1 THEN b ELSE 0 END) FROM S3Object")
        # mixed agg/scalar is invalid SQL for the service, but the metric
        # itself just counts computed items.
        assert expression_complexity(q) == 2

    def test_where_counts_conjuncts(self):
        q = parse("SELECT a FROM S3Object WHERE a = 1 AND b = 2 AND c LIKE 'x%'")
        assert expression_complexity(q) == 3

    def test_or_counts_as_single_conjunct(self):
        q = parse("SELECT a FROM S3Object WHERE a = 1 OR b = 2")
        assert expression_complexity(q) == 1

    def test_validator_accepts_good_query(self):
        sql = "SELECT SUM(v) FROM S3Object WHERE k < 3"
        validate_select_sql(sql, parse(sql))
