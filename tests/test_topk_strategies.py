"""Tests for server-side and sampling top-K (paper Section VII)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import PlanError
from repro.strategies.topk import (
    TopKQuery,
    optimal_sample_size,
    order_bytes_fraction,
    sampling_top_k,
    server_side_top_k,
)


def price_column(execution, catalog):
    idx = catalog.get("lineitem").schema.index_of("l_extendedprice")
    return [r[idx] for r in execution.rows]


class TestAgreement:
    @pytest.mark.parametrize("k", [1, 10, 100])
    def test_ascending(self, tpch_env, k):
        ctx, catalog = tpch_env
        query = TopKQuery(table="lineitem", order_column="l_extendedprice", k=k)
        server = server_side_top_k(ctx, catalog, query)
        sampled = sampling_top_k(ctx, catalog, query)
        assert price_column(server, catalog) == price_column(sampled, catalog)
        assert len(server.rows) == k

    def test_descending(self, tpch_env):
        ctx, catalog = tpch_env
        query = TopKQuery(
            table="lineitem", order_column="l_extendedprice", k=25, descending=True
        )
        server = server_side_top_k(ctx, catalog, query)
        sampled = sampling_top_k(ctx, catalog, query)
        assert price_column(server, catalog) == price_column(sampled, catalog)

    def test_results_actually_sorted(self, tpch_env):
        ctx, catalog = tpch_env
        query = TopKQuery(table="lineitem", order_column="l_extendedprice", k=50)
        prices = price_column(sampling_top_k(ctx, catalog, query), catalog)
        assert prices == sorted(prices)

    def test_explicit_sample_sizes(self, tpch_env):
        ctx, catalog = tpch_env
        query = TopKQuery(table="lineitem", order_column="l_extendedprice", k=20)
        reference = price_column(server_side_top_k(ctx, catalog, query), catalog)
        n = catalog.get("lineitem").num_rows
        for sample_size in (25, n // 10, n):
            out = sampling_top_k(ctx, catalog, query, sample_size=sample_size)
            assert price_column(out, catalog) == reference, sample_size

    def test_k_larger_than_table_rejected(self, tpch_env):
        ctx, catalog = tpch_env
        n = catalog.get("lineitem").num_rows
        query = TopKQuery(table="lineitem", order_column="l_extendedprice", k=n + 1)
        with pytest.raises(PlanError):
            sampling_top_k(ctx, catalog, query)


class TestMechanics:
    def test_phase2_returns_fewer_rows_than_table(self, tpch_env):
        ctx, catalog = tpch_env
        query = TopKQuery(table="lineitem", order_column="l_extendedprice", k=10)
        out = sampling_top_k(ctx, catalog, query)
        assert out.details["phase2_rows"] < catalog.get("lineitem").num_rows
        assert out.details["phase2_rows"] >= 10

    def test_larger_sample_tighter_threshold(self, tpch_env):
        ctx, catalog = tpch_env
        n = catalog.get("lineitem").num_rows
        query = TopKQuery(table="lineitem", order_column="l_extendedprice", k=10)
        small = sampling_top_k(ctx, catalog, query, sample_size=max(10, n // 100))
        large = sampling_top_k(ctx, catalog, query, sample_size=n // 2)
        assert large.details["phase2_rows"] <= small.details["phase2_rows"]

    def test_details_have_phase_split(self, tpch_env):
        ctx, catalog = tpch_env
        query = TopKQuery(table="lineitem", order_column="l_extendedprice", k=10)
        out = sampling_top_k(ctx, catalog, query)
        assert out.details["sample_seconds"] > 0
        assert out.details["scan_seconds"] > 0
        assert out.runtime_seconds == pytest.approx(
            out.details["sample_seconds"] + out.details["scan_seconds"]
        )


class TestSampleSizeModel:
    def test_formula(self):
        # S* = sqrt(K*N/alpha): K=100, N=6e7, alpha=0.1 -> ~2.45e5
        # (the paper quotes 2.4e5 for these values in Section VII-C1).
        s = optimal_sample_size(100, 60_000_000, 0.1)
        assert s == pytest.approx(math.sqrt(100 * 60_000_000 / 0.1), rel=0.05)

    def test_clamped_to_table(self):
        assert optimal_sample_size(10, 100, 0.5) == 100

    def test_lower_clamp_10k(self):
        assert optimal_sample_size(5, 10**9, 1.0) >= 50

    def test_invalid_inputs(self):
        with pytest.raises(PlanError):
            optimal_sample_size(0, 100, 0.5)

    def test_degenerate_inputs_clamp(self):
        # k > n_rows sizes for the whole table rather than raising or
        # overshooting; alpha outside (0, 1] clamps into range; an empty
        # table yields an empty sample.
        assert optimal_sample_size(500, 100, 0.5) == 100
        assert optimal_sample_size(10, 100, 0.0) == 100
        assert optimal_sample_size(10, 100, -3.0) == 100
        assert optimal_sample_size(10, 10**6, 5.0) == optimal_sample_size(
            10, 10**6, 1.0
        )
        assert optimal_sample_size(10, 0, 0.5) == 0

    def test_never_exceeds_table(self):
        for k, n, alpha in [(1, 1, 1.0), (7, 3, 1e-12), (10**6, 50, 0.01)]:
            assert 0 <= optimal_sample_size(k, n, alpha) <= n

    def test_alpha_estimate(self, tpch_env):
        _, catalog = tpch_env
        table = catalog.get("lineitem")
        alpha = order_bytes_fraction(table, "l_extendedprice")
        assert alpha == pytest.approx(1.0 / 16)

    def test_smaller_alpha_bigger_sample(self):
        assert optimal_sample_size(100, 10**6, 0.05) > optimal_sample_size(
            100, 10**6, 0.5
        )


def _tiny_table(rows, schema_spec=("pos:int", "val:int"), partitions=3):
    from repro.cloud.context import CloudContext
    from repro.engine.catalog import Catalog, load_table
    from repro.storage.schema import TableSchema

    ctx, catalog = CloudContext(), Catalog()
    load_table(
        ctx, catalog, "tiny", rows, TableSchema.of(*schema_spec),
        partitions=partitions,
    )
    return ctx, catalog


class TestTiesAndNulls:
    """Duplicates at the K-th order statistic and NULL order keys.

    The pushed phase-2 predicate must be inclusive (``<=`` / ``>=``) so
    threshold ties survive, and ascending order must keep NULL keys
    (they sort first locally).
    """

    @pytest.mark.parametrize("descending", [False, True])
    @pytest.mark.parametrize("k", [1, 3, 5, 8])
    def test_duplicated_keys_agree_with_server_side(self, descending, k):
        # Heavy duplication: every value appears ~5 times, so the K-th
        # order statistic is almost always tied.
        values = [i % 6 for i in range(30)]
        rows = [(i, v) for i, v in enumerate(values)]
        ctx, catalog = _tiny_table(rows)
        query = TopKQuery(table="tiny", order_column="val", k=k, descending=descending)
        server = server_side_top_k(ctx, catalog, query)
        sampled = sampling_top_k(ctx, catalog, query, sample_size=10)
        assert [r[1] for r in server.rows] == [r[1] for r in sampled.rows]
        assert len(sampled.rows) == k
        assert sampled.details["phase2_rows"] >= k

    def test_at_least_k_pass_with_tied_threshold(self):
        # All rows share one value: any threshold is tied; the inclusive
        # predicate must let every row through.
        rows = [(i, 42) for i in range(20)]
        ctx, catalog = _tiny_table(rows)
        query = TopKQuery(table="tiny", order_column="val", k=4)
        out = sampling_top_k(ctx, catalog, query, sample_size=6)
        assert out.details["phase2_rows"] == 20
        assert [r[1] for r in out.rows] == [42] * 4

    def test_ascending_keeps_null_keys(self):
        # NULLs sort first ascending, so they belong to the true top-K
        # and the pushed predicate must not filter them out.
        rows = [(i, None if i % 7 == 0 else 100 + i) for i in range(28)]
        ctx, catalog = _tiny_table(rows)
        query = TopKQuery(table="tiny", order_column="val", k=6)
        server = server_side_top_k(ctx, catalog, query)
        sampled = sampling_top_k(ctx, catalog, query, sample_size=10)
        assert [r[1] for r in server.rows] == [r[1] for r in sampled.rows]
        assert sum(1 for r in sampled.rows if r[1] is None) == 4

    def test_descending_ignores_null_keys(self):
        rows = [(i, None if i % 5 == 0 else i) for i in range(25)]
        ctx, catalog = _tiny_table(rows)
        query = TopKQuery(table="tiny", order_column="val", k=5, descending=True)
        server = server_side_top_k(ctx, catalog, query)
        sampled = sampling_top_k(ctx, catalog, query, sample_size=10)
        assert [r[1] for r in server.rows] == [r[1] for r in sampled.rows]
        assert all(r[1] is not None for r in sampled.rows)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.integers(0, 10**6), min_size=30, max_size=200),
    st.integers(1, 20),
)
def test_property_sampling_topk_correct_on_random_tables(values, k):
    """Sampling top-K equals sorted-prefix on arbitrary integer tables."""
    from repro.cloud.context import CloudContext
    from repro.engine.catalog import Catalog, load_table
    from repro.storage.schema import TableSchema

    schema = TableSchema.of("pos:int", "val:int")
    rows = [(i, v) for i, v in enumerate(values)]
    ctx, catalog = CloudContext(), Catalog()
    load_table(ctx, catalog, "lineitem", rows, schema, partitions=3)
    query = TopKQuery(table="lineitem", order_column="val", k=k)
    out = sampling_top_k(ctx, catalog, query, alpha=0.5)
    got = [r[1] for r in out.rows]
    assert got == sorted(values)[:k]
