"""Tests for server-side and sampling top-K (paper Section VII)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import PlanError
from repro.strategies.topk import (
    TopKQuery,
    optimal_sample_size,
    order_bytes_fraction,
    sampling_top_k,
    server_side_top_k,
)


def price_column(execution, catalog):
    idx = catalog.get("lineitem").schema.index_of("l_extendedprice")
    return [r[idx] for r in execution.rows]


class TestAgreement:
    @pytest.mark.parametrize("k", [1, 10, 100])
    def test_ascending(self, tpch_env, k):
        ctx, catalog = tpch_env
        query = TopKQuery(table="lineitem", order_column="l_extendedprice", k=k)
        server = server_side_top_k(ctx, catalog, query)
        sampled = sampling_top_k(ctx, catalog, query)
        assert price_column(server, catalog) == price_column(sampled, catalog)
        assert len(server.rows) == k

    def test_descending(self, tpch_env):
        ctx, catalog = tpch_env
        query = TopKQuery(
            table="lineitem", order_column="l_extendedprice", k=25, descending=True
        )
        server = server_side_top_k(ctx, catalog, query)
        sampled = sampling_top_k(ctx, catalog, query)
        assert price_column(server, catalog) == price_column(sampled, catalog)

    def test_results_actually_sorted(self, tpch_env):
        ctx, catalog = tpch_env
        query = TopKQuery(table="lineitem", order_column="l_extendedprice", k=50)
        prices = price_column(sampling_top_k(ctx, catalog, query), catalog)
        assert prices == sorted(prices)

    def test_explicit_sample_sizes(self, tpch_env):
        ctx, catalog = tpch_env
        query = TopKQuery(table="lineitem", order_column="l_extendedprice", k=20)
        reference = price_column(server_side_top_k(ctx, catalog, query), catalog)
        n = catalog.get("lineitem").num_rows
        for sample_size in (25, n // 10, n):
            out = sampling_top_k(ctx, catalog, query, sample_size=sample_size)
            assert price_column(out, catalog) == reference, sample_size

    def test_k_larger_than_table_rejected(self, tpch_env):
        ctx, catalog = tpch_env
        n = catalog.get("lineitem").num_rows
        query = TopKQuery(table="lineitem", order_column="l_extendedprice", k=n + 1)
        with pytest.raises(PlanError):
            sampling_top_k(ctx, catalog, query)


class TestMechanics:
    def test_phase2_returns_fewer_rows_than_table(self, tpch_env):
        ctx, catalog = tpch_env
        query = TopKQuery(table="lineitem", order_column="l_extendedprice", k=10)
        out = sampling_top_k(ctx, catalog, query)
        assert out.details["phase2_rows"] < catalog.get("lineitem").num_rows
        assert out.details["phase2_rows"] >= 10

    def test_larger_sample_tighter_threshold(self, tpch_env):
        ctx, catalog = tpch_env
        n = catalog.get("lineitem").num_rows
        query = TopKQuery(table="lineitem", order_column="l_extendedprice", k=10)
        small = sampling_top_k(ctx, catalog, query, sample_size=max(10, n // 100))
        large = sampling_top_k(ctx, catalog, query, sample_size=n // 2)
        assert large.details["phase2_rows"] <= small.details["phase2_rows"]

    def test_details_have_phase_split(self, tpch_env):
        ctx, catalog = tpch_env
        query = TopKQuery(table="lineitem", order_column="l_extendedprice", k=10)
        out = sampling_top_k(ctx, catalog, query)
        assert out.details["sample_seconds"] > 0
        assert out.details["scan_seconds"] > 0
        assert out.runtime_seconds == pytest.approx(
            out.details["sample_seconds"] + out.details["scan_seconds"]
        )


class TestSampleSizeModel:
    def test_formula(self):
        # S* = sqrt(K*N/alpha): K=100, N=6e7, alpha=0.1 -> ~2.45e5
        # (the paper quotes 2.4e5 for these values in Section VII-C1).
        s = optimal_sample_size(100, 60_000_000, 0.1)
        assert s == pytest.approx(math.sqrt(100 * 60_000_000 / 0.1), rel=0.05)

    def test_clamped_to_table(self):
        assert optimal_sample_size(10, 100, 0.5) == 100

    def test_lower_clamp_10k(self):
        assert optimal_sample_size(5, 10**9, 1.0) >= 50

    def test_invalid_inputs(self):
        with pytest.raises(PlanError):
            optimal_sample_size(0, 100, 0.5)
        with pytest.raises(PlanError):
            optimal_sample_size(10, 100, 0.0)

    def test_alpha_estimate(self, tpch_env):
        _, catalog = tpch_env
        table = catalog.get("lineitem")
        alpha = order_bytes_fraction(table, "l_extendedprice")
        assert alpha == pytest.approx(1.0 / 16)

    def test_smaller_alpha_bigger_sample(self):
        assert optimal_sample_size(100, 10**6, 0.05) > optimal_sample_size(
            100, 10**6, 0.5
        )


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.integers(0, 10**6), min_size=30, max_size=200),
    st.integers(1, 20),
)
def test_property_sampling_topk_correct_on_random_tables(values, k):
    """Sampling top-K equals sorted-prefix on arbitrary integer tables."""
    from repro.cloud.context import CloudContext
    from repro.engine.catalog import Catalog, load_table
    from repro.storage.schema import TableSchema

    schema = TableSchema.of("pos:int", "val:int")
    rows = [(i, v) for i, v in enumerate(values)]
    ctx, catalog = CloudContext(), Catalog()
    load_table(ctx, catalog, "lineitem", rows, schema, partitions=3)
    query = TopKQuery(table="lineitem", order_column="val", k=k)
    out = sampling_top_k(ctx, catalog, query, alpha=0.5)
    got = [r[1] for r in out.rows]
    assert got == sorted(values)[:k]
