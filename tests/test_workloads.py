"""Tests for the TPC-H generator, Zipf sampling, and synthetic tables."""

import datetime

import pytest

from repro.workloads.synthetic import (
    FILTER_SCHEMA,
    filter_table,
    float_schema,
    float_table,
    groupby_schema,
    skewed_groupby_table,
    uniform_groupby_table,
)
from repro.workloads.tpch import (
    CUSTOMER_SCHEMA,
    LINEITEM_SCHEMA,
    ORDERS_SCHEMA,
    TABLE_SCHEMAS,
    TpchGenerator,
    TpchSizes,
)
from repro.workloads.zipf import head_mass, zipf_sample, zipf_weights

import numpy as np


class TestTpchSizes:
    def test_row_counts_scale(self):
        sizes = TpchSizes.at(0.01)
        assert sizes.customers == 1500
        assert sizes.orders == 15000
        assert sizes.parts == 2000
        assert sizes.suppliers == 100

    def test_minimum_one_row(self):
        sizes = TpchSizes.at(1e-9)
        assert sizes.customers >= 1


@pytest.fixture(scope="module")
def gen():
    return TpchGenerator(scale_factor=0.002)


class TestTpchGenerator:
    def test_deterministic(self):
        a = TpchGenerator(scale_factor=0.001).customer()
        b = TpchGenerator(scale_factor=0.001).customer()
        assert a == b

    def test_rows_match_schemas(self, gen):
        for name, schema in TABLE_SCHEMAS.items():
            rows = gen.table(name)
            assert rows, name
            assert len(rows[0]) == len(schema), name

    def test_customer_distributions(self, gen):
        rows = gen.customer()
        idx = CUSTOMER_SCHEMA.index_of("c_acctbal")
        balances = [r[idx] for r in rows]
        assert min(balances) >= -999.99
        assert max(balances) <= 9999.99
        # roughly 1/11 of customers below 0 (spec range -999.99..9999.99)
        negative = sum(1 for b in balances if b < 0) / len(balances)
        assert 0.03 < negative < 0.2

    def test_customer_keys_dense(self, gen):
        rows = gen.customer()
        assert [r[0] for r in rows] == list(range(1, len(rows) + 1))

    def test_orders_reference_customers(self, gen):
        n_cust = len(gen.customer())
        idx = ORDERS_SCHEMA.index_of("o_custkey")
        assert all(1 <= r[idx] <= n_cust for r in gen.orders())

    def test_order_dates_in_spec_range(self, gen):
        idx = ORDERS_SCHEMA.index_of("o_orderdate")
        for row in gen.orders():
            date = datetime.date.fromisoformat(row[idx])
            assert datetime.date(1992, 1, 1) <= date <= datetime.date(1998, 8, 2)

    def test_lineitem_foreign_keys_and_dates(self, gen):
        order_keys = {r[0] for r in gen.orders()}
        li = gen.lineitem()
        s = LINEITEM_SCHEMA
        for row in li[:500]:
            assert row[s.index_of("l_orderkey")] in order_keys
            ship = row[s.index_of("l_shipdate")]
            receipt = row[s.index_of("l_receiptdate")]
            assert ship < receipt

    def test_lineitem_discount_range(self, gen):
        idx = LINEITEM_SCHEMA.index_of("l_discount")
        discounts = {r[idx] for r in gen.lineitem()}
        assert min(discounts) >= 0.0
        assert max(discounts) <= 0.10

    def test_lineitem_extendedprice_consistent(self, gen):
        s = LINEITEM_SCHEMA
        for row in gen.lineitem()[:100]:
            qty = row[s.index_of("l_quantity")]
            price = row[s.index_of("l_extendedprice")]
            assert price == pytest.approx(qty * price / qty)
            assert price > 0

    def test_part_brand_vocabulary(self, gen):
        idx = TABLE_SCHEMAS["part"].index_of("p_brand")
        brands = {r[idx] for r in gen.part()}
        assert all(b.startswith("Brand#") and len(b) == 8 for b in brands)

    def test_nation_region_fixed(self, gen):
        assert len(gen.nation()) == 25
        assert len(gen.region()) == 5

    def test_partsupp_four_suppliers_per_part(self, gen):
        rows = gen.partsupp()
        assert len(rows) == 4 * len(gen.part())

    def test_unknown_table_rejected(self, gen):
        with pytest.raises(ValueError):
            gen.table("widgets")

    def test_invalid_scale_factor(self):
        with pytest.raises(ValueError):
            TpchGenerator(scale_factor=0)


class TestZipf:
    def test_weights_normalized(self):
        weights = zipf_weights(100, 1.3)
        assert weights.sum() == pytest.approx(1.0)

    def test_theta_zero_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_paper_skew_property(self):
        """theta = 1.3: '59% of rows belong to the four largest groups'."""
        assert head_mass(100, 1.3, 4) == pytest.approx(0.59, abs=0.03)

    def test_sample_range_and_skew(self):
        rng = np.random.default_rng(0)
        sample = zipf_sample(100, 1.3, 20_000, rng)
        assert sample.min() >= 0 and sample.max() < 100
        top4 = np.isin(sample, [0, 1, 2, 3]).mean()
        assert 0.5 < top4 < 0.68

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, -1.0)


class TestSyntheticTables:
    def test_uniform_groupby_group_cardinalities(self):
        rows = uniform_groupby_table(4000, seed=1)
        schema = groupby_schema()
        assert len(rows[0]) == len(schema) == 20
        for i in range(5):
            column = {r[i] for r in rows}
            assert len(column) == 2 ** (i + 1), f"g{i}"

    def test_uniform_groups_roughly_even(self):
        rows = uniform_groupby_table(4000, seed=1)
        from collections import Counter

        counts = Counter(r[1] for r in rows)  # g1: 4 groups
        assert max(counts.values()) < 2 * min(counts.values())

    def test_skewed_groupby_is_skewed(self):
        rows = skewed_groupby_table(4000, theta=1.3, seed=1)
        from collections import Counter

        counts = Counter(r[0] for r in rows)
        top4 = sum(c for _, c in counts.most_common(4)) / len(rows)
        assert top4 > 0.5

    def test_filter_table_keys_are_permutation(self):
        rows = filter_table(500, seed=1)
        assert sorted(r[0] for r in rows) == list(range(500))
        assert len(rows[0]) == len(FILTER_SCHEMA)

    def test_filter_table_exact_selectivity(self):
        rows = filter_table(500, seed=2)
        assert sum(1 for r in rows if r[0] < 50) == 50

    def test_float_table_shape_and_range(self):
        rows = float_table(100, 3, seed=1)
        assert len(rows[0]) == len(float_schema(3)) == 3
        assert all(0.0 <= v < 1.0 for r in rows for v in r)

    def test_float_values_rounded_to_4_decimals(self):
        rows = float_table(50, 1, seed=1)
        for (v,) in rows:
            assert round(v, 4) == v
