"""Optimizer-vs-measured crossover validation (CI regression gate).

Runs the `auto` experiment harness — the fig01 selectivity sweep, fig05
group-count sweep, and fig09 k-sweep — and asserts the chooser's pick
matches the actually-cheapest measured strategy at every swept point.
A pick may differ only at a crossover boundary, and then only by one
grid step: the picked strategy must be the measured winner at an
adjacent point of the same sweep.  CI runs this file as its own step so
cost-model regressions fail fast with a readable table.
"""

from __future__ import annotations

import pytest

from repro.experiments import auto_strategy


@pytest.fixture(scope="module")
def result():
    return auto_strategy.run(
        filter_rows=10_000,
        groupby_rows=10_000,
        topk_scale_factor=0.002,
    )


def _series(result, scenario, objective):
    return [
        r for r in result.rows
        if r["scenario"] == scenario and r["objective"] == objective
    ]


def _assert_picks_track_winners(series):
    """Exact agreement, or off by at most one grid step at a crossover."""
    assert series, "scenario produced no swept points"
    winners = [r["measured_best"] for r in series]
    failures = []
    for i, row in enumerate(series):
        if row["agree"]:
            continue
        neighbours = {winners[j] for j in (i - 1, i + 1) if 0 <= j < len(winners)}
        at_crossover = any(w != winners[i] for w in neighbours)
        if not (at_crossover and row["picked"] in neighbours):
            failures.append(row)
    assert not failures, f"picks diverged from measured winners: {failures}"


SCENARIOS = ["fig01-filter", "fig05-groupby", "fig09-topk"]


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("objective", ["cost", "runtime"])
def test_picks_match_measured_winner(result, scenario, objective):
    _assert_picks_track_winners(_series(result, scenario, objective))


def test_fig01_covers_the_indexing_crossover(result):
    """The sweep must actually exercise a strategy flip (paper Figure 1:
    indexing wins only at the very selective end)."""
    winners = [r["measured_best"] for r in _series(result, "fig01-filter", "cost")]
    assert "s3-side indexing" in winners
    assert "s3-side filter" in winners


def test_fig05_covers_the_groupcount_crossover(result):
    """Figure 5's runtime axis flips from S3-side to filtered group-by as
    the CASE-column count grows."""
    winners = [r["measured_best"] for r in _series(result, "fig05-groupby", "runtime")]
    assert "s3-side group-by" in winners
    assert "filtered group-by" in winners


def test_majority_exact_agreement(result):
    """The one-grid-step tolerance must stay the exception, not the rule."""
    agree = sum(1 for r in result.rows if r["agree"])
    assert agree >= 0.8 * len(result.rows), result.notes


def test_rows_report_predictions(result):
    for row in result.rows:
        assert row["predicted_runtime_s"] > 0
        assert row["predicted_cost"] > 0
