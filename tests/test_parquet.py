"""Tests for the simplified Parquet (SPQ1) columnar format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.parquet import (
    ParquetFile,
    ParquetFormatError,
    write_parquet,
)
from repro.storage.schema import TableSchema

SCHEMA = TableSchema.of("a:int", "b:float", "c:str")
ROWS = [(1, 1.5, "x"), (2, 2.5, "y"), (None, None, None), (4, 4.5, "z,w")]


class TestRoundTrip:
    def test_read_rows(self):
        data = write_parquet(ROWS, SCHEMA)
        assert ParquetFile(data).read_rows() == ROWS

    def test_read_single_column(self):
        data = write_parquet(ROWS, SCHEMA)
        cols = ParquetFile(data).read_columns(["b"])
        assert cols["b"] == [1.5, 2.5, None, 4.5]

    def test_projection_order_respected(self):
        data = write_parquet(ROWS, SCHEMA)
        rows = ParquetFile(data).read_rows(["c", "a"])
        assert rows[0] == ("x", 1)

    def test_multiple_row_groups(self):
        data = write_parquet(ROWS, SCHEMA, row_group_rows=2)
        pq = ParquetFile(data)
        assert len(pq.row_groups) == 2
        assert pq.num_rows == 4
        assert pq.read_rows() == ROWS

    def test_empty_table(self):
        data = write_parquet([], SCHEMA)
        pq = ParquetFile(data)
        assert pq.num_rows == 0
        assert pq.read_rows() == []

    def test_uncompressed_roundtrip(self):
        data = write_parquet(ROWS, SCHEMA, compression="none")
        assert ParquetFile(data).read_rows() == ROWS


class TestScanAccounting:
    def test_single_column_scan_is_smaller(self):
        rows = [(i, float(i), f"pad-{i:06d}") for i in range(500)]
        data = write_parquet(rows, SCHEMA)
        pq = ParquetFile(data)
        assert pq.scan_bytes_for(["a"]) < pq.scan_bytes_for(None)

    def test_scan_bytes_all_columns_covers_chunks(self):
        rows = [(i, float(i), "s") for i in range(100)]
        data = write_parquet(rows, SCHEMA)
        pq = ParquetFile(data)
        total_chunks = sum(
            c.compressed_size for g in pq.row_groups for c in g.chunks
        )
        assert pq.scan_bytes_for(None) == total_chunks + pq.footer_size

    def test_duplicate_columns_not_double_billed(self):
        data = write_parquet(ROWS, SCHEMA)
        pq = ParquetFile(data)
        assert pq.scan_bytes_for(["a", "a"]) == pq.scan_bytes_for(["a"])

    def test_compression_shrinks_repetitive_data(self):
        rows = [(1, 1.0, "same-string")] * 2000
        compressed = write_parquet(rows, SCHEMA, compression="zlib")
        raw = write_parquet(rows, SCHEMA, compression="none")
        assert len(compressed) < len(raw) / 2


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(ParquetFormatError):
            ParquetFile(b"not a parquet file at all")

    def test_truncated_file(self):
        data = write_parquet(ROWS, SCHEMA)
        with pytest.raises(ParquetFormatError):
            ParquetFile(data[: len(data) // 2])

    def test_unknown_codec_rejected(self):
        with pytest.raises(ParquetFormatError):
            write_parquet(ROWS, SCHEMA, compression="lz77")

    def test_bad_row_group_size_rejected(self):
        with pytest.raises(ParquetFormatError):
            write_parquet(ROWS, SCHEMA, row_group_rows=0)

    def test_unknown_column_rejected(self):
        data = write_parquet(ROWS, SCHEMA)
        with pytest.raises(Exception):
            ParquetFile(data).read_columns(["nope"])


@settings(max_examples=40)
@given(
    st.lists(
        st.tuples(
            st.one_of(st.none(), st.integers(-10**6, 10**6)),
            st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False, width=32)),
            st.one_of(
                st.none(),
                st.text(
                    alphabet=st.characters(
                        blacklist_categories=("Cs",),
                        blacklist_characters="\n\r",
                    ),
                    min_size=1,
                    max_size=12,
                ),
            ),
        ),
        max_size=40,
    ),
    st.integers(1, 7),
)
def test_property_parquet_roundtrip(rows, row_group_rows):
    """Arbitrary typed rows survive write -> read at any row-group size."""
    normalized = [
        (a, float(b) if b is not None else None, c) for a, b, c in rows
    ]
    data = write_parquet(normalized, SCHEMA, row_group_rows=row_group_rows)
    assert ParquetFile(data).read_rows() == normalized
