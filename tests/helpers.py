"""Shared assertion helpers for the test suite."""

from __future__ import annotations


def approx_rows(rows, places=4):
    """Normalize rows for order-insensitive comparison with FP tolerance."""
    out = []
    for row in rows:
        out.append(
            tuple(
                round(v, places) if isinstance(v, float) else v for v in row
            )
        )
    return sorted(out, key=repr)


def assert_rows_close(a, b, rel=1e-9):
    """Order-insensitive row comparison with relative FP tolerance."""
    sa = sorted(a, key=repr)
    sb = sorted(b, key=repr)
    assert len(sa) == len(sb), f"row counts differ: {len(sa)} vs {len(sb)}"
    for ra, rb in zip(sa, sb):
        assert len(ra) == len(rb), f"row widths differ: {ra} vs {rb}"
        for va, vb in zip(ra, rb):
            if isinstance(va, float) and isinstance(vb, float):
                assert abs(va - vb) <= rel * max(abs(va), abs(vb), 1.0), (
                    f"{va} != {vb}"
                )
            else:
                assert va == vb, f"{va!r} != {vb!r}"
