"""Tests for schemas, the CSV codec, and the object store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import (
    CatalogError,
    InvalidRangeError,
    NoSuchBucketError,
    NoSuchKeyError,
)
from repro.storage.csvcodec import (
    decode_table,
    encode_row,
    encode_table,
    format_value,
    iter_records,
    iter_records_with_offsets,
)
from repro.storage.object_store import ObjectStore
from repro.storage.schema import ColumnDef, TableSchema


class TestSchema:
    def test_of_builder(self):
        schema = TableSchema.of("a:int", "b:float", "c:str", "d:date")
        assert schema.names == ("a", "b", "c", "d")
        assert schema.column("b").type == "float"

    def test_default_type_is_str(self):
        assert TableSchema.of("x").column("x").type == "str"

    def test_unknown_type_rejected(self):
        with pytest.raises(CatalogError):
            ColumnDef("x", "blob")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema.of("a:int", "A:int")

    def test_empty_schema_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema([])

    def test_index_lookup_case_insensitive(self):
        schema = TableSchema.of("L_OrderKey:int")
        assert schema.index_of("l_orderkey") == 0

    def test_missing_column_raises(self):
        with pytest.raises(CatalogError):
            TableSchema.of("a:int").index_of("b")

    def test_parse_row_types(self):
        schema = TableSchema.of("a:int", "b:float", "c:str")
        assert schema.parse_row(["1", "2.5", "x"]) == (1, 2.5, "x")

    def test_parse_row_empty_is_null(self):
        schema = TableSchema.of("a:int", "b:str")
        assert schema.parse_row(["", ""]) == (None, None)

    def test_parse_row_width_mismatch(self):
        with pytest.raises(CatalogError):
            TableSchema.of("a:int").parse_row(["1", "2"])

    def test_project(self):
        schema = TableSchema.of("a:int", "b:float", "c:str")
        projected = schema.project(["c", "a"])
        assert projected.names == ("c", "a")


class TestCsvCodec:
    def test_format_value(self):
        assert format_value(None) == ""
        assert format_value(42) == "42"
        assert format_value(2.0) == "2.0"
        assert format_value("x") == "x"

    def test_encode_row_quotes_delimiters(self):
        assert encode_row(["a,b"]) == b'"a,b"\n'
        assert encode_row(['say "hi"']) == b'"say ""hi"""\n'

    def test_iter_records_simple(self):
        records = list(iter_records(b"a,b\nc,d\n"))
        assert records == [["a", "b"], ["c", "d"]]

    def test_iter_records_missing_trailing_newline(self):
        assert list(iter_records(b"a,b\nc,d")) == [["a", "b"], ["c", "d"]]

    def test_iter_records_quoted_newline(self):
        records = list(iter_records(b'"x\ny",z\n'))
        assert records == [["x\ny", "z"]]

    def test_encode_table_extents_are_exact(self):
        data, extents = encode_table([(1, "a"), (2, "bb")])
        for ext, expected in zip(extents, [(1, "a"), (2, "bb")]):
            piece = data[ext.first_byte : ext.last_byte + 1]
            assert list(iter_records(piece)) == [[str(expected[0]), expected[1]]]

    def test_extents_cover_object_exactly(self):
        rows = [(i, f"v{i}") for i in range(20)]
        data, extents = encode_table(rows)
        assert extents[0].first_byte == 0
        assert extents[-1].last_byte == len(data) - 1
        for prev, cur in zip(extents, extents[1:]):
            assert cur.first_byte == prev.last_byte + 1

    def test_offsets_iteration_matches_extents(self):
        rows = [(i, "x" * (i % 5)) for i in range(10)]
        data, extents = encode_table(rows)
        offsets = list(iter_records_with_offsets(data))
        assert len(offsets) == len(extents)
        for (first, last, _), ext in zip(offsets, extents):
            assert first == ext.first_byte
            # iter_records_with_offsets reports the newline-exclusive end
            assert last <= ext.last_byte

    def test_decode_table_roundtrip(self):
        schema = TableSchema.of("a:int", "b:float", "c:str")
        rows = [(1, 2.5, "x,y"), (None, None, None)]
        data, _ = encode_table(rows)
        assert decode_table(data, schema, has_header=False) == rows


_VALUE = st.one_of(
    st.none(),
    st.integers(-10**9, 10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\r"),
        min_size=1,
        max_size=20,
    ),
)


@given(st.lists(st.tuples(_VALUE, _VALUE, _VALUE), min_size=1, max_size=30))
def test_property_csv_roundtrip(rows):
    """encode -> decode preserves every value (via the typed schema).

    Strings that *look* like numbers or are empty are excluded from the
    equality check for str columns, since CSV is untyped on the wire.
    """
    def type_of(i):
        column = [r[i] for r in rows if r[i] is not None]
        if not column:
            return "str"
        if all(isinstance(v, int) for v in column):
            return "int"
        if all(isinstance(v, (int, float)) for v in column):
            return "float"
        if all(isinstance(v, str) for v in column):
            return "str"
        return None

    types = [type_of(i) for i in range(3)]
    if None in types:
        return  # mixed-type column: not a valid table
    schema = TableSchema.of(*[f"c{i}:{t}" for i, t in enumerate(types)])
    normalized = []
    for row in rows:
        out = []
        for value, t in zip(row, types):
            if t == "float" and value is not None:
                value = float(value)
            if t == "str" and value == "":
                value = None  # empty string encodes as NULL
            out.append(value)
        normalized.append(tuple(out))
    data, _ = encode_table(normalized)
    assert decode_table(data, schema, has_header=False) == normalized


#: Raw field text exercising every quoting trigger: the field delimiter,
#: the record delimiter, CR, and the quote character itself.
_FIELD = st.text(
    alphabet=st.one_of(
        st.sampled_from([",", "\n", "\r", '"', "x", " "]),
        st.characters(blacklist_categories=("Cs",)),
    ),
    max_size=12,
)


@given(st.lists(_FIELD, min_size=1, max_size=6))
def test_property_escape_roundtrip_single_record(fields):
    """encode_row -> iter_records is the identity on raw string fields.

    Fields embedding the field delimiter, the record delimiter, CR, or
    quotes must be quoted by the encoder and re-assembled intact by the
    quote-aware splitter — a field containing ``,`` or ``\\n`` must never
    split the record or spill into the next one.
    """
    payload = encode_row(fields)
    records = list(iter_records(payload))
    assert records == [list(fields)]


@given(st.lists(st.lists(_FIELD, min_size=2, max_size=4), min_size=1, max_size=8))
def test_property_escape_roundtrip_table(rows):
    """Multi-record round trip: record boundaries survive embedded delimiters."""
    # Ragged rows are fine at the codec level; only the splitter is under test.
    data = b"".join(encode_row(r) for r in rows)
    assert list(iter_records(data)) == [list(r) for r in rows]
    # The offset-reporting splitter must agree and produce adjacent,
    # non-overlapping extents covering the object.
    offsets = list(iter_records_with_offsets(data))
    assert [rec for _, _, rec in offsets] == [list(r) for r in rows]
    position = 0
    for first, last, _ in offsets:
        assert first == position
        assert last >= first
        position = last + 1
    assert position == len(data)


class TestObjectStore:
    def test_put_get(self):
        store = ObjectStore()
        store.create_bucket("b")
        store.put_object("b", "k", b"hello")
        assert store.get_bytes("b", "k") == b"hello"

    def test_get_range_inclusive(self):
        store = ObjectStore()
        store.create_bucket("b")
        store.put_object("b", "k", b"0123456789")
        assert store.get_range("b", "k", 2, 5) == b"2345"

    def test_get_range_end_truncated(self):
        store = ObjectStore()
        store.create_bucket("b")
        store.put_object("b", "k", b"abc")
        assert store.get_range("b", "k", 1, 100) == b"bc"

    def test_get_range_start_beyond_end_raises(self):
        store = ObjectStore()
        store.create_bucket("b")
        store.put_object("b", "k", b"abc")
        with pytest.raises(InvalidRangeError):
            store.get_range("b", "k", 5, 9)
        with pytest.raises(InvalidRangeError):
            store.get_range("b", "k", 2, 1)

    def test_missing_bucket_and_key(self):
        store = ObjectStore()
        with pytest.raises(NoSuchBucketError):
            store.get_bytes("nope", "k")
        store.create_bucket("b")
        with pytest.raises(NoSuchKeyError):
            store.get_bytes("b", "nope")

    def test_create_bucket_idempotent(self):
        store = ObjectStore()
        store.create_bucket("b")
        store.put_object("b", "k", b"x")
        store.create_bucket("b")  # must not wipe contents
        assert store.get_bytes("b", "k") == b"x"

    def test_list_keys_sorted_with_prefix(self):
        store = ObjectStore()
        store.create_bucket("b")
        for key in ("t/2", "t/1", "u/1"):
            store.put_object("b", key, b"")
        assert store.list_keys("b", prefix="t/") == ["t/1", "t/2"]

    def test_delete_idempotent(self):
        store = ObjectStore()
        store.create_bucket("b")
        store.put_object("b", "k", b"x")
        store.delete_object("b", "k")
        store.delete_object("b", "k")
        assert not store.object_exists("b", "k")

    def test_total_bytes(self):
        store = ObjectStore()
        store.create_bucket("b")
        store.put_object("b", "a", b"xx")
        store.put_object("b", "c", b"yyy")
        assert store.total_bytes("b") == 5

    def test_non_bytes_payload_rejected(self):
        store = ObjectStore()
        store.create_bucket("b")
        with pytest.raises(TypeError):
            store.put_object("b", "k", "not-bytes")
