"""Tests for the local query-node operators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import PlanError
from repro.engine.operators.filter import filter_rows
from repro.engine.operators.groupby import group_by_aggregate
from repro.engine.operators.hashjoin import hash_join
from repro.engine.operators.limit import limit_rows
from repro.engine.operators.project import project, project_columns
from repro.engine.operators.sort import SortKey, sort_rows
from repro.engine.operators.topk import top_k
from repro.queries.common import items
from repro.sqlparser import ast
from repro.sqlparser.parser import parse_expression

NAMES = ["k", "v", "tag"]
ROWS = [
    (3, 30.0, "c"),
    (1, 10.0, "a"),
    (2, 20.0, "b"),
    (2, 25.0, "b"),
]


class TestProjectAndFilter:
    def test_project_columns(self):
        out = project_columns(ROWS, NAMES, ["tag", "k"])
        assert out.rows[0] == ("c", 3)
        assert out.column_names == ["tag", "k"]

    def test_project_expressions(self):
        out = project(ROWS, NAMES, items("k * 10 AS k10", "v"))
        assert out.column_names == ["k10", "v"]
        assert out.rows[0] == (30, 30.0)

    def test_project_star_expands(self):
        out = project(ROWS, NAMES, [ast.SelectItem(expr=ast.Star())])
        assert out.column_names == NAMES
        assert out.rows == ROWS

    def test_filter(self):
        out = filter_rows(ROWS, NAMES, parse_expression("k = 2"))
        assert len(out.rows) == 2

    def test_filter_none_predicate_passes_all(self):
        assert filter_rows(ROWS, NAMES, None).rows == ROWS

    def test_cpu_estimates_nonzero(self):
        assert filter_rows(ROWS, NAMES, parse_expression("k = 1")).cpu_seconds > 0


class TestHashJoin:
    BUILD = [(1, "x"), (2, "y")]
    PROBE = [(10, 1), (20, 1), (30, 2), (40, 9)]

    def test_inner_join(self):
        out = hash_join(self.BUILD, ["id", "name"], self.PROBE, ["amt", "fk"], "id", "fk")
        assert out.column_names == ["id", "name", "amt", "fk"]
        assert sorted(out.rows) == [
            (1, "x", 10, 1), (1, "x", 20, 1), (2, "y", 30, 2),
        ]

    def test_duplicate_build_keys_multiply(self):
        out = hash_join(
            [(1, "a"), (1, "b")], ["id", "name"],
            [(5, 1)], ["amt", "fk"], "id", "fk",
        )
        assert len(out.rows) == 2

    def test_null_keys_never_match(self):
        out = hash_join(
            [(None, "a")], ["id", "name"], [(5, None)], ["amt", "fk"], "id", "fk"
        )
        assert out.rows == []

    def test_name_collision_rejected(self):
        with pytest.raises(PlanError):
            hash_join([(1,)], ["k"], [(1,)], ["k"], "k", "k")

    def test_missing_key_rejected(self):
        with pytest.raises(PlanError):
            hash_join([(1,)], ["a"], [(1,)], ["b"], "nope", "b")


class TestGroupBy:
    def test_single_group_column(self):
        out = group_by_aggregate(
            ROWS, NAMES, [ast.Column("k")], items("SUM(v) AS total", "COUNT(*) AS n")
        )
        as_dict = {r[0]: (r[1], r[2]) for r in out.rows}
        assert as_dict == {3: (30.0, 1), 1: (10.0, 1), 2: (45.0, 2)}

    def test_empty_group_list_is_global_aggregate(self):
        out = group_by_aggregate(ROWS, NAMES, (), items("SUM(v) AS t"))
        assert out.rows == [(85.0,)]

    def test_compound_aggregate_item(self):
        out = group_by_aggregate(
            ROWS, NAMES, [ast.Column("tag")], items("SUM(v) / COUNT(v) AS avg_v")
        )
        as_dict = dict(out.rows)
        assert as_dict["b"] == 22.5

    def test_group_expression(self):
        out = group_by_aggregate(
            ROWS, NAMES, [parse_expression("k % 2")], items("COUNT(*) AS n")
        )
        assert dict(out.rows) == {1: 2, 0: 2}

    def test_output_names(self):
        out = group_by_aggregate(
            ROWS, NAMES, [ast.Column("k")], items("SUM(v) AS total")
        )
        assert out.column_names == ["k", "total"]


class TestSortAndTopK:
    def test_sort_ascending(self):
        out = sort_rows(ROWS, NAMES, [ast.OrderItem(expr=ast.Column("k"))])
        assert [r[0] for r in out.rows] == [1, 2, 2, 3]

    def test_sort_mixed_directions(self):
        order = [
            ast.OrderItem(expr=ast.Column("k"), descending=True),
            ast.OrderItem(expr=ast.Column("v")),
        ]
        out = sort_rows(ROWS, NAMES, order)
        assert [(r[0], r[1]) for r in out.rows] == [
            (3, 30.0), (2, 20.0), (2, 25.0), (1, 10.0),
        ]

    def test_sort_nulls_first_ascending(self):
        rows = [(2,), (None,), (1,)]
        out = sort_rows(rows, ["x"], [ast.OrderItem(expr=ast.Column("x"))])
        assert [r[0] for r in out.rows] == [None, 1, 2]

    def test_sort_nulls_last_descending(self):
        rows = [(2,), (None,), (1,)]
        out = sort_rows(
            rows, ["x"], [ast.OrderItem(expr=ast.Column("x"), descending=True)]
        )
        assert [r[0] for r in out.rows] == [2, 1, None]

    def test_sortkey_equality(self):
        assert SortKey(1, False) == SortKey(1, True)
        assert SortKey(1, False) < SortKey(2, False)
        assert SortKey(2, True) < SortKey(1, True)

    def test_top_k_matches_sort_prefix(self):
        order = [ast.OrderItem(expr=ast.Column("v"))]
        full = sort_rows(ROWS, NAMES, order).rows
        assert top_k(ROWS, NAMES, order, 2).rows == full[:2]

    def test_top_k_beyond_size(self):
        order = [ast.OrderItem(expr=ast.Column("v"))]
        assert len(top_k(ROWS, NAMES, order, 99).rows) == len(ROWS)

    def test_top_k_negative_rejected(self):
        with pytest.raises(ValueError):
            top_k(ROWS, NAMES, [ast.OrderItem(expr=ast.Column("v"))], -1)

    def test_limit(self):
        assert limit_rows(ROWS, NAMES, 2).rows == ROWS[:2]
        assert limit_rows(ROWS, NAMES, None).rows == ROWS
        with pytest.raises(ValueError):
            limit_rows(ROWS, NAMES, -1)


@given(
    st.lists(
        st.tuples(st.integers(-100, 100), st.floats(-1e3, 1e3)),
        max_size=80,
    ),
    st.integers(0, 20),
    st.booleans(),
)
def test_property_topk_equals_sorted_prefix(rows, k, descending):
    """Heap top-K over random data == sort-then-take-K."""
    names = ["a", "b"]
    order = [ast.OrderItem(expr=ast.Column("b"), descending=descending)]
    expected = sort_rows(rows, names, order).rows[:k]
    got = top_k(rows, names, order, k).rows
    # Ties may reorder equal keys; compare the key sequence.
    assert [r[1] for r in got] == [r[1] for r in expected]


@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(-1000, 1000)), max_size=80
    )
)
def test_property_groupby_matches_naive(rows):
    """Hash group-by equals a dict-based reference implementation."""
    names = ["g", "v"]
    out = group_by_aggregate(
        rows, names, [ast.Column("g")], items("SUM(v) AS s", "COUNT(*) AS n")
    )
    reference: dict[int, list] = {}
    for g, v in rows:
        entry = reference.setdefault(g, [0, 0])
        entry[0] += v
        entry[1] += 1
    assert {r[0]: (r[1], r[2]) for r in out.rows} == {
        g: tuple(e) for g, e in reference.items()
    }
