"""Unit tests for the SQL tokenizer."""

import pytest

from repro.common.errors import SQLSyntaxError
from repro.sqlparser.lexer import Token, TokenType, tokenize


def kinds(sql):
    return [(t.type, t.value) for t in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_are_uppercased(self):
        assert kinds("select") == [(TokenType.KEYWORD, "SELECT")]
        assert kinds("SeLeCt") == [(TokenType.KEYWORD, "SELECT")]

    def test_identifiers_keep_case(self):
        assert kinds("l_orderkey") == [(TokenType.IDENT, "l_orderkey")]
        assert kinds("S3Object") == [(TokenType.IDENT, "S3Object")]

    def test_eof_token_is_appended(self):
        tokens = tokenize("x")
        assert tokens[-1].type is TokenType.EOF

    def test_integer_and_float_literals(self):
        assert kinds("42") == [(TokenType.NUMBER, "42")]
        assert kinds("3.14") == [(TokenType.NUMBER, "3.14")]
        assert kinds(".5") == [(TokenType.NUMBER, ".5")]
        assert kinds("1e6") == [(TokenType.NUMBER, "1e6")]
        assert kinds("2.5E-3") == [(TokenType.NUMBER, "2.5E-3")]

    def test_number_followed_by_dot_access_not_confused(self):
        # "1e" alone is ident-ish garbage; make sure plain ints stop cleanly.
        assert kinds("1 e") == [(TokenType.NUMBER, "1"), (TokenType.IDENT, "e")]

    def test_string_literals(self):
        assert kinds("'hello'") == [(TokenType.STRING, "hello")]
        assert kinds("''") == [(TokenType.STRING, "")]

    def test_string_with_escaped_quote(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_operators(self):
        ops = [v for _, v in kinds("a <= b <> c != d || e % f")]
        assert "<=" in ops and "<>" in ops and "!=" in ops
        assert "||" in ops and "%" in ops

    def test_longest_operator_wins(self):
        assert kinds("<=")[0] == (TokenType.OPERATOR, "<=")
        assert kinds("<")[0] == (TokenType.OPERATOR, "<")

    def test_punctuation(self):
        values = [v for _, v in kinds("f(a, b.c)")]
        assert values == ["f", "(", "a", ",", "b", ".", "c", ")"]

    def test_unknown_character_raises_with_position(self):
        with pytest.raises(SQLSyntaxError) as err:
            tokenize("a @ b")
        assert err.value.position == 2

    def test_line_comments_skipped(self):
        assert kinds("a -- comment\n b") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_positions_recorded(self):
        tokens = tokenize("ab  cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 4

    def test_is_keyword_helper(self):
        token = Token(TokenType.KEYWORD, "SELECT", 0)
        assert token.is_keyword("SELECT")
        assert not token.is_keyword("FROM")


class TestRealQueries:
    def test_bloom_query_tokenizes(self):
        sql = (
            "SELECT * FROM S3Object WHERE "
            "SUBSTRING('100011', ((69 * CAST(attr as INT) + 92) % 97) % 68 + 1, 1) = '1'"
        )
        tokens = tokenize(sql)
        assert tokens[-1].type is TokenType.EOF
        assert any(t.value == "SUBSTRING" for t in tokens)

    def test_case_expression_tokenizes(self):
        sql = "SELECT sum(CASE WHEN g = 0 THEN v ELSE 0 END) FROM S3Object"
        values = [t.value for t in tokenize(sql)]
        for keyword in ("CASE", "WHEN", "THEN", "ELSE", "END"):
            assert keyword in values
