"""Tests for aggregate accumulators and aggregate-expression splitting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import UnsupportedFeatureError
from repro.expr.aggregates import (
    Accumulator,
    CompiledAggregate,
    split_aggregate_expr,
)
from repro.sqlparser import ast
from repro.sqlparser.parser import parse_expression


class TestAccumulator:
    def test_sum(self):
        acc = Accumulator("SUM")
        for v in (1, 2, 3):
            acc.add(v)
        assert acc.result() == 6

    def test_count(self):
        acc = Accumulator("COUNT")
        for v in (1, None, 3):
            acc.add(v)
        assert acc.result() == 2  # SQL COUNT skips NULLs

    def test_avg(self):
        acc = Accumulator("AVG")
        for v in (2, 4):
            acc.add(v)
        assert acc.result() == 3

    def test_min_max(self):
        lo, hi = Accumulator("MIN"), Accumulator("MAX")
        for v in (5, -1, 3):
            lo.add(v)
            hi.add(v)
        assert lo.result() == -1
        assert hi.result() == 5

    def test_empty_sum_is_null_count_is_zero(self):
        assert Accumulator("SUM").result() is None
        assert Accumulator("AVG").result() is None
        assert Accumulator("MIN").result() is None
        assert Accumulator("COUNT").result() == 0

    def test_distinct(self):
        acc = Accumulator("COUNT", distinct=True)
        for v in (1, 1, 2, 2, 3):
            acc.add(v)
        assert acc.result() == 3

    def test_distinct_sum(self):
        acc = Accumulator("SUM", distinct=True)
        for v in (2, 2, 3):
            acc.add(v)
        assert acc.result() == 5

    def test_merge_partials(self):
        a, b = Accumulator("SUM"), Accumulator("SUM")
        a.add(1)
        b.add(2)
        a.merge(b)
        assert a.result() == 3

    def test_merge_min_max(self):
        a, b = Accumulator("MIN"), Accumulator("MIN")
        a.add(5)
        b.add(2)
        a.merge(b)
        assert a.result() == 2

    def test_merge_mismatched_funcs_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            Accumulator("SUM").merge(Accumulator("MIN"))

    def test_merge_distinct_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            Accumulator("SUM", distinct=True).merge(Accumulator("SUM"))

    def test_unknown_func_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            Accumulator("MEDIAN")


class TestCompiledAggregate:
    def test_count_star_counts_rows(self):
        agg = CompiledAggregate(
            ast.Aggregate("COUNT", ast.Star()), {"x": 0}
        )
        acc = agg.new_accumulator()
        for row in ((None,), (1,), (2,)):
            acc.add(agg.input_value(row))
        assert acc.result() == 3  # COUNT(*) counts NULL rows too

    def test_sum_of_expression(self):
        agg = CompiledAggregate(
            parse_expression("SUM(a * 2)"), {"a": 0}
        )
        acc = agg.new_accumulator()
        for row in ((1,), (2,)):
            acc.add(agg.input_value(row))
        assert acc.result() == 6

    def test_non_count_star_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            CompiledAggregate(ast.Aggregate("SUM", ast.Star()), {})


class TestSplitAggregateExpr:
    def test_bare_aggregate_has_no_finisher(self):
        aggs, finisher = split_aggregate_expr(parse_expression("SUM(a)"))
        assert len(aggs) == 1 and finisher is None

    def test_arithmetic_over_aggregates(self):
        aggs, finisher = split_aggregate_expr(
            parse_expression("100 * SUM(a) / SUM(b)")
        )
        assert len(aggs) == 2
        assert finisher([10.0, 4.0]) == 250.0

    def test_sum_over_count_is_manual_avg(self):
        aggs, finisher = split_aggregate_expr(parse_expression("SUM(a) / COUNT(a)"))
        assert [a.func for a in aggs] == ["SUM", "COUNT"]
        assert finisher([6, 3]) == 2

    def test_non_aggregate_expression_yields_nothing(self):
        aggs, finisher = split_aggregate_expr(parse_expression("a + 1"))
        assert aggs == [] and finisher is None


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
def test_property_avg_equals_sum_over_count(values):
    s, c, a = Accumulator("SUM"), Accumulator("COUNT"), Accumulator("AVG")
    for v in values:
        s.add(v)
        c.add(v)
        a.add(v)
    assert a.result() == pytest.approx(s.result() / c.result())


@given(
    st.lists(st.integers(-1000, 1000), min_size=1, max_size=60),
    st.integers(1, 5),
)
def test_property_merged_partials_equal_global(values, parts):
    """Partition-wise accumulation + merge equals one global pass."""
    for func in ("SUM", "COUNT", "MIN", "MAX"):
        whole = Accumulator(func)
        for v in values:
            whole.add(v)
        partials = [Accumulator(func) for _ in range(parts)]
        for i, v in enumerate(values):
            partials[i % parts].add(v)
        merged = partials[0]
        for p in partials[1:]:
            merged.merge(p)
        assert merged.result() == whole.result()
