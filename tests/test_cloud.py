"""Tests for metering, pricing, the performance model, and calibration."""

import pytest

from repro.cloud.client import S3Client
from repro.cloud.context import CloudContext
from repro.cloud.metrics import Phase, RequestKind, RequestRecord, StreamWork
from repro.cloud.perf import PAPER_PERF, PerfModel
from repro.cloud.pricing import (
    PAPER_PRICING,
    CostBreakdown,
    cost_of_query,
    cost_of_requests,
    scaled_pricing,
)
from repro.common.units import GB
from repro.storage.csvcodec import encode_table
from repro.storage.object_store import ObjectStore


def make_client():
    store = ObjectStore()
    store.create_bucket("b")
    data, _ = encode_table([(i, i * 1.5) for i in range(100)])
    store.put_object(
        "b", "t.csv", data,
        metadata={"format": "csv", "schema": ["k:int", "v:float"], "header": False},
    )
    return S3Client(store), len(data)


class TestClientMetering:
    def test_get_object_metered(self):
        client, size = make_client()
        client.get_object("b", "t.csv")
        (record,) = client.metrics.records
        assert record.kind is RequestKind.GET
        assert record.bytes_transferred == size
        assert record.bytes_scanned == 0

    def test_range_get_metered_with_weight(self):
        client, _ = make_client()
        client.range_request_weight = 250.0
        client.get_object_range("b", "t.csv", 0, 9)
        (record,) = client.metrics.records
        assert record.bytes_transferred == 10
        assert record.weight == 250.0

    def test_select_metered(self):
        client, size = make_client()
        result = client.select_object_content(
            "b", "t.csv", "SELECT k FROM S3Object WHERE k < 10"
        )
        (record,) = client.metrics.records
        assert record.kind is RequestKind.SELECT
        assert record.bytes_scanned == size
        assert record.bytes_returned == len(result.payload)

    def test_marks_isolate_queries(self):
        client, _ = make_client()
        client.get_object("b", "t.csv")
        mark = client.metrics.mark()
        client.get_object("b", "t.csv")
        assert len(client.metrics.records_since(mark)) == 1


class TestPricing:
    def test_paper_unit_prices(self):
        assert PAPER_PRICING.select_scan_per_gb == 0.002
        assert PAPER_PRICING.select_return_per_gb == 0.0007
        assert PAPER_PRICING.get_per_1000_requests == 0.0004
        assert PAPER_PRICING.ec2_per_hour == 2.128

    def test_scan_cost_of_10gb(self):
        """The paper's canonical number: scanning 10 GB costs $0.02."""
        record = RequestRecord(RequestKind.SELECT, "b", "k", bytes_scanned=10 * GB)
        assert cost_of_requests([record]).scan == pytest.approx(0.02)

    def test_return_cost(self):
        record = RequestRecord(RequestKind.SELECT, "b", "k", bytes_returned=GB)
        assert cost_of_requests([record]).transfer == pytest.approx(0.0007)

    def test_request_cost_uses_weight(self):
        records = [
            RequestRecord(RequestKind.GET, "b", "k", weight=500.0),
            RequestRecord(RequestKind.GET, "b", "k", weight=500.0),
        ]
        assert cost_of_requests(records).request == pytest.approx(0.0004)

    def test_in_region_plain_transfer_free(self):
        record = RequestRecord(RequestKind.GET, "b", "k", bytes_transferred=GB)
        assert cost_of_requests([record]).transfer == 0.0

    def test_compute_cost_one_hour(self):
        cost = cost_of_query([], runtime_seconds=3600.0)
        assert cost.compute == pytest.approx(2.128)

    def test_breakdown_total_and_add(self):
        a = CostBreakdown(compute=1, request=2, scan=3, transfer=4)
        assert a.total == 10
        assert (a + a).total == 20
        assert a.scaled(0.5).total == 5

    def test_scaled_pricing_divides_per_gb_only(self):
        scaled = scaled_pricing(PAPER_PRICING, 0.001)
        assert scaled.select_scan_per_gb == pytest.approx(2.0)
        assert scaled.get_per_1000_requests == PAPER_PRICING.get_per_1000_requests
        assert scaled.ec2_per_hour == PAPER_PRICING.ec2_per_hour

    def test_scaled_pricing_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scaled_pricing(PAPER_PRICING, 0)


def select_phase(scan_bytes, returned=0, streams=4, records=0, fields=0):
    stream_list = [
        StreamWork(
            requests=1,
            select_scan_bytes=scan_bytes // streams,
            select_returned_bytes=returned // streams,
        )
        for _ in range(streams)
    ]
    return Phase(
        "p", stream_list, server_records=records, server_fields=fields
    )


class TestPerfModel:
    def test_empty_phase_is_free(self):
        assert PAPER_PERF.phase_time(Phase("idle", [])) == 0.0

    def test_scan_time_scales_with_bytes(self):
        fast = PAPER_PERF.phase_time(select_phase(16 * 60_000_000))
        slow = PAPER_PERF.phase_time(select_phase(32 * 60_000_000))
        assert slow > fast

    def test_parallel_streams_reduce_time(self):
        few = PAPER_PERF.phase_time(select_phase(GB, streams=2))
        many = PAPER_PERF.phase_time(select_phase(GB, streams=16))
        assert many < few

    def test_ingest_charged_per_record_and_field(self):
        base = PAPER_PERF.phase_time(select_phase(GB, records=0, fields=0))
        heavy = PAPER_PERF.phase_time(
            select_phase(GB, records=60_000_000, fields=960_000_000)
        )
        assert heavy > base

    def test_dispatch_free_for_one_request_per_stream(self):
        phase = select_phase(1000, streams=16)
        assert phase.requests == len(phase.streams)
        # With scan time negligible, time is just latency.
        assert PAPER_PERF.phase_time(phase) == pytest.approx(
            PAPER_PERF.request_latency, abs=1e-4
        )

    def test_dispatch_charged_for_request_floods(self):
        flood = Phase.from_records(
            "fetch",
            [RequestRecord(RequestKind.GET, "b", "k", weight=10_000)] * 6,
            streams=2,
        )
        # 60,000 weighted requests beyond 2 streams at 6,000/s ~ 10s.
        assert PAPER_PERF.phase_time(flood) == pytest.approx(10.0, rel=0.01)

    def test_runtime_sums_phases(self):
        p = select_phase(GB)
        assert PAPER_PERF.runtime([p, p]) == pytest.approx(
            2 * PAPER_PERF.phase_time(p)
        )

    def test_term_evals_slow_streams(self):
        plain = select_phase(GB)
        heavy = select_phase(GB)
        for s in heavy.streams:
            s.term_evals = 50_000_000
        assert PAPER_PERF.phase_time(heavy) > PAPER_PERF.phase_time(plain)

    def test_scaled_model_consistency(self):
        """Scaling data AND rates by the same factor keeps time invariant."""
        small = PAPER_PERF.scaled(0.001)
        big_phase = select_phase(GB, records=1_000_000, fields=8_000_000)
        small_phase = select_phase(
            int(GB * 0.001), records=1_000, fields=8_000
        )
        assert small.phase_time(small_phase) == pytest.approx(
            PAPER_PERF.phase_time(big_phase), rel=1e-6
        )

    def test_scaled_keeps_dispatch_rate(self):
        assert PAPER_PERF.scaled(0.01).request_dispatch_rate == (
            PAPER_PERF.request_dispatch_rate
        )

    def test_server_cpu_factor_inverts_scale(self):
        assert PAPER_PERF.scaled(0.01).server_cpu_factor == pytest.approx(100.0)


class TestCalibration:
    def test_calibrate_sets_scale_weight_and_pricing(self):
        ctx = CloudContext()
        scale = ctx.calibrate_to_paper_scale(10_000_000, 10 * GB)
        assert scale == pytest.approx(0.001)
        assert ctx.client.range_request_weight == pytest.approx(1000.0)
        assert ctx.pricing.select_scan_per_gb == pytest.approx(2.0)
        assert ctx.perf.select_scan_rate_per_stream == pytest.approx(
            PAPER_PERF.select_scan_rate_per_stream * 0.001
        )

    def test_calibrate_rejects_bad_input(self):
        ctx = CloudContext()
        with pytest.raises(ValueError):
            ctx.calibrate_to_paper_scale(0, 10 * GB)

    def test_finalize_prices_records_since_mark(self):
        ctx = CloudContext()
        ctx.store.create_bucket("b")
        data, _ = encode_table([(1,)])
        ctx.store.put_object(
            "b", "k", data,
            metadata={"format": "csv", "schema": ["a:int"], "header": False},
        )
        ctx.client.get_object("b", "k")  # before the query
        mark = ctx.begin_query()
        ctx.client.get_object("b", "k")
        execution = ctx.finalize(mark, [], [], [Phase("p", [StreamWork(requests=1)])])
        assert execution.num_requests == 1
        assert execution.runtime_seconds > 0
