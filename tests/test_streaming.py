"""Tests for the streaming RecordBatch pipeline and concurrent scans.

Covers the PR-1 refactor end to end:

* ScanRange boundary semantics (range ending on a record boundary,
  range swallowing the header, range past EOF);
* LIMIT early-termination accounting (fewer rows parsed, identical
  bytes billed);
* lazy batch iterators agreeing with the materializing codecs;
* streaming operator variants agreeing with the materialized ones,
  including charged CPU;
* ``select_table`` column-name handling over empty partitions;
* ``workers > 1`` vs ``workers = 1`` producing identical rows, bytes
  and cost — differentially on every TPC-H query;
* thread-safety of the metrics collector.
"""

from __future__ import annotations

import threading

import pytest

from repro.cloud.context import CloudContext
from repro.cloud.metrics import MetricsCollector, Phase, RequestKind, RequestRecord
from repro.cloud.perf import PAPER_PERF
from repro.common.errors import ReproError
from repro.engine.catalog import Catalog, load_table
from repro.engine.operators.base import BatchCounter, CpuTally, batches_of, materialize
from repro.engine.operators.filter import filter_batches, filter_rows
from repro.engine.operators.groupby import group_by_aggregate, group_by_batches
from repro.engine.operators.hashjoin import hash_join, hash_join_batches
from repro.engine.operators.limit import limit_batches
from repro.engine.operators.project import project, project_batches, projected_names
from repro.engine.operators.sort import sort_batches, sort_rows
from repro.engine.operators.topk import top_k, top_k_batches
from repro.queries.dataset import load_tpch
from repro.queries.tpch_queries import TPCH_QUERIES
from repro.s3select.engine import ScanRange, execute_select
from repro.sqlparser import ast
from repro.sqlparser.parser import parse, parse_expression
from repro.storage.csvcodec import (
    decode_table,
    encode_table,
    iter_decode_batches,
)
from repro.storage.object_store import StoredObject
from repro.storage.parquet import ParquetFile, write_parquet
from repro.storage.schema import TableSchema
from repro.strategies.scans import scan_partitions, select_aggregate, select_table

SCHEMA = TableSchema.of("k:int", "v:float")
SPEC = ["k:int", "v:float"]


def _csv_object(rows, header=False):
    data, _ = encode_table(rows, header=list(SCHEMA.names) if header else None)
    return StoredObject(
        data, {"format": "csv", "schema": SPEC, "header": header}
    )


ROWS = [(i, float(i) * 1.5) for i in range(20)]


# ----------------------------------------------------------------------
# ScanRange edges
# ----------------------------------------------------------------------

class TestScanRangeEdges:
    def test_range_ending_exactly_on_record_boundary_keeps_record(self):
        """End lands on a record's final content byte, delimiter just
        outside: the record is complete and must not be dropped."""
        obj = _csv_object(ROWS)
        lines = obj.data.split(b"\n")
        # End of the third record's content (newline is at index end).
        end = len(lines[0]) + len(lines[1]) + len(lines[2]) + 2
        assert obj.data[end : end + 1] == b"\n"
        result = execute_select(
            obj, "SELECT k FROM S3Object", scan_range=ScanRange(0, end)
        )
        assert [r[0] for r in result.rows] == [0, 1, 2]

    def test_range_ending_after_newline_keeps_record(self):
        obj = _csv_object(ROWS)
        first = obj.data.index(b"\n") + 1
        result = execute_select(
            obj, "SELECT k FROM S3Object", scan_range=ScanRange(0, first)
        )
        assert [r[0] for r in result.rows] == [0]

    def test_range_cutting_mid_record_drops_partial(self):
        obj = _csv_object(ROWS)
        first = obj.data.index(b"\n") + 1
        # Stop two bytes into the second record: genuinely partial.
        result = execute_select(
            obj, "SELECT k FROM S3Object", scan_range=ScanRange(0, first + 2)
        )
        assert [r[0] for r in result.rows] == [0]
        assert result.bytes_scanned == first + 2

    def test_range_swallowing_header_skips_it(self):
        obj = _csv_object(ROWS, header=True)
        result = execute_select(
            obj, "SELECT k FROM S3Object",
            scan_range=ScanRange(0, len(obj.data) // 2),
        )
        assert result.rows
        assert result.rows[0] == (0,)  # header row not parsed as data

    def test_range_past_eof_clamps_billing(self):
        obj = _csv_object(ROWS)
        result = execute_select(
            obj, "SELECT k FROM S3Object",
            scan_range=ScanRange(0, len(obj.data) + 10_000),
        )
        assert [r[0] for r in result.rows] == [r[0] for r in ROWS]
        assert result.bytes_scanned == len(obj.data)


# ----------------------------------------------------------------------
# LIMIT early termination
# ----------------------------------------------------------------------

class TestLimitEarlyTermination:
    def test_limit_stops_parsing_but_bills_full_object(self):
        rows = [(i, float(i)) for i in range(50_000)]
        obj = _csv_object(rows)
        limited = execute_select(obj, "SELECT k FROM S3Object LIMIT 3")
        assert limited.rows == [(0,), (1,), (2,)]
        assert limited.rows_scanned < len(rows)
        # Billing is for the scanned range, not the parsed prefix.
        assert limited.bytes_scanned == len(obj.data)

    def test_limit_larger_than_table_scans_everything(self):
        obj = _csv_object(ROWS)
        result = execute_select(obj, "SELECT k FROM S3Object LIMIT 10000")
        assert result.rows_scanned == len(ROWS)
        assert len(result.rows) == len(ROWS)

    def test_full_scan_accounting_unchanged(self):
        obj = _csv_object(ROWS)
        result = execute_select(obj, "SELECT k FROM S3Object WHERE k >= 5")
        assert result.rows_scanned == len(ROWS)
        assert result.term_evals == len(ROWS)
        assert result.bytes_scanned == len(obj.data)


# ----------------------------------------------------------------------
# batch iterators vs materializing codecs
# ----------------------------------------------------------------------

class TestBatchIterators:
    def test_csv_batches_concatenate_to_decode_table(self):
        data, _ = encode_table(ROWS)
        whole = decode_table(data, SCHEMA, has_header=False)
        for batch_size in (1, 3, 7, 1000):
            batches = list(
                iter_decode_batches(data, SCHEMA, batch_size, has_header=False)
            )
            assert [r for b in batches for r in b] == whole
            assert all(len(b) <= batch_size for b in batches)

    def test_parquet_batches_concatenate_to_read_rows(self):
        rows = [(i, float(i)) for i in range(100)]
        pq = ParquetFile(write_parquet(rows, SCHEMA, row_group_rows=13))
        whole = pq.read_rows()
        assert whole == rows
        assert [r for b in pq.iter_batches() for r in b] == rows
        for batch_size in (4, 13, 50, 500):
            batches = list(pq.iter_batches(batch_size=batch_size))
            assert [r for b in batches for r in b] == rows
            assert all(len(b) <= batch_size for b in batches)

    def test_parquet_batches_project_columns(self):
        rows = [(i, float(i)) for i in range(30)]
        pq = ParquetFile(write_parquet(rows, SCHEMA, row_group_rows=7))
        assert [r for b in pq.iter_batches(names=["v"]) for r in b] == [
            (float(i),) for i in range(30)
        ]

    def test_empty_input_yields_no_batches(self):
        data, _ = encode_table([])
        assert list(iter_decode_batches(data, SCHEMA, has_header=False)) == []


# ----------------------------------------------------------------------
# streaming operators vs materialized operators
# ----------------------------------------------------------------------

NAMES = ["k", "v"]
OP_ROWS = [(i % 7, float(i)) for i in range(100)]


def _stream(batch_size=9):
    return batches_of(iter(OP_ROWS), batch_size)


class TestStreamingOperators:
    def test_filter_batches_matches_filter_rows(self):
        pred = parse_expression("k >= 3")
        tally = CpuTally()
        got = materialize(filter_batches(_stream(), NAMES, pred, tally))
        want = filter_rows(OP_ROWS, NAMES, pred)
        assert got == want.rows
        assert tally.seconds == pytest.approx(want.cpu_seconds)

    def test_project_batches_matches_project(self):
        items = parse("SELECT v, k * 2 FROM S3Object").select_items
        tally = CpuTally()
        got = materialize(project_batches(_stream(), NAMES, items, tally))
        want = project(OP_ROWS, NAMES, items)
        assert got == want.rows
        assert projected_names(NAMES, items) == want.column_names
        assert tally.seconds == pytest.approx(want.cpu_seconds)

    def test_group_by_batches_matches_group_by_aggregate(self):
        q = parse("SELECT k, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY k")
        agg_items = [i for i in q.select_items if ast.contains_aggregate(i.expr)]
        got = group_by_batches(_stream(), NAMES, q.group_by, agg_items)
        want = group_by_aggregate(OP_ROWS, NAMES, q.group_by, agg_items)
        assert got.rows == want.rows
        assert got.column_names == want.column_names
        assert got.cpu_seconds == pytest.approx(want.cpu_seconds)

    def test_sort_and_topk_batches_match(self):
        order = parse("SELECT k FROM t ORDER BY v DESC").order_by
        assert sort_batches(_stream(), NAMES, order).rows == (
            sort_rows(OP_ROWS, NAMES, order).rows
        )
        for k in (0, 5, 100, 1000):
            got = top_k_batches(_stream(), NAMES, order, k)
            want = top_k(OP_ROWS, NAMES, order, k)
            assert got.rows == want.rows
            assert got.cpu_seconds == pytest.approx(want.cpu_seconds)

    def test_topk_batches_tie_stability(self):
        rows = [(1, float(i % 2)) for i in range(40)]
        order = parse("SELECT k FROM t ORDER BY v").order_by
        got = top_k_batches(batches_of(iter(rows), 6), NAMES, order, 10)
        assert got.rows == top_k(rows, NAMES, order, 10).rows

    def test_hash_join_batches_matches_hash_join(self):
        build = [(i, f"n{i}") for i in range(10)]
        probe = [(i % 13, float(i)) for i in range(60)]
        tally = CpuTally()
        names, joined = hash_join_batches(
            build, ["id", "name"], batches_of(iter(probe), 7), ["fk", "x"],
            "id", "fk", tally,
        )
        got = materialize(joined)
        want = hash_join(build, ["id", "name"], probe, ["fk", "x"], "id", "fk")
        assert got == want.rows
        assert names == want.column_names
        assert tally.seconds == pytest.approx(want.cpu_seconds)

    def test_limit_batches_stops_pulling_upstream(self):
        pulled = []

        def source():
            for i, batch in enumerate(batches_of(iter(OP_ROWS), 10)):
                pulled.append(i)
                yield batch

        out = materialize(limit_batches(source(), 25))
        assert out == OP_ROWS[:25]
        assert pulled == [0, 1, 2]  # 3 batches of 10, not all 10 batches

    def test_batch_counter_counts_consumed_rows(self):
        counter = BatchCounter(batches_of(iter(OP_ROWS), 8))
        materialize(limit_batches(counter, 20))
        assert counter.rows == 24  # three 8-row batches pulled


# ----------------------------------------------------------------------
# select_table / select_aggregate column names over empty partitions
# ----------------------------------------------------------------------

class TestPartitionScanNames:
    def _ctx_with_table(self, rows, partitions):
        ctx = CloudContext()
        catalog = Catalog()
        info = load_table(
            ctx, catalog, "t", rows, SCHEMA, bucket="b", partitions=partitions
        )
        return ctx, info

    def test_names_survive_empty_final_partition(self):
        # 3 rows over 3 partitions, then an empty fourth partition object.
        ctx, info = self._ctx_with_table([(1, 1.0), (2, 2.0), (3, 3.0)], 3)
        ctx.store.put_object(
            "b", "t/part-9999.csv", b"",
            metadata={"format": "csv", "schema": SPEC, "header": False},
        )
        info.keys.append("t/part-9999.csv")
        rows, names = select_table(ctx, info, "SELECT k, v FROM S3Object")
        assert rows == [(1, 1.0), (2, 2.0), (3, 3.0)]
        assert names == ["k", "v"]

    def test_names_present_for_empty_table(self):
        ctx, info = self._ctx_with_table([], 4)
        rows, names = select_table(ctx, info, "SELECT k FROM S3Object")
        assert rows == []
        assert names == ["k"]

    def test_aggregate_names_from_first_partition(self):
        ctx, info = self._ctx_with_table([(i, float(i)) for i in range(8)], 4)
        partials, names = select_aggregate(
            ctx, info, "SELECT SUM(v) AS s FROM S3Object"
        )
        assert names == ["s"]
        assert len(partials) == 4

    def test_inconsistent_partition_columns_rejected(self):
        ctx, info = self._ctx_with_table([(1, 1.0), (2, 2.0)], 2)
        # Corrupt one partition's schema metadata so its response differs.
        obj = ctx.store.get_object("b", info.keys[1])
        ctx.store.put_object(
            "b", info.keys[1], obj.data,
            metadata={"format": "csv", "schema": ["q:int", "w:float"],
                      "header": False},
        )
        with pytest.raises(ReproError):
            select_table(ctx, info, "SELECT * FROM S3Object")


# ----------------------------------------------------------------------
# concurrent scans: identical results and accounting
# ----------------------------------------------------------------------

class TestConcurrentScans:
    def _table(self, ctx):
        catalog = Catalog()
        rows = [(i, float(i) * 0.5) for i in range(500)]
        return load_table(
            ctx, catalog, "t", rows, SCHEMA, bucket="b", partitions=16
        )

    def test_scan_partitions_ordered_and_complete(self):
        ctx = CloudContext()
        info = self._table(ctx)
        serial = list(scan_partitions(ctx, info, "SELECT k FROM S3Object"))
        pooled = list(
            scan_partitions(ctx, info, "SELECT k FROM S3Object", workers=8)
        )
        assert [s.index for s in pooled] == [s.index for s in serial]
        assert [s.rows for s in pooled] == [s.rows for s in serial]

    def test_unordered_scan_covers_every_partition(self):
        ctx = CloudContext()
        info = self._table(ctx)
        scans = list(
            scan_partitions(
                ctx, info, "SELECT k FROM S3Object", workers=8, ordered=False
            )
        )
        assert sorted(s.index for s in scans) == list(range(16))

    def test_get_and_select_identical_across_worker_counts(self):
        baseline = None
        for workers in (1, 4):
            ctx = CloudContext(workers=workers)
            info = self._table(ctx)
            mark = ctx.metrics.mark()
            rows, names = select_table(
                ctx, info, "SELECT k, v FROM S3Object WHERE k < 100"
            )
            records = ctx.metrics.records_since(mark)
            summary = (
                rows, names, len(records),
                sum(r.bytes_scanned for r in records),
                sum(r.bytes_returned for r in records),
            )
            if baseline is None:
                baseline = summary
            else:
                assert summary == baseline


@pytest.fixture(scope="module")
def tpch_envs():
    """The same TPC-H dataset loaded into a serial and a concurrent context."""
    envs = {}
    for workers in (1, 4):
        ctx = CloudContext(workers=workers)
        catalog = Catalog()
        load_tpch(ctx, catalog, 0.002, seed=11)
        envs[workers] = (ctx, catalog)
    return envs


class TestTpchWorkersDifferential:
    """Every TPC-H query must be byte-for-byte independent of ``workers``."""

    @pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
    @pytest.mark.parametrize("variant", ["baseline", "optimized"])
    def test_rows_bytes_cost_identical(self, name, variant, tpch_envs):
        outcomes = {}
        for workers, (ctx, catalog) in tpch_envs.items():
            query_fn = getattr(TPCH_QUERIES[name], variant)
            outcomes[workers] = query_fn(ctx, catalog)
        a, b = outcomes[1], outcomes[4]
        assert a.rows == b.rows
        assert a.column_names == b.column_names
        assert a.bytes_scanned == b.bytes_scanned
        assert a.bytes_returned == b.bytes_returned
        assert a.bytes_transferred == b.bytes_transferred
        assert a.num_requests == b.num_requests
        assert a.runtime_seconds == pytest.approx(b.runtime_seconds)
        assert a.cost.total == pytest.approx(b.cost.total)


# ----------------------------------------------------------------------
# metrics thread safety & Phase.workers modeling
# ----------------------------------------------------------------------

class TestMetricsConcurrency:
    def test_concurrent_recording_loses_nothing(self):
        metrics = MetricsCollector()
        per_thread, threads = 500, 8

        def hammer():
            for _ in range(per_thread):
                metrics.record(
                    RequestRecord(kind=RequestKind.GET, bucket="b", key="k",
                                  bytes_transferred=1)
                )

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert metrics.num_requests == per_thread * threads
        assert metrics.bytes_transferred == per_thread * threads

    def test_phase_workers_bounds_modeled_overlap(self):
        records = [
            RequestRecord(kind=RequestKind.SELECT, bucket="b", key=f"k{i}",
                          bytes_scanned=60_000_000)
            for i in range(8)
        ]
        unbounded = Phase.from_records("scan", records)
        bounded = Phase.from_records("scan", records, workers=2)
        t_unbounded = PAPER_PERF.phase_time(unbounded)
        t_bounded = PAPER_PERF.phase_time(bounded)
        # 8 one-second streams: fully overlapped ~1s, two lanes ~4s.
        assert t_bounded > t_unbounded
        assert t_bounded == pytest.approx(4 * (t_unbounded - PAPER_PERF.request_latency)
                                          + PAPER_PERF.request_latency)
