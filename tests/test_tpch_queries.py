"""Integration tests: TPC-H Q1/Q3/Q6/Q14/Q17/Q19 + Figure 10 micro queries.

The load-bearing assertion everywhere: the optimized (pushdown) variant
must return the same answer as the baseline that computes everything on
the query node.
"""

import pytest

from helpers import assert_rows_close
from repro.queries.micro import MICRO_QUERIES
from repro.queries.tpch_queries import TPCH_QUERIES


@pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
def test_tpch_query_variants_agree(tpch_env, name):
    ctx, catalog = tpch_env
    variants = TPCH_QUERIES[name]
    baseline = variants.baseline(ctx, catalog)
    optimized = variants.optimized(ctx, catalog)
    assert_rows_close(baseline.rows, optimized.rows, rel=1e-6)
    assert baseline.rows, f"{name} baseline returned no rows"


@pytest.mark.parametrize("name", sorted(MICRO_QUERIES))
def test_micro_query_variants_agree(tpch_env, name):
    ctx, catalog = tpch_env
    variants = MICRO_QUERIES[name]
    baseline = variants.baseline(ctx, catalog)
    optimized = variants.optimized(ctx, catalog)
    assert_rows_close(baseline.rows, optimized.rows, rel=1e-6)


class TestQueryShapes:
    def test_q1_returns_flag_status_groups(self, tpch_env):
        ctx, catalog = tpch_env
        result = TPCH_QUERIES["q1"].optimized(ctx, catalog)
        assert result.column_names[:2] == ["l_returnflag", "l_linestatus"]
        keys = [(r[0], r[1]) for r in result.rows]
        assert keys == sorted(keys)  # ORDER BY l_returnflag, l_linestatus
        assert {k[0] for k in keys} <= {"A", "N", "R"}

    def test_q1_count_adds_up(self, tpch_env):
        ctx, catalog = tpch_env
        result = TPCH_QUERIES["q1"].baseline(ctx, catalog)
        count_idx = result.column_names.index("count_order")
        lineitem = catalog.get("lineitem")
        assert sum(r[count_idx] for r in result.rows) <= lineitem.num_rows

    def test_q3_top10_sorted_by_revenue(self, tpch_env):
        ctx, catalog = tpch_env
        result = TPCH_QUERIES["q3"].optimized(ctx, catalog)
        assert len(result.rows) <= 10
        revenue_idx = result.column_names.index("revenue")
        revenues = [r[revenue_idx] for r in result.rows]
        assert revenues == sorted(revenues, reverse=True)

    def test_q6_single_value(self, tpch_env):
        ctx, catalog = tpch_env
        result = TPCH_QUERIES["q6"].optimized(ctx, catalog)
        assert len(result.rows) == 1
        assert result.rows[0][0] is None or result.rows[0][0] > 0

    def test_q14_percentage_in_range(self, tpch_env):
        ctx, catalog = tpch_env
        result = TPCH_QUERIES["q14"].optimized(ctx, catalog)
        (value,) = result.rows[0]
        assert 0.0 <= value <= 100.0

    def test_optimized_moves_less_data(self, tpch_env):
        """Every optimized variant must move (return + transfer) less data
        to the query node than its baseline — that is the paper's thesis."""
        ctx, catalog = tpch_env
        for name, variants in TPCH_QUERIES.items():
            baseline = variants.baseline(ctx, catalog)
            optimized = variants.optimized(ctx, catalog)
            moved_baseline = baseline.bytes_returned + baseline.bytes_transferred
            moved_optimized = optimized.bytes_returned + optimized.bytes_transferred
            assert moved_optimized < moved_baseline, name

    def test_baseline_never_uses_select(self, tpch_env):
        ctx, catalog = tpch_env
        for name, variants in TPCH_QUERIES.items():
            baseline = variants.baseline(ctx, catalog)
            assert baseline.bytes_scanned == 0, f"{name} baseline used S3 Select"
