"""Tests for the common utilities (units, RNG derivation, errors)."""

import pytest

from repro.common.errors import (
    ExpressionLimitExceededError,
    NoSuchBucketError,
    NoSuchKeyError,
    ReproError,
    SQLSyntaxError,
)
from repro.common.rng import DEFAULT_SEED, derive_seed, np_rng, py_rng
from repro.common.units import (
    GB,
    MB,
    bytes_to_gb,
    human_bytes,
    human_dollars,
    human_seconds,
)


class TestUnits:
    def test_decimal_not_binary(self):
        assert GB == 10**9
        assert MB == 10**6

    def test_bytes_to_gb(self):
        assert bytes_to_gb(2 * GB) == pytest.approx(2.0)

    def test_human_bytes(self):
        assert human_bytes(0) == "0 B"
        assert human_bytes(999) == "999 B"
        assert human_bytes(1500) == "1.50 KB"
        assert human_bytes(2.5 * GB) == "2.50 GB"

    def test_human_seconds(self):
        assert human_seconds(0.25) == "250 ms"
        assert human_seconds(12.3456) == "12.35 s"
        assert human_seconds(600) == "10.0 min"
        with pytest.raises(ValueError):
            human_seconds(-1)

    def test_human_dollars(self):
        assert human_dollars(0.05) == "$0.0500"
        assert human_dollars(0.000123) == "$0.000123"


class TestRng:
    def test_default_seeds_deterministic(self):
        assert py_rng().random() == py_rng().random()
        assert np_rng().random() == np_rng().random()

    def test_explicit_seed_differs_from_default(self):
        assert py_rng(1).random() != py_rng(DEFAULT_SEED).random()

    def test_derive_seed_stable_and_label_sensitive(self):
        a = derive_seed(42, "tpch", "customer")
        assert a == derive_seed(42, "tpch", "customer")
        assert a != derive_seed(42, "tpch", "orders")
        assert a != derive_seed(43, "tpch", "customer")

    def test_derived_seed_in_range(self):
        assert 0 <= derive_seed(0, "x") < 2**63


class TestErrors:
    def test_hierarchy(self):
        for cls in (SQLSyntaxError, NoSuchBucketError, NoSuchKeyError,
                    ExpressionLimitExceededError):
            assert issubclass(cls, ReproError)

    def test_syntax_error_position_rendered(self):
        err = SQLSyntaxError("bad token", position=7)
        assert "position 7" in str(err)
        assert err.position == 7

    def test_expression_limit_carries_sizes(self):
        err = ExpressionLimitExceededError(300_000, 262_144)
        assert err.size == 300_000
        assert err.limit == 262_144
        assert "262144" in str(err)

    def test_bucket_key_errors_carry_names(self):
        assert NoSuchBucketError("b").bucket == "b"
        err = NoSuchKeyError("b", "k")
        assert (err.bucket, err.key) == ("b", "k")
