"""Tests for the Section X suggestion extensions."""

import pytest

from helpers import approx_rows, assert_rows_close
from repro.cloud.context import CloudContext
from repro.common.errors import UnsupportedFeatureError
from repro.engine.catalog import Catalog, load_table
from repro.s3select.engine import execute_select
from repro.sqlparser.parser import parse_expression
from repro.storage.csvcodec import encode_table
from repro.storage.object_store import StoredObject
from repro.strategies.extensions import (
    multirange_indexed_filter,
    partial_pushdown_group_by,
)
from repro.strategies.filter import FilterQuery, indexed_filter
from repro.strategies.groupby import (
    AggSpec,
    GroupByQuery,
    filtered_group_by,
    s3_side_group_by,
)
from repro.workloads.synthetic import (
    FILTER_SCHEMA,
    filter_table,
    groupby_schema,
    uniform_groupby_table,
)


@pytest.fixture(scope="module")
def env():
    ctx, catalog = CloudContext(), Catalog()
    load_table(
        ctx, catalog, "fdata", filter_table(3000, seed=2), FILTER_SCHEMA,
        bucket="ext", partitions=4, index_columns=["key"],
    )
    load_table(
        ctx, catalog, "gdata", uniform_groupby_table(3000, seed=2),
        groupby_schema(), bucket="ext", partitions=4,
    )
    return ctx, catalog


class TestEngineGroupByExtension:
    def _obj(self):
        data, _ = encode_table([(1, 10.0), (1, 20.0), (2, 5.0), (None, 7.0)])
        return StoredObject(
            data, {"format": "csv", "schema": ["g:int", "v:float"], "header": False}
        )

    def test_rejected_without_flag(self):
        with pytest.raises(UnsupportedFeatureError):
            execute_select(self._obj(), "SELECT g, SUM(v) FROM S3Object GROUP BY g")

    def test_grouped_aggregation(self):
        result = execute_select(
            self._obj(),
            "SELECT g, SUM(v), COUNT(*) FROM S3Object GROUP BY g",
            allow_group_by=True,
        )
        assert sorted(result.rows, key=repr) == sorted(
            [(1, 30.0, 2), (2, 5.0, 1), (None, 7.0, 1)], key=repr
        )

    def test_non_group_scalar_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            execute_select(
                self._obj(),
                "SELECT v, SUM(v) FROM S3Object GROUP BY g",
                allow_group_by=True,
            )

    def test_where_applies_before_grouping(self):
        result = execute_select(
            self._obj(),
            "SELECT g, SUM(v) FROM S3Object WHERE v > 6 GROUP BY g",
            allow_group_by=True,
        )
        assert (2, 5.0) not in result.rows


class TestMultirangeIndexedFilter:
    def test_matches_single_range_strategy(self, env):
        ctx, catalog = env
        query = FilterQuery(table="fdata", predicate=parse_expression("key < 120"))
        single = indexed_filter(ctx, catalog, query)
        multi = multirange_indexed_filter(ctx, catalog, query)
        assert_rows_close(single.rows, multi.rows)

    def test_far_fewer_requests(self, env):
        ctx, catalog = env
        query = FilterQuery(table="fdata", predicate=parse_expression("key < 500"))
        single = indexed_filter(ctx, catalog, query)
        multi = multirange_indexed_filter(ctx, catalog, query)
        assert multi.num_requests < single.num_requests / 20

    def test_faster_and_cheaper_at_calibrated_scale(self):
        ctx, catalog = CloudContext(), Catalog()
        load_table(
            ctx, catalog, "fdata", filter_table(3000, seed=2), FILTER_SCHEMA,
            bucket="ext", partitions=4, index_columns=["key"],
        )
        ctx.calibrate_to_paper_scale(catalog.get("fdata").total_bytes, 10e9)
        ctx.client.range_request_weight = 60_000_000 / 3000
        query = FilterQuery(table="fdata", predicate=parse_expression("key < 300"))
        single = indexed_filter(ctx, catalog, query)
        multi = multirange_indexed_filter(ctx, catalog, query)
        assert multi.runtime_seconds < single.runtime_seconds / 5
        assert multi.cost.request < single.cost.request / 100


class TestPartialGroupByPushdown:
    def test_matches_existing_strategies(self, env):
        ctx, catalog = env
        query = GroupByQuery(
            table="gdata",
            group_columns=["g3"],
            aggregates=[AggSpec("sum", "v0"), AggSpec("count", "1", "n")],
        )
        reference = approx_rows(filtered_group_by(ctx, catalog, query).rows)
        pushed = approx_rows(partial_pushdown_group_by(ctx, catalog, query).rows)
        assert pushed == reference

    def test_avg_min_max_merge_correctly(self, env):
        ctx, catalog = env
        query = GroupByQuery(
            table="gdata",
            group_columns=["g1"],
            aggregates=[
                AggSpec("avg", "v0"), AggSpec("min", "v1"), AggSpec("max", "v2"),
            ],
        )
        reference = approx_rows(filtered_group_by(ctx, catalog, query).rows)
        pushed = approx_rows(partial_pushdown_group_by(ctx, catalog, query).rows)
        assert pushed == reference

    def test_single_scan_instead_of_two(self, env):
        ctx, catalog = env
        table = catalog.get("gdata")
        query = GroupByQuery(
            table="gdata", group_columns=["g2"],
            aggregates=[AggSpec("sum", "v0")],
        )
        case_encoded = s3_side_group_by(ctx, catalog, query)
        pushed = partial_pushdown_group_by(ctx, catalog, query)
        assert pushed.bytes_scanned == table.total_bytes
        assert case_encoded.bytes_scanned >= 2 * table.total_bytes

    def test_returns_only_partials(self, env):
        ctx, catalog = env
        query = GroupByQuery(
            table="gdata", group_columns=["g2"],
            aggregates=[AggSpec("sum", "v0")],
        )
        pushed = partial_pushdown_group_by(ctx, catalog, query)
        filtered = filtered_group_by(ctx, catalog, query)
        assert pushed.bytes_returned < filtered.bytes_returned / 20

    def test_predicate_supported(self, env):
        ctx, catalog = env
        query = GroupByQuery(
            table="gdata", group_columns=["g1"],
            aggregates=[AggSpec("count", "1", "n")],
            predicate=parse_expression("v0 < 250"),
        )
        reference = approx_rows(filtered_group_by(ctx, catalog, query).rows)
        assert approx_rows(
            partial_pushdown_group_by(ctx, catalog, query).rows
        ) == reference


class TestCompressedTransfer:
    """Section IX mitigation: compress the S3 Select response payload."""

    def _obj(self):
        rows = [(i, round(i * 1.5, 4)) for i in range(2000)]
        data, _ = encode_table(rows)
        return StoredObject(
            data, {"format": "csv", "schema": ["k:int", "v:float"], "header": False}
        )

    def test_rows_unchanged(self):
        sql = "SELECT * FROM S3Object WHERE k < 500"
        plain = execute_select(self._obj(), sql)
        compressed = execute_select(self._obj(), sql, compress_output=True)
        assert compressed.rows == plain.rows

    def test_payload_roundtrips(self):
        import zlib

        sql = "SELECT * FROM S3Object"
        plain = execute_select(self._obj(), sql)
        compressed = execute_select(self._obj(), sql, compress_output=True)
        assert zlib.decompress(compressed.payload) == plain.payload

    def test_returned_bytes_shrink(self):
        sql = "SELECT * FROM S3Object"
        plain = execute_select(self._obj(), sql)
        compressed = execute_select(self._obj(), sql, compress_output=True)
        assert compressed.bytes_returned < plain.bytes_returned * 0.7
        assert compressed.bytes_scanned == plain.bytes_scanned  # scan unchanged

    def test_metered_through_client(self, env):
        ctx, catalog = env
        table = catalog.get("gdata")
        mark = ctx.metrics.mark()
        ctx.client.select_object_content(
            table.bucket, table.keys[0], "SELECT * FROM S3Object",
            compress_output=True,
        )
        (record,) = ctx.metrics.records_since(mark)
        plain = execute_select(
            ctx.store.get_object(table.bucket, table.keys[0]),
            "SELECT * FROM S3Object",
        )
        assert record.bytes_returned < plain.bytes_returned
