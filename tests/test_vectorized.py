"""Vectorized-vs-row-wise equivalence tests.

The vectorized compiler in :mod:`repro.expr.vector` and the columnar
operator paths must be observationally identical to the row-wise
originals: same values, same value *types*, same NULL handling, same
modeled CPU charges.  These tests pin that contract with randomized
data (NULLs, non-ASCII strings, empty batches, batch_size=1).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.context import CloudContext, set_default_pipeline
from repro.common.errors import CatalogError
from repro.engine.batch import Batch
from repro.engine.operators.base import CpuTally, batches_of, materialize
from repro.engine.operators.filter import filter_batches
from repro.engine.operators.groupby import group_by_aggregate, group_by_batches
from repro.engine.operators.hashjoin import hash_join, hash_join_batches
from repro.engine.operators.limit import limit_batches
from repro.engine.operators.project import project, project_batches
from repro.engine.operators.topk import top_k, top_k_batches
from repro.expr.compiler import compile_expr, compile_predicate
from repro.expr.vector import compile_expr_vector, compile_predicate_vector
from repro.queries.common import items
from repro.sqlparser import ast
from repro.sqlparser.parser import parse_expression
from repro.storage.csvcodec import (
    encode_table,
    iter_decode_batches,
    iter_decode_column_batches,
)
from repro.storage.schema import TableSchema

# Columns: a int, b int, f float, s str, d date-ish str.
SCHEMA = {"a": 0, "b": 1, "f": 2, "s": 3, "d": 4}

texts = st.one_of(
    st.none(), st.sampled_from(["", "a", "abc", "ü", "日本", "a%b", "A_c"])
)
dates = st.one_of(
    st.none(), st.sampled_from(["1995-01-01", "1996-06-15", "1997-12-31"])
)
rows_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(-50, 50)),
        st.one_of(st.none(), st.integers(-5, 5)),
        st.one_of(st.none(), st.floats(-100, 100).map(lambda v: round(v, 3))),
        texts,
        dates,
    ),
    max_size=30,
)

#: One expression per vectorized kernel, plus the row-fallback shapes
#: (CASE, COALESCE, function calls) and the const-folded thunks.
EXPRESSIONS = [
    "a + b", "a - b", "a * b", "a % b", "a / b", "f * 2.5", "-a",
    "a = b", "a <> b", "a < b", "a <= 5", "5 <= a", "a > b", "a >= b",
    "f < 10.0", "s = 'abc'", "'abc' = s", "s < 'b'", "d >= '1996-01-01'",
    "s || '!'", "s || s",
    "a IN (1, 2, 3)", "a NOT IN (1, 2, 3)", "a IN (1, NULL)",
    "s IN ('a', 'abc')", "a IN (b, 3)",
    "a BETWEEN -2 AND 2", "a NOT BETWEEN 0 AND 10", "f BETWEEN a AND b",
    "s LIKE 'a%'", "s LIKE '_b%'", "s NOT LIKE '%c'", "s LIKE s",
    "s IS NULL", "s IS NOT NULL", "a IS NULL",
    "NOT a = 1", "a = 1 AND b = 1", "a = 1 OR b = 1",
    "a < 0 AND s IS NOT NULL", "a IS NULL OR f > 0.0",
    "CAST(a AS float)", "CAST(f AS int)", "CAST(a AS string)",
    "CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' ELSE 'zero' END",
    "COALESCE(a, b, 0)", "UPPER(s)",
    "1 + 2 * 3", "NULL", "'const'", "a < NULL", "NULL AND a = 1",
]


def assert_same_values(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g == w or (g is None and w is None), f"{g!r} != {w!r}"
        assert type(g) is type(w), f"{type(g)} != {type(w)} for {g!r}"


class TestExpressionKernels:
    @pytest.mark.parametrize("sql", EXPRESSIONS)
    @settings(max_examples=30, deadline=None)
    @given(rows=rows_strategy)
    def test_vector_matches_row_compiler(self, sql, rows):
        expr = parse_expression(sql)
        row_fn = compile_expr(expr, SCHEMA)
        vec_fn = compile_expr_vector(expr, SCHEMA)
        batch = Batch.from_rows(rows, num_columns=5)
        try:
            want = [row_fn(row) for row in rows]
        except Exception as exc:  # e.g. % by zero — both paths must agree
            with pytest.raises(type(exc)):
                vec_fn(batch)
            return
        assert_same_values(vec_fn(batch), want)

    @pytest.mark.parametrize("sql", EXPRESSIONS)
    def test_empty_batch_yields_empty(self, sql):
        vec_fn = compile_expr_vector(parse_expression(sql), SCHEMA)
        assert vec_fn(Batch.from_rows([], num_columns=5)) == []

    @pytest.mark.parametrize(
        "sql", ["a = 1", "s LIKE 'a%'", "a IN (1, NULL)", "a = 1 OR b = 1"]
    )
    @settings(max_examples=20, deadline=None)
    @given(rows=rows_strategy)
    def test_predicate_mask_matches_row_predicate(self, sql, rows):
        expr = parse_expression(sql)
        pred = compile_predicate(expr, SCHEMA)
        mask_fn = compile_predicate_vector(expr, SCHEMA)
        mask = mask_fn(Batch.from_rows(rows, num_columns=5))
        assert mask == [pred(row) for row in rows]
        assert all(v is True or v is False for v in mask)

    @settings(max_examples=20, deadline=None)
    @given(rows=rows_strategy)
    def test_batch_size_one(self, rows):
        expr = parse_expression("a + b * 2")
        row_fn = compile_expr(expr, SCHEMA)
        vec_fn = compile_expr_vector(expr, SCHEMA)
        for row in rows:
            assert_same_values(
                vec_fn(Batch.from_rows([row])), [row_fn(row)]
            )

    def test_mixed_type_batch_falls_back_row_wise(self):
        # Row-wise OR short-circuits past the bad value; the vectorized
        # kernel sweeps every row, hits the type error, and must fall
        # back to row-wise evaluation to match.
        rows = [(1, 1, 1.0, "x", None), ("oops", 2, 2.0, "y", None)]
        expr = parse_expression("b = 2 OR a = 1")
        row_fn = compile_expr(expr, SCHEMA)
        vec_fn = compile_expr_vector(expr, SCHEMA)
        assert vec_fn(Batch.from_rows(rows)) == [row_fn(r) for r in rows]


NAMES = ["a", "b", "f", "s", "d"]
DATA = [
    (i % 7, i % 3, float(i) / 4 if i % 5 else None,
     ["x", "yy", None, "üz"][i % 4], f"199{i % 10}-01-01")
    for i in range(200)
]


def columnar_batches(rows, batch_size=32):
    return [Batch.from_rows(chunk) for chunk in batches_of(rows, batch_size)]


class TestOperatorParity:
    """Columnar and list batches through one operator: same rows, same CPU."""

    def test_filter(self):
        pred = parse_expression("a < 4 AND s IS NOT NULL")
        t_col, t_row = CpuTally(), CpuTally()
        got = materialize(
            filter_batches(columnar_batches(DATA), NAMES, pred, t_col)
        )
        want = materialize(
            filter_batches(batches_of(DATA, 32), NAMES, pred, t_row)
        )
        assert got == want
        assert t_col.seconds == t_row.seconds

    def test_project(self):
        sel = items("a + b AS ab", "UPPER(s) AS u", "f")
        t_col, t_row = CpuTally(), CpuTally()
        got = materialize(
            project_batches(columnar_batches(DATA), NAMES, sel, t_col)
        )
        want = materialize(
            project_batches(batches_of(DATA, 32), NAMES, sel, t_row)
        )
        assert got == want
        assert t_col.seconds == t_row.seconds

    def test_group_by(self):
        groups = [parse_expression("a")]
        aggs = items(
            "COUNT(*) AS n", "SUM(f) AS sf", "MIN(s) AS mn", "AVG(b) AS av"
        )
        got = group_by_batches(columnar_batches(DATA), NAMES, groups, aggs)
        want = group_by_aggregate(DATA, NAMES, groups, aggs)
        assert got.rows == want.rows  # includes float bit-identity
        assert got.column_names == want.column_names
        assert got.cpu_seconds == want.cpu_seconds

    def test_global_aggregate(self):
        aggs = items("COUNT(*) AS n", "SUM(a) AS sa")
        got = group_by_batches(columnar_batches(DATA), NAMES, [], aggs)
        want = group_by_aggregate(DATA, NAMES, [], aggs)
        assert got.rows == want.rows
        assert got.cpu_seconds == want.cpu_seconds

    def test_top_k_ties_keep_arrival_order(self):
        order = [
            ast.OrderItem(expr=ast.Column("b")),
            ast.OrderItem(expr=ast.Column("a"), descending=True),
        ]
        got = top_k_batches(columnar_batches(DATA), NAMES, order, 10)
        want = top_k(DATA, NAMES, order, 10)
        assert got.rows == want.rows
        assert got.cpu_seconds == want.cpu_seconds

    def test_hash_join(self):
        build = [(i, f"t{i}") for i in range(7)]
        names, joined = hash_join_batches(
            build, ["k", "tag"], columnar_batches(DATA), NAMES, "k", "a"
        )
        got = materialize(joined)
        want = hash_join(build, ["k", "tag"], DATA, NAMES, "k", "a")
        assert got == want.rows
        assert names == want.column_names

    def test_limit_slices_mid_batch_as_view(self):
        batches = columnar_batches(DATA, 32)
        out = list(limit_batches(iter(batches), 40))
        assert sum(len(b) for b in out) == 40
        assert out[0] is batches[0]  # whole first batch passes untouched
        # The mid-batch cut is a zero-copy slice view of batch #2.
        assert isinstance(out[1], Batch)
        assert out[1].column(0)[0] is batches[1].column(0)[0]


class TestColumnarDecode:
    SCHEMA = TableSchema.of("k:int", "v:float", "s:str", "d:date")
    ROWS = [(1, 1.5, "x", "1995-01-01"), (2, None, None, None), (None, -2.0, "üz", "1996-02-03")]

    def test_matches_row_wise_decoder(self):
        data, _ = encode_table(self.ROWS)
        for size in (1, 2, 100):
            got = [
                b.to_rows()
                for b in iter_decode_column_batches(
                    data, self.SCHEMA, batch_size=size, has_header=False
                )
            ]
            want = [
                list(b)
                for b in iter_decode_batches(
                    data, self.SCHEMA, batch_size=size, has_header=False
                )
            ]
            assert got == want

    def test_bad_field_count_raises_catalog_error(self):
        data, _ = encode_table(self.ROWS)
        lines = data.decode("utf-8").splitlines()
        lines[1] = "1,2.0"  # drop two fields
        bad = ("\n".join(lines) + "\n").encode("utf-8")
        with pytest.raises(CatalogError):
            list(
                iter_decode_column_batches(bad, self.SCHEMA, has_header=False)
            )

    def test_rejects_non_positive_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            list(iter_decode_column_batches(b"", self.SCHEMA, batch_size=0))


class TestKnobValidation:
    def test_context_rejects_non_positive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            CloudContext(workers=0)
        with pytest.raises(ValueError, match="workers"):
            CloudContext(workers=-2)

    def test_context_rejects_non_positive_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            CloudContext(batch_size=0)

    def test_process_defaults_reject_non_positive(self):
        with pytest.raises(ValueError, match="workers"):
            set_default_pipeline(workers=0)
        with pytest.raises(ValueError, match="batch_size"):
            set_default_pipeline(batch_size=-1)

    def test_pushdowndb_rejects_non_positive_workers(self):
        from repro.planner.database import PushdownDB

        with pytest.raises(ValueError, match="workers"):
            PushdownDB(workers=0)

    def test_cli_rejects_non_positive_knobs(self, capsys):
        from repro.cli import build_parser

        parser = build_parser()
        good = parser.parse_args(
            ["query", "SELECT 1", "--workers", "2", "--batch-size", "64"]
        )
        assert good.workers == 2 and good.batch_size == 64
        for bad in (["--workers", "0"], ["--batch-size", "-5"]):
            with pytest.raises(SystemExit):
                parser.parse_args(["query", "SELECT 1", *bad])
            assert "positive integer" in capsys.readouterr().err


class TestOperatorTimes:
    def test_execution_details_include_operator_times(self):
        from repro.planner.database import PushdownDB
        from repro.planner.physical import render_execution_report

        db = PushdownDB()
        db.load_table(
            "t", [(i, i % 5, float(i)) for i in range(100)],
            TableSchema.of("t_id:int", "t_g:int", "t_v:float"), partitions=2,
        )
        execution = db.execute(
            "SELECT t_g, SUM(t_v) AS sv FROM t WHERE t_id < 80"
            " GROUP BY t_g ORDER BY t_g"
        )
        times = execution.details["operator_times"]
        assert len(times) == len(execution.details["actuals"])
        root = times[0]
        assert root["seconds"] is not None and root["seconds"] >= 0.0
        for record in times:
            assert set(record) >= {
                "node", "depth", "seconds", "self_seconds", "rows",
                "rows_per_sec",
            }
            if record["seconds"] is not None:
                assert record["self_seconds"] <= record["seconds"] + 1e-9
        # The report gains time and throughput columns...
        report = render_execution_report(execution)
        assert "time" in report and "rows/s" in report
        # ...but the details dict never leaks into the explain() extras.
        assert "operator_times" not in execution.explain()
