"""Tests for the columnar RecordBatch container."""

from array import array

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.batch import Batch, batch_rows

ROWS = [
    (1, 10.5, "a", "1995-01-01"),
    (2, None, "ü", None),
    (None, -3.25, None, "1996-12-31"),
]


class TestConverters:
    def test_from_rows_to_rows_round_trip(self):
        batch = Batch.from_rows(ROWS)
        assert batch.to_rows() == ROWS
        assert len(batch) == 3
        assert list(batch) == ROWS

    def test_round_trip_preserves_value_types(self):
        values = Batch.from_rows(ROWS).to_rows()
        for got, want in zip(values, ROWS):
            for g, w in zip(got, want):
                assert type(g) is type(w)

    def test_from_rows_empty_needs_num_columns(self):
        with pytest.raises(ValueError, match="num_columns"):
            Batch.from_rows([])
        batch = Batch.from_rows([], num_columns=4)
        assert len(batch) == 0
        assert len(batch.columns) == 4
        assert batch.to_rows() == []

    def test_zero_column_batch(self):
        with pytest.raises(ValueError, match="explicit length"):
            Batch([])
        batch = Batch([], length=3)
        assert batch.to_rows() == [(), (), ()]
        assert list(batch.iter_rows()) == [(), (), ()]

    @given(
        st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers()),
                st.one_of(st.none(), st.floats(allow_nan=False)),
                st.one_of(st.none(), st.text()),
            ),
            min_size=1,
        )
    )
    def test_round_trip_property(self, rows):
        assert Batch.from_rows(rows).to_rows() == rows


class TestSequenceProtocol:
    def test_indexing_and_row(self):
        batch = Batch.from_rows(ROWS)
        assert batch[0] == ROWS[0]
        assert batch[-1] == ROWS[-1]
        assert batch.row(1) == ROWS[1]

    def test_column_is_shared_not_copied(self):
        batch = Batch.from_rows(ROWS)
        assert batch.column(2) is batch.columns[2]

    def test_full_range_slice_returns_self(self):
        batch = Batch.from_rows(ROWS)
        assert batch[:] is batch
        assert batch[0:3] is batch
        assert batch[0:99] is batch

    def test_partial_slice_is_a_view_sharing_values(self):
        batch = Batch.from_rows(ROWS)
        view = batch[1:3]
        assert len(view) == 2
        assert view.to_rows() == ROWS[1:3]
        # The string objects are shared, not rebuilt.
        assert view.column(2)[0] is batch.column(2)[1]

    def test_stepped_slice_rejected(self):
        with pytest.raises(ValueError, match="contiguous"):
            Batch.from_rows(ROWS)[::2]


class TestTransforms:
    def test_filter_keeps_only_true(self):
        batch = Batch.from_rows(ROWS)
        # SQL WHERE semantics: NULL and False both drop the row.
        out = batch.filter([True, None, False])
        assert out.to_rows() == [ROWS[0]]

    def test_filter_nothing_dropped_returns_self(self):
        batch = Batch.from_rows(ROWS)
        assert batch.filter([True, True, True]) is batch

    def test_take(self):
        batch = Batch.from_rows(ROWS)
        assert batch.take([2, 0]).to_rows() == [ROWS[2], ROWS[0]]
        assert batch.take([]).to_rows() == []

    def test_compact_packs_numeric_columns(self):
        batch = Batch.from_rows([(1, 1.5), (2, 2.5)]).compact()
        assert isinstance(batch.columns[0], array)
        assert batch.columns[0].typecode == "q"
        assert isinstance(batch.columns[1], array)
        assert batch.columns[1].typecode == "d"
        assert batch.to_rows() == [(1, 1.5), (2, 2.5)]

    def test_compact_leaves_nullable_and_mixed_columns(self):
        batch = Batch.from_rows([(1, "x", 1), (None, "y", 2.5)]).compact()
        assert isinstance(batch.columns[0], list)  # has NULL
        assert isinstance(batch.columns[1], list)  # strings
        assert isinstance(batch.columns[2], list)  # mixed int/float

    def test_compact_overflow_falls_back_to_list(self):
        batch = Batch.from_rows([(2**80,), (1,)]).compact()
        assert isinstance(batch.columns[0], list)
        assert batch.to_rows() == [(2**80,), (1,)]


class TestBatchRows:
    def test_columnar_and_list_currencies(self):
        assert list(batch_rows(Batch.from_rows(ROWS))) == ROWS
        assert batch_rows(ROWS) is ROWS
