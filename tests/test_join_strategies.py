"""Tests for baseline / filtered / Bloom joins (paper Section V)."""

import pytest

from helpers import assert_rows_close
from repro.common.errors import PlanError
from repro.queries.common import items
from repro.sqlparser.parser import parse_expression
from repro.strategies.join import (
    JoinQuery,
    baseline_join,
    bloom_join,
    filtered_join,
    membership_chunks,
)

ALL = [baseline_join, filtered_join, bloom_join]


def join_query(**overrides):
    base = dict(
        build_table="customer",
        probe_table="orders",
        build_key="c_custkey",
        probe_key="o_custkey",
        build_predicate=parse_expression("c_acctbal <= -900"),
        build_projection=["c_custkey", "c_acctbal"],
        probe_projection=["o_custkey", "o_totalprice", "o_orderdate"],
    )
    base.update(overrides)
    return JoinQuery(**base)


class TestAgreement:
    def test_all_strategies_same_rows(self, tpch_env):
        ctx, catalog = tpch_env
        query = join_query()
        results = [fn(ctx, catalog, query) for fn in ALL]
        assert len(results[0].rows) > 0, "fixture query should match something"
        assert_rows_close(results[0].rows, results[1].rows)
        assert_rows_close(results[0].rows, results[2].rows)

    def test_with_probe_predicate(self, tpch_env):
        ctx, catalog = tpch_env
        query = join_query(
            probe_predicate=parse_expression("o_orderdate < '1994-01-01'")
        )
        results = [fn(ctx, catalog, query) for fn in ALL]
        assert_rows_close(results[0].rows, results[1].rows)
        assert_rows_close(results[0].rows, results[2].rows)

    def test_aggregate_output(self, tpch_env):
        ctx, catalog = tpch_env
        query = join_query(output=items("SUM(o_totalprice) AS total"))
        values = [fn(ctx, catalog, query).rows[0][0] for fn in ALL]
        assert values[0] == pytest.approx(values[1])
        assert values[0] == pytest.approx(values[2])

    def test_empty_build_side(self, tpch_env):
        ctx, catalog = tpch_env
        query = join_query(build_predicate=parse_expression("c_acctbal < -99999"))
        for fn in ALL:
            assert fn(ctx, catalog, query).rows == []


class TestBloomBehaviour:
    def test_bloom_reduces_returned_bytes(self, tpch_env):
        ctx, catalog = tpch_env
        query = join_query(build_predicate=parse_expression("c_acctbal <= -950"))
        plain = filtered_join(ctx, catalog, query)
        bloomed = bloom_join(ctx, catalog, query)
        assert bloomed.bytes_returned < plain.bytes_returned

    def test_bloom_details_recorded(self, tpch_env):
        ctx, catalog = tpch_env
        execution = bloom_join(ctx, catalog, join_query(), fpr=0.01)
        details = execution.details
        assert details["requested_fpr"] == 0.01
        assert details["achieved_fpr"] == 0.01
        assert not details["degraded"]
        assert details["bloom_hashes"] == 7  # log2(1/0.01) rounded

    def test_lower_fpr_means_more_hashes(self, tpch_env):
        ctx, catalog = tpch_env
        strict = bloom_join(ctx, catalog, join_query(), fpr=0.0001)
        loose = bloom_join(ctx, catalog, join_query(), fpr=0.5)
        assert strict.details["bloom_hashes"] > loose.details["bloom_hashes"]
        assert strict.details["probe_rows_returned"] <= (
            loose.details["probe_rows_returned"]
        )

    def test_degraded_bloom_still_correct(self, tpch_env):
        """Force the 256 KB degradation path via a huge FPR... actually by
        making every customer a build key so no filter fits; the join must
        then fall back to a (serial) filtered join and stay correct."""
        ctx, catalog = tpch_env
        query = join_query(build_predicate=None)  # all customers
        reference = baseline_join(ctx, catalog, query)
        bloomed = bloom_join(ctx, catalog, query, fpr=1e-15)
        # At fpr=1e-15 with thousands of keys the rendered filter cannot
        # fit 256 KB at any fpr < 1 only if the key count is large enough;
        # accept either path but require correctness.
        assert_rows_close(reference.rows, bloomed.rows)

    def test_two_phases(self, tpch_env):
        ctx, catalog = tpch_env
        execution = bloom_join(ctx, catalog, join_query())
        assert [p.name for p in execution.phases] == ["build+bloom", "probe+join"]

    def test_non_integer_key_rejected(self, tpch_env):
        ctx, catalog = tpch_env
        query = join_query(build_key="c_name", probe_key="o_clerk")
        with pytest.raises(PlanError, match="integer join attribute"):
            bloom_join(ctx, catalog, query)


class TestMembershipChunking:
    """Degraded Bloom joins chunk the exact IN-list under the limit."""

    def test_chunks_partition_keys_and_fit_limit(self):
        keys = list(range(100))
        chunks = membership_chunks("o_custkey", keys, overhead_bytes=40,
                                   limit_bytes=140)
        assert chunks is not None and len(chunks) > 1
        rendered_keys = []
        for chunk in chunks:
            assert chunk.startswith("o_custkey IN (") and chunk.endswith(")")
            assert len(chunk.encode()) + 40 <= 140
            rendered_keys += [int(v) for v in chunk[14:-1].split(", ")]
        assert sorted(rendered_keys) == keys

    def test_duplicate_keys_deduplicated(self):
        chunks = membership_chunks("k", [7, 7, 7, 8], overhead_bytes=0,
                                   limit_bytes=1024)
        assert chunks == ["k IN (7, 8)"]

    def test_unfittable_single_key_returns_none(self):
        assert membership_chunks("k", [123456789], overhead_bytes=0,
                                 limit_bytes=10) is None

    def test_degraded_join_uses_chunked_scans_and_stays_correct(self, tpch_env):
        ctx, catalog = tpch_env
        query = join_query(build_predicate=parse_expression("c_acctbal <= 0"))
        reference = baseline_join(ctx, catalog, query)
        probe_partitions = catalog.get("orders").partitions
        mark = ctx.metrics.mark()
        # A limit too small for any Bloom filter but large enough for
        # IN-list chunks forces the chunked fallback.
        bloomed = bloom_join(
            ctx, catalog, query, expression_limit_bytes=130
        )
        assert bloomed.details["degraded"]
        chunks = bloomed.details["membership_chunks"]
        assert chunks > 1
        assert_rows_close(reference.rows, bloomed.rows)
        # Metrics must account every chunked request: build partitions +
        # one SELECT per chunk per probe partition.
        build_partitions = catalog.get("customer").partitions
        records = ctx.metrics.records_since(mark)
        assert len(records) == build_partitions + chunks * probe_partitions
        assert bloomed.num_requests == len(records)
        # Each chunk re-scans the probe table: billed scan bytes say so.
        probe_bytes = catalog.get("orders").total_bytes
        scanned_on_probe = sum(
            r.bytes_scanned for r in records if r.key.startswith("orders/")
        )
        assert scanned_on_probe == chunks * probe_bytes

    def test_too_many_chunks_falls_back_to_unfiltered(self, tpch_env):
        ctx, catalog = tpch_env
        query = join_query(build_predicate=None)  # every customer is a key
        reference = baseline_join(ctx, catalog, query)
        bloomed = bloom_join(ctx, catalog, query, expression_limit_bytes=120)
        assert bloomed.details["degraded"]
        assert bloomed.details["membership_chunks"] == 0
        assert_rows_close(reference.rows, bloomed.rows)


class TestAccountingShapes:
    def test_baseline_moves_both_tables(self, tpch_env):
        ctx, catalog = tpch_env
        total = (
            catalog.get("customer").total_bytes + catalog.get("orders").total_bytes
        )
        execution = baseline_join(ctx, catalog, join_query())
        assert execution.bytes_transferred == total

    def test_filtered_single_phase_baseline_style(self, tpch_env):
        ctx, catalog = tpch_env
        execution = filtered_join(ctx, catalog, join_query())
        assert len(execution.phases) == 1  # parallel scans, one phase
