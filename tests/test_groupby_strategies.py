"""Tests for the four group-by strategies (paper Section VI)."""

import pytest

from helpers import approx_rows
from repro.cloud.context import CloudContext
from repro.common.errors import PlanError
from repro.engine.catalog import Catalog, load_table
from repro.sqlparser.parser import parse_expression
from repro.strategies import groupby as gb
from repro.strategies.groupby import (
    AggSpec,
    GroupByQuery,
    filtered_group_by,
    hybrid_group_by,
    s3_side_group_by,
    server_side_group_by,
)
from repro.workloads.synthetic import (
    groupby_schema,
    skewed_groupby_table,
    uniform_groupby_table,
)

NUM_ROWS = 4_000


@pytest.fixture(scope="module")
def env():
    ctx, catalog = CloudContext(), Catalog()
    load_table(
        ctx, catalog, "uniform", uniform_groupby_table(NUM_ROWS, seed=5),
        groupby_schema(), bucket="gb", partitions=4,
    )
    load_table(
        ctx, catalog, "skewed", skewed_groupby_table(NUM_ROWS, theta=1.3, seed=5),
        groupby_schema(), bucket="gb", partitions=4,
    )
    return ctx, catalog


def base_query(table="uniform", group="g2", funcs=("sum",)):
    return GroupByQuery(
        table=table,
        group_columns=[group],
        aggregates=[AggSpec(f, "v0") for f in funcs],
    )


ALL = [server_side_group_by, filtered_group_by, s3_side_group_by, hybrid_group_by]


class TestAgreement:
    @pytest.mark.parametrize("group", ["g0", "g2", "g4"])
    def test_all_strategies_agree(self, env, group):
        ctx, catalog = env
        query = base_query(group=group)
        reference = None
        for fn in ALL:
            rows = approx_rows(fn(ctx, catalog, query).rows)
            if reference is None:
                reference = rows
            else:
                assert rows == reference, fn.__name__

    @pytest.mark.parametrize("funcs", [
        ("sum", "count"), ("min", "max"), ("avg",), ("sum", "avg", "count"),
    ])
    def test_aggregate_functions(self, env, funcs):
        ctx, catalog = env
        query = base_query(funcs=funcs)
        reference = approx_rows(server_side_group_by(ctx, catalog, query).rows)
        for fn in (filtered_group_by, s3_side_group_by, hybrid_group_by):
            assert approx_rows(fn(ctx, catalog, query).rows) == reference, fn.__name__

    def test_skewed_data_agreement(self, env):
        ctx, catalog = env
        query = base_query(table="skewed", group="g0", funcs=("sum", "count"))
        reference = approx_rows(filtered_group_by(ctx, catalog, query).rows)
        assert approx_rows(hybrid_group_by(ctx, catalog, query).rows) == reference

    def test_predicate_respected(self, env):
        ctx, catalog = env
        query = GroupByQuery(
            table="uniform",
            group_columns=["g1"],
            aggregates=[AggSpec("count", "1", "n")],
            predicate=parse_expression("v0 < 500"),
        )
        reference = approx_rows(server_side_group_by(ctx, catalog, query).rows)
        for fn in (filtered_group_by, s3_side_group_by):
            assert approx_rows(fn(ctx, catalog, query).rows) == reference

    def test_multi_column_groups(self, env):
        ctx, catalog = env
        query = GroupByQuery(
            table="uniform",
            group_columns=["g0", "g1"],
            aggregates=[AggSpec("sum", "v1")],
        )
        reference = approx_rows(server_side_group_by(ctx, catalog, query).rows)
        assert approx_rows(s3_side_group_by(ctx, catalog, query).rows) == reference

    def test_expression_aggregate(self, env):
        ctx, catalog = env
        query = GroupByQuery(
            table="uniform",
            group_columns=["g0"],
            aggregates=[AggSpec("sum", "v0 * (1 - v1 / 1000)", "weird")],
        )
        reference = approx_rows(server_side_group_by(ctx, catalog, query).rows, places=2)
        assert approx_rows(
            s3_side_group_by(ctx, catalog, query).rows, places=2
        ) == reference


class TestS3SideMechanics:
    def test_two_phases(self, env):
        ctx, catalog = env
        execution = s3_side_group_by(ctx, catalog, base_query())
        assert [p.name for p in execution.phases] == ["collect-groups", "s3-aggregate"]

    def test_chunking_under_tiny_budget(self, env, monkeypatch):
        """Even with a tiny SQL budget, chunked pushdown stays correct."""
        ctx, catalog = env
        monkeypatch.setattr(gb, "_SQL_BUDGET_BYTES", 600)
        query = base_query(group="g4", funcs=("sum", "count"))
        reference = approx_rows(server_side_group_by(ctx, catalog, query).rows)
        chunked = approx_rows(s3_side_group_by(ctx, catalog, query).rows)
        assert chunked == reference

    def test_returned_bytes_tiny(self, env):
        ctx, catalog = env
        table = catalog.get("uniform")
        filtered = filtered_group_by(ctx, catalog, base_query())
        pushed = s3_side_group_by(ctx, catalog, base_query())
        assert pushed.phases[1].select_returned_bytes < (
            filtered.bytes_returned / 10
        )
        assert pushed.bytes_scanned >= 2 * table.total_bytes  # two scans


class TestHybridMechanics:
    def test_single_group_column_required(self, env):
        ctx, catalog = env
        query = GroupByQuery(
            table="uniform", group_columns=["g0", "g1"],
            aggregates=[AggSpec("sum", "v0")],
        )
        with pytest.raises(PlanError):
            hybrid_group_by(ctx, catalog, query)

    def test_split_details_reported(self, env):
        ctx, catalog = env
        execution = hybrid_group_by(
            ctx, catalog, base_query(table="skewed", group="g0"), s3_groups=6
        )
        assert execution.details["large_groups"] == 6
        assert execution.details["s3_side_seconds"] > 0
        assert execution.details["server_side_seconds"] > 0

    def test_more_pushed_groups_fewer_tail_rows(self, env):
        ctx, catalog = env
        query = base_query(table="skewed", group="g0")
        small = hybrid_group_by(ctx, catalog, query, s3_groups=2)
        large = hybrid_group_by(ctx, catalog, query, s3_groups=10)
        assert large.details["tail_rows"] < small.details["tail_rows"]

    def test_sample_fraction_parameter(self, env):
        ctx, catalog = env
        query = base_query(table="skewed", group="g0")
        out = hybrid_group_by(ctx, catalog, query, sample_fraction=0.10)
        reference = approx_rows(server_side_group_by(ctx, catalog, query).rows)
        assert approx_rows(out.rows) == reference

    def test_pushed_groups_clamped_to_expression_limit(self, env):
        """A NOT IN tail predicate that cannot fit the limit must shed
        pushed groups (into the local tail) instead of failing."""
        ctx, catalog = env
        query = base_query(table="skewed", group="g0")
        unclamped = hybrid_group_by(ctx, catalog, query, s3_groups=10)
        assert unclamped.details["large_groups"] == 10
        clamped = hybrid_group_by(
            ctx, catalog, query, s3_groups=10, expression_limit_bytes=70
        )
        assert 0 < clamped.details["large_groups"] < 10
        assert clamped.details["tail_rows"] > unclamped.details["tail_rows"]
        reference = approx_rows(server_side_group_by(ctx, catalog, query).rows)
        assert approx_rows(clamped.rows) == reference

    def test_zero_fitting_groups_degenerates_to_full_tail(self, env):
        ctx, catalog = env
        query = base_query(table="skewed", group="g0")
        out = hybrid_group_by(
            ctx, catalog, query, s3_groups=10, expression_limit_bytes=45
        )
        assert out.details["large_groups"] == 0
        reference = approx_rows(server_side_group_by(ctx, catalog, query).rows)
        assert approx_rows(out.rows) == reference


class TestAggSpec:
    def test_output_name_default_and_override(self):
        assert AggSpec("sum", "v0").output_name == "sum_v0"
        assert AggSpec("sum", "v0", "total").output_name == "total"

    def test_expression_columns_resolved(self):
        spec = AggSpec("sum", "a * (1 - b)")
        assert spec.referenced_columns() == {"a", "b"}

    def test_unknown_func_rejected(self):
        with pytest.raises(PlanError):
            AggSpec("median", "v0")
