"""Unit tests for the SQL parser and AST rendering round-trips."""

import pytest

from repro.common.errors import SQLSyntaxError
from repro.sqlparser import ast
from repro.sqlparser.parser import parse, parse_expression


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_modulo(self):
        expr = parse_expression("(69 * x + 92) % 97 % 68")
        assert expr.op == "%"

    def test_and_binds_tighter_than_or(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, ast.Unary) and expr.op == "NOT"

    def test_comparison_chain_disallowed(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("a < b < c")

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between)
        assert not expr.negated

    def test_not_between(self):
        expr = parse_expression("x NOT BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between) and expr.negated

    def test_in_list(self):
        expr = parse_expression("mode IN ('AIR', 'RAIL')")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 2

    def test_not_in(self):
        expr = parse_expression("g NOT IN (1, 2, 3)")
        assert isinstance(expr, ast.InList) and expr.negated

    def test_like(self):
        expr = parse_expression("p_type LIKE 'PROMO%'")
        assert isinstance(expr, ast.Like)

    def test_is_null_and_is_not_null(self):
        assert isinstance(parse_expression("x IS NULL"), ast.IsNull)
        expr = parse_expression("x IS NOT NULL")
        assert isinstance(expr, ast.IsNull) and expr.negated

    def test_case_when(self):
        expr = parse_expression("CASE WHEN g = 0 THEN v ELSE 0 END")
        assert isinstance(expr, ast.Case)
        assert len(expr.whens) == 1
        assert expr.default == ast.Literal(0)

    def test_case_without_else(self):
        expr = parse_expression("CASE WHEN a = 1 THEN 2 END")
        assert expr.default is None

    def test_case_requires_when(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("CASE END")

    def test_cast(self):
        expr = parse_expression("CAST(x AS INT)")
        assert isinstance(expr, ast.Cast) and expr.type_name == "INT"

    def test_cast_aliases_canonicalized(self):
        assert parse_expression("CAST(x AS INTEGER)").type_name == "INT"
        assert parse_expression("CAST(x AS DECIMAL(12, 2))").type_name == "FLOAT"
        assert parse_expression("CAST(x AS VARCHAR)").type_name == "STRING"

    def test_cast_unknown_type_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("CAST(x AS BANANA)")

    def test_negative_literal_folded(self):
        assert parse_expression("-950") == ast.Literal(-950)
        assert parse_expression("-9.5") == ast.Literal(-9.5)

    def test_unary_plus_dropped(self):
        assert parse_expression("+5") == ast.Literal(5)

    def test_qualified_column(self):
        expr = parse_expression("customer.c_custkey")
        assert expr == ast.Column(name="c_custkey", table="customer")

    def test_aggregate_calls(self):
        expr = parse_expression("SUM(l_extendedprice * (1 - l_discount))")
        assert isinstance(expr, ast.Aggregate) and expr.func == "SUM"

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr, ast.Aggregate)
        assert isinstance(expr.operand, ast.Star)

    def test_count_distinct(self):
        expr = parse_expression("COUNT(DISTINCT x)")
        assert expr.distinct

    def test_function_call(self):
        expr = parse_expression("SUBSTRING('101', 2, 1)")
        assert isinstance(expr, ast.FuncCall)
        assert expr.name == "SUBSTRING"
        assert len(expr.args) == 3

    def test_null_true_false_literals(self):
        assert parse_expression("NULL") == ast.Literal(None)
        assert parse_expression("TRUE") == ast.Literal(True)
        assert parse_expression("FALSE") == ast.Literal(False)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("1 + 2 extra")


class TestQueries:
    def test_minimal_select(self):
        q = parse("SELECT * FROM S3Object")
        assert q.table == "S3Object"
        assert isinstance(q.select_items[0].expr, ast.Star)

    def test_select_list_with_aliases(self):
        q = parse("SELECT a AS x, b + 1 AS y FROM t")
        assert q.select_items[0].alias == "x"
        assert q.select_items[1].alias == "y"

    def test_output_names(self):
        q = parse("SELECT a, b + 1, c AS z FROM t")
        names = [item.output_name(i) for i, item in enumerate(q.select_items, 1)]
        assert names == ["a", "_2", "z"]

    def test_where_group_order_limit(self):
        q = parse(
            "SELECT g, SUM(v) FROM t WHERE v > 0 GROUP BY g ORDER BY g DESC LIMIT 5"
        )
        assert q.where is not None
        assert len(q.group_by) == 1
        assert q.order_by[0].descending
        assert q.limit == 5

    def test_order_defaults_ascending(self):
        q = parse("SELECT a FROM t ORDER BY a, b DESC")
        assert not q.order_by[0].descending
        assert q.order_by[1].descending

    def test_implicit_join_syntax(self):
        q = parse("SELECT * FROM customer, orders WHERE c_custkey = o_custkey")
        assert q.join_table == "orders"

    def test_limit_requires_integer(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT * FROM t LIMIT x")

    def test_missing_from_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT 1")


class TestRoundTrip:
    """to_sql() output must re-parse to an equivalent AST."""

    CASES = [
        "SELECT * FROM S3Object",
        "SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_shipdate > '1995-03-15'",
        "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem"
        " WHERE l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
        "SELECT g, SUM(CASE WHEN g = 0 THEN v ELSE 0 END) FROM t GROUP BY g",
        "SELECT * FROM t WHERE mode IN ('AIR', 'AIR REG') AND x NOT BETWEEN 1 AND 2",
        "SELECT * FROM t WHERE p_type LIKE 'PROMO%' ORDER BY a DESC, b LIMIT 10",
        "SELECT CAST(x AS INT) FROM t WHERE NOT (a = 1 OR b = 2)",
        "SELECT SUBSTRING('10101', ((3 * CAST(k AS INT) + 5) % 97) % 68 + 1, 1) FROM t",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_round_trip(self, sql):
        first = parse(sql)
        second = parse(first.to_sql())
        assert first == second
