"""Differential testing: the S3 Select engine vs a naive reference.

Hypothesis generates random tables and random queries from a small
grammar; both the full engine (parse -> validate -> compile -> evaluate
over CSV bytes) and a hand-rolled naive Python evaluator must agree.
This is the strongest correctness net over the whole pushdown substrate:
any disagreement between the layered implementation and the five-line
reference is a bug.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.s3select.engine import execute_select
from repro.storage.csvcodec import encode_table
from repro.storage.object_store import StoredObject

SPEC = ["a:int", "b:int", "c:float"]

rows_strategy = st.lists(
    st.tuples(
        st.integers(-50, 50),
        st.integers(0, 9),
        st.floats(-100, 100).map(lambda x: round(x, 3)),
    ),
    max_size=60,
)

# Random comparison predicates over the three columns.
_COLUMNS = ("a", "b", "c")
_OPS = ("<", "<=", "=", ">=", ">", "<>")

predicate_strategy = st.one_of(
    st.none(),
    st.tuples(
        st.sampled_from(_COLUMNS),
        st.sampled_from(_OPS),
        st.integers(-40, 40),
    ),
    st.tuples(
        st.tuples(st.sampled_from(_COLUMNS), st.sampled_from(_OPS), st.integers(-40, 40)),
        st.sampled_from(("AND", "OR")),
        st.tuples(st.sampled_from(_COLUMNS), st.sampled_from(_OPS), st.integers(-40, 40)),
    ),
)


def _obj(rows):
    data, _ = encode_table(rows)
    return StoredObject(
        data, {"format": "csv", "schema": SPEC, "header": False}
    )


def _pred_sql(pred):
    if pred is None:
        return None
    if len(pred) == 3 and isinstance(pred[0], str):
        col, op, val = pred
        return f"{col} {op} {val}"
    left, conn, right = pred
    return f"({_pred_sql(left)}) {conn} ({_pred_sql(right)})"


_PY_OPS = {
    "<": lambda x, y: x < y,
    "<=": lambda x, y: x <= y,
    "=": lambda x, y: x == y,
    ">=": lambda x, y: x >= y,
    ">": lambda x, y: x > y,
    "<>": lambda x, y: x != y,
}


def _pred_eval(pred, row):
    if pred is None:
        return True
    if len(pred) == 3 and isinstance(pred[0], str):
        col, op, val = pred
        value = row["abc".index(col)]
        return _PY_OPS[op](value, val)
    left, conn, right = pred
    if conn == "AND":
        return _pred_eval(left, row) and _pred_eval(right, row)
    return _pred_eval(left, row) or _pred_eval(right, row)


@settings(max_examples=120, deadline=None)
@given(rows_strategy, predicate_strategy)
def test_filter_projection_matches_reference(rows, pred):
    where = _pred_sql(pred)
    sql = "SELECT a, c FROM S3Object" + (f" WHERE {where}" if where else "")
    result = execute_select(_obj(rows), sql)
    expected = [(r[0], r[2]) for r in rows if _pred_eval(pred, r)]
    assert result.rows == expected


@settings(max_examples=80, deadline=None)
@given(rows_strategy, predicate_strategy)
def test_aggregates_match_reference(rows, pred):
    where = _pred_sql(pred)
    sql = (
        "SELECT SUM(a), COUNT(*), MIN(c), MAX(c), AVG(a) FROM S3Object"
        + (f" WHERE {where}" if where else "")
    )
    result = execute_select(_obj(rows), sql)
    kept = [r for r in rows if _pred_eval(pred, r)]
    (got_sum, got_count, got_min, got_max, got_avg), = result.rows
    assert got_count == len(kept)
    if not kept:
        assert got_sum is None and got_min is None and got_max is None
        assert got_avg is None
    else:
        assert got_sum == sum(r[0] for r in kept)
        assert got_min == min(r[2] for r in kept)
        assert got_max == max(r[2] for r in kept)
        assert got_avg == pytest.approx(sum(r[0] for r in kept) / len(kept))


@settings(max_examples=60, deadline=None)
@given(rows_strategy, st.integers(0, 9))
def test_grouped_extension_matches_reference(rows, pivot):
    """The Suggestion 4 GROUP BY extension against a dict reference."""
    sql = f"SELECT b, SUM(a), COUNT(*) FROM S3Object WHERE b <> {pivot} GROUP BY b"
    result = execute_select(_obj(rows), sql, allow_group_by=True)
    reference: dict[int, list] = {}
    for a, b, _ in rows:
        if b == pivot:
            continue
        entry = reference.setdefault(b, [0, 0])
        entry[0] += a
        entry[1] += 1
    assert {r[0]: (r[1], r[2]) for r in result.rows} == {
        g: tuple(v) for g, v in reference.items()
    }


@settings(max_examples=60, deadline=None)
@given(rows_strategy, st.integers(-40, 40), st.integers(1, 13))
def test_case_sum_matches_reference(rows, threshold, divisor):
    """The S3-side group-by's CASE encoding against a reference."""
    sql = (
        f"SELECT SUM(CASE WHEN a % {divisor} = 0 THEN c ELSE 0 END) "
        f"FROM S3Object WHERE b <= {threshold}"
    )
    result = execute_select(_obj(rows), sql)
    kept = [r for r in rows if r[1] <= threshold]
    expected = sum(r[2] for r in kept if r[0] % divisor == 0)
    (got,), = result.rows
    if not kept:
        assert got is None
    else:
        assert got == pytest.approx(expected, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_parquet_and_csv_paths_agree(rows):
    """The same query over the same rows in both formats must agree."""
    from repro.storage.parquet import write_parquet
    from repro.storage.schema import TableSchema

    sql = "SELECT b, a FROM S3Object WHERE a >= 0"
    csv_result = execute_select(_obj(rows), sql)
    schema = TableSchema.of(*SPEC)
    pq = StoredObject(
        write_parquet(rows, schema, row_group_rows=7),
        {"format": "parquet", "schema": SPEC},
    )
    pq_result = execute_select(pq, sql)
    assert pq_result.rows == csv_result.rows
