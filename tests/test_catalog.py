"""Tests for the catalog and table loader (partitioning, index tables)."""

import pytest

from repro.cloud.context import CloudContext
from repro.common.errors import CatalogError
from repro.engine.catalog import Catalog, load_table
from repro.storage.csvcodec import iter_records
from repro.storage.parquet import ParquetFile
from repro.storage.schema import TableSchema

SCHEMA = TableSchema.of("id:int", "price:float", "name:str")


def rows(n=100):
    return [(i, i * 1.5, f"item-{i}") for i in range(n)]


class TestLoadTable:
    def test_partition_count_and_rows(self):
        ctx, catalog = CloudContext(), Catalog()
        info = load_table(ctx, catalog, "t", rows(100), SCHEMA, partitions=4)
        assert info.partitions == 4
        assert info.partition_rows == [25, 25, 25, 25]
        assert info.num_rows == 100

    def test_uneven_partitioning(self):
        ctx, catalog = CloudContext(), Catalog()
        info = load_table(ctx, catalog, "t", rows(10), SCHEMA, partitions=3)
        assert sum(info.partition_rows) == 10
        assert max(info.partition_rows) - min(info.partition_rows) <= 1

    def test_more_partitions_than_rows(self):
        ctx, catalog = CloudContext(), Catalog()
        info = load_table(ctx, catalog, "t", rows(2), SCHEMA, partitions=16)
        assert info.partitions == 2

    def test_objects_have_schema_metadata(self):
        ctx, catalog = CloudContext(), Catalog()
        info = load_table(ctx, catalog, "t", rows(4), SCHEMA, partitions=2)
        obj = ctx.store.get_object(info.bucket, info.keys[0])
        assert obj.metadata["format"] == "csv"
        assert obj.metadata["schema"] == ["id:int", "price:float", "name:str"]

    def test_total_bytes_matches_store(self):
        ctx, catalog = CloudContext(), Catalog()
        info = load_table(ctx, catalog, "t", rows(50), SCHEMA, partitions=4)
        stored = sum(ctx.store.object_size(info.bucket, k) for k in info.keys)
        assert info.total_bytes == stored

    def test_parquet_format(self):
        ctx, catalog = CloudContext(), Catalog()
        info = load_table(
            ctx, catalog, "t", rows(30), SCHEMA, partitions=2, data_format="parquet"
        )
        data = ctx.store.get_bytes(info.bucket, info.keys[0])
        assert ParquetFile(data).num_rows == 15

    def test_unknown_format_rejected(self):
        ctx, catalog = CloudContext(), Catalog()
        with pytest.raises(CatalogError):
            load_table(ctx, catalog, "t", rows(2), SCHEMA, data_format="orc")

    def test_catalog_lookup(self):
        ctx, catalog = CloudContext(), Catalog()
        load_table(ctx, catalog, "MyTable", rows(2), SCHEMA)
        assert catalog.get("mytable").name == "MyTable"
        assert "MYTABLE" in catalog
        with pytest.raises(CatalogError):
            catalog.get("other")


class TestIndexTables:
    def test_index_objects_created_per_partition(self):
        ctx, catalog = CloudContext(), Catalog()
        info = load_table(
            ctx, catalog, "t", rows(40), SCHEMA, partitions=4, index_columns=["id"]
        )
        index = info.index_for("id")
        assert len(index.keys) == 4
        assert index.schema.names == ("value", "first_byte", "last_byte")

    def test_index_offsets_address_exact_records(self):
        """Every index entry's byte range must decode to exactly its row —
        the core invariant of the Section IV-A design."""
        ctx, catalog = CloudContext(), Catalog()
        info = load_table(
            ctx, catalog, "t", rows(30), SCHEMA, partitions=3, index_columns=["id"]
        )
        index = info.index_for("id")
        for data_key, index_key in zip(info.keys, index.keys):
            index_obj = ctx.store.get_object(info.bucket, index_key)
            for record in iter_records(index_obj.data):
                value, first, last = int(record[0]), int(record[1]), int(record[2])
                payload = ctx.store.get_range(info.bucket, data_key, first, last)
                (decoded,) = list(iter_records(payload))
                assert SCHEMA.parse_row(decoded)[0] == value

    def test_index_value_type_follows_column(self):
        ctx, catalog = CloudContext(), Catalog()
        info = load_table(
            ctx, catalog, "t", rows(10), SCHEMA, index_columns=["price"]
        )
        assert info.index_for("price").schema.column("value").type == "float"

    def test_missing_index_raises(self):
        ctx, catalog = CloudContext(), Catalog()
        info = load_table(ctx, catalog, "t", rows(10), SCHEMA)
        with pytest.raises(CatalogError):
            info.index_for("id")

    def test_index_on_parquet_rejected(self):
        ctx, catalog = CloudContext(), Catalog()
        with pytest.raises(CatalogError):
            load_table(
                ctx, catalog, "t", rows(10), SCHEMA,
                data_format="parquet", index_columns=["id"],
            )
