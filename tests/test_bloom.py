"""Tests for Bloom filters: sizing formulas, SQL rendering, adaptation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.filter import (
    BloomFilter,
    build_bloom_filter_within_limit,
    optimal_num_bits,
    optimal_num_hashes,
)
from repro.bloom.universal_hash import (
    UNIVERSE_PRIME,
    is_prime,
    make_hash_family,
    next_prime,
)
from repro.expr.compiler import compile_predicate
from repro.sqlparser.parser import parse_expression


class TestPrimes:
    def test_is_prime_basics(self):
        assert [n for n in range(2, 30) if is_prime(n)] == [
            2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
        ]

    def test_next_prime(self):
        assert next_prime(68) == 71
        assert next_prime(97) == 97
        assert next_prime(1) == 2

    def test_universe_prime_is_prime(self):
        assert is_prime(UNIVERSE_PRIME)


class TestSizingFormulas:
    """The paper's formulas: k = log2(1/p), m = s*|ln p|/(ln 2)^2."""

    def test_num_hashes_examples(self):
        assert optimal_num_hashes(0.01) == 7   # log2(100) = 6.64
        assert optimal_num_hashes(0.5) == 1
        assert optimal_num_hashes(0.0001) == 13

    def test_num_bits_formula(self):
        s, p = 1000, 0.01
        expected = math.ceil(s * abs(math.log(p)) / math.log(2) ** 2)
        assert optimal_num_bits(s, p) == expected

    def test_bits_grow_as_fpr_drops(self):
        assert optimal_num_bits(1000, 0.001) > optimal_num_bits(1000, 0.01)

    def test_invalid_fpr_rejected(self):
        for p in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ValueError):
                optimal_num_hashes(p)

    def test_minimums(self):
        assert optimal_num_bits(0, 0.5) == 1
        assert optimal_num_hashes(0.9) == 1


class TestHashFamily:
    def test_values_in_range(self):
        family = make_hash_family(5, 64, seed=1)
        for h in family:
            for x in (0, 1, 17, 10**9):
                assert 0 <= h.apply(x) < 64

    def test_deterministic_by_seed(self):
        a = make_hash_family(3, 64, seed=42)
        b = make_hash_family(3, 64, seed=42)
        assert a == b

    def test_sql_rendering_matches_apply(self):
        (h,) = make_hash_family(1, 68, seed=7)
        predicate = compile_predicate(
            parse_expression(f"{h.to_sql('x')} = {h.apply(12345) + 1}"),
            {"x": 0},
        )
        assert predicate((12345,))


class TestBloomFilter:
    def test_no_false_negatives_small(self):
        bloom = BloomFilter.build(range(100), fpr=0.01, seed=1)
        assert all(bloom.might_contain(k) for k in range(100))

    def test_observed_fpr_near_target(self):
        keys = list(range(0, 5000, 5))
        bloom = BloomFilter.build(keys, fpr=0.01, seed=1)
        probes = [k for k in range(100_000, 120_000)]
        false_positives = sum(bloom.might_contain(k) for k in probes)
        assert false_positives / len(probes) < 0.05  # target 0.01, slack 5x

    def test_bit_string_is_zeros_and_ones(self):
        bloom = BloomFilter.build([1, 2, 3], fpr=0.1, seed=1)
        assert set(bloom.bit_string()) <= {"0", "1"}
        assert len(bloom.bit_string()) == bloom.num_bits

    def test_non_integer_key_rejected(self):
        bloom = BloomFilter.with_capacity(10, 0.1)
        with pytest.raises(TypeError):
            bloom.add("string-key")
        with pytest.raises(TypeError):
            bloom.add(True)

    def test_sql_predicate_shape(self):
        bloom = BloomFilter.build([5, 6], fpr=0.1, seed=1)
        sql = bloom.to_sql_predicate("o_custkey")
        assert sql.count("SUBSTRING(") == bloom.num_hashes
        assert "CAST(o_custkey AS INT)" in sql
        assert sql.count(" AND ") == bloom.num_hashes - 1

    def test_sql_predicate_agrees_with_might_contain(self):
        """The rendered SQL, run through the expression compiler, must
        classify keys exactly like the in-memory filter."""
        bloom = BloomFilter.build([3, 17, 91], fpr=0.05, seed=2)
        predicate = compile_predicate(
            parse_expression(bloom.to_sql_predicate("k", cast_to_int=False)),
            {"k": 0},
        )
        for key in list(range(200)) + [10**6, 10**7 + 3]:
            assert predicate((key,)) == bloom.might_contain(key), key


class TestLimitAdaptation:
    """Section V-B1: degrade FPR until the SQL fits, else no filter."""

    def test_fits_first_try(self):
        outcome = build_bloom_filter_within_limit(
            list(range(100)), 0.01, "k", seed=1
        )
        assert outcome.bloom is not None
        assert outcome.achieved_fpr == 0.01
        assert outcome.attempts == [0.01]

    def test_degrades_fpr_under_tight_limit(self):
        keys = list(range(2000))
        outcome = build_bloom_filter_within_limit(
            keys, 0.0001, "k", limit_bytes=40_000, seed=1
        )
        assert outcome.bloom is not None
        assert outcome.achieved_fpr > 0.0001
        assert len(outcome.attempts) > 1

    def test_falls_back_to_none_when_nothing_fits(self):
        keys = list(range(5000))
        outcome = build_bloom_filter_within_limit(
            keys, 0.01, "k", limit_bytes=500, seed=1
        )
        assert outcome.bloom is None
        assert outcome.achieved_fpr == 1.0

    def test_overhead_counts_against_limit(self):
        keys = list(range(500))
        free = build_bloom_filter_within_limit(
            keys, 0.01, "k", sql_overhead_bytes=0, limit_bytes=8000, seed=1
        )
        cramped = build_bloom_filter_within_limit(
            keys, 0.01, "k", sql_overhead_bytes=7500, limit_bytes=8000, seed=1
        )
        assert free.achieved_fpr <= cramped.achieved_fpr
        assert len(cramped.attempts) >= len(free.attempts)


@settings(max_examples=30)
@given(
    st.lists(st.integers(0, 2**31 - 2), min_size=1, max_size=300, unique=True),
    st.sampled_from([0.001, 0.01, 0.1, 0.5]),
)
def test_property_no_false_negatives(keys, fpr):
    """A Bloom filter NEVER reports an inserted key as absent."""
    bloom = BloomFilter.build(keys, fpr=fpr, seed=3)
    assert all(bloom.might_contain(k) for k in keys)


@settings(max_examples=20)
@given(st.lists(st.integers(0, 10**6), min_size=1, max_size=50, unique=True))
def test_property_sql_equivalence(keys):
    """SQL-rendered membership == in-memory membership for random keys."""
    bloom = BloomFilter.build(keys, fpr=0.01, seed=4)
    predicate = compile_predicate(
        parse_expression(bloom.to_sql_predicate("k", cast_to_int=False)),
        {"k": 0},
    )
    for probe in keys + [k + 1 for k in keys[:10]]:
        assert predicate((probe,)) == bloom.might_contain(probe)
