"""Shape tests for the per-figure experiment harnesses.

These run each harness at reduced size and assert the qualitative claims
the paper's figures make — who wins, what degrades, where the optimum
sits — rather than absolute numbers.
"""

import pytest

from repro.experiments import (
    fig01_filter,
    fig02_join_customer,
    fig04_bloom_fpr,
    fig05_groupby_groups,
    fig06_hybrid_split,
    fig07_groupby_skew,
    fig08_topk_sample,
    fig09_topk_k,
    fig10_tpch,
    fig11_parquet,
    fig12_multijoin,
    fig13_snowflake,
    fig14_adaptive,
)


@pytest.fixture(scope="module")
def fig1():
    return fig01_filter.run(num_rows=8000, matches=(1, 8, 80, 480))


class TestFig1Filter:
    def test_s3_side_beats_server_side_everywhere(self, fig1):
        server = fig1.column("server-side", "runtime_s")
        s3 = fig1.column("s3-side", "runtime_s")
        assert all(a > 5 * b for a, b in zip(server, s3))

    def test_indexing_wins_when_selective(self, fig1):
        indexing = fig1.column("indexing", "runtime_s")
        s3 = fig1.column("s3-side", "runtime_s")
        assert indexing[0] < s3[0]

    def test_indexing_degrades_with_selectivity(self, fig1):
        indexing = fig1.column("indexing", "runtime_s")
        assert indexing[-1] > indexing[0]
        assert indexing[-1] > max(fig1.column("s3-side", "runtime_s"))

    def test_indexing_cost_dominated_by_requests_at_the_end(self, fig1):
        rows = fig1.series("indexing")
        assert rows[-1]["cost_request"] > rows[-1]["cost_scan"]
        assert rows[-1]["cost_total"] > rows[0]["cost_total"] * 10

    def test_s3_side_pays_scan_cost_server_side_does_not(self, fig1):
        assert fig1.series("s3-side")[0]["cost_scan"] > 0
        assert fig1.series("server-side")[0]["cost_scan"] == 0

    def test_row_counts_exact(self, fig1):
        for row in fig1.rows:
            assert row["matched_rows"] == round(row["selectivity"] * 8000)


class TestFig2To4Joins:
    @pytest.fixture(scope="class")
    def fig2(self):
        return fig02_join_customer.run(
            scale_factor=0.002, acctbals=(-950, -650, -450)
        )

    def test_bloom_fastest_when_selective(self, fig2):
        first = {r["strategy"]: r["runtime_s"] for r in fig2.rows[:3]}
        assert first["bloom"] < first["filtered"] <= first["baseline"] * 1.2

    def test_baseline_flat_across_selectivity(self, fig2):
        runtimes = fig2.column("baseline", "runtime_s")
        assert max(runtimes) < 1.05 * min(runtimes)

    def test_fig4_fpr_tradeoff(self):
        # acctbal -500 keeps the build side non-empty at this tiny scale.
        result = fig04_bloom_fpr.run(
            scale_factor=0.002, fprs=(0.0001, 0.01, 0.5), acctbal=-500
        )
        bloom = result.series("bloom")
        # More hashes at lower FPR; more rows returned at higher FPR.
        assert bloom[0]["bloom_hashes"] > bloom[-1]["bloom_hashes"]
        assert bloom[0]["probe_rows_returned"] < bloom[-1]["probe_rows_returned"]


class TestFig5To7GroupBy:
    def test_fig5_shapes(self):
        result = fig05_groupby_groups.run(num_rows=8000, group_counts=(2, 8, 32))
        server = result.column("server-side", "runtime_s")
        filtered = result.column("filtered", "runtime_s")
        s3 = result.column("s3-side", "runtime_s")
        assert max(server) < 1.05 * min(server)  # flat
        assert all(f < s for f, s in zip(filtered, server))  # projection wins
        assert s3[-1] > s3[0]  # degrades with groups
        assert s3[0] < filtered[0]  # best at few groups

    def test_fig6_split_tradeoff(self):
        result = fig06_hybrid_split.run(num_rows=8000, splits=(1, 6, 12))
        s3_times = [r["s3_side_s"] for r in result.rows]
        server_times = [r["server_side_s"] for r in result.rows]
        returned = [r["bytes_returned"] for r in result.rows]
        assert s3_times == sorted(s3_times)  # more pushed -> more S3 time
        assert server_times == sorted(server_times, reverse=True)
        assert returned == sorted(returned, reverse=True)

    def test_fig7_hybrid_gains_with_skew(self):
        result = fig07_groupby_skew.run(num_rows=8000, thetas=(0.0, 1.3))
        hybrid = result.column("hybrid", "runtime_s")
        filtered = result.column("filtered", "runtime_s")
        # At high skew hybrid beats filtered; at theta=0 it need not.
        assert hybrid[-1] < filtered[-1]


class TestFig8And9TopK:
    def test_fig8_v_shape_and_optimum(self):
        result = fig08_topk_sample.run(
            scale_factor=0.002,
            k=50,
            sample_fractions=(1 / 100, 1 / 12, 1 / 2),
        )
        sample_times = [r["sample_phase_s"] for r in result.rows]
        scan_times = [r["scan_phase_s"] for r in result.rows]
        assert sample_times == sorted(sample_times)  # grows with S
        assert scan_times == sorted(scan_times, reverse=True)  # shrinks

    def test_fig9_sampling_always_wins(self):
        result = fig09_topk_k.run(
            scale_factor=0.002, k_fractions=(1e-4, 1e-2)
        )
        server = result.column("server-side", "runtime_s")
        sampling = result.column("sampling", "runtime_s")
        assert all(s > p for s, p in zip(server, sampling))
        # runtime grows with K for both
        assert server[-1] >= server[0]


class TestFig10Suite:
    @pytest.fixture(scope="class")
    def fig10(self):
        return fig10_tpch.run(scale_factor=0.002)

    def test_geomean_speedup_in_paper_ballpark(self, fig10):
        """Paper: 6.7x.  Accept a broad band around it — the shape claim
        is 'several-fold', not the third digit."""
        assert 3.0 <= fig10.notes["geomean_speedup"] <= 12.0

    def test_optimized_cheaper_in_aggregate(self, fig10):
        assert fig10.notes["total_cost_ratio"] < 0.9  # paper: 0.70

    def test_every_query_has_three_series(self, fig10):
        queries = {r["query"] for r in fig10.rows if r["query"] != "geo-mean"}
        for query in queries:
            strategies = [r["strategy"] for r in fig10.rows if r["query"] == query]
            assert set(strategies) == {"baseline", "optimized", "presto (derived)"}


class TestFig11Parquet:
    @pytest.fixture(scope="class")
    def fig11(self):
        return fig11_parquet.run(
            num_rows=4000, column_counts=(1, 20), selectivities=(0.0, 0.5, 1.0)
        )

    def test_parquet_wins_on_wide_table_low_selectivity(self, fig11):
        wide = [r for r in fig11.rows if r["columns"] == 20 and r["selectivity"] == 0.0]
        by_fmt = {r["strategy"]: r["runtime_s"] for r in wide}
        assert by_fmt["parquet"] < by_fmt["csv"] / 2

    def test_formats_converge_at_high_selectivity(self, fig11):
        wide = [r for r in fig11.rows if r["columns"] == 20 and r["selectivity"] == 1.0]
        by_fmt = {r["strategy"]: r["runtime_s"] for r in wide}
        assert by_fmt["parquet"] == pytest.approx(by_fmt["csv"], rel=0.15)

    def test_single_column_table_similar(self, fig11):
        narrow = [r for r in fig11.rows if r["columns"] == 1 and r["selectivity"] == 0.5]
        by_fmt = {r["strategy"]: r["runtime_s"] for r in narrow}
        assert by_fmt["parquet"] == pytest.approx(by_fmt["csv"], rel=0.5)

    def test_parquet_compressed_smaller_than_csv(self, fig11):
        assert fig11.notes["parquet_size_ratio_20col"] < 1.0

    def test_parquet_scans_fewer_bytes_on_wide_table(self, fig11):
        wide = [r for r in fig11.rows if r["columns"] == 20 and r["selectivity"] == 0.0]
        by_fmt = {r["strategy"]: r["bytes_scanned"] for r in wide}
        assert by_fmt["parquet"] < by_fmt["csv"] / 5


class TestFig12Multijoin:
    @pytest.fixture(scope="class")
    def fig12(self):
        return fig12_multijoin.run(
            scale_factor=0.002, dates=("1993-06-01", None)
        )

    def test_every_connected_order_runs(self, fig12):
        orders = {r["strategy"] for r in fig12.rows} - {"auto"}
        assert len(orders) == 4  # c-o-l chain: orders never joins last

    def test_pick_agrees_with_measured_best(self, fig12):
        agreed, total = fig12.notes["agreement"].split("/")
        assert agreed == total

    def test_auto_not_worse_than_worst_order(self, fig12):
        for value in {r["upper_o_orderdate"] for r in fig12.rows}:
            point = [r for r in fig12.rows if r["upper_o_orderdate"] == value]
            auto = next(r for r in point if r["strategy"] == "auto")
            worst = max(
                r["cost_total"] for r in point if r["strategy"] != "auto"
            )
            assert auto["cost_total"] <= worst * (1 + 1e-9)


class TestFig13Snowflake:
    @pytest.fixture(scope="class")
    def fig13(self):
        return fig13_snowflake.run(fact_rows=4000, thresholds=(10, 25))

    def test_every_left_deep_order_runs(self, fig13):
        orders = {
            r["strategy"] for r in fig13.rows
            if r["strategy"] not in ("auto", "dp-pick")
        }
        assert len(orders) == 16  # 5-node path graph: 2^4 interval orders

    def test_pick_is_bushy_and_beats_left_deep(self, fig13):
        """The acceptance claim: at >= 1 swept point the DP picks a
        genuinely bushy tree whose measured cost is no worse than the
        best left-deep order's."""
        assert fig13.notes["bushy_wins"] >= 1

    def test_dp_pick_never_loses_to_worst_order(self, fig13):
        for value in {r["threshold"] for r in fig13.rows}:
            point = [r for r in fig13.rows if r["threshold"] == value]
            pick = next(r for r in point if r["strategy"] == "dp-pick")
            worst = max(
                r["cost_total"] for r in point
                if r["strategy"] not in ("auto", "dp-pick")
            )
            assert pick["cost_total"] <= worst * (1 + 1e-9)


class TestFig14Adaptive:
    @pytest.fixture(scope="class")
    def fig14(self):
        return fig14_adaptive.run(fact_rows=4000, thresholds=(15, 55))

    def test_three_runs_per_point_plus_probe_sweep(self, fig14):
        strategies = {r["strategy"] for r in fig14.rows}
        assert strategies == {
            "static", "adaptive", "warm", "probed-filter-choice"
        }

    def test_replanning_fires_and_wins_somewhere(self, fig14):
        assert fig14.notes["replan_wins"] >= 1

    def test_adaptive_never_measures_worse(self, fig14):
        for value in {
            r["threshold"] for r in fig14.rows if "threshold" in r
        }:
            point = [
                r for r in fig14.rows if r.get("threshold") == value
            ]
            static = next(r for r in point if r["strategy"] == "static")
            adaptive = next(r for r in point if r["strategy"] == "adaptive")
            assert adaptive["cost_total"] <= static["cost_total"] * (1 + 1e-9)
            assert adaptive["runtime_s"] <= static["runtime_s"] * (1 + 1e-9)

    def test_warm_probe_runs_are_free(self, fig14):
        probes = [
            r for r in fig14.rows if r["strategy"] == "probed-filter-choice"
        ]
        assert probes[0]["probe_requests"] > 0
        assert all(r["probe_requests"] == 0 for r in probes[1:])
        assert len({r["probed_selectivity"] for r in probes}) == 1


class TestTpchSuite:
    """The 22-query differential suite (full runs live in CI; here a
    subset at tiny scale keeps the module under test in seconds)."""

    @pytest.fixture(scope="class")
    def subset(self):
        from repro.experiments.tpch_suite import run

        # One query per new surface: HAVING+group (q01), pure filter
        # (q06), LEFT JOIN + derived (q13), correlated scalar (q17),
        # NOT EXISTS/EXISTS pair over aux copies (q21).
        return run(
            scale_factor=0.001,
            modes=("baseline", "optimized"),
            queries=("q01", "q06", "q13", "q17", "q21"),
        )

    def test_subset_matches_sqlite(self, subset):
        assert subset.notes["parsed"] == "5/5"
        assert subset.notes["matched"] == "10/10"
        assert all(r["match"] == "yes" for r in subset.rows)

    def test_rows_carry_metrics(self, subset):
        for row in subset.rows:
            assert row["requests"] > 0
            assert row["cost_total"] > 0
            assert row["runtime_s"] >= 0

    def test_optimized_returns_fewer_bytes(self, subset):
        """Pushdown must actually shrink data movement on the scan-heavy
        queries (q01/q06 scan lineitem with tight filters)."""
        for name in ("q01", "q06"):
            rows = [r for r in subset.rows if r["query"] == name]
            base = next(r for r in rows if r["strategy"] == "baseline")
            opt = next(r for r in rows if r["strategy"] == "optimized")
            assert opt["bytes_returned"] < base["bytes_returned"]

    def test_aux_schema_renames_prefix(self):
        from repro.experiments.tpch_suite import aux_schema
        from repro.workloads.tpch import TABLE_SCHEMAS

        schema = aux_schema(TABLE_SCHEMAS["nation"], "n2")
        assert schema.names[0] == "n2_nationkey"
        assert [c.type for c in schema.columns] == [
            c.type for c in TABLE_SCHEMAS["nation"].columns
        ]

    def test_rows_match_null_and_float_rules(self):
        from repro.experiments.tpch_suite import rows_match

        assert rows_match([(1, 2.0)], [(1, 2.0 + 1e-9)])
        assert rows_match([(None, 1), (2, 3)], [(2, 3), (None, 1)])
        assert not rows_match([(1,)], [(1,), (2,)])
        assert not rows_match([(None,)], [(0,)])


class TestHarnessUtilities:
    def test_to_table_renders(self, fig1):
        text = fig1.to_table()
        assert "fig1" in text
        assert "server-side" in text

    def test_series_and_column_helpers(self, fig1):
        series = fig1.series("indexing")
        assert all(r["strategy"] == "indexing" for r in series)
        assert len(fig1.column("indexing", "runtime_s")) == len(series)
