"""Differential tests: expression NULL semantics vs a sqlite3 oracle.

SQL three-valued logic is easy to get subtly wrong (``1 IN (2, NULL)``
is NULL, not FALSE; ``5 BETWEEN NULL AND 3`` is FALSE, not NULL).  The
expression compiler backs both the simulated S3 Select engine and the
local operators, so every pushdown path inherits whatever it does with
NULLs — these tests pin it to what a real SQL engine produces.

sqlite is a faithful oracle for the constructs covered here (logic,
comparisons, BETWEEN, IN, LIKE, IS NULL); arithmetic differences such as
integer division are deliberately out of scope.
"""

from __future__ import annotations

import itertools
import sqlite3

import pytest

from repro.expr.compiler import compile_expr, compile_predicate
from repro.sqlparser.parser import parse_expression

#: Column layout shared by both sides: two ints and a string, each
#: sweeping NULL through every position.
_SCHEMA = {"a": 0, "b": 1, "s": 2}

_INT_VALUES = (None, -1, 0, 1, 2, 3)
_STR_VALUES = (None, "", "abc", "aXc", "ab", "zzz")

_ROWS = [
    (a, b, s)
    for a, b in itertools.product(_INT_VALUES, repeat=2)
    for s in _STR_VALUES
]

_EXPRESSIONS = [
    # comparisons
    "a = b",
    "a <> b",
    "a < b",
    "a <= 1",
    "a > b",
    "a >= 2",
    # three-valued AND / OR / NOT
    "a = 1 AND b = 2",
    "a = 1 OR b = 2",
    "NOT (a = 1)",
    "NOT (a = 1 AND b = 2)",
    "(a < b OR b < 1) AND NOT (a = 0)",
    "a = 1 OR NOT (b = b)",
    # BETWEEN with NULL operand / bounds
    "a BETWEEN 0 AND 2",
    "a NOT BETWEEN 0 AND 2",
    "a BETWEEN b AND 2",
    "a BETWEEN 0 AND b",
    "a BETWEEN b AND b",
    "1 BETWEEN a AND b",
    # IN with NULL operand / items
    "a IN (1, 2)",
    "a NOT IN (1, 2)",
    "a IN (1, NULL)",
    "a NOT IN (1, NULL)",
    "a IN (NULL)",
    "a IN (1, 1)",
    "a NOT IN (1, 1)",
    "a IN (b, 2)",
    "a NOT IN (b, 0)",
    # LIKE on NULL values and patterns
    "s LIKE 'ab%'",
    "s NOT LIKE 'ab%'",
    "s LIKE '%c'",
    "s LIKE 'a_c'",
    "s LIKE ''",
    # IS NULL never returns NULL
    "a IS NULL",
    "a IS NOT NULL",
    "s IS NULL AND a = 1",
]


@pytest.fixture(scope="module")
def oracle():
    conn = sqlite3.connect(":memory:")
    # sqlite's LIKE is case-insensitive by default; SQL (and our
    # compiler) are case-sensitive.
    conn.execute("PRAGMA case_sensitive_like = ON")
    conn.execute("CREATE TABLE t (rowid_ INTEGER, a INTEGER, b INTEGER, s TEXT)")
    conn.executemany(
        "INSERT INTO t VALUES (?, ?, ?, ?)",
        [(i, *row) for i, row in enumerate(_ROWS)],
    )
    yield conn
    conn.close()


def _normalize(value: object) -> object:
    """Map both sides onto {0, 1, None} for comparison."""
    if value is None:
        return None
    if isinstance(value, bool):
        return int(value)
    return int(bool(value))


@pytest.mark.parametrize("sql", _EXPRESSIONS)
def test_expression_matches_sqlite(sql, oracle):
    fn = compile_expr(parse_expression(sql), _SCHEMA)
    expected = [
        row[0] for row in oracle.execute(f"SELECT ({sql}) FROM t ORDER BY rowid_")
    ]
    got = [fn(row) for row in _ROWS]
    assert [_normalize(v) for v in got] == [_normalize(v) for v in expected], sql


@pytest.mark.parametrize("sql", _EXPRESSIONS)
def test_where_clause_matches_sqlite(sql, oracle):
    """WHERE semantics: NULL predicates filter the row out, as FALSE does."""
    keep = compile_predicate(parse_expression(sql), _SCHEMA)
    expected = {
        row[0]
        for row in oracle.execute(f"SELECT rowid_ FROM t WHERE {sql}")
    }
    got = {i for i, row in enumerate(_ROWS) if keep(row)}
    assert got == expected, sql
