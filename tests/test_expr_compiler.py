"""Unit + property tests for the expression compiler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import TypeMismatchError, UnsupportedFeatureError
from repro.expr.compiler import compile_expr, compile_predicate, like_to_regex
from repro.sqlparser.parser import parse_expression

SCHEMA = {"a": 0, "b": 1, "s": 2, "d": 3}


def ev(sql, row=(0, 0, "", "1995-01-01")):
    return compile_expr(parse_expression(sql), SCHEMA)(row)


class TestArithmetic:
    def test_basic_ops(self):
        assert ev("1 + 2 * 3") == 7
        assert ev("10 - 4") == 6
        assert ev("7 % 3") == 1
        assert ev("-a", (5, 0, "", "")) == -5

    def test_division_int_exact_stays_int(self):
        assert ev("6 / 3") == 2
        assert isinstance(ev("6 / 3"), int)

    def test_division_inexact_is_float(self):
        assert ev("7 / 2") == 3.5

    def test_division_by_zero_is_null(self):
        assert ev("1 / 0") is None

    def test_column_lookup(self):
        assert ev("a + b", (2, 3, "", "")) == 5

    def test_unknown_column_raises(self):
        with pytest.raises(UnsupportedFeatureError, match="unknown column"):
            ev("nope")

    def test_arithmetic_on_string_raises(self):
        with pytest.raises(TypeMismatchError):
            ev("s + 1", (0, 0, "x", ""))


class TestNullSemantics:
    def test_null_propagates_through_arithmetic(self):
        assert ev("a + 1", (None, 0, "", "")) is None

    def test_null_comparison_is_null(self):
        assert ev("a = 1", (None, 0, "", "")) is None

    def test_predicate_treats_null_as_false(self):
        pred = compile_predicate(parse_expression("a = 1"), SCHEMA)
        assert pred((None, 0, "", "")) is False

    def test_and_or_three_valued(self):
        assert ev("a = 1 AND b = 1", (None, 1, "", "")) is None
        assert ev("a = 1 AND b = 2", (None, 1, "", "")) is False
        assert ev("a = 1 OR b = 1", (None, 1, "", "")) is True
        assert ev("a = 1 OR b = 2", (None, 1, "", "")) is None

    def test_is_null(self):
        assert ev("a IS NULL", (None, 0, "", "")) is True
        assert ev("a IS NOT NULL", (None, 0, "", "")) is False

    def test_coalesce(self):
        assert ev("COALESCE(a, b, 9)", (None, None, "", "")) == 9
        assert ev("COALESCE(a, 5)", (3, 0, "", "")) == 3

    def test_aggregates_skip_nulls_in_count(self):
        # COUNT semantics live in aggregates; here NULL in IN-list operand.
        assert ev("a IN (1, 2)", (None, 0, "", "")) is None


class TestComparisons:
    def test_numeric_comparison(self):
        assert ev("a < b", (1, 2, "", "")) is True

    def test_string_comparison_lexical(self):
        assert ev("s < 'b'", (0, 0, "a", "")) is True

    def test_date_strings_compare_chronologically(self):
        assert ev("d < '1996-01-01'") is True
        assert ev("d >= '1995-01-01'") is True

    def test_string_number_coercion(self):
        assert ev("s = 5", (0, 0, "5", "")) is True

    def test_incomparable_raises(self):
        with pytest.raises(TypeMismatchError):
            ev("s = 5", (0, 0, "abc", ""))

    def test_between_inclusive(self):
        assert ev("a BETWEEN 1 AND 3", (1, 0, "", "")) is True
        assert ev("a BETWEEN 1 AND 3", (3, 0, "", "")) is True
        assert ev("a BETWEEN 1 AND 3", (4, 0, "", "")) is False

    def test_in_list(self):
        assert ev("a IN (1, 2, 3)", (2, 0, "", "")) is True
        assert ev("a NOT IN (1, 2, 3)", (9, 0, "", "")) is True


class TestCase:
    def test_first_matching_when_wins(self):
        sql = "CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END"
        assert ev(sql, (1, 0, "", "")) == "one"
        assert ev(sql, (2, 0, "", "")) == "two"
        assert ev(sql, (9, 0, "", "")) == "many"

    def test_no_else_yields_null(self):
        assert ev("CASE WHEN a = 1 THEN 'x' END", (2, 0, "", "")) is None


class TestFunctions:
    def test_substring_one_based(self):
        assert ev("SUBSTRING('abcdef', 2, 3)") == "bcd"

    def test_substring_without_length(self):
        assert ev("SUBSTRING('abcdef', 4)") == "def"

    def test_substring_bloom_shape(self):
        # The exact shape of the paper's Listing 1, evaluated.
        assert ev("SUBSTRING('101', ((1 * a + 0) % 97) % 3 + 1, 1)", (2, 0, "", "")) == "1"

    def test_substring_start_before_one(self):
        assert ev("SUBSTRING('abc', 0, 2)") == "a"

    def test_substring_negative_length_raises(self):
        with pytest.raises(TypeMismatchError):
            ev("SUBSTRING('abc', 1, -1)")

    def test_string_functions(self):
        assert ev("UPPER('ab')") == "AB"
        assert ev("LOWER('AB')") == "ab"
        assert ev("TRIM('  x ')") == "x"
        assert ev("LENGTH('abc')") == 3

    def test_math_functions(self):
        assert ev("ABS(-3)") == 3
        assert ev("FLOOR(2.7)") == 2
        assert ev("CEIL(2.1)") == 3
        assert ev("MOD(7, 3)") == 1
        assert ev("SQRT(9)") == 3.0

    def test_year(self):
        assert ev("YEAR(d)") == 1995

    def test_date_validates(self):
        with pytest.raises(TypeMismatchError):
            ev("DATE('not-a-date')")

    def test_unknown_function_raises(self):
        with pytest.raises(UnsupportedFeatureError):
            ev("FROBNICATE(1)")

    def test_concat(self):
        assert ev("'a' || 'b'") == "ab"


class TestCast:
    def test_cast_string_to_int(self):
        assert ev("CAST(s AS INT)", (0, 0, " 42 ", "")) == 42

    def test_cast_float_to_int_truncates(self):
        assert ev("CAST(2.9 AS INT)") == 2

    def test_cast_to_float(self):
        assert ev("CAST('2.5' AS FLOAT)") == 2.5

    def test_cast_bad_value_raises(self):
        with pytest.raises(TypeMismatchError):
            ev("CAST('xyz' AS INT)")

    def test_cast_null_stays_null(self):
        assert ev("CAST(a AS INT)", (None, 0, "", "")) is None


class TestLike:
    def test_percent_wildcard(self):
        assert ev("s LIKE 'PROMO%'", (0, 0, "PROMO BRUSHED TIN", "")) is True
        assert ev("s LIKE 'PROMO%'", (0, 0, "LARGE TIN", "")) is False

    def test_underscore_wildcard(self):
        assert ev("s LIKE 'a_c'", (0, 0, "abc", "")) is True
        assert ev("s LIKE 'a_c'", (0, 0, "abbc", "")) is False

    def test_regex_metacharacters_escaped(self):
        assert ev("s LIKE 'a.c'", (0, 0, "abc", "")) is False
        assert ev("s LIKE 'a.c'", (0, 0, "a.c", "")) is True

    def test_like_to_regex_anchored(self):
        assert like_to_regex("b%").match("abc") is None


@given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
def test_property_arithmetic_matches_python(a, b):
    """Compiled +,-,* agree with Python over random ints."""
    row = (a, b, "", "")
    assert ev("a + b", row) == a + b
    assert ev("a - b", row) == a - b
    assert ev("a * b", row) == a * b


@given(st.integers(0, 10**9), st.integers(1, 997), st.integers(0, 997))
def test_property_modulo_chain_matches_python(x, m, b):
    """The Bloom hash arithmetic shape agrees with Python semantics."""
    row = (x, 0, "", "")
    expected = ((3 * x + b) % 997) % max(m, 1) + 1
    got = ev(f"((3 * a + {b}) % 997) % {max(m, 1)} + 1", row)
    assert got == expected


@given(st.text(alphabet="ab%_c", max_size=8), st.text(alphabet="abc", max_size=8))
def test_property_like_matches_reference(pattern, text):
    """LIKE agrees with a simple reference implementation."""
    import fnmatch

    reference = fnmatch.fnmatchcase(
        text, pattern.replace("%", "*").replace("_", "?")
    )
    row = (0, 0, text, "")
    escaped = pattern.replace("'", "''")
    assert ev(f"s LIKE '{escaped}'", row) is reference
