"""NULL semantics at the decorrelated join edges, pinned vs sqlite3.

``test_null_semantics.py`` pins three-valued logic at the *expression*
level; the fuzzer sweeps it statistically at the query level.  These
tests pin the specific NULL rules the new join kinds introduce, each as
a named case a failure message can point at:

* ``NOT IN (SELECT ...)`` whose subquery returns any NULL yields an
  *empty* result (x <> NULL is unknown for every x) — the NULL-aware
  anti join, not the plain anti join;
* a NULL probe key never matches ``IN`` and never satisfies ``NOT IN``
  against a non-empty list;
* ``EXISTS`` is a semi join: an outer row with many inner matches
  appears exactly once, and a NULL correlation key never matches;
* ``NOT EXISTS`` keeps rows whose correlation key is NULL (the
  correlated equality is unknown for every inner row, so no match);
* LEFT OUTER JOIN pads non-matching probe rows with NULLs that then
  flow through aggregation with SQL semantics — ``COUNT(col)`` skips
  pads, ``COUNT(*)`` counts them, ``SUM`` over only-pads is NULL, and
  pads group together under GROUP BY on the padded column.

Every case runs in baseline, optimized and auto modes against a sqlite3
oracle executing the identical statement.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.planner.database import PushdownDB
from repro.storage.schema import TableSchema

MODES = ("baseline", "optimized", "auto")


@pytest.fixture(scope="module")
def engines():
    """A tiny two-table world where every NULL edge case is reachable.

    ``cust``: c_key 1..6 with c_ref NULL at key 2 and c_bal NULL at
    key 4.  ``ords``: o_ref 2, 2, 3, NULL — so key 2 has duplicate
    matches, 3 one match, NULL never matches, and 1/4/5/6 have none.
    """
    db = PushdownDB()
    cust_rows = [
        (1, 10, 1), (2, 20, None), (3, 30, 3),
        (4, None, 4), (5, 50, 5), (6, 60, 6),
    ]
    ords_rows = [
        (100, 2, 7), (101, 2, 8), (102, 3, None), (103, None, 9),
    ]
    db.load_table(
        "cust", cust_rows, TableSchema.of("c_key:int", "c_bal:int", "c_ref:int")
    )
    db.load_table(
        "ords", ords_rows, TableSchema.of("o_id:int", "o_ref:int", "o_amt:int")
    )
    con = sqlite3.connect(":memory:")
    con.execute("CREATE TABLE cust (c_key INTEGER, c_bal INTEGER, c_ref INTEGER)")
    con.execute("CREATE TABLE ords (o_id INTEGER, o_ref INTEGER, o_amt INTEGER)")
    con.executemany("INSERT INTO cust VALUES (?,?,?)", cust_rows)
    con.executemany("INSERT INTO ords VALUES (?,?,?)", ords_rows)
    yield db, con
    con.close()


def _check(engines, sql, modes=MODES):
    db, con = engines
    expected = sorted(
        con.execute(sql).fetchall(),
        key=lambda r: tuple((v is None, v or 0) for v in r),
    )
    for mode in modes:
        got = sorted(
            db.execute(sql, mode=mode).rows,
            key=lambda r: tuple((v is None, v or 0) for v in r),
        )
        assert got == expected, f"{mode}: {got} != {expected}\n{sql}"
    return expected


class TestNotInNullAware:
    def test_not_in_with_null_in_subquery_is_empty(self, engines):
        """One NULL in the IN-list empties NOT IN entirely."""
        rows = _check(
            engines,
            "SELECT c_key FROM cust"
            " WHERE c_key NOT IN (SELECT o_ref FROM ords)",
        )
        assert rows == []

    def test_not_in_without_nulls_is_plain_anti(self, engines):
        rows = _check(
            engines,
            "SELECT c_key FROM cust WHERE c_key NOT IN"
            " (SELECT o_ref FROM ords WHERE o_ref IS NOT NULL)",
        )
        assert [r[0] for r in rows] == [1, 4, 5, 6]

    def test_null_operand_never_in(self, engines):
        """c_ref NULL: IN is unknown -> filtered on both engines."""
        rows = _check(
            engines,
            "SELECT c_key FROM cust WHERE c_ref IN"
            " (SELECT o_ref FROM ords WHERE o_ref IS NOT NULL)",
        )
        assert [r[0] for r in rows] == [3]


class TestExistsSemiAnti:
    def test_semi_join_never_duplicates(self, engines):
        """c_key 2 matches two orders; EXISTS must emit it once."""
        rows = _check(
            engines,
            "SELECT c_key FROM cust WHERE EXISTS"
            " (SELECT 1 FROM ords WHERE o_ref = c_key)",
        )
        assert [r[0] for r in rows] == [2, 3]

    def test_null_correlation_key_never_matches_exists(self, engines):
        """Only c_ref 3 has an order; c_ref NULL (key 2) never matches."""
        rows = _check(
            engines,
            "SELECT c_key FROM cust WHERE EXISTS"
            " (SELECT 1 FROM ords WHERE o_ref = c_ref)",
        )
        assert [r[0] for r in rows] == [3]

    def test_not_exists_keeps_null_correlation_key(self, engines):
        """c_ref NULL (key 2): the equality is unknown for every order,
        so there is no match and NOT EXISTS keeps the row."""
        rows = _check(
            engines,
            "SELECT c_key FROM cust WHERE NOT EXISTS"
            " (SELECT 1 FROM ords WHERE o_ref = c_ref)",
        )
        assert [r[0] for r in rows] == [1, 2, 4, 5, 6]


class TestLeftOuterPads:
    def test_count_column_skips_pads_count_star_counts_them(self, engines):
        rows = _check(
            engines,
            "SELECT COUNT(*) AS n_all, COUNT(o_id) AS n_matched"
            " FROM cust LEFT OUTER JOIN ords ON o_ref = c_key",
        )
        # 6 cust rows: key 2 fans out to 2 orders (7 result rows), and
        # only the 3 genuinely matched rows carry an o_id.
        assert rows == [(7, 3)]

    def test_sum_over_only_pads_is_null(self, engines):
        rows = _check(
            engines,
            "SELECT SUM(o_amt) AS s FROM cust"
            " LEFT OUTER JOIN ords ON o_ref = c_key WHERE c_key = 5",
        )
        assert rows == [(None,)]

    def test_group_by_padded_column_groups_pads_together(self, engines):
        rows = _check(
            engines,
            "SELECT o_ref, COUNT(*) AS n FROM cust"
            " LEFT OUTER JOIN ords ON o_ref = c_key GROUP BY o_ref",
        )
        # Pads for keys 1, 4, 5, 6 collapse into the o_ref IS NULL group.
        assert (None, 4) in rows

    def test_on_residual_rejects_rows_into_pads(self, engines):
        """An ON residual that fails turns would-be matches into pads —
        it must not filter the preserved side like a WHERE would."""
        rows = _check(
            engines,
            "SELECT c_key, o_id FROM cust"
            " LEFT OUTER JOIN ords ON o_ref = c_key AND o_amt > 7",
        )
        assert (2, 101) in rows      # survives the residual
        assert (2, 100) not in rows  # o_amt 7 fails it...
        assert (3, None) in rows     # ...and key 3's match (NULL amt) pads


class TestDecorrelationGuards:
    """Unsupported shapes fail with a named PlanError, never a wrong
    answer — each case pins one guard in the decorrelation pass."""

    @pytest.mark.parametrize("sql, message", [
        ("SELECT (SELECT MAX(o_amt) FROM ords) AS m FROM cust",
         "subqueries in the select list"),
        ("SELECT c_key FROM cust WHERE EXISTS"
         " (SELECT o_ref FROM ords GROUP BY o_ref)",
         "plain SELECT ... FROM ... WHERE bodies"),
        ("SELECT c_key FROM cust WHERE EXISTS"
         " (SELECT 1 FROM ords WHERE o_ref > c_key)",
         "needs an inner = outer equality"),
        ("SELECT c_key FROM cust WHERE c_key = 1 OR EXISTS"
         " (SELECT 1 FROM ords WHERE o_ref = c_key)",
         "top-level AND conjuncts"),
        ("SELECT c_key FROM cust WHERE c_bal + 1 IN"
         " (SELECT o_amt FROM ords)",
         "needs a plain column on the left-hand side"),
        ("SELECT c_key FROM cust WHERE c_key IN"
         " (SELECT o_ref FROM ords WHERE o_amt = c_bal)",
         "correlated IN subqueries are not supported"),
        ("SELECT c_key FROM cust WHERE c_key IN"
         " (SELECT o_ref, o_amt FROM ords)",
         "exactly one column"),
        ("SELECT c_key FROM cust WHERE c_bal >"
         " (SELECT o_amt FROM ords)",
         "at most one row"),
        ("SELECT c_key FROM cust WHERE c_bal >"
         " (SELECT o_amt FROM ords WHERE o_ref = c_key)",
         "must compute one aggregate"),
        ("SELECT c_key FROM cust WHERE c_bal >"
         " (SELECT MAX(o_amt) FROM ords WHERE o_ref > c_key)",
         "inner = outer equality correlation"),
        ("SELECT c_key FROM cust LEFT OUTER JOIN ords ON o_amt > c_bal",
         "LEFT JOIN needs an ON equality"),
        ("SELECT c_key FROM cust LEFT OUTER JOIN ords"
         " ON o_ref = c_key AND o_amt IN (SELECT c_bal FROM cust)",
         "subqueries in ON conditions"),
        ("SELECT c_ref, COUNT(*) AS n FROM cust GROUP BY c_ref"
         " HAVING COUNT(*) > (SELECT MAX(o_amt) FROM ords"
         " WHERE o_ref = c_ref)",
         "correlated subqueries in HAVING"),
        ("SELECT c_key FROM cust WHERE EXISTS"
         " (SELECT 1 FROM ords WHERE o_ref = no_such_col)",
         "unknown column"),
    ])
    def test_unsupported_shape_raises(self, engines, sql, message):
        from repro.common.errors import PlanError

        db, _ = engines
        with pytest.raises(PlanError, match=message):
            db.execute(sql)

    def test_uncorrelated_exists_folds_to_constant(self, engines):
        """No correlation: EXISTS probes one row and folds to TRUE/FALSE."""
        rows = _check(
            engines,
            "SELECT c_key FROM cust WHERE EXISTS"
            " (SELECT 1 FROM ords WHERE o_amt > 100)",
        )
        assert rows == []
        rows = _check(
            engines,
            "SELECT COUNT(*) AS n FROM cust WHERE NOT EXISTS"
            " (SELECT 1 FROM ords WHERE o_amt > 100)",
        )
        assert rows == [(6,)]


class TestExplainProvenance:
    """EXPLAIN names each decorrelated edge's origin (satellite: the
    plan renderer threads join_type and provenance end-to-end)."""

    @pytest.mark.parametrize("sql, fragment", [
        ("SELECT c_key FROM cust WHERE EXISTS"
         " (SELECT 1 FROM ords WHERE o_ref = c_key)",
         "(decorrelated EXISTS)"),
        ("SELECT c_key FROM cust WHERE NOT EXISTS"
         " (SELECT 1 FROM ords WHERE o_ref = c_key)",
         "(decorrelated NOT EXISTS)"),
        ("SELECT c_key FROM cust WHERE c_key NOT IN"
         " (SELECT o_ref FROM ords)",
         "(decorrelated NOT IN)"),
        ("SELECT c_key, o_id FROM cust"
         " LEFT OUTER JOIN ords ON o_ref = c_key",
         "(LEFT OUTER JOIN)"),
        ("SELECT c_key FROM cust WHERE c_bal >"
         " (SELECT AVG(o_amt) FROM ords WHERE o_ref = c_key)",
         "(decorrelated scalar subquery)"),
    ])
    def test_explain_names_join_origin(self, engines, sql, fragment):
        db, _ = engines
        assert fragment in db.explain(sql)

    def test_explain_renders_join_kind(self, engines):
        db, _ = engines
        report = db.explain(
            "SELECT c_key FROM cust WHERE EXISTS"
            " (SELECT 1 FROM ords WHERE o_ref = c_key)"
        )
        assert "semi hash-join" in report
        report = db.explain(
            "SELECT c_key, o_id FROM cust"
            " LEFT OUTER JOIN ords ON o_ref = c_key"
        )
        assert "left hash-join" in report
