"""Tests for the optimizer's statistics layer and selectivity estimates."""

import pytest

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog, load_table
from repro.optimizer.selectivity import estimate_selectivity, probe_selectivity
from repro.optimizer.stats import (
    collect_table_stats,
    synthesize_table_stats,
)
from repro.sqlparser.parser import parse_expression
from repro.storage.csvcodec import encode_table
from repro.storage.schema import TableSchema

SCHEMA = TableSchema.of("k:int", "v:float", "tag:str")

ROWS = [
    (0, 1.5, "alpha"),
    (1, 2.5, "alpha"),
    (2, None, "beta"),
    (3, 4.5, None),
    (4, 4.5, "alpha"),
    (5, 0.5, "gamma"),
    (6, 0.5, "alpha"),
    (7, 9.5, "beta"),
    (8, 2.5, "alpha"),
    (9, 1.5, "delta"),
]


@pytest.fixture(scope="module")
def stats():
    return collect_table_stats(ROWS, SCHEMA)


class TestCollection:
    def test_row_count_and_width(self, stats):
        assert stats.row_count == len(ROWS)
        data, _ = encode_table(ROWS)
        assert stats.avg_row_bytes == pytest.approx(len(data) / len(ROWS))

    def test_distinct_and_nulls(self, stats):
        assert stats.column("k").distinct == 10
        assert stats.column("v").distinct == 5
        assert stats.column("v").null_count == 1
        assert stats.column("tag").null_count == 1

    def test_min_max(self, stats):
        assert stats.column("k").min_value == 0
        assert stats.column("k").max_value == 9
        assert stats.column("v").min_value == 0.5
        assert stats.column("v").max_value == 9.5
        assert stats.column("tag").min_value == "alpha"

    def test_mcvs_most_frequent_first(self, stats):
        tag = stats.column("tag")
        assert tag.mcvs[0] == ("alpha", 5)
        assert tag.mcv_fraction(stats.row_count, 1) == pytest.approx(0.5)

    def test_projected_row_bytes_matches_encoding(self, stats):
        projected = [(r[0], r[2]) for r in ROWS]
        data, _ = encode_table(projected)
        assert stats.projected_row_bytes(["k", "tag"]) == pytest.approx(
            len(data) / len(ROWS)
        )

    def test_case_insensitive_lookup(self, stats):
        assert stats.column("K") is stats.column("k")
        assert stats.column("missing") is None

    def test_empty_table(self):
        empty = collect_table_stats([], SCHEMA)
        assert empty.row_count == 0
        assert empty.avg_row_bytes == 0.0
        assert empty.column("k").distinct == 0


class TestCatalogWiring:
    def test_load_table_attaches_stats(self):
        ctx, catalog = CloudContext(), Catalog()
        info = load_table(ctx, catalog, "t", ROWS, SCHEMA, bucket="b")
        assert info.stats is not None
        assert info.stats.row_count == len(ROWS)
        assert info.stats_or_default() is info.stats

    def test_collect_stats_opt_out_synthesizes(self):
        ctx, catalog = CloudContext(), Catalog()
        info = load_table(
            ctx, catalog, "t", ROWS, SCHEMA, bucket="b", collect_stats=False
        )
        assert info.stats is None
        fallback = info.stats_or_default()
        assert fallback.row_count == len(ROWS)
        # The fallback apportions the true average row width.
        assert fallback.avg_row_bytes == pytest.approx(
            info.total_bytes / info.num_rows
        )

    def test_index_total_bytes_recorded(self):
        ctx, catalog = CloudContext(), Catalog()
        info = load_table(
            ctx, catalog, "t", ROWS, SCHEMA, bucket="b", index_columns=["k"]
        )
        index = info.index_for("k")
        assert index.total_bytes == sum(
            ctx.store.object_size("b", key) for key in index.keys
        )

    def test_synthesize_without_rows(self):
        stats = synthesize_table_stats(SCHEMA, 0, 0)
        assert stats.row_count == 0
        assert stats.projected_row_bytes(["k"]) > 0  # never degenerate


class TestSelectivity:
    def _estimate(self, sql, stats):
        return estimate_selectivity(parse_expression(sql), stats)

    def test_none_predicate(self, stats):
        assert estimate_selectivity(None, stats) == 1.0

    def test_range_exact_on_dense_ints(self, stats):
        assert self._estimate("k < 4", stats) == pytest.approx(0.4)
        assert self._estimate("k <= 4", stats) == pytest.approx(0.5)
        assert self._estimate("k >= 8", stats) == pytest.approx(0.2)
        assert self._estimate("k > 9", stats) == pytest.approx(0.0)

    def test_equality_uses_mcvs(self, stats):
        assert self._estimate("tag = 'alpha'", stats) == pytest.approx(0.5)

    def test_equality_falls_back_to_distinct(self, stats):
        assert self._estimate("k = 3", stats) == pytest.approx(0.1)

    def test_conjunction_and_disjunction(self, stats):
        conj = self._estimate("k < 4 AND tag = 'alpha'", stats)
        assert conj == pytest.approx(0.4 * 0.5)
        disj = self._estimate("k < 4 OR tag = 'alpha'", stats)
        assert disj == pytest.approx(0.4 + 0.5 - 0.2)

    def test_negation(self, stats):
        assert self._estimate("NOT (k < 4)", stats) == pytest.approx(0.6)

    def test_is_null_from_counts(self, stats):
        assert self._estimate("v IS NULL", stats) == pytest.approx(0.1)
        assert self._estimate("v IS NOT NULL", stats) == pytest.approx(0.9)

    def test_in_list_sums_equalities(self, stats):
        assert self._estimate("k IN (1, 2, 3)", stats) == pytest.approx(0.3)

    def test_between(self, stats):
        assert self._estimate("k BETWEEN 2 AND 5", stats) == pytest.approx(0.4)

    def test_clamped_to_unit_interval(self, stats):
        assert 0.0 <= self._estimate("k < -100", stats) <= 1.0
        assert self._estimate("k < 1000", stats) == 1.0


class TestProbe:
    def test_probe_measures_and_meters(self):
        ctx, catalog = CloudContext(), Catalog()
        rows = [(i, float(i), "t") for i in range(2000)]
        info = load_table(ctx, catalog, "t", rows, SCHEMA, bucket="b", partitions=4)
        mark = ctx.metrics.mark()
        measured = probe_selectivity(
            ctx, info, parse_expression("k < 500"), fraction=0.5
        )
        # A leading 50% slice of a sorted table sees only matching rows
        # in the first partitions; the estimate must still be sane and
        # the probe requests must be metered.
        assert 0.0 <= measured <= 1.0
        records = ctx.metrics.records_since(mark)
        assert len(records) == info.partitions
        assert all(r.bytes_scanned > 0 for r in records)
