"""Tests for the SQL planner and the PushdownDB facade."""

import pytest

from helpers import assert_rows_close
from repro.common.errors import CatalogError, PlanError
from repro.planner.database import PushdownDB
from repro.planner.planner import plan_and_execute
from repro.workloads.tpch import (
    CUSTOMER_SCHEMA,
    LINEITEM_SCHEMA,
    ORDERS_SCHEMA,
    TpchGenerator,
)


@pytest.fixture(scope="module")
def db():
    database = PushdownDB()
    gen = TpchGenerator(scale_factor=0.002)
    database.load_table("lineitem", gen.lineitem(), LINEITEM_SCHEMA)
    database.load_table("customer", gen.customer(), CUSTOMER_SCHEMA)
    database.load_table("orders", gen.orders(), ORDERS_SCHEMA)
    return database


def both_modes(db, sql):
    baseline = db.execute(sql, mode="baseline")
    optimized = db.execute(sql, mode="optimized")
    assert_rows_close(baseline.rows, optimized.rows)
    return baseline, optimized


class TestSingleTable:
    def test_projection_and_filter(self, db):
        _, optimized = both_modes(
            db,
            "SELECT l_orderkey, l_extendedprice FROM lineitem"
            " WHERE l_shipdate < '1992-06-01'",
        )
        assert optimized.column_names == ["l_orderkey", "l_extendedprice"]
        assert len(optimized.rows) > 0

    def test_fully_pushed_aggregate(self, db):
        baseline, optimized = both_modes(
            db,
            "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem"
            " WHERE l_quantity < 24",
        )
        assert optimized.strategy == "optimized single-table"
        # Baseline moved the whole table; optimized returned one number.
        assert optimized.bytes_returned < baseline.bytes_transferred / 1000

    def test_avg_aggregate_runs_locally_but_matches(self, db):
        both_modes(db, "SELECT AVG(l_quantity) AS q FROM lineitem")

    def test_group_by_order_limit(self, db):
        baseline, optimized = both_modes(
            db,
            "SELECT l_returnflag, SUM(l_quantity) AS q, COUNT(*) AS n"
            " FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag",
        )
        assert optimized.column_names == ["l_returnflag", "q", "n"]

    def test_order_by_unselected_column(self, db):
        """SQL allows ORDER BY keys outside the select list; projection
        must defer until after the sort so the key stays in scope."""
        baseline, optimized = both_modes(
            db,
            "SELECT l_orderkey FROM lineitem ORDER BY l_extendedprice LIMIT 5",
        )
        assert optimized.column_names == ["l_orderkey"]
        assert len(optimized.rows) == 5
        with_price = db.execute(
            "SELECT l_orderkey, l_extendedprice FROM lineitem"
            " ORDER BY l_extendedprice LIMIT 5"
        )
        assert optimized.rows == [(r[0],) for r in with_price.rows]

    def test_order_by_mixes_alias_and_unselected_column(self, db):
        """ORDER BY may mix an output alias with a hidden raw column."""
        baseline, optimized = both_modes(
            db,
            "SELECT l_orderkey AS k FROM lineitem"
            " ORDER BY l_extendedprice DESC, k LIMIT 4",
        )
        assert optimized.column_names == ["k"]
        assert len(optimized.rows) == 4

    def test_order_by_alias_inside_expression(self, db):
        """Aliases resolve even inside composite ORDER BY expressions."""
        _, optimized = both_modes(
            db,
            "SELECT l_orderkey AS k FROM lineitem"
            " ORDER BY k + l_tax LIMIT 3",
        )
        assert optimized.column_names == ["k"]
        assert len(optimized.rows) == 3

    def test_order_by_limit_uses_topk(self, db):
        baseline, optimized = both_modes(
            db,
            "SELECT l_orderkey, l_extendedprice FROM lineitem"
            " ORDER BY l_extendedprice LIMIT 7",
        )
        assert len(optimized.rows) == 7
        prices = [r[1] for r in optimized.rows]
        assert prices == sorted(prices)

    def test_select_star(self, db):
        _, optimized = both_modes(
            db, "SELECT * FROM customer WHERE c_acctbal <= -990"
        )
        assert optimized.column_names == list(CUSTOMER_SCHEMA.names)

    def test_unknown_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM nope")

    def test_unknown_mode_rejected(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT * FROM customer", mode="turbo")


class TestJoins:
    def test_aggregate_join(self, db):
        both_modes(
            db,
            "SELECT SUM(o_totalprice) AS t FROM customer, orders"
            " WHERE c_custkey = o_custkey AND c_acctbal <= -900",
        )

    def test_join_with_group_by(self, db):
        baseline, optimized = both_modes(
            db,
            "SELECT c_mktsegment, COUNT(*) AS n FROM customer, orders"
            " WHERE c_custkey = o_custkey AND o_orderdate < '1993-01-01'"
            " GROUP BY c_mktsegment ORDER BY c_mktsegment",
        )
        assert len(optimized.rows) == 5  # five market segments

    def test_join_key_order_irrelevant(self, db):
        a = db.execute(
            "SELECT COUNT(*) AS n FROM customer, orders WHERE c_custkey = o_custkey"
        )
        b = db.execute(
            "SELECT COUNT(*) AS n FROM customer, orders WHERE o_custkey = c_custkey"
        )
        assert a.rows == b.rows

    def test_residual_cross_table_predicate(self, db):
        both_modes(
            db,
            "SELECT COUNT(*) AS n FROM customer, orders"
            " WHERE c_custkey = o_custkey AND c_acctbal < o_totalprice / 100",
        )

    def test_bloom_used_for_selective_builds(self, db):
        execution = db.execute(
            "SELECT SUM(o_totalprice) AS t FROM customer, orders"
            " WHERE c_custkey = o_custkey AND c_acctbal <= -950",
            mode="optimized",
        )
        # The Bloom-filtered probe scan must return far less than the
        # whole orders table.
        assert execution.bytes_returned < db.table("orders").total_bytes / 3

    def test_cross_product_fallback_for_missing_join_condition(self, db):
        """Two tables without an equi-join now run as a guarded cross
        product (both modes agree with each other)."""
        baseline, optimized = both_modes(
            db,
            "SELECT COUNT(*) AS n FROM customer, orders"
            " WHERE c_acctbal <= -998",
        )
        assert "multi-join" in optimized.strategy
        n_matching = db.execute(
            "SELECT COUNT(*) AS n FROM customer WHERE c_acctbal <= -998"
        ).rows[0][0]
        assert optimized.rows[0][0] == n_matching * db.table("orders").num_rows

    def test_large_cross_product_rejected(self, db):
        """The cross-product fallback is guarded by an estimated-rows
        cap; big disconnected FROM lists still fail to plan."""
        with pytest.raises(PlanError, match="connect"):
            db.execute("SELECT COUNT(*) AS n FROM customer, lineitem")


class TestMultiwayJoins:
    SQL3 = (
        "SELECT c_mktsegment, SUM(l_extendedprice) AS revenue"
        " FROM customer, orders, lineitem"
        " WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
        " AND o_orderdate < '1995-01-01'"
        " GROUP BY c_mktsegment ORDER BY c_mktsegment"
    )

    def test_three_way_join_modes_agree(self, db):
        baseline, optimized = both_modes(db, self.SQL3)
        assert "multi-join" in optimized.strategy
        assert len(optimized.rows) == 5  # five market segments

    def test_three_way_auto_matches(self, db):
        auto = db.execute(self.SQL3, mode="auto")
        fixed = db.execute(self.SQL3, mode="optimized")
        assert_rows_close(auto.rows, fixed.rows)
        summary = auto.details["optimizer"]
        assert summary["picked"] in ("baseline", "optimized")
        assert summary["join_orders"], "join-order candidates missing"
        assert any(c["picked"] for c in summary["join_orders"])

    def test_forced_orders_all_agree(self, db):
        from repro.optimizer.joinorder import (
            build_join_graph,
            enumerate_left_deep_orders,
        )
        from repro.planner.planner import execute_with_join_order
        from repro.sqlparser.parser import parse

        graph = build_join_graph(db.catalog, parse(self.SQL3))
        orders = enumerate_left_deep_orders(graph)
        assert len(orders) == 4  # chain c-o-l: o can never come last
        reference = None
        for order in orders:
            execution = execute_with_join_order(
                db.ctx, db.catalog, self.SQL3, order
            )
            if reference is None:
                reference = execution.rows
            else:
                assert_rows_close(execution.rows, reference)

    def test_three_way_order_by_unselected_column(self, db):
        baseline, optimized = both_modes(
            db,
            "SELECT o_orderkey FROM customer, orders, lineitem"
            " WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
            " ORDER BY l_extendedprice LIMIT 5",
        )
        assert optimized.column_names == ["o_orderkey"]
        assert len(optimized.rows) == 5

    def test_three_way_with_limit(self, db):
        baseline, optimized = both_modes(
            db,
            "SELECT o_orderkey, l_extendedprice FROM customer, orders, lineitem"
            " WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
            " ORDER BY l_extendedprice DESC, o_orderkey LIMIT 9",
        )
        assert len(optimized.rows) == 9

    def test_three_way_residual_predicate(self, db):
        both_modes(
            db,
            "SELECT COUNT(*) AS n FROM customer, orders, lineitem"
            " WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
            " AND c_acctbal < o_totalprice / 100",
        )

    def test_explain_lists_join_orders(self, db):
        report = db.explain(self.SQL3)
        assert "join-order search" in report
        assert "->" in report

    def test_cross_join_rejected(self, db):
        with pytest.raises(PlanError, match="connect"):
            db.execute(
                "SELECT COUNT(*) AS n FROM customer, orders, lineitem"
                " WHERE c_custkey = o_custkey"
            )

    def test_duplicate_from_table_rejected(self, db):
        with pytest.raises(PlanError, match="duplicate table"):
            db.execute(
                "SELECT COUNT(*) AS n FROM customer, orders, customer"
                " WHERE c_custkey = o_custkey"
            )

    def test_two_table_path_unchanged(self, db):
        """2-table queries must keep the pairwise planner's metering."""
        execution = db.execute(
            "SELECT COUNT(*) AS n FROM customer, orders"
            " WHERE c_custkey = o_custkey"
        )
        assert execution.strategy == "optimized join"


class TestFacade:
    def test_table_names(self, db):
        assert set(db.table_names()) == {"lineitem", "customer", "orders"}

    def test_execution_reports_costs(self, db):
        execution = db.execute("SELECT COUNT(*) AS n FROM customer")
        assert execution.runtime_seconds > 0
        assert execution.cost.total > 0
        assert execution.num_requests > 0

    def test_calibration_changes_pricing(self):
        database = PushdownDB()
        gen = TpchGenerator(scale_factor=0.001)
        database.load_table("customer", gen.customer(), CUSTOMER_SCHEMA)
        scale = database.calibrate_to_paper_scale(10e9)
        assert 0 < scale < 1e-3
        assert database.ctx.pricing.select_scan_per_gb > 0.002
