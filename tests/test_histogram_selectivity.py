"""Equi-depth histograms + the 3VL selectivity bugfix sweep.

Pins the three estimator bugs this change fixed — negated BETWEEN and
LIKE ignoring NULL operands, and equality spreading the *full* non-NULL
mass over cold keys on hot-key tables — and demonstrates the headline
win: on the fig07 Zipf workload, range estimates from the equi-depth
histogram carry a far smaller Q-error than min/max interpolation.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.common.rng import np_rng
from repro.optimizer.selectivity import estimate_selectivity
from repro.optimizer.stats import (
    DEFAULT_MCV_SIZE,
    Histogram,
    TableStats,
    build_histogram,
    collect_table_stats,
)
from repro.sqlparser.parser import parse_expression
from repro.storage.schema import TableSchema
from repro.workloads.synthetic import groupby_schema, skewed_groupby_table
from repro.workloads.zipf import zipf_sample


def estimate(sql: str, stats: TableStats) -> float:
    return estimate_selectivity(parse_expression(sql), stats)


def without_histograms(stats: TableStats) -> TableStats:
    """The pre-histogram estimator: min/max interpolation + MCVs only."""
    return dataclasses.replace(
        stats,
        columns={
            name: dataclasses.replace(col, histogram=None)
            for name, col in stats.columns.items()
        },
    )


class TestHistogramBuild:
    def test_dense_integer_domain_is_exact(self):
        hist = build_histogram(list(range(100)))
        assert hist.total == 100
        assert len(hist.buckets) == 32
        assert hist.fraction("<", 40) == pytest.approx(0.40)
        assert hist.fraction("<=", 40) == pytest.approx(0.41)
        assert hist.fraction(">", 89) == pytest.approx(0.10)
        assert hist.fraction(">=", 0) == pytest.approx(1.0)

    def test_skewed_mass_lands_in_narrow_buckets(self):
        # 900 zeros + 100 spread values: min/max interpolation would put
        # only ~1% below 1; the equi-depth buckets isolate the spike.
        values = [0] * 900 + list(range(1, 101))
        hist = build_histogram(values)
        # (the one straddling bucket interpolates, hence the tolerance —
        # versus ~0.01 from min/max interpolation)
        assert hist.fraction("<=", 0) == pytest.approx(0.9, rel=0.05)
        assert hist.fraction("<", 1) == pytest.approx(0.9, rel=0.05)

    def test_non_numeric_and_empty_return_none(self):
        assert build_histogram([]) is None
        assert build_histogram(["a", "b"]) is None
        assert build_histogram([True, False]) is None
        assert build_histogram([1, "a"]) is None

    def test_incomparable_value_returns_none(self):
        hist = build_histogram([1, 2, 3])
        assert hist.fraction("<", "oops") is None
        assert hist.fraction("=", 2) is None  # only range ops

    def test_fewer_values_than_buckets(self):
        hist = build_histogram([5, 7], num_buckets=32)
        assert hist.total == 2
        assert hist.fraction("<=", 5) == pytest.approx(0.5)

    def test_single_valued_float_bucket(self):
        hist = Histogram(buckets=((2.5, 2.5, 4),), total=4)
        assert hist.fraction("<", 2.5) == pytest.approx(0.0)
        assert hist.fraction("<=", 2.5) == pytest.approx(1.0)


NULL_SCHEMA = TableSchema.of("v:float", "tag:str")

#: 8 non-NULL v values spanning [0, 10] plus 2 NULLs; tag has one NULL
#: and a repeated hot value.
NULL_ROWS = [
    (0.5, "alpha"),
    (1.5, "alpha"),
    (2.5, "alpha"),
    (4.5, "alpha"),
    (5.5, "alpha"),
    (7.5, "beta"),
    (9.5, "beta"),
    (10.0, None),
    (None, "gamma"),
    (None, "delta"),
]


@pytest.fixture(scope="module")
def null_stats() -> TableStats:
    return collect_table_stats(NULL_ROWS, NULL_SCHEMA)


class TestThreeValuedNegation:
    """NOT BETWEEN / NOT LIKE are never true for NULL operands, so their
    complement must be taken within the non-NULL fraction (0.8 for v,
    0.9 for tag) — not within 1.0."""

    def test_not_between_complement_is_non_null_mass(self, null_stats):
        inside = estimate("v BETWEEN 0 AND 11", null_stats)
        negated = estimate("v NOT BETWEEN 0 AND 11", null_stats)
        assert inside + negated == pytest.approx(0.8)
        # the pre-fix complement 1.0 - inside counted NULL rows as hits
        assert negated == pytest.approx(0.8 - inside)

    def test_not_between_clamps_at_zero(self, null_stats):
        assert estimate("v NOT BETWEEN -100 AND 100", null_stats) >= 0.0

    def test_not_like_prefix_pattern(self, null_stats):
        # prefix LIKE heuristic is 0.1; complement within tag's 0.9
        assert estimate(
            "tag NOT LIKE 'zzz%'", null_stats
        ) == pytest.approx(0.8)

    def test_not_like_exact_pattern_uses_mcvs(self, null_stats):
        # 'alpha' covers 5/10 rows; NOT LIKE gets 0.9 - 0.5, not 1 - 0.5
        assert estimate("tag LIKE 'alpha'", null_stats) == pytest.approx(0.5)
        assert estimate(
            "tag NOT LIKE 'alpha'", null_stats
        ) == pytest.approx(0.4)


ZIPF_ROWS = 8000
ZIPF_GROUPS = 100


@pytest.fixture(scope="module")
def zipf_column() -> list[int]:
    values = zipf_sample(ZIPF_GROUPS, 1.1, ZIPF_ROWS, np_rng(11))
    return [int(v) for v in values]


@pytest.fixture(scope="module")
def zipf_stats(zipf_column) -> TableStats:
    return collect_table_stats(
        [(v,) for v in zipf_column], TableSchema.of("g:int")
    )


class TestZipfEquality:
    """The MCV-miss path on a hot-key (Zipf) column."""

    def test_cold_key_estimate_pins_residual_mass(self, zipf_stats):
        col = zipf_stats.column("g")
        assert len(col.mcvs) == DEFAULT_MCV_SIZE
        mcv_values = {v for v, _ in col.mcvs}
        cold = next(v for v in range(ZIPF_GROUPS) if v not in mcv_values)
        expected = (
            1.0 - col.mcv_fraction(zipf_stats.row_count, len(col.mcvs))
        ) / (col.distinct - len(col.mcvs))
        assert estimate(f"g = {cold}", zipf_stats) == pytest.approx(expected)

    def test_cold_key_beats_average_frequency(self, zipf_stats, zipf_column):
        """The pre-fix fallback handed cold keys the table-average
        frequency 1/distinct — on Zipf(1.1) several times the true
        residual mass."""
        col = zipf_stats.column("g")
        mcv_values = {v for v, _ in col.mcvs}
        cold_true = [
            zipf_column.count(v) / len(zipf_column)
            for v in range(ZIPF_GROUPS)
            if v not in mcv_values and v in set(zipf_column)
        ]
        avg_cold = sum(cold_true) / len(cold_true)
        cold_key = next(
            v for v in sorted(set(zipf_column)) if v not in mcv_values
        )
        fixed = estimate(f"g = {cold_key}", zipf_stats)
        naive = 1.0 / col.distinct
        assert abs(fixed - avg_cold) < abs(naive - avg_cold)
        assert fixed < naive  # MCV mass no longer double-counted

    def test_hot_key_still_reads_mcv(self, zipf_stats, zipf_column):
        hottest = max(set(zipf_column), key=zipf_column.count)
        true_frac = zipf_column.count(hottest) / len(zipf_column)
        assert estimate(
            f"g = {hottest}", zipf_stats
        ) == pytest.approx(true_frac)


def q_error(estimated: float, actual: float, floor: float = 1e-4) -> float:
    est, act = max(estimated, floor), max(actual, floor)
    return max(est / act, act / est)


class TestFig07QError:
    """Acceptance gate: on the fig07 Zipf workload, range-predicate
    Q-error with histograms must beat the min/max-interpolation
    estimator the histograms replaced."""

    THETA = 1.2

    @pytest.fixture(scope="class")
    def workload(self):
        rows = skewed_groupby_table(
            4000, self.THETA, group_columns=2, value_columns=1, seed=7
        )
        schema = groupby_schema(group_columns=2, value_columns=1)
        return rows, collect_table_stats(rows, schema)

    def predicates(self):
        for cut in (0, 1, 2, 4, 8, 16, 32, 64):
            yield f"g0 <= {cut}", lambda r, c=cut: r[0] <= c
            yield f"g0 > {cut}", lambda r, c=cut: r[0] > c

    def test_histogram_improves_geometric_mean_q_error(self, workload):
        rows, stats = workload
        legacy = without_histograms(stats)
        log_hist, log_legacy = 0.0, 0.0
        count = 0
        for sql, truth in self.predicates():
            actual = sum(1 for r in rows if truth(r)) / len(rows)
            log_hist += math.log(q_error(estimate(sql, stats), actual))
            log_legacy += math.log(q_error(estimate(sql, legacy), actual))
            count += 1
        hist_q = math.exp(log_hist / count)
        legacy_q = math.exp(log_legacy / count)
        # Zipf(1.2) packs ~half the mass into the first few groups; the
        # linear interpolation smears it and lands far off.
        assert hist_q < legacy_q / 2
        assert hist_q < 1.5

    def test_head_cut_is_near_exact(self, workload):
        rows, stats = workload
        actual = sum(1 for r in rows if r[0] <= 0) / len(rows)
        assert actual > 0.25  # the Zipf head really is heavy
        assert q_error(estimate("g0 <= 0", stats), actual) < 1.1
        legacy = without_histograms(stats)
        assert q_error(estimate("g0 <= 0", legacy), actual) > 5.0
