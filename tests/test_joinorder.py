"""Unit tests for the join-graph builder and join-order search."""

from __future__ import annotations

import pytest

from repro.cloud.context import CloudContext
from repro.common.errors import PlanError
from repro.engine.catalog import Catalog, load_table
from repro.optimizer.joinorder import (
    DP_TABLE_LIMIT,
    JoinOrderSearch,
    build_join_graph,
    enumerate_left_deep_orders,
    needed_columns,
    plan_join_order,
)
from repro.sqlparser.parser import parse
from repro.storage.schema import TableSchema


def _load(ctx, catalog, name, columns, rows, partitions=2):
    schema = TableSchema.of(*columns)
    load_table(ctx, catalog, name, rows, schema, partitions=partitions)


@pytest.fixture()
def env():
    ctx = CloudContext()
    catalog = Catalog()
    _load(ctx, catalog, "a", ["a_id:int", "a_v:int"],
          [(i, i * 2) for i in range(8)])
    _load(ctx, catalog, "b", ["b_id:int", "b_a:int", "b_v:int"],
          [(i, i % 8, i) for i in range(40)])
    _load(ctx, catalog, "c", ["c_b:int", "c_v:str"],
          [(i % 40, f"s{i}") for i in range(120)])
    return ctx, catalog


class TestJoinGraph:
    def test_chain_graph(self, env):
        _, catalog = env
        query = parse(
            "SELECT COUNT(*) AS n FROM a, b, c"
            " WHERE a_id = b_a AND b_id = c_b AND a_v > 2 AND c_v <> 'x'"
        )
        graph = build_join_graph(catalog, query)
        assert graph.table_names() == ["a", "b", "c"]
        assert len(graph.edges) == 2
        assert graph.predicates["a"] is not None
        assert graph.predicates["b"] is None
        assert graph.predicates["c"] is not None
        assert graph.residual is None

    def test_duplicate_equality_becomes_residual(self, env):
        _, catalog = env
        query = parse(
            "SELECT COUNT(*) AS n FROM a, b"
            " WHERE a_id = b_a AND a_v = b_v"
        )
        graph = build_join_graph(catalog, query)
        assert len(graph.edges) == 1
        assert graph.residual is not None

    def test_qualified_columns_resolve(self, env):
        _, catalog = env
        query = parse(
            "SELECT COUNT(*) AS n FROM a, b, c"
            " WHERE a.a_id = b.b_a AND b.b_id = c.c_b"
        )
        graph = build_join_graph(catalog, query)
        assert len(graph.edges) == 2

    def test_qualified_column_typo_fails_fast(self, env):
        """A qualifier naming a FROM table whose schema lacks the column
        must fail at graph build, not deep inside execution."""
        _, catalog = env
        query = parse(
            "SELECT COUNT(*) AS n FROM a, b, c"
            " WHERE a.b_a = b.b_a AND b_id = c_b"
        )
        with pytest.raises(PlanError, match="has no column"):
            build_join_graph(catalog, query)

    def test_disconnected_graph_reports_components(self, env):
        _, catalog = env
        query = parse("SELECT COUNT(*) AS n FROM a, b, c WHERE a_id = b_a")
        graph = build_join_graph(catalog, query)
        assert graph.connected_components() == [["a", "b"], ["c"]]
        assert not graph.is_connected()

    def test_small_disconnected_plans_as_cross_product(self, env):
        from repro.planner.physical import CrossProductNode

        ctx, catalog = env
        query = parse("SELECT COUNT(*) AS n FROM a, b, c WHERE a_id = b_a")
        decision = plan_join_order(ctx, catalog, query)
        assert isinstance(decision.tree, CrossProductNode)
        assert decision.method.endswith("+cross")

    def test_large_cross_product_rejected(self, env, monkeypatch):
        from repro.optimizer import joinorder

        ctx, catalog = env
        monkeypatch.setattr(joinorder, "CROSS_PRODUCT_LIMIT", 10.0)
        query = parse("SELECT COUNT(*) AS n FROM a, b, c WHERE a_id = b_a")
        with pytest.raises(PlanError, match="connect"):
            plan_join_order(ctx, catalog, query)

    def test_needed_columns_include_join_keys(self, env):
        _, catalog = env
        query = parse(
            "SELECT a_v FROM a, b, c WHERE a_id = b_a AND b_id = c_b"
        )
        graph = build_join_graph(catalog, query)
        needed = needed_columns(graph, query)
        assert needed["a"] == ["a_id", "a_v"]
        assert needed["b"] == ["b_id", "b_a"]
        assert needed["c"] == ["c_b"]


class TestSearch:
    def test_dp_orders_are_connected(self, env):
        ctx, catalog = env
        query = parse(
            "SELECT COUNT(*) AS n FROM a, b, c"
            " WHERE a_id = b_a AND b_id = c_b"
        )
        decision = plan_join_order(ctx, catalog, query)
        assert decision.method == "dp"
        graph = decision.graph
        order = decision.order
        assert sorted(order) == ["a", "b", "c"]
        for i in range(1, len(order)):
            assert graph.edges_between(order[i], set(order[:i]))
        # Candidate table covers the top-level expansions and marks one.
        table = decision.candidate_table()
        assert any(row["picked"] for row in table)

    def test_dp_pick_is_minimal_over_all_orders(self, env):
        ctx, catalog = env
        query = parse(
            "SELECT COUNT(*) AS n FROM a, b, c"
            " WHERE a_id = b_a AND b_id = c_b AND a_v < 6"
        )
        graph = build_join_graph(catalog, query)
        decision = plan_join_order(ctx, catalog, query, graph=graph)
        search = JoinOrderSearch(ctx, catalog, graph, query)
        exhaustive = min(
            search.price_order(order).total_cost
            for order in enumerate_left_deep_orders(graph)
        )
        assert decision.estimate.total_cost <= exhaustive * (1 + 1e-12)

    def test_enumerate_left_deep_orders_chain(self, env):
        ctx, catalog = env
        query = parse(
            "SELECT COUNT(*) AS n FROM a, b, c"
            " WHERE a_id = b_a AND b_id = c_b"
        )
        graph = build_join_graph(catalog, query)
        orders = enumerate_left_deep_orders(graph)
        # b (the middle of the chain) can never be joined last.
        assert all(o[-1] != "b" for o in orders)
        assert len(orders) == 4

    def test_estimates_price_through_context(self, env):
        ctx, catalog = env
        query = parse(
            "SELECT COUNT(*) AS n FROM a, b, c"
            " WHERE a_id = b_a AND b_id = c_b"
        )
        decision = plan_join_order(ctx, catalog, query)
        assert decision.estimate.runtime_seconds > 0
        assert decision.estimate.total_cost > 0
        assert decision.baseline.bytes_transferred > 0
        assert decision.estimate.bytes_scanned > 0

    def test_greedy_fallback_above_dp_limit(self):
        ctx = CloudContext()
        catalog = Catalog()
        n = DP_TABLE_LIMIT + 1
        names = [f"t{i}" for i in range(n)]
        for i, name in enumerate(names):
            _load(ctx, catalog, name, [f"t{i}_k:int", f"t{i}_v:int"],
                  [(j, j + i) for j in range(10 + i)], partitions=1)
        conds = " AND ".join(
            f"t{i}_k = t{i + 1}_k" for i in range(n - 1)
        )
        query = parse(f"SELECT COUNT(*) AS n FROM {', '.join(names)}"
                      f" WHERE {conds}")
        decision = plan_join_order(ctx, catalog, query)
        assert decision.method == "greedy"
        assert sorted(decision.order) == sorted(names)
        graph = decision.graph
        for i in range(1, n):
            assert graph.edges_between(
                decision.order[i], set(decision.order[:i])
            )

    def test_price_order_bloom_reduces_returned_bytes(self, env):
        ctx, catalog = env
        query = parse(
            "SELECT COUNT(*) AS n FROM a, c, b"
            " WHERE a_id = b_a AND b_id = c_b AND a_v < 4"
        )
        graph = build_join_graph(catalog, query)
        search = JoinOrderSearch(ctx, catalog, graph, query)
        with_bloom = search.price_order(["a", "b", "c"])
        assert with_bloom.notes["order"] == ["a", "b", "c"]
        assert with_bloom.bytes_returned < search.price_baseline(
            ["a", "b", "c"]
        ).bytes_transferred


class TestBushySearch:
    """The DP enumerates subset *pairs*, so bushy trees are reachable."""

    @pytest.fixture(scope="class")
    def snowflake(self):
        from repro.workloads.synthetic import (
            SNOWFLAKE_SCHEMAS,
            snowflake_tables,
        )

        from repro.experiments.harness import calibrate_tables

        ctx = CloudContext()
        catalog = Catalog()
        # Default partitioning, as in the fig13 harness: with very few
        # partitions the serial per-stream scan time dominates and the
        # returned-bytes advantage of bushy plans stops mattering.
        for name, rows in snowflake_tables(fact_rows=9000, seed=7).items():
            load_table(ctx, catalog, name, rows, SNOWFLAKE_SCHEMAS[name])
        # Paper-scale calibration: byte costs dominate the fixed
        # per-request terms, as in the fig13 harness.
        calibrate_tables(
            ctx, catalog, ["fact", "dim1", "sub1", "dim2", "sub2"], 10e9
        )
        sql = (
            "SELECT SUM(f_v) AS total FROM fact, dim1, sub1, dim2, sub2"
            " WHERE f_d1 = d1_id AND d1_s1 = s1_id AND f_d2 = d2_id"
            " AND d2_s2 = s2_id AND s1_attr < 10 AND s2_attr < 10"
        )
        return ctx, catalog, parse(sql)

    def test_dp_picks_a_bushy_tree_on_snowflakes(self, snowflake):
        from repro.planner import physical

        ctx, catalog, query = snowflake
        decision = plan_join_order(ctx, catalog, query)
        assert not physical.is_left_deep(decision.tree)
        assert "><" in physical.join_tree_label(decision.tree)

    def test_bushy_estimate_beats_every_left_deep_order(self, snowflake):
        ctx, catalog, query = snowflake
        graph = build_join_graph(catalog, query)
        decision = plan_join_order(ctx, catalog, query, graph=graph)
        search = JoinOrderSearch(ctx, catalog, graph, query)
        best_left_deep = min(
            search.price_order(order).total_cost
            for order in enumerate_left_deep_orders(graph)
        )
        assert decision.estimate.total_cost < best_left_deep

    def test_inner_probe_scans_carry_bloom_estimates(self, snowflake):
        """price/execution symmetry: probe-side leaf scans below the
        root join are Bloom-annotated when the build key is an int."""
        from repro.planner.physical import HashJoinNode, ScanNode

        ctx, catalog, query = snowflake
        decision = plan_join_order(ctx, catalog, query)
        bloomed = []

        def walk(node):
            if isinstance(node, HashJoinNode):
                if isinstance(node.probe, ScanNode) and node.bloom:
                    bloomed.append(node.probe.table.name)
                walk(node.build)
                walk(node.probe)

        walk(decision.tree)
        assert len(bloomed) >= 2  # both dims (and the fact) get one
