"""Shared fixtures: a small TPC-H dataset loaded into a fresh context."""

from __future__ import annotations

import pytest

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog
from repro.queries.dataset import load_tpch
from repro.workloads.tpch import TpchGenerator

TEST_SCALE_FACTOR = 0.002


@pytest.fixture(scope="session")
def tpch_rows():
    """Generated TPC-H rows shared across the whole test session."""
    gen = TpchGenerator(scale_factor=TEST_SCALE_FACTOR)
    return {
        name: gen.table(name)
        for name in ("customer", "orders", "lineitem", "part")
    }


@pytest.fixture()
def ctx():
    return CloudContext()


@pytest.fixture(scope="module")
def tpch_env():
    """(ctx, catalog) with the four main TPC-H tables loaded.

    Module-scoped: loading is the expensive part and queries do not
    mutate data.  Tests needing isolation create their own context.
    """
    ctx = CloudContext()
    catalog = Catalog()
    load_tpch(
        ctx,
        catalog,
        TEST_SCALE_FACTOR,
        index_columns={"customer": ["c_custkey", "c_acctbal"]},
    )
    return ctx, catalog
