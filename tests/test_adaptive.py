"""Tests for mid-flight adaptive join re-optimization (``mode="adaptive"``).

The contract under test, matching the PR's acceptance criteria:

* estimates within the Q-error threshold execute **byte-identically**
  (rows, bytes, requests, runtime, cost) to the static optimized plan;
* misestimated builds (the correlated-predicate star) fire a re-plan
  that never measures worse than the static plan and wins at least one
  swept point;
* re-planning never changes result rows;
* the ``adaptive_threshold`` knob gates firing.
"""

import pytest

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog, load_table
from repro.planner.database import PushdownDB
from repro.planner.planner import plan_and_execute
from repro.workloads.synthetic import (
    CORRELATED_STAR_SCHEMAS,
    correlated_star_tables,
)
from repro.workloads.tpch import TABLE_SCHEMAS, TpchGenerator

STAR_TABLES = ("fact", "dima", "dimb", "dimc")

METERED = (
    "num_requests", "bytes_scanned", "bytes_returned", "bytes_transferred",
    "runtime_seconds",
)


def star_session(fact_rows=4000, seed=11, threshold=None):
    ctx = CloudContext(adaptive_threshold=threshold)
    catalog = Catalog()
    tables = correlated_star_tables(fact_rows, seed=seed)
    for name in STAR_TABLES:
        load_table(
            ctx, catalog, name, tables[name], CORRELATED_STAR_SCHEMAS[name]
        )
    return ctx, catalog


def star_sql(t, b=12):
    return (
        "SELECT SUM(f_v) AS total FROM fact, dima, dimb, dimc"
        " WHERE f_a = a_id AND f_b = b_id AND f_c = c_id"
        f" AND a_x < {t} AND a_y < {t} AND b_sel < {b}"
    )


def tpch_session(scale=0.002):
    gen = TpchGenerator(scale_factor=scale)
    db = PushdownDB()
    for table in ("customer", "orders", "lineitem"):
        db.load_table(table, gen.table(table), TABLE_SCHEMAS[table])
    return db


def assert_byte_identical(a, b):
    assert a.rows == b.rows
    for metric in METERED:
        assert getattr(a, metric) == getattr(b, metric), metric
    assert a.cost.total == b.cost.total


class TestByteIdentity:
    def test_accurate_estimates_match_static_plan(self):
        """TPC-H uniform keys estimate well: adaptive == optimized."""
        sql = (
            "SELECT SUM(l_extendedprice) FROM customer, orders, lineitem"
            " WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
            " AND o_orderdate < '1995-06-01'"
        )
        static = tpch_session().execute(sql, mode="optimized")
        adaptive = tpch_session().execute(sql, mode="adaptive")
        assert_byte_identical(static, adaptive)
        assert adaptive.details["adaptive"]["replans"] == 0

    def test_huge_threshold_disables_replanning(self):
        """Even the adversarial workload executes identically when the
        knob is slack — the wrapper alone must not change metering."""
        sql = star_sql(15)
        ctx_s, cat_s = star_session()
        static = plan_and_execute(ctx_s, cat_s, sql, mode="optimized")
        ctx_a, cat_a = star_session(threshold=1e9)
        adaptive = plan_and_execute(ctx_a, cat_a, sql, mode="adaptive")
        assert_byte_identical(static, adaptive)
        assert adaptive.details["adaptive"]["replans"] == 0

    def test_pairwise_and_single_table_pass_through(self):
        """< 3 relations: nothing to reorder; plans equal optimized."""
        for sql in (
            "SELECT COUNT(*) AS n FROM orders WHERE o_totalprice < 1000",
            "SELECT COUNT(*) AS n FROM customer, orders"
            " WHERE c_custkey = o_custkey AND c_acctbal > 0",
        ):
            static = tpch_session().execute(sql, mode="optimized")
            adaptive = tpch_session().execute(sql, mode="adaptive")
            assert_byte_identical(static, adaptive)
            assert "adaptive" not in adaptive.details

    def test_threshold_knob_validated(self):
        with pytest.raises(ValueError):
            CloudContext(adaptive_threshold=0.5)

    def test_threshold_knob_validated_at_facade(self):
        """PushdownDB forwards the knob to CloudContext's validation —
        a sub-1.0 Q-error bound must fail at construction, not at the
        first adaptive execution."""
        from repro.planner.database import PushdownDB

        with pytest.raises(ValueError):
            PushdownDB(adaptive_threshold=0.99)
        # The boundary itself is legal: Q-error 1.0 means "re-plan on
        # any misestimate at all".
        assert PushdownDB(adaptive_threshold=1.0).ctx.adaptive_threshold == 1.0

    def test_cyclic_extra_edges_do_not_fire_spuriously(self):
        """A join whose subtree defers an extra equi edge to the residual
        emits pre-residual rows; the trigger must compare against the
        commensurate estimate, not the all-edges one, or every
        accurately-planned cyclic query would re-plan for nothing."""
        from repro.storage.schema import TableSchema

        def session():
            ctx, catalog = CloudContext(), Catalog()
            schemas = {
                "ta": TableSchema.of("a1:int", "a3:int"),
                "tb": TableSchema.of("b1:int", "b2:int"),
                "tc": TableSchema.of("c2:int", "c3:int", "c4:int"),
                "td": TableSchema.of("d4:int", "d_v:int"),
            }
            rows = {
                "ta": [(i % 7, i % 5) for i in range(60)],
                "tb": [(i % 7, i % 6) for i in range(50)],
                "tc": [(i % 6, i % 5, i % 4) for i in range(40)],
                "td": [(i % 4, i) for i in range(30)],
            }
            for name, schema in schemas.items():
                load_table(ctx, catalog, name, rows[name], schema, partitions=2)
            return ctx, catalog

        sql = (
            "SELECT COUNT(*) AS n FROM ta, tb, tc, td"
            " WHERE a1 = b1 AND b2 = c2 AND a3 = c3 AND c4 = d4"
        )
        ctx_s, cat_s = session()
        static = plan_and_execute(ctx_s, cat_s, sql, mode="optimized")
        ctx_a, cat_a = session()
        adaptive = plan_and_execute(ctx_a, cat_a, sql, mode="adaptive")
        details = adaptive.details["adaptive"]
        # Uniform keys estimate well: no event may report a blow-up just
        # because an extra edge was deferred, and nothing re-plans.
        assert all(e["q_error"] < 2.0 for e in details["events"])
        assert details["replans"] == 0
        assert_byte_identical(static, adaptive)


class TestReplanning:
    def test_correlated_predicates_fire_and_win(self):
        """The quadratic underestimate fires a re-plan that beats the
        static plan on measured cost and runtime, same result rows."""
        sql = star_sql(15)
        ctx_s, cat_s = star_session()
        static = plan_and_execute(ctx_s, cat_s, sql, mode="optimized")
        ctx_a, cat_a = star_session()
        adaptive = plan_and_execute(ctx_a, cat_a, sql, mode="adaptive")
        details = adaptive.details["adaptive"]
        assert details["replans"] >= 1
        fired = [e for e in details["events"] if e["replanned"]]
        assert fired and fired[0]["q_error"] > 2.0
        assert "old_tree" in fired[0] and "new_tree" in fired[0]
        assert adaptive.rows[0][0] == pytest.approx(static.rows[0][0])
        assert adaptive.cost.total < static.cost.total
        assert adaptive.runtime_seconds < static.runtime_seconds
        # Billed scan bytes never shrink (every table is still scanned
        # once); the win comes from returned bytes and local work.
        assert adaptive.bytes_scanned == static.bytes_scanned
        assert adaptive.num_requests == static.num_requests

    def test_replanned_session_plans_statically_next_time(self):
        """After one adaptive run the session's feedback makes the plain
        optimized planner pick the corrected tree up front."""
        sql = star_sql(15)
        ctx, catalog = star_session()
        adaptive = plan_and_execute(ctx, catalog, sql, mode="adaptive")
        assert adaptive.details["adaptive"]["replans"] >= 1
        warm = plan_and_execute(ctx, catalog, sql, mode="optimized")
        assert warm.rows[0][0] == pytest.approx(adaptive.rows[0][0])
        assert warm.cost.total <= adaptive.cost.total * (1 + 1e-9)
        # And a warm *adaptive* run has nothing left to correct.
        warm_adaptive = plan_and_execute(ctx, catalog, sql, mode="adaptive")
        assert warm_adaptive.details["adaptive"]["replans"] == 0

    def test_replan_events_are_reported(self):
        ctx, catalog = star_session()
        execution = plan_and_execute(ctx, catalog, star_sql(15), mode="adaptive")
        details = execution.details["adaptive"]
        assert details["threshold"] == pytest.approx(2.0)
        for event in details["events"]:
            assert set(event) >= {
                "tables", "est_rows", "actual_rows", "q_error", "replanned"
            }
        # The executed plan tree renders the spliced shape.
        assert "adaptive [threshold=2 replans=" in execution.details["plan"]
        assert "materialized[" in execution.details["plan"]

    def test_forced_shape_still_adapts(self):
        """Experiment-forced trees (execute_with_join_tree) adapt too."""
        from repro.planner.planner import build_plan, execute_plan
        from repro.sqlparser.parser import parse

        sql = star_sql(15)
        ctx_s, cat_s = star_session()
        static_plan = build_plan(ctx_s, cat_s, parse(sql), "optimized")
        shape_label = static_plan.strategy
        del shape_label
        static = plan_and_execute(ctx_s, cat_s, sql, mode="optimized")
        ctx, catalog = star_session()
        from repro.planner import physical

        plan = build_plan(ctx, catalog, parse(sql), "adaptive")
        assert isinstance(plan.adaptive_node, physical.AdaptiveJoinNode)
        execution = execute_plan(ctx, plan)
        assert execution.rows[0][0] == pytest.approx(static.rows[0][0])
