"""Physical-plan IR tests: golden EXPLAIN snapshots + bushy differentials.

The golden strings pin the rendered operator trees (shape, pushdown
annotations, Bloom placement, per-node est_rows/est_cost) for every plan
family: single-table, pairwise, left-deep, bushy, cross-product.  A
shape or annotation regression shows up as a readable diff.  The
differential tests assert that bushy trees, forced left-deep orders and
the auto planner all produce identical row sets on snowflake-shaped
queries, and that executions record per-node estimate-vs-actual
cardinalities.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.planner import physical
from repro.planner.database import PushdownDB
from repro.planner.planner import (
    build_plan,
    execute_with_join_order,
    execute_with_join_tree,
)
from repro.sqlparser.parser import parse
from repro.storage.schema import TableSchema
from repro.workloads.synthetic import SNOWFLAKE_SCHEMAS, snowflake_tables

SNOWFLAKE_SQL = (
    "SELECT SUM(f_v) AS total FROM fact, dim1, sub1, dim2, sub2"
    " WHERE f_d1 = d1_id AND d1_s1 = s1_id AND f_d2 = d2_id"
    " AND d2_s2 = s2_id AND s1_attr < 10 AND s2_attr < 10"
)

BUSHY_SHAPE = [
    "hash",
    ["hash", "sub1", "dim1"],
    ["hash", ["hash", "sub2", "dim2"], "fact"],
]


@pytest.fixture(scope="module")
def db():
    database = PushdownDB()
    tables = snowflake_tables(fact_rows=800, seed=3)
    for name, rows in tables.items():
        database.load_table(name, rows, SNOWFLAKE_SCHEMAS[name], partitions=2)
    database.load_table(
        "tiny", [(i, i % 5, float(i)) for i in range(20)],
        TableSchema.of("y_id:int", "y_g:int", "y_v:float"), partitions=2,
    )
    return database


def rendered(db, sql, mode="optimized", shape=None) -> str:
    plan = build_plan(db.ctx, db.catalog, parse(sql), mode, shape=shape)
    return plan.describe()


class TestGoldenPlans:
    """Exact rendered-tree snapshots, one per plan family."""

    def test_single_table(self, db):
        assert rendered(
            db,
            "SELECT s1_id, s1_attr FROM sub1 WHERE s1_attr < 10"
            " ORDER BY s1_attr",
        ) == textwrap.dedent("""\
            sort [s1_attr ASC]
            `- project [s1_id, s1_attr]
               `- scan sub1 [select] cols=2 pred=((s1_attr < 10)) partitions pruned: 1/2  (est_rows=3.0, est_cost=$1.22256e-05)""")

    def test_pairwise_join(self, db):
        assert rendered(
            db,
            "SELECT COUNT(*) AS n FROM sub1, dim1"
            " WHERE s1_id = d1_s1 AND s1_attr < 10",
        ) == textwrap.dedent("""\
            group-by [-] aggs=1
            `- hash-join [s1_id = d1_s1] streamed  (est_rows=12.6, est_cost=$2.48917e-05)
               +- build: scan sub1 [select] cols=1 pred=((s1_attr < 10)) partitions pruned: 1/2  (est_rows=3.0, est_cost=$1.22256e-05)
               `- probe: scan dim1 [select+bloom(d1_s1)] cols=1  (est_rows=13.3, est_cost=$1.26661e-05)""")

    def test_left_deep_chain(self, db):
        """A forced left-deep order renders as a probe-side spine with a
        Bloom on the inner probe scan — the pre-IR executor could not
        bloom that scan at all."""
        plan = build_plan(
            db.ctx, db.catalog,
            parse(
                "SELECT SUM(f_v) AS total FROM fact, dim1, sub1"
                " WHERE f_d1 = d1_id AND d1_s1 = s1_id AND s1_attr < 10"
            ),
            "optimized", force_order=["sub1", "dim1", "fact"],
        )
        assert plan.describe() == textwrap.dedent("""\
            group-by [-] aggs=1
            `- hash-join [d1_id = f_d1] streamed  (est_rows=126.3, est_cost=$3.81894e-05)
               +- build: hash-join [s1_id = d1_s1]  (est_rows=12.6, est_cost=$2.48917e-05)
               |  +- build: scan sub1 [select] cols=1 pred=((s1_attr < 10)) partitions pruned: 1/2  (est_rows=3.0, est_cost=$1.22256e-05)
               |  `- probe: scan dim1 [select+bloom(d1_s1)] cols=2  (est_rows=13.3, est_cost=$1.26661e-05)
               `- probe: scan fact [select+bloom(f_d1)] cols=2  (est_rows=133.1, est_cost=$1.32977e-05)""")

    def test_bushy_tree(self, db):
        assert rendered(
            db, SNOWFLAKE_SQL, shape=BUSHY_SHAPE,
        ) == textwrap.dedent("""\
            group-by [-] aggs=1
            `- hash-join [d1_id = f_d1] streamed  (est_rows=0.0, est_cost=$6.31108e-05)
               +- build: hash-join [s1_id = d1_s1]  (est_rows=12.6, est_cost=$2.48917e-05)
               |  +- build: scan sub1 [select] cols=1 pred=((s1_attr < 10)) partitions pruned: 1/2  (est_rows=3.0, est_cost=$1.22256e-05)
               |  `- probe: scan dim1 [select+bloom(d1_s1)] cols=2  (est_rows=13.3, est_cost=$1.26661e-05)
               `- probe: hash-join [d2_id = f_d2]  (est_rows=0.0, est_cost=$3.82191e-05)
                  +- build: hash-join [s2_id = d2_s2]  (est_rows=0.0, est_cost=$2.49223e-05)
                  |  +- build: scan sub2 [select] cols=1 pred=((s2_attr < 10)) partitions pruned: 1/2  (est_rows=0.0, est_cost=$1.22267e-05)
                  |  `- probe: scan dim2 [select+bloom(d2_s2)] cols=2  (est_rows=6.4, est_cost=$1.26956e-05)
                  `- probe: scan fact [select+bloom(f_d2)] cols=3  (est_rows=14.0, est_cost=$1.32968e-05)""")

    def test_cross_product(self, db):
        assert rendered(
            db, "SELECT COUNT(*) AS n FROM sub1, tiny WHERE s1_attr < 5",
        ) == textwrap.dedent("""\
            group-by [-] aggs=1
            `- cross-product streamed  (est_rows=40.0, est_cost=$2.48538e-05)
               +- build: scan sub1 [select] cols=1 pred=((s1_attr < 5)) partitions pruned: 1/2  (est_rows=2.0, est_cost=$1.22256e-05)
               `- probe: scan tiny [select] cols=1  (est_rows=20.0, est_cost=$1.26274e-05)""")

    def test_baseline_plan_uses_get_scans(self, db):
        text = rendered(
            db,
            "SELECT COUNT(*) AS n FROM sub1, dim1"
            " WHERE s1_id = d1_s1 AND s1_attr < 10",
            mode="baseline",
        )
        assert "[get]" in text
        assert "bloom" not in text


class TestShapeRoundTrip:
    def test_serialize_rebuild_is_stable(self, db):
        query = parse(SNOWFLAKE_SQL)
        plan = build_plan(db.ctx, db.catalog, query, "optimized",
                          shape=BUSHY_SHAPE)
        join_root = plan.root
        while not isinstance(join_root, physical.HashJoinNode):
            join_root = join_root.children()[0]
        assert physical.serialize_shape(join_root) == BUSHY_SHAPE
        assert not physical.is_left_deep(join_root)
        assert physical.join_tree_label(join_root) == (
            "((sub1 >< dim1) >< ((sub2 >< dim2) >< fact))"
        )

    def test_left_deep_label_and_order(self, db):
        plan = build_plan(
            db.ctx, db.catalog,
            parse(
                "SELECT SUM(f_v) AS total FROM fact, dim1, sub1"
                " WHERE f_d1 = d1_id AND d1_s1 = s1_id AND s1_attr < 10"
            ),
            "optimized", force_order=["sub1", "dim1", "fact"],
        )
        join_root = plan.root
        while not isinstance(join_root, physical.HashJoinNode):
            join_root = join_root.children()[0]
        assert physical.is_left_deep(join_root)
        assert physical.join_leaf_order(join_root) == ["sub1", "dim1", "fact"]
        assert physical.join_tree_label(join_root) == "sub1 >< dim1 >< fact"


class TestBushyDifferential:
    """Bushy, left-deep and auto plans must agree row-for-row."""

    def test_bushy_matches_every_left_deep_order(self, db):
        from repro.optimizer.joinorder import (
            build_join_graph,
            enumerate_left_deep_orders,
        )

        graph = build_join_graph(db.catalog, parse(SNOWFLAKE_SQL))
        bushy = execute_with_join_tree(
            db.ctx, db.catalog, SNOWFLAKE_SQL, BUSHY_SHAPE
        )
        orders = enumerate_left_deep_orders(graph)
        assert len(orders) == 16  # 5-node path graph: 2^4 interval orders
        for order in orders:
            forced = execute_with_join_order(
                db.ctx, db.catalog, SNOWFLAKE_SQL, order
            )
            assert forced.rows[0][0] == pytest.approx(bushy.rows[0][0])

    def test_bushy_matches_baseline_and_auto(self, db):
        bushy = execute_with_join_tree(
            db.ctx, db.catalog, SNOWFLAKE_SQL, BUSHY_SHAPE
        )
        for mode in ("baseline", "auto"):
            execution = db.execute(SNOWFLAKE_SQL, mode=mode)
            assert execution.rows[0][0] == pytest.approx(bushy.rows[0][0])

    def test_bushy_blooms_both_dimension_scans(self, db):
        """The snowflake payoff: both dims Bloom-reduced by their own
        filtered sub-dimension, which no left-deep order achieves."""
        bushy = execute_with_join_tree(
            db.ctx, db.catalog, SNOWFLAKE_SQL, BUSHY_SHAPE
        )
        bloomed = [
            r["node"] for r in bushy.details["actuals"]
            if "bloom" in r["node"] and "dim" in r["node"]
        ]
        assert len(bloomed) == 2


class TestActualsFeedback:
    def test_actuals_recorded_with_q_error(self, db):
        execution = db.execute(
            "SELECT COUNT(*) AS n FROM sub1, dim1"
            " WHERE s1_id = d1_s1 AND s1_attr < 10"
        )
        actuals = execution.details["actuals"]
        scans = [r for r in actuals if r["node"].startswith("scan ")]
        assert len(scans) == 2
        for record in scans:
            assert record["actual_rows"] is not None
            assert record["est_rows"] is not None
            assert record["q_error"] >= 1.0

    def test_report_renders_estimate_vs_actual(self, db):
        execution = db.execute(SNOWFLAKE_SQL)
        report = physical.render_execution_report(execution)
        assert "q-error" in report
        assert "est rows" in report and "actual" in report
        assert "hash-join" in report

    def test_limit_skips_downstream_actuals(self, db):
        """Nodes past a LIMIT cut-off report what actually flowed."""
        execution = db.execute(
            "SELECT s1_id FROM sub1 ORDER BY s1_id LIMIT 3"
        )
        top = execution.details["actuals"][0]
        assert top["actual_rows"] == 3

    def test_explain_includes_physical_plan(self, db):
        report = db.explain(SNOWFLAKE_SQL)
        assert "physical plan" in report
        assert "scan fact" in report
        assert "est_rows" in report
