"""Zone-map partition pruning: refutation unit tests + on/off differentials.

The refutation engine's contract is one-sided: it may keep a partition
it could have skipped, but it must never skip a partition holding a row
the predicate matches.  The unit tests pin the three-valued edge cases
(all-NULL partitions, IS NULL, OR, missing zone-map columns); the
differential tests execute the same SQL with pruning forced on and off
and require identical rows with no more requests.
"""

from __future__ import annotations

import pytest

from repro.engine.catalog import TableInfo
from repro.optimizer.pruning import keep_partitions, partition_may_match
from repro.optimizer.stats import ColumnZone, PartitionZoneMap
from repro.planner.database import PushdownDB
from repro.sqlparser import ast
from repro.sqlparser.parser import parse
from repro.storage.schema import TableSchema

SCHEMA = TableSchema.of("k:int", "v:float", "tag:str")


def make_rows() -> list[tuple]:
    """80 rows clustered by ``k`` plus a trailing all-NULL-``k`` block.

    With partitions=4 the contiguous 32-row slices are: k in [0,31],
    k in [32,63], k in [64,79] mixed with the first NULLs, and an
    all-NULL tail — every edge case the refutation engine must handle.
    """
    rows = [
        (k, float(k) / 2 if k % 10 else None, f"row-{k:04d}")
        for k in range(80)
    ]
    rows += [(None, None, f"null-{i}") for i in range(48)]
    return rows


@pytest.fixture(scope="module")
def db() -> PushdownDB:
    database = PushdownDB(bucket="prune-test")
    database.load_table("t", make_rows(), SCHEMA, partitions=4)
    return database


def zone(lo, hi, nulls=0) -> PartitionZoneMap:
    return PartitionZoneMap(
        row_count=10, columns={"k": ColumnZone(lo, hi, nulls)}
    )


def pred(text: str) -> ast.Expr:
    return parse(f"SELECT * FROM t WHERE {text}").where


class TestZoneMapCollection:
    def test_load_table_attaches_zone_maps(self, db):
        table = db.table("t")
        assert len(table.zone_maps) == table.partitions
        assert len(table.partition_bytes) == table.partitions
        assert sum(table.partition_bytes) == table.total_bytes
        first = table.zone_maps[0].column("k")
        assert (first.min_value, first.max_value) == (0, 31)
        mixed = table.zone_maps[2].column("k")
        assert (mixed.min_value, mixed.max_value, mixed.null_count) == (64, 79, 16)
        assert table.zone_maps[3].column("k").min_value is None  # all NULL

    def test_zone_maps_skipped_without_stats(self, db):
        from repro.engine.catalog import load_table

        info = load_table(
            db.ctx, db.catalog, "nostats", make_rows(), SCHEMA,
            bucket="prune-test", partitions=4, collect_stats=False,
        )
        assert info.zone_maps == []
        assert keep_partitions(info, pred("k < 5")) is None


class TestRefutation:
    def test_range_prunes_disjoint_partitions(self, db):
        table = db.table("t")
        assert keep_partitions(table, pred("k < 20")) == [0]
        assert keep_partitions(table, pred("k >= 40")) == [1, 2]
        assert keep_partitions(table, pred("k BETWEEN 34 AND 40")) == [1]
        assert keep_partitions(table, pred("k IN (2, 70)")) == [0, 2]

    def test_all_refuted_keeps_one_partition(self, db):
        assert keep_partitions(db.table("t"), pred("k < 0")) == [0]

    def test_unprunable_predicates_return_none(self, db):
        table = db.table("t")
        assert keep_partitions(table, None) is None
        assert keep_partitions(table, pred("k >= 0 OR k IS NULL")) is None
        assert keep_partitions(table, pred("v + 1.0 > 0.0")) is None
        assert keep_partitions(table, pred("tag LIKE 'row-%'")) is None

    def test_is_null_must_not_prune_nullable_partitions(self, db):
        table = db.table("t")
        # v carries NULLs in every partition; k only in the last two
        # (partition 2 mixed, partition 3 entirely NULL).
        assert keep_partitions(table, pred("v IS NULL")) is None
        assert keep_partitions(table, pred("k IS NULL")) == [2, 3]
        assert keep_partitions(table, pred("k IS NOT NULL")) == [0, 1, 2]

    def test_or_keeps_partitions_either_branch_allows(self, db):
        table = db.table("t")
        assert keep_partitions(
            table, pred("k < 20 OR k IS NULL")
        ) == [0, 2, 3]
        assert keep_partitions(table, pred("k < 20 OR k > 70")) == [0, 2]

    def test_all_null_partition_refutes_comparisons(self, db):
        # The trailing all-NULL partition: every comparison is NULL
        # there, so even a whole-domain range predicate skips it...
        assert keep_partitions(
            db.table("t"), pred("k >= 0")
        ) == [0, 1, 2]
        # ...and so does its negation (NOT NULL is still NULL).
        assert keep_partitions(
            db.table("t"), pred("NOT (k >= 0)")
        ) == [0]

    def test_not_like_refuted_only_on_all_null_columns(self):
        all_null = PartitionZoneMap(
            row_count=4, columns={"tag": ColumnZone(None, None, 4)}
        )
        some = PartitionZoneMap(
            row_count=4, columns={"tag": ColumnZone("a", "z", 0)}
        )
        p = pred("tag NOT LIKE 'x%'")
        assert not partition_may_match(p, all_null)
        assert partition_may_match(p, some)

    def test_column_absent_from_zone_map_never_prunes(self):
        incomplete = PartitionZoneMap(
            row_count=10, columns={"k": ColumnZone(0, 9, 0)}
        )
        assert partition_may_match(pred("v > 1e9"), incomplete)
        assert partition_may_match(pred("k < 5 OR v > 1e9"), incomplete)
        # but the conjunct on the mapped column still refutes
        assert not partition_may_match(pred("k > 50 AND v > 1e9"), incomplete)

    def test_empty_partition_always_prunes(self):
        empty = PartitionZoneMap(row_count=0, columns={})
        assert not partition_may_match(pred("k IS NULL"), empty)
        assert not partition_may_match(pred("tag LIKE 'x%'"), empty)

    def test_incomparable_literal_never_prunes(self):
        assert partition_may_match(pred("k = 'oops'"), zone(0, 9))

    def test_null_literal_comparison_refutes(self):
        assert not partition_may_match(pred("k = NULL"), zone(0, 9))

    def test_zone_map_desync_disables_pruning(self, db):
        table = db.table("t")
        broken = TableInfo(
            name="b", bucket=table.bucket, keys=list(table.keys),
            schema=table.schema, format=table.format,
            num_rows=table.num_rows, total_bytes=table.total_bytes,
            zone_maps=table.zone_maps[:2],
        )
        assert keep_partitions(broken, pred("k < 5")) is None


DIFFERENTIAL_QUERIES = (
    "SELECT k, v FROM t WHERE k < 20",
    "SELECT k, v FROM t WHERE k >= 70",
    "SELECT k FROM t WHERE k BETWEEN 30 AND 40",
    "SELECT k FROM t WHERE k IN (2, 50, 78)",
    "SELECT k FROM t WHERE NOT (k < 50)",
    "SELECT k, tag FROM t WHERE k IS NULL",
    "SELECT k FROM t WHERE k < 10 OR v IS NULL",
    "SELECT k FROM t WHERE k < 0",
    "SELECT tag FROM t WHERE tag LIKE 'row-000%'",
    "SELECT COUNT(*) AS n, SUM(v) AS s FROM t WHERE k < 20",
    "SELECT SUM(v) AS s FROM t WHERE k > 1000",
    "SELECT k, COUNT(*) AS n FROM t WHERE k < 40 GROUP BY k ORDER BY k",
)


def _normalized(rows) -> list:
    return sorted(
        tuple((v is None, str(type(v)), v) for v in row) for row in rows
    )


class TestPruningDifferential:
    """Pruning on vs off: identical rows, never more requests."""

    @pytest.mark.parametrize("sql", DIFFERENTIAL_QUERIES)
    @pytest.mark.parametrize("mode", ("optimized", "auto"))
    def test_rows_identical_and_requests_bounded(self, db, sql, mode):
        db.ctx.prune_partitions = True
        pruned = db.execute(sql, mode=mode)
        db.ctx.prune_partitions = False
        unpruned = db.execute(sql, mode=mode)
        db.ctx.prune_partitions = True
        assert _normalized(pruned.rows) == _normalized(unpruned.rows)
        assert pruned.num_requests <= unpruned.num_requests

    def test_selective_scan_actually_saves_requests(self, db):
        db.ctx.prune_partitions = True
        pruned = db.execute("SELECT k FROM t WHERE k < 20")
        db.ctx.prune_partitions = False
        unpruned = db.execute("SELECT k FROM t WHERE k < 20")
        db.ctx.prune_partitions = True
        assert pruned.num_requests == 1
        assert unpruned.num_requests == db.table("t").partitions

    def test_join_scans_prune(self, db):
        sql = (
            "SELECT COUNT(*) AS n FROM t, t2"
            " WHERE k = k2 AND k < 20 AND k2 < 20"
        )
        db.load_table(
            "t2", [(k, f"pad-{k}") for k in range(80)],
            TableSchema.of("k2:int", "pad:str"), partitions=4,
        )
        db.ctx.prune_partitions = True
        pruned = db.execute(sql)
        db.ctx.prune_partitions = False
        unpruned = db.execute(sql)
        db.ctx.prune_partitions = True
        assert pruned.rows == unpruned.rows
        assert pruned.num_requests < unpruned.num_requests


class TestExplainAndCost:
    def test_explain_reports_pruned_partitions(self, db):
        report = db.explain("SELECT k FROM t WHERE k < 20")
        assert "partitions pruned: 3/4" in report

    def test_explain_omits_annotation_when_nothing_pruned(self, db):
        report = db.explain("SELECT k FROM t WHERE v IS NULL")
        assert "partitions pruned" not in report

    def test_chooser_predicts_pruned_requests(self, db):
        from repro.optimizer.cost import CostModel

        query = parse("SELECT k FROM t WHERE k < 20")
        estimates = CostModel(db.ctx, db.catalog).estimate_planner_modes(query)
        optimized = next(e for e in estimates if e.strategy == "optimized")
        assert optimized.notes.get("partitions_pruned") == 3
        baseline = next(e for e in estimates if e.strategy == "baseline")
        assert optimized.requests < baseline.requests

    def test_pushed_aggregate_prediction_prunes(self, db):
        from repro.optimizer.cost import CostModel

        query = parse("SELECT SUM(v) AS s FROM t WHERE k < 20")
        estimates = CostModel(db.ctx, db.catalog).estimate_planner_modes(query)
        optimized = next(e for e in estimates if e.strategy == "optimized")
        assert optimized.notes.get("pushed") == "aggregate"
        assert optimized.notes.get("partitions_pruned") == 3
        assert optimized.requests == 1

    def test_predicted_requests_match_measured(self, db):
        db.ctx.prune_partitions = True
        execution = db.execute("SELECT k FROM t WHERE k < 20", mode="auto")
        optimizer = execution.details["optimizer"]
        picked = optimizer["candidates"][optimizer["picked"]]
        assert picked["requests"] == execution.num_requests
