"""Tests for the command-line interface and the explain report."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_tables_command(self, capsys):
        assert main(["tables", "--scale-factor", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "lineitem" in out
        assert "customer" in out

    def test_query_command_optimized(self, capsys):
        code = main([
            "query",
            "SELECT COUNT(*) AS n FROM customer",
            "--scale-factor", "0.001",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimized" in out
        assert "(150,)" in out

    def test_query_command_compare(self, capsys):
        code = main([
            "query",
            "SELECT SUM(l_quantity) AS q FROM lineitem WHERE l_quantity < 3",
            "--scale-factor", "0.001",
            "--compare",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "--- baseline ---" in out
        assert "--- optimized ---" in out

    def test_query_command_strategy_auto(self, capsys):
        code = main([
            "query",
            "SELECT SUM(o_totalprice) AS total FROM orders",
            "--scale-factor", "0.001",
            "--strategy", "auto",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimizer:" in out
        assert "picked" in out
        # The EXPLAIN block lists both candidate plans with estimates.
        assert "baseline" in out
        assert "optimized" in out
        for column in ("requests", "scanned", "returned", "runtime", "cost"):
            assert column in out

    def test_mode_alias_still_accepts_auto(self, capsys):
        code = main([
            "query",
            "SELECT COUNT(*) AS n FROM customer",
            "--scale-factor", "0.001",
            "--mode", "auto",
        ])
        assert code == 0
        assert "optimizer:" in capsys.readouterr().out

    def test_experiment_unknown_name_fails(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExplain:
    def test_explain_contains_phases_and_cost(self):
        from repro import PushdownDB
        from repro.workloads.tpch import CUSTOMER_SCHEMA, TpchGenerator

        db = PushdownDB()
        gen = TpchGenerator(scale_factor=0.001)
        db.load_table("customer", gen.customer(), CUSTOMER_SCHEMA)
        execution = db.execute("SELECT COUNT(*) AS n FROM customer")
        report = execution.explain(db.ctx.perf)
        assert "strategy:" in report
        assert "phase" in report
        assert "cost" in report
        assert "1 row(s)" in report

    def test_explain_without_perf(self):
        from repro import PushdownDB
        from repro.workloads.tpch import CUSTOMER_SCHEMA, TpchGenerator

        db = PushdownDB()
        gen = TpchGenerator(scale_factor=0.001)
        db.load_table("customer", gen.customer(), CUSTOMER_SCHEMA)
        execution = db.execute("SELECT c_custkey FROM customer LIMIT 3")
        report = execution.explain()
        assert "3 row(s)" in report
