"""Tests for the command-line interface and the explain report."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_tables_command(self, capsys):
        assert main(["tables", "--scale-factor", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "lineitem" in out
        assert "customer" in out

    def test_query_command_optimized(self, capsys):
        code = main([
            "query",
            "SELECT COUNT(*) AS n FROM customer",
            "--scale-factor", "0.001",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimized" in out
        assert "(150,)" in out

    def test_query_command_compare(self, capsys):
        code = main([
            "query",
            "SELECT SUM(l_quantity) AS q FROM lineitem WHERE l_quantity < 3",
            "--scale-factor", "0.001",
            "--compare",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "--- baseline ---" in out
        assert "--- optimized ---" in out

    def test_query_command_strategy_auto(self, capsys):
        code = main([
            "query",
            "SELECT SUM(o_totalprice) AS total FROM orders",
            "--scale-factor", "0.001",
            "--strategy", "auto",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimizer:" in out
        assert "picked" in out
        # The EXPLAIN block lists both candidate plans with estimates.
        assert "baseline" in out
        assert "optimized" in out
        for column in ("requests", "scanned", "returned", "runtime", "cost"):
            assert column in out

    def test_mode_alias_still_accepts_auto(self, capsys):
        code = main([
            "query",
            "SELECT COUNT(*) AS n FROM customer",
            "--scale-factor", "0.001",
            "--mode", "auto",
        ])
        assert code == 0
        assert "optimizer:" in capsys.readouterr().out

    def test_experiment_unknown_name_fails(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_experiment_help_derives_from_registry(self, capsys):
        """The valid-names help text can never go stale: it is rendered
        from the experiment registry itself."""
        from repro.experiments import ALL_EXPERIMENTS

        with pytest.raises(SystemExit):
            main(["experiment", "--help"])
        help_text = capsys.readouterr().out
        for name in ALL_EXPERIMENTS:
            assert name in help_text
        assert "fig14" in help_text

    def test_explain_command(self, capsys):
        code = main([
            "explain",
            "SELECT SUM(l_extendedprice) AS s FROM customer, orders, lineitem"
            " WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
            " AND c_acctbal > 100",
            "--scale-factor", "0.001",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimizer:" in out
        assert "join-order search" in out
        assert "physical plan" in out
        assert "hash-join" in out

    def test_query_command_strategy_adaptive(self, capsys):
        code = main([
            "query",
            "SELECT COUNT(*) AS n FROM customer, orders, lineitem"
            " WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey",
            "--scale-factor", "0.001",
            "--strategy", "adaptive",
            "--adaptive-threshold", "3.5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "adaptive multi-join" in out
        assert "'threshold': 3.5" in out

    def test_adaptive_threshold_below_one_rejected(self, capsys):
        """A Q-error bound below 1.0 is meaningless (observed/estimated
        ratios are folded to >= 1); the CLI must refuse it at parse
        time, matching CloudContext's constructor validation."""
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "query", "SELECT COUNT(*) AS n FROM customer",
                "--adaptive-threshold", "0.5",
            ])
        assert "must be >= 1.0" in capsys.readouterr().err

    def test_adaptive_threshold_boundary_accepted(self):
        args = build_parser().parse_args([
            "query", "SELECT COUNT(*) AS n FROM customer",
            "--adaptive-threshold", "1.0",
        ])
        assert args.adaptive_threshold == 1.0

    @staticmethod
    def _stub_registry(monkeypatch, result):
        """Swap the experiment registry for one stub returning ``result``."""
        import repro.experiments as exp_pkg

        class StubRegistry(dict):
            def __getitem__(self, name):
                return lambda: result

            def __contains__(self, name):
                return name == "stub"

            def __iter__(self):
                return iter(["stub"])

        monkeypatch.setattr(exp_pkg, "ALL_EXPERIMENTS", StubRegistry())

    def test_experiment_json_artifact(self, capsys, tmp_path, monkeypatch):
        """``experiment --json`` writes the per-query rows and notes CI
        uploads; a full-match differential run exits 0."""
        import json

        from repro.experiments.harness import ExperimentResult

        self._stub_registry(monkeypatch, ExperimentResult(
            experiment="tpch", title="stub suite",
            rows=[{"query": "q01", "strategy": "auto", "match": "yes"}],
            notes={"matched": "1/1"},
        ))
        path = tmp_path / "tpch.json"
        assert main(["experiment", "stub", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["stub"]["rows"][0]["match"] == "yes"
        assert data["stub"]["notes"]["matched"] == "1/1"

    def test_experiment_matched_shortfall_fails(self, capsys, monkeypatch):
        """A differential experiment reporting fewer matches than checks
        must fail the CLI run — CI sees exit 1, not a green table."""
        from repro.experiments.harness import ExperimentResult

        self._stub_registry(monkeypatch, ExperimentResult(
            experiment="tpch", title="stub suite",
            rows=[{"query": "q01", "strategy": "auto", "match": "MISMATCH"}],
            notes={"matched": "0/1"},
        ))
        assert main(["experiment", "stub"]) == 1
        assert "differential checks matched" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExplain:
    def test_explain_contains_phases_and_cost(self):
        from repro import PushdownDB
        from repro.workloads.tpch import CUSTOMER_SCHEMA, TpchGenerator

        db = PushdownDB()
        gen = TpchGenerator(scale_factor=0.001)
        db.load_table("customer", gen.customer(), CUSTOMER_SCHEMA)
        execution = db.execute("SELECT COUNT(*) AS n FROM customer")
        report = execution.explain(db.ctx.perf)
        assert "strategy:" in report
        assert "phase" in report
        assert "cost" in report
        assert "1 row(s)" in report

    def test_explain_without_perf(self):
        from repro import PushdownDB
        from repro.workloads.tpch import CUSTOMER_SCHEMA, TpchGenerator

        db = PushdownDB()
        gen = TpchGenerator(scale_factor=0.001)
        db.load_table("customer", gen.customer(), CUSTOMER_SCHEMA)
        execution = db.execute("SELECT c_custkey FROM customer LIMIT 3")
        report = execution.explain()
        assert "3 row(s)" in report
