"""Tests for the three filter strategies (paper Section IV)."""

import pytest

from helpers import assert_rows_close
from repro.cloud.context import CloudContext
from repro.common.errors import PlanError
from repro.engine.catalog import Catalog, load_table
from repro.queries.common import items
from repro.sqlparser.parser import parse_expression
from repro.strategies.filter import (
    FilterQuery,
    indexed_filter,
    s3_side_filter,
    server_side_filter,
)
from repro.workloads.synthetic import FILTER_SCHEMA, filter_table

NUM_ROWS = 2_000


@pytest.fixture(scope="module")
def env():
    ctx, catalog = CloudContext(), Catalog()
    load_table(
        ctx, catalog, "data", filter_table(NUM_ROWS, seed=7), FILTER_SCHEMA,
        bucket="filters", partitions=4, index_columns=["key"],
    )
    return ctx, catalog


ALL = [server_side_filter, s3_side_filter, indexed_filter]


class TestAgreement:
    @pytest.mark.parametrize("matched", [0, 1, 17, 250])
    def test_strategies_agree_on_range_predicate(self, env, matched):
        ctx, catalog = env
        query = FilterQuery(
            table="data", predicate=parse_expression(f"key < {matched}")
        )
        results = [fn(ctx, catalog, query) for fn in ALL]
        for execution in results:
            assert len(execution.rows) == matched
        assert_rows_close(results[0].rows, results[1].rows)
        assert_rows_close(results[0].rows, results[2].rows)

    def test_point_lookup(self, env):
        ctx, catalog = env
        query = FilterQuery(table="data", predicate=parse_expression("key = 42"))
        for fn in ALL:
            execution = fn(ctx, catalog, query)
            assert len(execution.rows) == 1
            assert execution.rows[0][0] == 42

    def test_projection_applies(self, env):
        ctx, catalog = env
        query = FilterQuery(
            table="data",
            predicate=parse_expression("key < 5"),
            projection=["key", "tag"],
        )
        for fn in ALL:
            execution = fn(ctx, catalog, query)
            assert execution.column_names == ["key", "tag"]
            assert all(len(r) == 2 for r in execution.rows)

    def test_aggregate_output(self, env):
        ctx, catalog = env
        query = FilterQuery(
            table="data",
            predicate=parse_expression("key < 10"),
            output=items("SUM(key) AS total"),
        )
        for fn in ALL:
            execution = fn(ctx, catalog, query)
            assert execution.rows == [(45,)]


class TestAccountingShapes:
    def test_server_side_transfers_whole_table(self, env):
        ctx, catalog = env
        table = catalog.get("data")
        query = FilterQuery(table="data", predicate=parse_expression("key < 1"))
        execution = server_side_filter(ctx, catalog, query)
        assert execution.bytes_transferred == table.total_bytes
        assert execution.bytes_scanned == 0  # no S3 Select involved

    def test_s3_side_scans_but_returns_little(self, env):
        ctx, catalog = env
        table = catalog.get("data")
        query = FilterQuery(table="data", predicate=parse_expression("key < 1"))
        execution = s3_side_filter(ctx, catalog, query)
        assert execution.bytes_scanned == table.total_bytes
        assert execution.bytes_returned < table.total_bytes / 100

    def test_indexing_requests_grow_with_matches(self, env):
        ctx, catalog = env
        few = indexed_filter(
            ctx, catalog,
            FilterQuery(table="data", predicate=parse_expression("key < 2")),
        )
        many = indexed_filter(
            ctx, catalog,
            FilterQuery(table="data", predicate=parse_expression("key < 200")),
        )
        assert many.num_requests > few.num_requests
        assert many.details["matched_rows"] == 200

    def test_indexing_scans_only_index_table(self, env):
        ctx, catalog = env
        table = catalog.get("data")
        execution = indexed_filter(
            ctx, catalog,
            FilterQuery(table="data", predicate=parse_expression("key = 3")),
        )
        assert 0 < execution.bytes_scanned < table.total_bytes


class TestIndexErrors:
    def test_unindexed_column_rejected(self, env):
        ctx, catalog = env
        with pytest.raises(PlanError, match="no index"):
            indexed_filter(
                ctx, catalog,
                FilterQuery(table="data", predicate=parse_expression("p0 < 1")),
            )

    def test_multi_column_predicate_rejected(self, env):
        ctx, catalog = env
        with pytest.raises(PlanError, match="exactly one column"):
            indexed_filter(
                ctx, catalog,
                FilterQuery(
                    table="data",
                    predicate=parse_expression("key < 1 AND p0 < 1"),
                ),
            )
