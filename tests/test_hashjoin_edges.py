"""Edge cases of the streaming hash join (`hash_join_batches`).

The N-way planner chains these joins, so the corners matter more than
ever: empty build sides (a selective filter killed one input), duplicate
keys on both sides (many-to-many fan-out), NULL join keys (SQL equality
never matches NULL), and probe-side early termination under LIMIT (the
streaming pipeline must stop pulling probe batches once enough joined
rows exist).
"""

from __future__ import annotations

import pytest

from repro.common.errors import PlanError
from repro.engine.operators.base import CpuTally, materialize
from repro.engine.operators.hashjoin import hash_join, hash_join_batches
from repro.engine.operators.limit import limit_batches

BUILD_NAMES = ["k", "a"]
PROBE_NAMES = ["j", "b"]


def _run(build_rows, probe_batches):
    names, stream = hash_join_batches(
        build_rows, BUILD_NAMES, iter(probe_batches), PROBE_NAMES, "k", "j"
    )
    return names, materialize(stream)


class TestEmptyBuild:
    def test_empty_build_side_yields_no_rows(self):
        names, rows = _run([], [[(1, "x"), (2, "y")], [(3, "z")]])
        assert names == ["k", "a", "j", "b"]
        assert rows == []

    def test_empty_probe_side_yields_no_rows(self):
        _, rows = _run([(1, "a")], [])
        assert rows == []

    def test_all_null_build_keys_behave_like_empty_build(self):
        _, rows = _run([(None, "a"), (None, "b")], [[(None, "x"), (1, "y")]])
        assert rows == []


class TestDuplicateKeys:
    def test_duplicates_on_both_sides_cross_product(self):
        build = [(1, "a1"), (1, "a2"), (2, "b")]
        probe = [[(1, "x"), (1, "y")], [(2, "z")]]
        _, rows = _run(build, probe)
        # Key 1: 2 build x 2 probe = 4 joined rows; key 2: 1 x 1.
        assert sorted(rows) == sorted([
            (1, "a1", 1, "x"), (1, "a2", 1, "x"),
            (1, "a1", 1, "y"), (1, "a2", 1, "y"),
            (2, "b", 2, "z"),
        ])

    def test_matches_materialized_variant(self):
        build = [(1, "a1"), (1, "a2"), (None, "n"), (3, "c")]
        probe_rows = [(1, "x"), (1, "y"), (3, "z"), (None, "w"), (9, "q")]
        expected = hash_join(
            build, BUILD_NAMES, probe_rows, PROBE_NAMES, "k", "j"
        ).rows
        _, rows = _run(build, [probe_rows[:2], probe_rows[2:]])
        assert rows == expected


class TestNullKeys:
    def test_null_keys_never_match(self):
        build = [(None, "a"), (1, "b")]
        probe = [[(None, "x"), (1, "y"), (None, "z")]]
        _, rows = _run(build, probe)
        assert rows == [(1, "b", 1, "y")]

    def test_null_probe_keys_dropped_even_with_null_build_keys(self):
        # NULL = NULL is UNKNOWN, not TRUE: no pairing of the two NULLs.
        _, rows = _run([(None, "a")], [[(None, "x")]])
        assert rows == []


class TestEarlyTermination:
    def test_limit_stops_pulling_probe_batches(self):
        build = [(1, "a")]
        pulled = []

        def probe():
            for i in range(100):
                pulled.append(i)
                yield [(1, f"x{i}"), (2, f"y{i}")]

        names, stream = hash_join_batches(
            build, BUILD_NAMES, probe(), PROBE_NAMES, "k", "j"
        )
        limited = materialize(limit_batches(stream, 3))
        assert len(limited) == 3
        # One joined row per probe batch -> 3 matches need only the
        # first 3 batches (plus at most one look-ahead pull).
        assert len(pulled) <= 4

    def test_limit_charges_cpu_only_for_pulled_batches(self):
        build = [(1, "a")]
        tally = CpuTally()

        def probe():
            for i in range(50):
                yield [(1, i)]

        _, stream = hash_join_batches(
            build, BUILD_NAMES, probe(), PROBE_NAMES, "k", "j", tally
        )
        after_build = tally.seconds
        materialize(limit_batches(stream, 2))
        charged = tally.seconds - after_build
        full_tally = CpuTally()
        _, full_stream = hash_join_batches(
            build, BUILD_NAMES, probe(), PROBE_NAMES, "k", "j", full_tally
        )
        materialize(full_stream)
        assert charged < (full_tally.seconds - after_build) / 2


class TestNameCollisions:
    def test_duplicate_output_columns_rejected(self):
        with pytest.raises(PlanError, match="duplicate column"):
            hash_join_batches(
                [(1, "a")], ["k", "v"], iter([[(1, "x")]]), ["K", "v"], "k", "K"
            )
