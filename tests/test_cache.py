"""Semantic result cache: implication proofs, reuse tiers, invalidation.

The cache's contract is one-sided like the pruner's: it may miss a
reuse it could have proven, but a served answer must be row-identical
to a cold execution.  The unit tests pin the predicate-implication
engine's edge cases; the integration tests run the same SQL through
cache-enabled and cache-free sessions and require identical rows with
strictly fewer metered requests on every warm tier, plus stale-read
differentials across a table reload.
"""

from __future__ import annotations

import pytest

from repro.cloud.context import CloudContext
from repro.engine.batch import Batch
from repro.optimizer.cache import SemanticCache
from repro.optimizer.pruning import predicate_implies
from repro.planner.database import PushdownDB
from repro.sqlparser.parser import parse_expression
from repro.storage.schema import TableSchema
from repro.workloads.synthetic import FILTER_SCHEMA, clustered_filter_table

CACHE_BYTES = 64 << 20


def _pred(sql: str):
    return parse_expression(sql)


class TestPredicateImplies:
    """Soundness and usefulness of the subsumption proof."""

    @pytest.mark.parametrize(
        "new, cached",
        [
            ("key < 100", "key < 200"),
            ("key < 100", "key <= 100"),
            ("key <= 99", "key < 100"),
            ("key > 50", "key >= 50"),
            ("key = 42", "key < 100"),
            ("key = 42", "key <> 41"),
            ("key BETWEEN 10 AND 20", "key >= 5 AND key <= 25"),
            ("key IN (3, 5, 7)", "key <= 7"),
            ("key < 100 AND p0 < 2.5", "key < 100"),
            ("key < 50 AND p0 < 1.0", "key < 200 AND p0 < 2.0"),
            ("key < 100", "key IS NOT NULL"),
            ("key < 100", "key < 100.5"),
            ("tag = 'm'", "tag >= 'a'"),
        ],
    )
    def test_implied(self, new, cached):
        assert predicate_implies(_pred(new), _pred(cached))

    @pytest.mark.parametrize(
        "new, cached",
        [
            ("key < 200", "key < 100"),
            ("key < 100", "key < 100 AND p0 < 2.5"),
            ("key <= 100", "key < 100"),
            ("key = 42", "key <> 42"),
            ("key < 100", "key IS NULL"),
            ("key < 100 OR p0 < 1.0", "key < 100"),
            ("p0 < 1.0", "key < 100"),
            ("tag LIKE 'a%'", "tag >= 'a'"),
            ("key <> 5", "key < 100"),
        ],
    )
    def test_not_implied(self, new, cached):
        assert not predicate_implies(_pred(new), _pred(cached))

    def test_none_predicates(self):
        # A cached full scan holds every row: anything is implied by it.
        assert predicate_implies(_pred("key < 10"), None)
        assert predicate_implies(None, None)
        # An unfiltered new scan wants every row: only a full cached
        # scan can serve it.
        assert not predicate_implies(None, _pred("key < 10"))


class TestSemanticCacheUnit:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="cache_bytes"):
            SemanticCache(-1)

    def test_lru_eviction_under_budget(self):
        batch = Batch.from_rows([(i, float(i)) for i in range(100)])
        probe = SemanticCache(1 << 20)
        probe.store_scan("probe", None, ["k", "v"], [batch])
        one_entry = probe.current_bytes
        # Budget only fits two entries: storing a third evicts the
        # least-recently-used one ("a", never looked up again).
        cache = SemanticCache(int(2.5 * one_entry))
        for name in ("a", "b"):
            assert cache.store_scan(name, None, ["k", "v"], [batch])
        assert cache.store_scan("c", None, ["k", "v"], [batch])
        assert cache.stats.evictions == 1
        assert cache.peek_scan("a", None, ["k"]) is None
        assert cache.peek_scan("b", None, ["k"]) == "hit"
        assert cache.peek_scan("c", None, ["k"]) == "hit"

    def test_oversized_entry_rejected(self):
        batch = Batch.from_rows([(i, float(i)) for i in range(100)])
        cache = SemanticCache(64)
        assert not cache.store_scan("a", None, ["k", "v"], [batch])
        assert len(cache) == 0

    def test_projection_subset_and_column_gate(self):
        batch = Batch.from_rows([(1, 2.0), (2, 4.0)])
        cache = SemanticCache(CACHE_BYTES)
        cache.store_scan("t", _pred("k < 10"), ["k", "v"], [batch])
        reuse = cache.lookup_scan("t", _pred("k < 10"), ["v"])
        assert reuse.status == "hit"
        assert [b.to_rows() for b in reuse.batches] == [[(2.0,), (4.0,)]]
        # A projection the entry does not cover cannot be served.
        assert cache.peek_scan("t", _pred("k < 10"), ["v", "w"]) is None
        # Nor a subsumed predicate over a column the entry lacks.
        assert cache.peek_scan("t", _pred("k < 5 AND w = 1"), ["k"]) is None

    def test_invalidate_table_scopes_by_name(self):
        batch = Batch.from_rows([(1,)])
        cache = SemanticCache(CACHE_BYTES)
        cache.store_scan("t", None, ["k"], [batch])
        cache.store_scan("u", None, ["k"], [batch])
        assert cache.invalidate_table("T") == 1
        assert cache.peek_scan("t", None, ["k"]) is None
        assert cache.peek_scan("u", None, ["k"]) == "hit"
        assert cache.stats.invalidations == 1


def _session(cache_bytes: int = CACHE_BYTES, rows=None) -> PushdownDB:
    db = PushdownDB(bucket="cachetest", cache_bytes=cache_bytes)
    db.load_table(
        "fx",
        rows if rows is not None else clustered_filter_table(2_000, seed=7),
        FILTER_SCHEMA,
        partitions=8,
    )
    return db


class TestCachedExecution:
    def test_exact_hit_zero_requests_identical_rows(self):
        db = _session()
        sql = "SELECT key, p0 FROM fx WHERE key < 1000"
        cold = db.execute(sql, mode="optimized")
        warm = db.execute(sql, mode="optimized")
        assert warm.rows == cold.rows
        assert cold.num_requests > 0 and warm.num_requests == 0
        assert warm.bytes_scanned == 0 and warm.bytes_returned == 0
        assert warm.cost.total < cold.cost.total
        assert warm.details["cache"]["hit"] == 1
        assert cold.details["cache"]["miss"] == 1
        assert cold.details["cache"]["stores"] == 1
        assert "cache: hit" in warm.details["plan"]
        assert "cache: miss" in cold.details["plan"]

    def test_subsumed_replay_matches_fresh_session(self):
        db = _session()
        db.execute("SELECT key, p0 FROM fx WHERE key < 1500", mode="optimized")
        narrow = "SELECT key, p0 FROM fx WHERE key < 700"
        replay = db.execute(narrow, mode="optimized")
        assert replay.num_requests == 0
        assert replay.details["cache"]["subsumed"] == 1
        assert "cache: subsumed" in replay.details["plan"]
        reference = _session().execute(narrow, mode="optimized")
        assert replay.rows == reference.rows

    def test_wider_predicate_is_not_subsumed(self):
        db = _session()
        db.execute("SELECT key, p0 FROM fx WHERE key < 700", mode="optimized")
        wider = db.execute(
            "SELECT key, p0 FROM fx WHERE key < 1500", mode="optimized"
        )
        assert wider.num_requests > 0
        assert wider.details["cache"]["miss"] == 1

    def test_aggregate_partials_recombine(self):
        db = _session()
        sql = "SELECT SUM(p0) AS s, COUNT(*) AS n FROM fx WHERE key < 800"
        cold = db.execute(sql, mode="optimized")
        warm = db.execute(sql, mode="optimized")
        assert warm.rows == cold.rows
        assert warm.num_requests == 0
        assert warm.details["cache"]["hit"] == 1
        # A subset/permutation of the cached items recombines too.
        subset = db.execute(
            "SELECT COUNT(*) FROM fx WHERE key < 800", mode="optimized"
        )
        assert subset.num_requests == 0
        assert subset.rows == [(cold.rows[0][1],)]

    def test_reload_evicts_stale_results(self):
        old_rows = clustered_filter_table(2_000, seed=7)
        new_rows = clustered_filter_table(2_000, seed=11)
        db = _session(rows=old_rows)
        sql = "SELECT key, p0 FROM fx WHERE key < 900"
        stale = db.execute(sql, mode="optimized")
        db.load_table("fx", new_rows, FILTER_SCHEMA, partitions=8)
        refreshed = db.execute(sql, mode="optimized")
        fresh = _session(rows=new_rows).execute(sql, mode="optimized")
        assert refreshed.rows == fresh.rows
        assert refreshed.num_requests > 0
        assert refreshed.rows != stale.rows

    def test_cold_run_byte_identical_to_cache_free_session(self):
        sql = "SELECT key, p0 FROM fx WHERE key < 500"
        enabled = _session().execute(sql, mode="optimized")
        disabled = _session(cache_bytes=0).execute(sql, mode="optimized")
        assert enabled.rows == disabled.rows
        assert enabled.num_requests == disabled.num_requests
        assert enabled.bytes_scanned == disabled.bytes_scanned
        assert enabled.bytes_returned == disabled.bytes_returned
        assert enabled.runtime_seconds == disabled.runtime_seconds
        assert enabled.cost.total == disabled.cost.total

    def test_cache_bytes_zero_disables_cleanly(self):
        db = _session(cache_bytes=0)
        assert db.cache is None and db.ctx.result_cache is None
        sql = "SELECT key, p0 FROM fx WHERE key < 1000"
        first = db.execute(sql, mode="optimized")
        second = db.execute(sql, mode="optimized")
        assert second.num_requests == first.num_requests > 0
        assert "cache" not in second.details
        assert "cache:" not in second.details["plan"]

    def test_reset_cache_forces_cold_runs(self):
        db = _session()
        sql = "SELECT key, p0 FROM fx WHERE key < 1000"
        cold = db.execute(sql, mode="optimized")
        db.reset_cache()
        recold = db.execute(sql, mode="optimized")
        assert recold.num_requests == cold.num_requests > 0

    def test_warm_chooser_prefers_cached_plan(self):
        db = _session()
        sql = "SELECT key, p0 FROM fx WHERE key < 1800"
        db.execute(sql, mode="optimized")
        auto = db.execute(sql, mode="auto")
        assert auto.num_requests == 0
        picked = auto.details["optimizer"]["picked"]
        assert picked == "optimized"

    def test_negative_cache_bytes_rejected(self):
        with pytest.raises(ValueError, match="cache_bytes"):
            CloudContext(cache_bytes=-1)
        with pytest.raises(ValueError, match="cache_bytes"):
            PushdownDB(cache_bytes=-1)

    def test_cli_rejects_negative_cache_bytes(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "SELECT 1", "--cache-bytes", "-1"]
            )


class TestRequestDelayValidation:
    def test_negative_request_delay_rejected(self):
        ctx = CloudContext()
        with pytest.raises(ValueError, match="request_delay"):
            ctx.client.request_delay = -0.1

    def test_request_delay_round_trips(self):
        ctx = CloudContext()
        ctx.client.request_delay = 0.25
        assert ctx.client.request_delay == 0.25
        ctx.client.request_delay = 0
        assert ctx.client.request_delay == 0.0
