"""Tests for the cost model, chooser, and `auto` wiring."""

import pytest

from repro.cloud.context import CloudContext
from repro.common.errors import PlanError
from repro.engine.catalog import Catalog, load_table
from repro.experiments.harness import calibrate_tables
from repro.optimizer import (
    CostModel,
    choose,
    choose_filter_strategy,
    choose_top_k_strategy,
    explain_choice,
    run_auto,
)
from repro.optimizer.chooser import STRATEGY_RUNNERS, choose_planner_mode
from repro.planner.database import PushdownDB
from repro.sqlparser import ast
from repro.sqlparser.parser import parse, parse_expression
from repro.strategies.filter import FilterQuery
from repro.strategies.groupby import AggSpec, GroupByQuery
from repro.strategies.join import JoinQuery
from repro.strategies.topk import TopKQuery
from repro.workloads.synthetic import FILTER_SCHEMA, filter_table


@pytest.fixture(scope="module")
def fig1_env():
    """Calibrated fig01-style environment with an index on `key`."""
    ctx, catalog = CloudContext(), Catalog()
    rows = filter_table(10_000, seed=3)
    load_table(
        ctx, catalog, "filter_data", rows, FILTER_SCHEMA,
        bucket="opt", index_columns=["key"],
    )
    calibrate_tables(ctx, catalog, ["filter_data"], 10e9)
    ctx.client.range_request_weight = 60_000_000 / 10_000
    return ctx, catalog


def _filter_query(matched):
    return FilterQuery(
        table="filter_data",
        predicate=ast.Binary("<", ast.Column("key"), ast.Literal(matched)),
    )


class TestCostModelAccuracy:
    """Predictions must track what the strategies actually meter."""

    @pytest.mark.parametrize("matched", [5, 500])
    def test_filter_estimates_close_to_measured(self, fig1_env, matched):
        ctx, catalog = fig1_env
        model = CostModel(ctx, catalog)
        estimates = {e.strategy: e for e in model.estimate_filter(_filter_query(matched))}
        assert set(estimates) == {
            "server-side filter", "s3-side filter", "s3-side indexing"
        }
        for name, estimate in estimates.items():
            execution = STRATEGY_RUNNERS[name](ctx, catalog, _filter_query(matched))
            assert estimate.runtime_seconds == pytest.approx(
                execution.runtime_seconds, rel=0.1
            ), name
            assert estimate.total_cost == pytest.approx(
                execution.total_cost, rel=0.1
            ), name
            assert estimate.requests == pytest.approx(
                execution.num_requests
                if name != "s3-side indexing"
                else sum(p.requests for p in execution.phases),
                rel=0.1,
            ), name

    def test_estimates_are_pure(self, fig1_env):
        """Estimating must not issue storage requests (no probe asked)."""
        ctx, catalog = fig1_env
        mark = ctx.metrics.mark()
        CostModel(ctx, catalog).estimate_filter(_filter_query(50))
        assert ctx.metrics.records_since(mark) == []

    def test_indexing_skipped_without_index(self, fig1_env):
        ctx, catalog = fig1_env
        query = FilterQuery(
            table="filter_data", predicate=parse_expression("p0 < 1000")
        )
        names = [e.strategy for e in CostModel(ctx, catalog).estimate_filter(query)]
        assert "s3-side indexing" not in names


class TestChooser:
    def test_picks_min_predicted_cost(self, fig1_env):
        ctx, catalog = fig1_env
        choice = choose_filter_strategy(ctx, catalog, _filter_query(50))
        best = min(choice.candidates, key=lambda e: e.total_cost)
        assert choice.picked == best.strategy
        assert choice.best is best

    def test_runtime_objective(self, fig1_env):
        ctx, catalog = fig1_env
        choice = choose_filter_strategy(
            ctx, catalog, _filter_query(50), objective="runtime"
        )
        best = min(choice.candidates, key=lambda e: e.runtime_seconds)
        assert choice.picked == best.strategy

    def test_unknown_objective_rejected(self, fig1_env):
        ctx, catalog = fig1_env
        with pytest.raises(PlanError, match="objective"):
            choose_filter_strategy(ctx, catalog, _filter_query(50), objective="vibes")

    def test_dispatch_on_query_type(self, fig1_env):
        ctx, catalog = fig1_env
        assert choose(ctx, catalog, _filter_query(5)).query_kind == "filter"
        with pytest.raises(PlanError, match="cannot optimize"):
            choose(ctx, catalog, object())

    def test_probe_updates_selectivity_and_is_reported(self, fig1_env):
        ctx, catalog = fig1_env
        mark = ctx.metrics.mark()
        choice = choose_filter_strategy(
            ctx, catalog, _filter_query(100), probe=True, probe_fraction=0.2
        )
        assert len(ctx.metrics.records_since(mark)) > 0
        assert choice.summary()["probe"]["requests"] > 0

    def test_explain_lists_every_candidate(self, fig1_env):
        ctx, catalog = fig1_env
        choice = choose_filter_strategy(ctx, catalog, _filter_query(50))
        report = explain_choice(choice)
        for estimate in choice.candidates:
            assert estimate.strategy in report
        for column in ("requests", "scanned", "returned", "runtime", "cost"):
            assert column in report
        assert f"picked {choice.picked!r}" in report

    def test_run_auto_executes_pick_and_attaches_report(self, fig1_env):
        ctx, catalog = fig1_env
        execution = run_auto(ctx, catalog, _filter_query(5))
        assert execution.strategy == execution.details["optimizer"]["picked"]
        candidates = execution.details["optimizer"]["candidates"]
        assert set(candidates) >= {"server-side filter", "s3-side filter"}
        for estimate in candidates.values():
            assert {"requests", "bytes_scanned", "bytes_returned",
                    "runtime_s", "cost"} <= set(estimate)
        assert len(execution.rows) == 5


class TestOtherFamilies:
    def test_group_by_candidates(self, fig1_env):
        ctx, catalog = fig1_env
        query = GroupByQuery(
            table="filter_data", group_columns=["tag"],
            aggregates=[AggSpec("sum", "p0")],
        )
        choice = choose(ctx, catalog, query)
        names = {e.strategy for e in choice.candidates}
        assert {"server-side group-by", "filtered group-by",
                "s3-side group-by", "hybrid group-by"} == names

    def test_top_k_large_k_excludes_sampling(self, fig1_env):
        ctx, catalog = fig1_env
        n = catalog.get("filter_data").num_rows
        query = TopKQuery(table="filter_data", order_column="p0", k=n + 5)
        choice = choose_top_k_strategy(ctx, catalog, query)
        assert [e.strategy for e in choice.candidates] == ["server-side top-k"]
        assert choice.picked == "server-side top-k"

    def test_join_candidates_respect_key_type(self, tpch_env):
        ctx, catalog = tpch_env
        query = JoinQuery(
            build_table="customer", probe_table="orders",
            build_key="c_name", probe_key="o_clerk",
        )
        names = {e.strategy for e in choose(ctx, catalog, query).candidates}
        assert "bloom join" not in names  # string keys cannot Bloom


class TestExtensionCoverage:
    """ROADMAP "optimizer coverage": extension strategies + hybrid split."""

    def test_multirange_is_opt_in(self, fig1_env):
        ctx, catalog = fig1_env
        model = CostModel(ctx, catalog)
        default = {e.strategy for e in model.estimate_filter(_filter_query(50))}
        assert "multirange indexed filter" not in default
        extended = {
            e.strategy
            for e in model.estimate_filter(
                _filter_query(50), include_extensions=True
            )
        }
        assert "multirange indexed filter" in extended

    def test_multirange_estimate_tracks_measured(self, fig1_env):
        ctx, catalog = fig1_env
        model = CostModel(ctx, catalog)
        estimate = next(
            e for e in model.estimate_filter(
                _filter_query(50), include_extensions=True
            )
            if e.strategy == "multirange indexed filter"
        )
        execution = STRATEGY_RUNNERS["multirange indexed filter"](
            ctx, catalog, _filter_query(50)
        )
        assert estimate.runtime_seconds == pytest.approx(
            execution.runtime_seconds, rel=0.1
        )
        assert estimate.total_cost == pytest.approx(
            execution.total_cost, rel=0.1
        )

    def test_chooser_picks_multirange_when_offered(self, fig1_env):
        """Multi-range GETs collapse the indexing strategy's request
        flood, so once offered the extension wins the selective end."""
        ctx, catalog = fig1_env
        choice = choose_filter_strategy(
            ctx, catalog, _filter_query(5), include_extensions=True
        )
        assert choice.picked == "multirange indexed filter"
        execution = run_auto(
            ctx, catalog, _filter_query(5), include_extensions=True
        )
        assert len(execution.rows) == 5

    def test_partial_groupby_is_opt_in(self, fig1_env):
        ctx, catalog = fig1_env
        model = CostModel(ctx, catalog)
        query = GroupByQuery(
            table="filter_data", group_columns=["tag"],
            aggregates=[AggSpec("sum", "p0"), AggSpec("avg", "p1")],
        )
        default = {e.strategy for e in model.estimate_group_by(query)}
        assert "partial group-by pushdown" not in default
        extended = {
            e.strategy
            for e in model.estimate_group_by(query, include_extensions=True)
        }
        assert "partial group-by pushdown" in extended

    def test_partial_groupby_estimate_tracks_measured(self, fig1_env):
        ctx, catalog = fig1_env
        model = CostModel(ctx, catalog)
        query = GroupByQuery(
            table="filter_data", group_columns=["tag"],
            aggregates=[AggSpec("sum", "p0"), AggSpec("avg", "p1")],
        )
        estimate = next(
            e for e in model.estimate_group_by(query, include_extensions=True)
            if e.strategy == "partial group-by pushdown"
        )
        execution = STRATEGY_RUNNERS["partial group-by pushdown"](
            ctx, catalog, query
        )
        assert estimate.requests == execution.num_requests
        assert estimate.bytes_scanned == pytest.approx(
            execution.bytes_scanned, rel=0.01
        )
        assert estimate.runtime_seconds == pytest.approx(
            execution.runtime_seconds, rel=0.15
        )
        assert estimate.total_cost == pytest.approx(
            execution.total_cost, rel=0.15
        )

    def test_run_auto_executes_partial_groupby_pick(self, fig1_env):
        """When offered and predicted cheapest, the chooser's pick runs
        through `run_auto` and returns the real grouped result."""
        from repro.optimizer.chooser import choose_group_by_strategy

        ctx, catalog = fig1_env
        query = GroupByQuery(
            table="filter_data", group_columns=["key"],
            aggregates=[AggSpec("sum", "p0")],
        )
        choice = choose_group_by_strategy(
            ctx, catalog, query, include_extensions=True
        )
        assert "partial group-by pushdown" in {
            c.strategy for c in choice.candidates
        }
        execution = run_auto(ctx, catalog, query, include_extensions=True)
        assert execution.details["optimizer"]["picked"] == choice.picked
        assert len(execution.rows) == 10_000  # every key is its own group

    def test_hybrid_split_point_is_swept(self, fig1_env):
        from repro.optimizer.cost import HYBRID_SPLIT_CANDIDATES

        ctx, catalog = fig1_env
        query = GroupByQuery(
            table="filter_data", group_columns=["tag"],
            aggregates=[AggSpec("sum", "p0")],
        )
        hybrids = [
            e for e in CostModel(ctx, catalog).estimate_group_by(query)
            if e.strategy == "hybrid group-by"
        ]
        assert len(hybrids) == 1  # one candidate, best split folded in
        best = hybrids[0]
        assert best.notes["s3_groups"] in (
            *HYBRID_SPLIT_CANDIDATES, 8,
        )
        swept = best.notes["split_candidates"]
        assert len(swept) >= 3
        assert min(swept.values()) == pytest.approx(best.total_cost, rel=1e-6)


class TestPlannerAuto:
    @pytest.fixture(scope="class")
    def db(self, tpch_rows):
        from repro.workloads.tpch import TABLE_SCHEMAS

        db = PushdownDB()
        for name in ("customer", "orders", "lineitem"):
            db.load_table(name, tpch_rows[name], TABLE_SCHEMAS[name])
        db.calibrate_to_paper_scale()
        return db

    def test_auto_matches_cheaper_measured_mode(self, db):
        for sql in (
            "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_discount > 0.05",
            "SELECT * FROM orders",
            "SELECT o_orderdate, SUM(o_totalprice) FROM orders, customer"
            " WHERE o_custkey = c_custkey AND c_acctbal < 0"
            " GROUP BY o_orderdate",
        ):
            auto = db.execute(sql, mode="auto")
            summary = auto.details["optimizer"]
            measured = {
                mode: db.execute(sql, mode=mode).total_cost
                for mode in ("baseline", "optimized")
            }
            assert summary["picked"] == min(measured, key=measured.get), sql

    def test_auto_results_match_fixed_modes(self, db):
        sql = "SELECT o_orderdate, COUNT(1) FROM orders GROUP BY o_orderdate"
        from helpers import assert_rows_close

        auto = db.execute(sql, mode="auto")
        fixed = db.execute(sql, mode=summary_mode(auto))
        assert_rows_close(auto.rows, fixed.rows)

    def test_strategy_alias(self, db):
        execution = db.execute("SELECT COUNT(1) FROM orders", strategy="auto")
        assert "optimizer" in execution.details

    def test_explain_without_execution(self, db):
        mark = db.ctx.metrics.mark()
        report = db.explain("SELECT SUM(o_totalprice) FROM orders")
        assert "picked" in report and "baseline" in report and "optimized" in report
        assert db.ctx.metrics.records_since(mark) == []

    def test_unknown_mode_still_rejected(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT COUNT(1) FROM orders", mode="warp-speed")


def summary_mode(execution):
    return execution.details["optimizer"]["picked"]
