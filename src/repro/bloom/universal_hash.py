"""Universal hashing (Carter-Wegman) for S3-Select-compatible Bloom filters.

The paper (Section V-A1) picks universal hashing precisely because it
needs only arithmetic S3 Select supports::

    h_{a,b}(x) = ((a*x + b) mod n) mod m

with ``m`` the bit-array length, ``n`` a prime >= m, and random
``a in [1, n-1]``, ``b in [0, n-1]``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import py_rng


def is_prime(n: int) -> bool:
    """Deterministic trial-division primality (fine for our n < ~10^8)."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    i = 3
    while i * i <= n:
        if n % i == 0:
            return False
        i += 2
    return True


def next_prime(n: int) -> int:
    """Smallest prime >= n."""
    candidate = max(n, 2)
    while not is_prime(candidate):
        candidate += 1
    return candidate


@dataclass(frozen=True)
class UniversalHash:
    """One member of the universal family, fully determined by (a, b, n, m)."""

    a: int
    b: int
    n: int  # prime >= m
    m: int  # bit-array length

    def __post_init__(self):
        if not 1 <= self.a < self.n:
            raise ValueError(f"a must be in [1, n); got a={self.a}, n={self.n}")
        if not 0 <= self.b < self.n:
            raise ValueError(f"b must be in [0, n); got b={self.b}, n={self.n}")
        if self.m < 1 or self.n < self.m:
            raise ValueError(f"need 1 <= m <= n; got m={self.m}, n={self.n}")

    def apply(self, x: int) -> int:
        return ((self.a * x + self.b) % self.n) % self.m

    def to_sql(self, attr_sql: str) -> str:
        """Render the hash as S3 Select arithmetic over ``attr_sql``.

        The result is the 1-based SUBSTRING position, i.e. the paper's
        ``((69 * CAST(attr as INT) + 92) % 97) % 68 + 1`` pattern.
        """
        return f"(({self.a} * {attr_sql} + {self.b}) % {self.n}) % {self.m} + 1"


#: Default outer modulus: the Mersenne prime 2^31 - 1.  The universal
#: family needs ``n`` at least the key-universe size or keys congruent
#: mod n collide deterministically in *every* hash function, putting a
#: floor of roughly ``s/n`` under the false-positive rate no matter how
#: many bits are allocated.  (The paper's example uses a small n = 97 for
#: exposition; any real key domain needs a large one.)
UNIVERSE_PRIME = 2**31 - 1


def make_hash_family(k: int, m: int, seed: int | None = None) -> list[UniversalHash]:
    """Draw ``k`` independent members with shared modulus parameters."""
    if k < 1:
        raise ValueError(f"need at least one hash function, got k={k}")
    n = UNIVERSE_PRIME if m <= UNIVERSE_PRIME else next_prime(m)
    rng = py_rng(seed)
    family = []
    for _ in range(k):
        a = rng.randrange(1, n)
        b = rng.randrange(0, n)
        family.append(UniversalHash(a=a, b=b, n=n, m=m))
    return family
