"""Bloom filters sized by the paper's formulas and renderable to S3 SQL.

Sizing (Section V-A1, citing Almeida et al.)::

    k_p = log2(1/p)            hash functions
    m_p = s * |ln p| / (ln 2)^2   bits, for s expected elements

Because S3 Select has no bitwise operators or binary data, the bit array
travels as a literal string of ``'0'``/``'1'`` characters probed with
``SUBSTRING(bits, h(x)+1, 1) = '1'`` — the paper's Listing 1.  That
string representation is why the 256 KB expression limit binds, which
drives the degradation logic in :func:`build_bloom_filter_within_limit`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.bloom.universal_hash import UniversalHash, make_hash_family
from repro.s3select.validator import EXPRESSION_LIMIT_BYTES


def optimal_num_hashes(fpr: float) -> int:
    """``k_p = log2(1/p)``, at least 1."""
    _check_fpr(fpr)
    return max(1, round(math.log2(1.0 / fpr)))


def optimal_num_bits(n_elements: int, fpr: float) -> int:
    """``m_p = s*|ln p| / (ln 2)^2``, at least 1."""
    _check_fpr(fpr)
    if n_elements < 0:
        raise ValueError(f"n_elements must be >= 0, got {n_elements}")
    bits = math.ceil(n_elements * abs(math.log(fpr)) / (math.log(2) ** 2))
    return max(1, bits)


def _check_fpr(fpr: float) -> None:
    if not 0.0 < fpr < 1.0:
        raise ValueError(f"false-positive rate must be in (0, 1), got {fpr}")


@dataclass
class BloomFilter:
    """A Bloom filter over integer keys (paper limitation: integers only,

    because the universal hash family is arithmetic — Section V-A2 notes
    string keys would need looping constructs S3 Select lacks).
    """

    bits: bytearray
    hashes: list[UniversalHash]
    target_fpr: float

    @classmethod
    def with_capacity(
        cls, n_elements: int, fpr: float, seed: int | None = None
    ) -> "BloomFilter":
        """Create an empty filter sized for ``n_elements`` at ``fpr``."""
        m = optimal_num_bits(n_elements, fpr)
        k = optimal_num_hashes(fpr)
        return cls(
            bits=bytearray(m), hashes=make_hash_family(k, m, seed), target_fpr=fpr
        )

    @classmethod
    def build(
        cls, keys: Iterable[int], fpr: float, seed: int | None = None
    ) -> "BloomFilter":
        """Create a filter sized for and containing ``keys``."""
        key_list = list(keys)
        bloom = cls.with_capacity(len(key_list), fpr, seed)
        for key in key_list:
            bloom.add(key)
        return bloom

    # ------------------------------------------------------------------
    @property
    def num_bits(self) -> int:
        return len(self.bits)

    @property
    def num_hashes(self) -> int:
        return len(self.hashes)

    def add(self, key: int) -> None:
        if not isinstance(key, int) or isinstance(key, bool):
            raise TypeError(
                f"Bloom join supports only integer join attributes (got {key!r});"
                " see paper Section V-A2"
            )
        for h in self.hashes:
            self.bits[h.apply(key)] = 1

    def might_contain(self, key: int) -> bool:
        """False means definitely absent; True means probably present."""
        return all(self.bits[h.apply(key)] for h in self.hashes)

    def bit_string(self) -> str:
        """The ``'0'``/``'1'`` string literal shipped inside SQL."""
        return "".join("1" if b else "0" for b in self.bits)

    # ------------------------------------------------------------------
    # SQL rendering
    # ------------------------------------------------------------------
    def to_sql_predicate(self, attr: str, cast_to_int: bool = True) -> str:
        """Render the membership test as an S3 Select WHERE fragment.

        One conjunct per hash function, each embedding the bit string —
        exactly the shape of the paper's Listing 1.
        """
        attr_sql = f"CAST({attr} AS INT)" if cast_to_int else attr
        bit_literal = "'" + self.bit_string() + "'"
        clauses = [
            f"SUBSTRING({bit_literal}, {h.to_sql(attr_sql)}, 1) = '1'"
            for h in self.hashes
        ]
        return " AND ".join(clauses)

    def predicate_size_bytes(self, attr: str) -> int:
        """Size of the rendered predicate (what counts against 256 KB)."""
        return len(self.to_sql_predicate(attr).encode())


@dataclass
class BloomBuildOutcome:
    """Result of trying to fit a Bloom filter under the expression limit."""

    bloom: BloomFilter | None   # None -> degraded to no filter at all
    achieved_fpr: float         # 1.0 when degraded
    attempts: list[float]       # FPRs tried, in order


def build_bloom_filter_within_limit(
    keys: Sequence[int],
    target_fpr: float,
    attr: str,
    sql_overhead_bytes: int = 0,
    limit_bytes: int = EXPRESSION_LIMIT_BYTES,
    seed: int | None = None,
) -> BloomBuildOutcome:
    """Build the best filter whose rendered SQL fits the service limit.

    Mirrors the paper's degradation policy (Section V-B1): if the filter
    at the requested FPR is too large, *increase* the FPR (shrinking the
    bit array) until the query fits; "in the case where the best
    achievable false positive rate cannot be less than 1, PushdownDB
    falls back to not using a Bloom filter at all".

    Args:
        sql_overhead_bytes: bytes the rest of the query (SELECT list,
            other predicates) contributes toward the limit.
    """
    budget = limit_bytes - sql_overhead_bytes
    attempts: list[float] = []
    candidates: list[float] = []
    fpr = target_fpr
    while fpr < 0.9:
        candidates.append(fpr)
        fpr *= 10.0
    # Last resort before giving up entirely: a single-hash filter at a
    # terrible-but-still-useful rate (smallest possible bit array).
    candidates.append(0.9)
    for fpr in candidates:
        attempts.append(fpr)
        bloom = BloomFilter.build(keys, fpr, seed)
        if bloom.predicate_size_bytes(attr) <= budget:
            return BloomBuildOutcome(bloom=bloom, achieved_fpr=fpr, attempts=attempts)
    return BloomBuildOutcome(bloom=None, achieved_fpr=1.0, attempts=attempts)
