"""Recursive-descent parser producing :mod:`repro.sqlparser.ast` nodes.

Expression parsing uses precedence climbing with the usual SQL levels:

    OR < AND < NOT < comparison/IN/BETWEEN/LIKE/IS < additive (+ - ||)
       < multiplicative (* / %) < unary +/- < primary
"""

from __future__ import annotations

from repro.common.errors import SQLSyntaxError
from repro.sqlparser import ast
from repro.sqlparser.lexer import Token, TokenType, tokenize

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_ADDITIVE_OPS = {"+", "-", "||"}
_MULTIPLICATIVE_OPS = {"*", "/", "%"}

#: Type names accepted by CAST.
CAST_TYPES = frozenset({"INT", "INTEGER", "FLOAT", "DECIMAL", "NUMERIC",
                        "STRING", "CHAR", "VARCHAR", "BOOL", "TIMESTAMP", "DATE"})


def parse(sql: str) -> ast.Query:
    """Parse a full SELECT statement."""
    parser = _Parser(tokenize(sql))
    query = parser.parse_query()
    parser.expect_eof()
    return query


def parse_expression(sql: str) -> ast.Expr:
    """Parse a standalone expression (used heavily in tests)."""
    parser = _Parser(tokenize(sql))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _match_keyword(self, *words: str) -> Token | None:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in words:
            return self._advance()
        return None

    def _expect_keyword(self, word: str) -> Token:
        token = self._match_keyword(word)
        if token is None:
            actual = self._peek()
            raise SQLSyntaxError(
                f"expected {word}, found {actual.value or 'end of input'!r}",
                position=actual.position,
            )
        return token

    def _match_punct(self, symbol: str) -> Token | None:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == symbol:
            return self._advance()
        return None

    def _expect_punct(self, symbol: str) -> Token:
        token = self._match_punct(symbol)
        if token is None:
            actual = self._peek()
            raise SQLSyntaxError(
                f"expected {symbol!r}, found {actual.value or 'end of input'!r}",
                position=actual.position,
            )
        return token

    def _match_operator(self, ops: set[str]) -> Token | None:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in ops:
            return self._advance()
        return None

    def expect_eof(self) -> None:
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise SQLSyntaxError(
                f"unexpected trailing input {token.value!r}", position=token.position
            )

    # ------------------------------------------------------------------
    # statement grammar
    # ------------------------------------------------------------------
    def parse_query(self) -> ast.Query:
        self._expect_keyword("SELECT")
        select_items = self._parse_select_list()
        self._expect_keyword("FROM")
        derived: ast.Query | None = None
        joins: list[ast.JoinSpec] = []
        inner_join_conds: list[ast.Expr] = []
        if self._match_punct("("):
            # A sole derived table: FROM (SELECT ...) AS alias.
            self._expect_keyword("SELECT")
            self._pos -= 1
            derived = self.parse_query()
            self._expect_punct(")")
            self._match_keyword("AS")
            tables = [self._parse_table_name()]
        else:
            tables = [self._parse_table_name()]
            while True:
                if self._match_punct(","):
                    tables.append(self._parse_table_name())
                    continue
                if self._match_keyword("LEFT"):
                    self._match_keyword("OUTER")
                    self._expect_keyword("JOIN")
                    join_name = self._parse_table_name()
                    self._expect_keyword("ON")
                    joins.append(ast.JoinSpec(join_name, self.parse_expr()))
                    continue
                if self._match_keyword("INNER") or self._peek().is_keyword("JOIN"):
                    # INNER JOIN ... ON desugars into the comma FROM list
                    # plus WHERE conjuncts.
                    self._expect_keyword("JOIN")
                    tables.append(self._parse_table_name())
                    self._expect_keyword("ON")
                    inner_join_conds.append(self.parse_expr())
                    continue
                break
        table = tables[0]
        join_table = tables[1] if len(tables) > 1 else None
        extra_tables = tuple(tables[2:])
        where = None
        if self._match_keyword("WHERE"):
            where = self.parse_expr()
        if inner_join_conds:
            where = ast.and_join(
                inner_join_conds + ([where] if where is not None else [])
            )
        group_by: tuple[ast.Expr, ...] = ()
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = tuple(self._parse_expr_list())
        having = None
        if self._match_keyword("HAVING"):
            having = self.parse_expr()
        order_by: tuple[ast.OrderItem, ...] = ()
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = tuple(self._parse_order_list())
        limit = None
        if self._match_keyword("LIMIT"):
            token = self._peek()
            if token.type is not TokenType.NUMBER:
                raise SQLSyntaxError("LIMIT requires an integer", position=token.position)
            self._advance()
            try:
                limit = int(token.value)
            except ValueError:
                raise SQLSyntaxError(
                    "LIMIT requires an integer", position=token.position
                ) from None
        return ast.Query(
            select_items=tuple(select_items),
            table=table,
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            join_table=join_table,
            extra_tables=extra_tables,
            having=having,
            joins=tuple(joins),
            derived=derived,
        )

    def _parse_table_name(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise SQLSyntaxError("expected table name", position=token.position)
        self._advance()
        return token.value

    def _parse_select_list(self) -> list[ast.SelectItem]:
        items = [self._parse_select_item()]
        while self._match_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.SelectItem(expr=ast.Star())
        expr = self.parse_expr()
        alias = None
        if self._match_keyword("AS"):
            alias_token = self._peek()
            if alias_token.type is not TokenType.IDENT:
                raise SQLSyntaxError("expected alias name", position=alias_token.position)
            self._advance()
            alias = alias_token.value
        return ast.SelectItem(expr=expr, alias=alias)

    def _parse_expr_list(self) -> list[ast.Expr]:
        exprs = [self.parse_expr()]
        while self._match_punct(","):
            exprs.append(self.parse_expr())
        return exprs

    def _parse_order_list(self) -> list[ast.OrderItem]:
        items = []
        while True:
            expr = self.parse_expr()
            descending = False
            if self._match_keyword("DESC"):
                descending = True
            else:
                self._match_keyword("ASC")
            items.append(ast.OrderItem(expr=expr, descending=descending))
            if not self._match_punct(","):
                return items

    # ------------------------------------------------------------------
    # expression grammar (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._match_keyword("OR"):
            left = ast.Binary("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._match_keyword("AND"):
            left = ast.Binary("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self._match_keyword("NOT"):
            operand = self._parse_not()
            # Fold NOT EXISTS into the node's own negation flag so the
            # decorrelation pass sees one canonical shape.
            if isinstance(operand, ast.Exists):
                return ast.Exists(operand.query, negated=not operand.negated)
            return ast.Unary("NOT", operand)
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        negated = bool(self._match_keyword("NOT"))
        if self._match_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated=negated)
        if self._match_keyword("IN"):
            self._expect_punct("(")
            if self._peek().is_keyword("SELECT"):
                subquery = self.parse_query()
                self._expect_punct(")")
                return ast.InSubquery(left, subquery, negated=negated)
            items = tuple(self._parse_expr_list())
            self._expect_punct(")")
            return ast.InList(left, items, negated=negated)
        if self._match_keyword("LIKE"):
            pattern = self._parse_additive()
            return ast.Like(left, pattern, negated=negated)
        if negated:
            token = self._peek()
            raise SQLSyntaxError(
                "NOT here must be followed by BETWEEN, IN or LIKE",
                position=token.position,
            )
        if self._match_keyword("IS"):
            is_negated = bool(self._match_keyword("NOT"))
            self._expect_keyword("NULL")
            return ast.IsNull(left, negated=is_negated)
        op_token = self._match_operator(_COMPARISON_OPS)
        if op_token is not None:
            op = "<>" if op_token.value == "!=" else op_token.value
            right = self._parse_additive()
            return ast.Binary(op, left, right)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            op_token = self._match_operator(_ADDITIVE_OPS)
            if op_token is None:
                return left
            if op_token.value in ("+", "-") and self._peek().is_keyword("INTERVAL"):
                left = self._fold_interval(left, op_token)
                continue
            left = ast.Binary(op_token.value, left, self._parse_multiplicative())

    def _fold_interval(self, left: ast.Expr, op_token: Token) -> ast.Expr:
        """Fold ``DATE 'x' ± INTERVAL 'n' UNIT`` into an ISO-string
        literal at parse time (dates travel as lexically-ordered
        strings, so the folded constant compares correctly)."""
        self._expect_keyword("INTERVAL")
        count_token = self._peek()
        if count_token.type is not TokenType.STRING:
            raise SQLSyntaxError(
                "INTERVAL requires a quoted count like INTERVAL '3'",
                position=count_token.position,
            )
        self._advance()
        try:
            count = int(count_token.value)
        except ValueError:
            raise SQLSyntaxError(
                f"INTERVAL count must be an integer, got {count_token.value!r}",
                position=count_token.position,
            ) from None
        unit_token = self._advance()
        unit = unit_token.value.upper().rstrip("S")
        if unit not in ("DAY", "MONTH", "YEAR"):
            raise SQLSyntaxError(
                f"unsupported INTERVAL unit {unit_token.value!r}",
                position=unit_token.position,
            )
        if not (isinstance(left, ast.Literal) and isinstance(left.value, str)):
            raise SQLSyntaxError(
                "INTERVAL arithmetic requires a date-string literal on the left",
                position=op_token.position,
            )
        if op_token.value == "-":
            count = -count
        return ast.Literal(_shift_date(left.value, count, unit, op_token.position))

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            op_token = self._match_operator(_MULTIPLICATIVE_OPS)
            if op_token is None:
                return left
            left = ast.Binary(op_token.value, left, self._parse_unary())

    def _parse_unary(self) -> ast.Expr:
        op_token = self._match_operator({"+", "-"})
        if op_token is not None:
            operand = self._parse_unary()
            # Fold -literal into a literal so rendered SQL stays tidy.
            if op_token.value == "-" and isinstance(operand, ast.Literal) and isinstance(
                operand.value, (int, float)
            ):
                return ast.Literal(-operand.value)
            if op_token.value == "+":
                return operand
            return ast.Unary(op_token.value, operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.Literal(_parse_number(token))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.KEYWORD:
            return self._parse_keyword_primary(token)
        if token.type is TokenType.PUNCT and token.value == "(":
            self._advance()
            if self._peek().is_keyword("SELECT"):
                subquery = self.parse_query()
                self._expect_punct(")")
                return ast.ScalarSubquery(subquery)
            expr = self.parse_expr()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.IDENT:
            return self._parse_ident_primary()
        raise SQLSyntaxError(
            f"unexpected token {token.value or 'end of input'!r}",
            position=token.position,
        )

    def _parse_keyword_primary(self, token: Token) -> ast.Expr:
        if token.value == "NULL":
            self._advance()
            return ast.Literal(None)
        if token.value in ("TRUE", "FALSE"):
            self._advance()
            return ast.Literal(token.value == "TRUE")
        if token.value == "CASE":
            return self._parse_case()
        if token.value == "CAST":
            return self._parse_cast()
        if token.value == "EXISTS":
            self._advance()
            self._expect_punct("(")
            subquery = self.parse_query()
            self._expect_punct(")")
            return ast.Exists(subquery)
        raise SQLSyntaxError(
            f"unexpected keyword {token.value}", position=token.position
        )

    def _parse_case(self) -> ast.Expr:
        self._expect_keyword("CASE")
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self._match_keyword("WHEN"):
            cond = self.parse_expr()
            self._expect_keyword("THEN")
            value = self.parse_expr()
            whens.append((cond, value))
        if not whens:
            token = self._peek()
            raise SQLSyntaxError("CASE requires at least one WHEN", position=token.position)
        default = None
        if self._match_keyword("ELSE"):
            default = self.parse_expr()
        self._expect_keyword("END")
        return ast.Case(whens=tuple(whens), default=default)

    def _parse_cast(self) -> ast.Expr:
        self._expect_keyword("CAST")
        self._expect_punct("(")
        operand = self.parse_expr()
        self._expect_keyword("AS")
        type_token = self._peek()
        type_name = type_token.value.upper()
        if type_name not in CAST_TYPES:
            raise SQLSyntaxError(
                f"unknown CAST target type {type_token.value!r}",
                position=type_token.position,
            )
        self._advance()
        # Tolerate a precision suffix like DECIMAL(12, 2): parse and ignore.
        if self._match_punct("("):
            while not self._match_punct(")"):
                self._advance()
        self._expect_punct(")")
        return ast.Cast(operand=operand, type_name=_canonical_type(type_name))

    def _parse_ident_primary(self) -> ast.Expr:
        name_token = self._advance()
        if (
            name_token.value.upper() == "DATE"
            and self._peek().type is TokenType.STRING
        ):
            # DATE 'YYYY-MM-DD' folds to its ISO string; dates travel as
            # lexically-ordered strings throughout the engine.
            return ast.Literal(self._advance().value)
        if self._match_punct("("):
            return self._parse_call(name_token.value)
        if self._match_punct("."):
            col_token = self._peek()
            if col_token.type is not TokenType.IDENT:
                raise SQLSyntaxError(
                    "expected column name after '.'", position=col_token.position
                )
            self._advance()
            return ast.Column(name=col_token.value, table=name_token.value)
        return ast.Column(name=name_token.value)

    def _parse_call(self, name: str) -> ast.Expr:
        func = name.upper()
        if func in ast.AGGREGATE_FUNCS:
            distinct = bool(self._match_keyword("DISTINCT"))
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value == "*":
                self._advance()
                operand: ast.Expr = ast.Star()
            else:
                operand = self.parse_expr()
            self._expect_punct(")")
            return ast.Aggregate(func=func, operand=operand, distinct=distinct)
        args: list[ast.Expr] = []
        if not self._match_punct(")"):
            args.append(self.parse_expr())
            while self._match_punct(","):
                args.append(self.parse_expr())
            self._expect_punct(")")
        return ast.FuncCall(name=func, args=tuple(args))


def _shift_date(iso: str, count: int, unit: str, position: int) -> str:
    """Shift an ISO ``YYYY-MM-DD`` date by ``count`` DAY/MONTH/YEAR units,
    clamping the day to the target month's length."""
    import datetime

    try:
        day = datetime.date.fromisoformat(iso)
    except ValueError:
        raise SQLSyntaxError(
            f"INTERVAL arithmetic requires an ISO date, got {iso!r}",
            position=position,
        ) from None
    if unit == "DAY":
        return (day + datetime.timedelta(days=count)).isoformat()
    months = day.month - 1 + count * (12 if unit == "YEAR" else 1)
    year, month = day.year + months // 12, months % 12 + 1
    if month == 12:
        month_days = 31
    else:
        month_days = (
            datetime.date(year, month + 1, 1) - datetime.date(year, month, 1)
        ).days
    return datetime.date(year, month, min(day.day, month_days)).isoformat()


def _parse_number(token: Token):
    text = token.value
    if any(ch in text for ch in ".eE"):
        return float(text)
    return int(text)


def _canonical_type(type_name: str) -> str:
    aliases = {
        "INTEGER": "INT",
        "DECIMAL": "FLOAT",
        "NUMERIC": "FLOAT",
        "CHAR": "STRING",
        "VARCHAR": "STRING",
    }
    return aliases.get(type_name, type_name)
