"""AST node definitions for the SQL dialect.

Nodes are immutable dataclasses.  Every node renders back to SQL via
``to_sql()``; the Bloom-join strategy uses this to ship generated filter
expressions to the (simulated) S3 Select service, and tests use it for
parse/render round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

Expr = Union[
    "Literal", "Column", "Star", "Unary", "Binary", "FuncCall", "Cast",
    "Case", "InList", "Between", "Like", "IsNull", "Aggregate",
    "Exists", "InSubquery", "ScalarSubquery",
]

#: Aggregate function names the dialect (and S3 Select) understands.
AGGREGATE_FUNCS = frozenset({"SUM", "COUNT", "AVG", "MIN", "MAX"})


def _sql_str(value: str) -> str:
    """Render a string literal, doubling embedded quotes."""
    return "'" + value.replace("'", "''") + "'"


@dataclass(frozen=True)
class Literal:
    """A constant: int, float, str, bool, or None (SQL NULL)."""

    value: object

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            return _sql_str(self.value)
        return repr(self.value)


@dataclass(frozen=True)
class Column:
    """A column reference, optionally qualified (``t.col``)."""

    name: str
    table: str | None = None

    def to_sql(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star:
    """``*`` in a select list or ``COUNT(*)``."""

    def to_sql(self) -> str:
        return "*"


@dataclass(frozen=True)
class Unary:
    """Unary operator: ``-expr``, ``+expr`` or ``NOT expr``."""

    op: str
    operand: Expr

    def to_sql(self) -> str:
        if self.op == "NOT":
            return f"NOT ({self.operand.to_sql()})"
        return f"{self.op}({self.operand.to_sql()})"


@dataclass(frozen=True)
class Binary:
    """Binary operator (arithmetic, comparison, AND/OR, ``||``)."""

    op: str
    left: Expr
    right: Expr

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass(frozen=True)
class FuncCall:
    """A scalar function call such as ``SUBSTRING(s, 1, 4)``."""

    name: str
    args: tuple[Expr, ...]

    def to_sql(self) -> str:
        rendered = ", ".join(a.to_sql() for a in self.args)
        return f"{self.name}({rendered})"


@dataclass(frozen=True)
class Cast:
    """``CAST(expr AS TYPE)``."""

    operand: Expr
    type_name: str

    def to_sql(self) -> str:
        return f"CAST({self.operand.to_sql()} AS {self.type_name})"


@dataclass(frozen=True)
class Case:
    """``CASE WHEN cond THEN val ... [ELSE val] END`` (searched form)."""

    whens: tuple[tuple[Expr, Expr], ...]
    default: Expr | None = None

    def to_sql(self) -> str:
        parts = ["CASE"]
        for cond, value in self.whens:
            parts.append(f"WHEN {cond.to_sql()} THEN {value.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class InList:
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def to_sql(self) -> str:
        rendered = ", ".join(item.to_sql() for item in self.items)
        maybe_not = "NOT " if self.negated else ""
        return f"({self.operand.to_sql()} {maybe_not}IN ({rendered}))"


@dataclass(frozen=True)
class Between:
    """``expr [NOT] BETWEEN low AND high`` (inclusive both ends)."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return (
            f"({self.operand.to_sql()} {maybe_not}BETWEEN "
            f"{self.low.to_sql()} AND {self.high.to_sql()})"
        )


@dataclass(frozen=True)
class Like:
    """``expr [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expr
    pattern: Expr
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({self.operand.to_sql()} {maybe_not}LIKE {self.pattern.to_sql()})"


@dataclass(frozen=True)
class IsNull:
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {suffix})"


@dataclass(frozen=True)
class Aggregate:
    """An aggregate call: ``SUM(expr)``, ``COUNT(*)``, ``AVG(expr)``, ..."""

    func: str
    operand: Expr  # Star() for COUNT(*)
    distinct: bool = False

    def to_sql(self) -> str:
        inner = self.operand.to_sql()
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class Exists:
    """``[NOT] EXISTS (SELECT ...)``; the planner decorrelates it into a
    semi (or anti) hash join."""

    query: "Query"
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"{maybe_not}EXISTS ({self.query.to_sql()})"


@dataclass(frozen=True)
class InSubquery:
    """``expr [NOT] IN (SELECT ...)``; NULL-aware on the NOT side."""

    operand: Expr
    query: "Query"
    negated: bool = False

    def to_sql(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({self.operand.to_sql()} {maybe_not}IN ({self.query.to_sql()}))"


@dataclass(frozen=True)
class ScalarSubquery:
    """``(SELECT ...)`` used as a scalar value; the planner pre-executes
    uncorrelated ones into constants and decorrelates correlated
    aggregates into grouped joins."""

    query: "Query"

    def to_sql(self) -> str:
        return f"({self.query.to_sql()})"


@dataclass(frozen=True)
class SelectItem:
    """One entry of a select list: an expression plus optional alias."""

    expr: Expr
    alias: str | None = None

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.expr.to_sql()} AS {self.alias}"
        return self.expr.to_sql()

    def output_name(self, ordinal: int) -> str:
        """Column name this item produces in the result schema."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, Column):
            return self.expr.name
        return f"_{ordinal}"


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expr: Expr
    descending: bool = False

    def to_sql(self) -> str:
        return f"{self.expr.to_sql()} {'DESC' if self.descending else 'ASC'}"


@dataclass(frozen=True)
class JoinSpec:
    """One explicit ``LEFT [OUTER] JOIN table ON condition`` clause.

    ``INNER JOIN ... ON`` is desugared by the parser into the comma FROM
    list plus WHERE conjuncts, so only outer joins appear here.
    """

    table: str
    condition: Expr
    join_type: str = "left"  # only outer joins are carried explicitly

    def to_sql(self) -> str:
        return f"LEFT OUTER JOIN {self.table} ON {self.condition.to_sql()}"


@dataclass(frozen=True)
class Query:
    """A parsed SELECT statement.

    The ``FROM`` list is carried as ``table`` (first entry),
    ``join_table`` (second entry, if any) and ``extra_tables`` (third
    entry onward); :attr:`from_tables` reassembles the full list.  The
    split keeps the historical two-table field layout stable for the
    pairwise join planner while letting N-way queries parse.

    Explicit outer joins live in ``joins`` (their tables are *not* part
    of :attr:`from_tables` — the planner applies them on top of the
    comma-join core).  A sole derived table (``FROM (SELECT ...) AS x``)
    is carried in ``derived`` with ``table`` holding its alias.
    """

    select_items: tuple[SelectItem, ...]
    table: str
    where: Expr | None = None
    group_by: tuple[Expr, ...] = field(default=())
    order_by: tuple[OrderItem, ...] = field(default=())
    limit: int | None = None
    join_table: str | None = None
    join_condition: Expr | None = None
    extra_tables: tuple[str, ...] = field(default=())
    having: Expr | None = None
    joins: tuple[JoinSpec, ...] = field(default=())
    derived: "Query | None" = None

    @property
    def from_tables(self) -> tuple[str, ...]:
        """Every comma-list table in the ``FROM`` clause, in source order
        (outer-joined tables from :attr:`joins` are excluded)."""
        tables = (self.table,)
        if self.join_table:
            tables += (self.join_table,)
        return tables + self.extra_tables

    @property
    def all_tables(self) -> tuple[str, ...]:
        """Every table the query reads, including outer-joined ones."""
        return self.from_tables + tuple(j.table for j in self.joins)

    def to_sql(self) -> str:
        parts = ["SELECT " + ", ".join(item.to_sql() for item in self.select_items)]
        if self.derived is not None:
            from_clause = f"FROM ({self.derived.to_sql()}) AS {self.table}"
        else:
            from_clause = "FROM " + ", ".join(self.from_tables)
        for join in self.joins:
            from_clause += " " + join.to_sql()
        parts.append(from_clause)
        if self.where is not None:
            parts.append(f"WHERE {self.where.to_sql()}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(g.to_sql() for g in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having.to_sql()}")
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.to_sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


def walk(expr: Expr):
    """Yield ``expr`` and all sub-expressions, depth-first."""
    yield expr
    children: tuple = ()
    if isinstance(expr, Unary):
        children = (expr.operand,)
    elif isinstance(expr, Binary):
        children = (expr.left, expr.right)
    elif isinstance(expr, FuncCall):
        children = expr.args
    elif isinstance(expr, Cast):
        children = (expr.operand,)
    elif isinstance(expr, Case):
        children = tuple(x for pair in expr.whens for x in pair)
        if expr.default is not None:
            children += (expr.default,)
    elif isinstance(expr, InList):
        children = (expr.operand, *expr.items)
    elif isinstance(expr, Between):
        children = (expr.operand, expr.low, expr.high)
    elif isinstance(expr, Like):
        children = (expr.operand, expr.pattern)
    elif isinstance(expr, IsNull):
        children = (expr.operand,)
    elif isinstance(expr, Aggregate):
        children = (expr.operand,)
    elif isinstance(expr, InSubquery):
        # The subquery body is a separate scope; only the outer operand
        # is walked.  Exists/ScalarSubquery have no outer children.
        children = (expr.operand,)
    for child in children:
        yield from walk(child)


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a predicate's top-level AND chain into its conjuncts.

    ``None`` (no predicate) yields the empty list.  The planner and the
    join-order search share this as the unit of WHERE decomposition.
    """
    if expr is None:
        return []
    if isinstance(expr, Binary) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def and_join(conjuncts: list[Expr]) -> Expr | None:
    """Rebuild a conjunction from :func:`split_conjuncts` output."""
    if not conjuncts:
        return None
    expr = conjuncts[0]
    for extra in conjuncts[1:]:
        expr = Binary("AND", expr, extra)
    return expr


def referenced_columns(expr: Expr) -> set[str]:
    """Set of (unqualified) column names referenced by ``expr``."""
    return {node.name for node in walk(expr) if isinstance(node, Column)}


def contains_aggregate(expr: Expr) -> bool:
    """True if any sub-expression is an aggregate call."""
    return any(isinstance(node, Aggregate) for node in walk(expr))


def map_columns(expr: Expr, fn) -> Expr:
    """Rebuild ``expr`` with every :class:`Column` node passed through
    ``fn`` (which returns a replacement expression, possibly the node
    itself).  The planner uses this to substitute output aliases with
    their select expressions; :func:`rename_columns` builds on it."""

    def rewrite(node: Expr) -> Expr:
        if isinstance(node, Column):
            return fn(node)
        if isinstance(node, Unary):
            return Unary(node.op, rewrite(node.operand))
        if isinstance(node, Binary):
            return Binary(node.op, rewrite(node.left), rewrite(node.right))
        if isinstance(node, FuncCall):
            return FuncCall(node.name, tuple(rewrite(a) for a in node.args))
        if isinstance(node, Cast):
            return Cast(rewrite(node.operand), node.type_name)
        if isinstance(node, Case):
            return Case(
                tuple((rewrite(c), rewrite(v)) for c, v in node.whens),
                None if node.default is None else rewrite(node.default),
            )
        if isinstance(node, InList):
            return InList(
                rewrite(node.operand),
                tuple(rewrite(i) for i in node.items),
                node.negated,
            )
        if isinstance(node, Between):
            return Between(
                rewrite(node.operand), rewrite(node.low), rewrite(node.high), node.negated
            )
        if isinstance(node, Like):
            return Like(rewrite(node.operand), rewrite(node.pattern), node.negated)
        if isinstance(node, IsNull):
            return IsNull(rewrite(node.operand), node.negated)
        if isinstance(node, Aggregate):
            return Aggregate(node.func, rewrite(node.operand), node.distinct)
        if isinstance(node, InSubquery):
            return InSubquery(rewrite(node.operand), node.query, node.negated)
        return node

    return rewrite(expr)


def rename_columns(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Return ``expr`` with column names rewritten per ``mapping``.

    Used by the indexing strategy to retarget a data-table predicate at
    the index table's ``value`` column.  Lookup is case-insensitive;
    qualifiers are dropped on renamed columns.
    """
    lowered = {k.lower(): v for k, v in mapping.items()}

    def rename(column: Column) -> Expr:
        new_name = lowered.get(column.name.lower())
        if new_name is not None:
            return Column(name=new_name)
        return column

    return map_columns(expr, rename)
