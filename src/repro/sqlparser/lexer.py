"""Tokenizer for the PushdownDB / S3 Select SQL dialect.

The dialect is the subset of SQL the paper exercises: SELECT queries with
arithmetic (including ``%``, which the Bloom-join hash functions rely on),
comparisons, boolean connectives, ``CASE WHEN``, ``CAST``, ``SUBSTRING``,
``LIKE``, ``IN``, ``BETWEEN``, aggregates, GROUP BY / ORDER BY / LIMIT.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.common.errors import SQLSyntaxError


class TokenType(Enum):
    KEYWORD = auto()
    IDENT = auto()
    NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    PUNCT = auto()
    EOF = auto()


#: Words that the parser treats as reserved.  Everything else that looks
#: like a word is an identifier (column or function name).
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "LIMIT", "AS",
        "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS", "NULL",
        "CASE", "WHEN", "THEN", "ELSE", "END", "CAST", "ASC", "DESC",
        "TRUE", "FALSE", "DISTINCT", "ESCAPE", "HAVING", "JOIN", "LEFT",
        "OUTER", "INNER", "ON", "EXISTS", "INTERVAL",
    }
)

_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "%", "||")
_PUNCT = ("(", ")", ",", ".")


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (for errors)."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` into a list ending with an EOF token.

    Raises:
        SQLSyntaxError: on any character sequence the dialect does not
            recognize, or an unterminated string literal.
    """
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):  # line comment
            nl = sql.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if ch == "'":
            token, i = _read_string(sql, i)
            tokens.append(token)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            token, i = _read_number(sql, i)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            token, i = _read_word(sql, i)
            tokens.append(token)
            continue
        matched_op = _match_any(sql, i, _OPERATORS)
        if matched_op is not None:
            tokens.append(Token(TokenType.OPERATOR, matched_op, i))
            i += len(matched_op)
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _match_any(sql: str, i: int, candidates: tuple[str, ...]) -> str | None:
    """Return the longest candidate that matches ``sql`` at offset ``i``."""
    for cand in sorted(candidates, key=len, reverse=True):
        if sql.startswith(cand, i):
            return cand
    return None


def _read_string(sql: str, start: int) -> tuple[Token, int]:
    """Read a single-quoted string literal; ``''`` escapes a quote."""
    i = start + 1
    parts: list[str] = []
    while i < len(sql):
        ch = sql[i]
        if ch == "'":
            if i + 1 < len(sql) and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return Token(TokenType.STRING, "".join(parts), start), i + 1
        parts.append(ch)
        i += 1
    raise SQLSyntaxError("unterminated string literal", position=start)


def _read_number(sql: str, start: int) -> tuple[Token, int]:
    """Read an integer or decimal literal (optionally with exponent)."""
    i = start
    n = len(sql)
    while i < n and sql[i].isdigit():
        i += 1
    if i < n and sql[i] == ".":
        i += 1
        while i < n and sql[i].isdigit():
            i += 1
    if i < n and sql[i] in "eE":
        j = i + 1
        if j < n and sql[j] in "+-":
            j += 1
        if j < n and sql[j].isdigit():
            i = j
            while i < n and sql[i].isdigit():
                i += 1
    return Token(TokenType.NUMBER, sql[start:i], start), i


def _read_word(sql: str, start: int) -> tuple[Token, int]:
    """Read an identifier or keyword."""
    i = start
    n = len(sql)
    while i < n and (sql[i].isalnum() or sql[i] == "_"):
        i += 1
    word = sql[start:i]
    upper = word.upper()
    if upper in KEYWORDS:
        return Token(TokenType.KEYWORD, upper, start), i
    return Token(TokenType.IDENT, word, start), i
