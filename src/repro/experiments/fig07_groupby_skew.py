"""Figure 7: group-by strategies vs data skew (Zipf theta).

100 groups per column, group sizes Zipfian(theta) for theta in
{0, 0.6, 0.9, 1.1, 1.3}.  Expected shape: server-side and filtered
group-by are flat across skew (they always move all rows); hybrid
group-by gains as skew grows — at theta = 1.3 the paper reports a 31%
win over filtered — but costs slightly more (it scans the table twice).
"""

from __future__ import annotations

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog, load_table
from repro.experiments.harness import (
    ExperimentResult,
    PAPER_GROUPBY_BYTES,
    calibrate_tables,
    execution_row,
)
from repro.strategies.groupby import (
    AggSpec,
    GroupByQuery,
    filtered_group_by,
    hybrid_group_by,
    server_side_group_by,
)
from repro.workloads.synthetic import groupby_schema, skewed_groupby_table

DEFAULT_NUM_ROWS = 50_000
DEFAULT_THETAS = (0.0, 0.6, 0.9, 1.1, 1.3)

STRATEGIES = {
    "server-side": server_side_group_by,
    "filtered": filtered_group_by,
    "hybrid": hybrid_group_by,
}


def run(
    num_rows: int = DEFAULT_NUM_ROWS,
    thetas: tuple = DEFAULT_THETAS,
    paper_bytes: float = PAPER_GROUPBY_BYTES,
    seed: int = 1,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig7",
        title="Group-by strategies vs Zipf skew",
        notes={"num_rows": num_rows},
    )
    aggregates = [AggSpec("sum", c) for c in ("v0", "v1", "v2", "v3")]
    for theta in thetas:
        ctx = CloudContext()
        catalog = Catalog()
        rows = skewed_groupby_table(num_rows, theta=theta, seed=seed)
        load_table(ctx, catalog, "skewed", rows, groupby_schema(), bucket="fig7")
        calibrate_tables(ctx, catalog, ["skewed"], paper_bytes)
        query = GroupByQuery(
            table="skewed", group_columns=["g0"], aggregates=aggregates
        )
        reference = None
        for name, strategy in STRATEGIES.items():
            execution = strategy(ctx, catalog, query)
            normalized = sorted(
                (r[0], *(round(v, 4) for v in r[1:])) for r in execution.rows
            )
            if reference is None:
                reference = normalized
            elif normalized != reference:
                raise AssertionError(f"{name} disagrees at theta={theta}")
            result.rows.append(execution_row("theta", theta, name, execution))
    return result
