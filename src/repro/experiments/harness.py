"""Shared infrastructure for the per-figure experiment harnesses.

Every experiment returns an :class:`ExperimentResult`: a list of row
dicts (one per swept point x strategy) plus notes about calibration.
``to_table()`` renders the same rows/series the paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cloud.context import CloudContext, QueryExecution, set_default_pipeline
from repro.common.units import GB


def configure_pipeline(
    workers: int | None = None, batch_size: int | None = None
) -> None:
    """Set the streaming-pipeline knobs for every experiment context.

    Experiments build their own :class:`CloudContext`; this sets the
    process-wide defaults those contexts inherit, so a harness run can
    turn on concurrent partition scans (``workers``) or change the
    RecordBatch size without threading parameters through each figure.
    Concurrency changes wall-clock only — reproduced figures (rows,
    simulated runtime, cost) are identical for any setting.
    """
    set_default_pipeline(workers=workers, batch_size=batch_size)

#: Paper dataset sizes used for paper-equivalent calibration.
PAPER_TPCH_BYTES = 10 * GB          # "the same 10 GB TPC-H dataset"
PAPER_LINEITEM_BYTES = 7.25 * GB    # Section VII-C
PAPER_GROUPBY_BYTES = 10 * GB       # Section VI-C "10 GB table with 20 columns"


@dataclass
class ExperimentResult:
    """Rows + metadata for one reproduced figure/table."""

    experiment: str
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: dict = field(default_factory=dict)

    def series(self, strategy: str) -> list[dict]:
        """The sweep for one strategy, in sweep order."""
        return [r for r in self.rows if r.get("strategy") == strategy]

    def column(self, strategy: str, key: str) -> list:
        return [r[key] for r in self.series(strategy)]

    def to_table(self) -> str:
        """Render rows as an aligned text table (benchmark harness output)."""
        if not self.rows:
            return f"== {self.experiment}: {self.title} ==\n(no rows)"
        keys = list(dict.fromkeys(k for row in self.rows for k in row))
        header = [str(k) for k in keys]
        body = [
            [_fmt(row.get(k, "")) for k in keys]
            for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(keys))
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        for key, value in self.notes.items():
            lines.append(f"note: {key} = {value}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.3f}"
    return str(value)


def close_enough(a, b, rel: float = 1e-6) -> bool:
    """Relative float equality for cross-plan result checks.

    Different join orders sum floats in different sequences, so
    experiment harnesses compare aggregates up to a relative tolerance;
    ``None`` only equals ``None``.
    """
    if a is None or b is None:
        return a == b
    return abs(a - b) <= rel * max(abs(a), abs(b), 1.0)


def execution_row(
    sweep_name: str, sweep_value, strategy: str, execution: QueryExecution
) -> dict:
    """Standard row shape shared by all experiments."""
    cost = execution.cost
    return {
        sweep_name: sweep_value,
        "strategy": strategy,
        "runtime_s": round(execution.runtime_seconds, 4),
        "cost_total": round(cost.total, 6),
        "cost_compute": round(cost.compute, 6),
        "cost_request": round(cost.request, 6),
        "cost_scan": round(cost.scan, 6),
        "cost_transfer": round(cost.transfer, 6),
        "bytes_returned": execution.bytes_returned + execution.bytes_transferred,
        "requests": execution.num_requests,
    }


def calibrate_tables(
    ctx: CloudContext, catalog, table_names: Sequence[str], paper_bytes: float
) -> float:
    """Calibrate ``ctx`` so the named tables behave like ``paper_bytes``."""
    total = sum(catalog.get(t).total_bytes for t in table_names)
    return ctx.calibrate_to_paper_scale(total, paper_bytes)


def winners_by_sweep(
    rows: Sequence[dict], sweep_key: str, metric: str = "cost_total"
) -> dict:
    """Measured winner per swept point: ``sweep value -> strategy``.

    Works over :func:`execution_row`-shaped rows; the optimizer
    experiments use it as the ground truth the chooser's picks are
    validated against.
    """
    best: dict = {}
    for row in rows:
        value = row[sweep_key]
        if value not in best or row[metric] < best[value][metric]:
            best[value] = row
    return {value: row["strategy"] for value, row in best.items()}
