"""Figure 6: hybrid group-by — server-side vs S3-side time by split point.

Sweeps how many (large) groups hybrid group-by pushes to S3 on the
Zipfian workload.  Expected shape: pushing more groups increases the
S3-side (Q1) time and decreases both the bytes returned and the
server-side (Q2) time; total time — max of the two — is minimized in the
middle (the paper finds 6-8 groups best at theta = 1.1-1.3).
"""

from __future__ import annotations

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog, load_table
from repro.experiments.harness import (
    ExperimentResult,
    PAPER_GROUPBY_BYTES,
    calibrate_tables,
)
from repro.strategies.groupby import AggSpec, GroupByQuery, hybrid_group_by
from repro.workloads.synthetic import groupby_schema, skewed_groupby_table

DEFAULT_NUM_ROWS = 50_000
DEFAULT_SPLITS = (1, 4, 6, 8, 10, 12)
DEFAULT_THETA = 1.3


def run(
    num_rows: int = DEFAULT_NUM_ROWS,
    splits: tuple = DEFAULT_SPLITS,
    theta: float = DEFAULT_THETA,
    paper_bytes: float = PAPER_GROUPBY_BYTES,
    seed: int = 1,
) -> ExperimentResult:
    ctx = CloudContext()
    catalog = Catalog()
    rows = skewed_groupby_table(num_rows, theta=theta, seed=seed)
    load_table(ctx, catalog, "skewed", rows, groupby_schema(), bucket="fig6")
    scale = calibrate_tables(ctx, catalog, ["skewed"], paper_bytes)

    result = ExperimentResult(
        experiment="fig6",
        title="Hybrid group-by: groups aggregated at S3 vs server",
        notes={"num_rows": num_rows, "theta": theta, "paper_scale": f"{scale:.2e}"},
    )
    query = GroupByQuery(
        table="skewed",
        group_columns=["g0"],
        aggregates=[AggSpec("sum", c) for c in ("v0", "v1", "v2", "v3")],
    )
    for split in splits:
        execution = hybrid_group_by(ctx, catalog, query, s3_groups=split)
        result.rows.append(
            {
                "s3_groups": split,
                "strategy": "hybrid",
                "runtime_s": round(execution.runtime_seconds, 4),
                "s3_side_s": round(execution.details["s3_side_seconds"], 4),
                "server_side_s": round(execution.details["server_side_seconds"], 4),
                "bytes_returned": execution.details["bytes_returned_phase2"],
                "tail_rows": execution.details["tail_rows"],
                "cost_total": round(execution.cost.total, 6),
            }
        )
    return result
