"""Optimizer validation: does `auto` pick the measured winner?

Replays the paper's three strategy-crossover sweeps — Figure 1 (filter
strategies vs selectivity), Figure 5 (group-by strategies vs group
count) and Figure 9 (top-K strategies vs K) — and at every swept point
asks the cost-based chooser for its pick *before* running all candidate
strategies for real.  A row records the pick, the measured winner under
the same objective, and whether they agree; the notes aggregate the
match rate.  This is the regression harness CI uses to catch cost-model
drift: a mis-ranked crossover shows up as ``agree=False``.

Ground truth is computed with :func:`~repro.experiments.harness.
winners_by_sweep` over the very same metered executions the figure
harnesses tabulate.
"""

from __future__ import annotations

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog, load_table
from repro.experiments.harness import (
    ExperimentResult,
    PAPER_GROUPBY_BYTES,
    PAPER_LINEITEM_BYTES,
    calibrate_tables,
    execution_row,
    winners_by_sweep,
)
from repro.optimizer.chooser import Choice, choose
from repro.queries.dataset import load_tpch
from repro.sqlparser import ast
from repro.strategies.filter import FilterQuery
from repro.strategies.groupby import AggSpec, GroupByQuery
from repro.strategies.topk import TopKQuery
from repro.workloads.synthetic import (
    FILTER_SCHEMA,
    filter_table,
    groupby_schema,
    uniform_groupby_table,
)

#: Objectives validated at every swept point.
OBJECTIVES = ("cost", "runtime")

_METRIC = {"cost": "cost_total", "runtime": "runtime_s"}


def _choice_row(
    scenario: str, sweep_value, objective: str, choice: Choice, winner: str
) -> dict:
    best = choice.best
    return {
        "scenario": scenario,
        "sweep": sweep_value,
        "objective": objective,
        "picked": choice.picked,
        "measured_best": winner,
        "agree": choice.picked == winner,
        "predicted_runtime_s": round(best.runtime_seconds, 4),
        "predicted_cost": round(best.total_cost, 6),
    }


def _filter_scenario(num_rows: int, matches, rows_out: list[dict]) -> None:
    from repro.experiments.fig01_filter import PAPER_ROWS, STRATEGIES

    ctx, catalog = CloudContext(), Catalog()
    table_rows = filter_table(num_rows, seed=1)
    load_table(
        ctx, catalog, "filter_data", table_rows, FILTER_SCHEMA,
        bucket="auto", index_columns=["key"],
    )
    calibrate_tables(ctx, catalog, ["filter_data"], 10e9)
    ctx.client.range_request_weight = PAPER_ROWS / num_rows
    name_map = {
        "server-side": "server-side filter",
        "s3-side": "s3-side filter",
        "indexing": "s3-side indexing",
    }
    for matched in matches:
        if matched > num_rows:
            continue
        query = FilterQuery(
            table="filter_data",
            predicate=ast.Binary("<", ast.Column("key"), ast.Literal(matched)),
        )
        choices = {
            obj: choose(ctx, catalog, query, objective=obj) for obj in OBJECTIVES
        }
        measured = [
            execution_row("sweep", matched, name_map[name], strategy(ctx, catalog, query))
            for name, strategy in STRATEGIES.items()
        ]
        for objective in OBJECTIVES:
            winner = winners_by_sweep(measured, "sweep", _METRIC[objective])[matched]
            rows_out.append(_choice_row(
                "fig01-filter", matched, objective, choices[objective], winner
            ))


def _groupby_scenario(num_rows: int, group_counts, rows_out: list[dict]) -> None:
    from repro.experiments.fig05_groupby_groups import AGG_COLUMNS, STRATEGIES

    ctx, catalog = CloudContext(), Catalog()
    load_table(
        ctx, catalog, "uniform", uniform_groupby_table(num_rows, seed=1),
        groupby_schema(), bucket="auto",
    )
    calibrate_tables(ctx, catalog, ["uniform"], PAPER_GROUPBY_BYTES)
    aggregates = [AggSpec("sum", c) for c in AGG_COLUMNS]
    name_map = {
        "server-side": "server-side group-by",
        "filtered": "filtered group-by",
        "s3-side": "s3-side group-by",
    }
    for groups in group_counts:
        column = f"g{groups.bit_length() - 2}"
        query = GroupByQuery(
            table="uniform", group_columns=[column], aggregates=aggregates
        )
        # Figure 5's candidate set has no hybrid strategy (uniform groups
        # give it no head to push), so the chooser competes on the same
        # three candidates the measurements cover.
        choices = {
            obj: choose(
                ctx, catalog, query, objective=obj, include_hybrid=False
            )
            for obj in OBJECTIVES
        }
        measured = [
            execution_row("sweep", groups, name_map[name], strategy(ctx, catalog, query))
            for name, strategy in STRATEGIES.items()
        ]
        for objective in OBJECTIVES:
            winner = winners_by_sweep(measured, "sweep", _METRIC[objective])[groups]
            rows_out.append(_choice_row(
                "fig05-groupby", groups, objective, choices[objective], winner
            ))


def _topk_scenario(scale_factor: float, k_fractions, rows_out: list[dict]) -> None:
    from repro.experiments.fig09_topk_k import DEFAULT_K_FRACTIONS  # noqa: F401
    from repro.strategies.topk import sampling_top_k, server_side_top_k

    ctx, catalog = CloudContext(), Catalog()
    load_tpch(ctx, catalog, scale_factor, tables=("lineitem",))
    calibrate_tables(ctx, catalog, ["lineitem"], PAPER_LINEITEM_BYTES)
    table = catalog.get("lineitem")
    seen: set[int] = set()
    for fraction in k_fractions:
        k = max(1, int(table.num_rows * fraction))
        if k in seen:
            continue
        seen.add(k)
        query = TopKQuery(table="lineitem", order_column="l_extendedprice", k=k)
        choices = {
            obj: choose(ctx, catalog, query, objective=obj) for obj in OBJECTIVES
        }
        measured = [
            execution_row(
                "sweep", k, "server-side top-k", server_side_top_k(ctx, catalog, query)
            ),
            execution_row(
                "sweep", k, "sampling top-k", sampling_top_k(ctx, catalog, query)
            ),
        ]
        for objective in OBJECTIVES:
            winner = winners_by_sweep(measured, "sweep", _METRIC[objective])[k]
            rows_out.append(_choice_row(
                "fig09-topk", k, objective, choices[objective], winner
            ))


def run(
    filter_rows: int = 20_000,
    filter_matches: tuple = (1, 6, 60, 600, 1_200),
    groupby_rows: int = 20_000,
    group_counts: tuple = (2, 4, 8, 16, 32),
    topk_scale_factor: float = 0.005,
    k_fractions: tuple = (1.7e-5, 1.7e-4, 1.7e-3, 8e-3, 4e-2),
) -> ExperimentResult:
    rows: list[dict] = []
    _filter_scenario(filter_rows, filter_matches, rows)
    _groupby_scenario(groupby_rows, group_counts, rows)
    _topk_scenario(topk_scale_factor, k_fractions, rows)
    agree = sum(1 for r in rows if r["agree"])
    result = ExperimentResult(
        experiment="auto",
        title="Cost-based strategy selection vs measured winners",
        rows=rows,
        notes={
            "points": len(rows),
            "agreement": f"{agree}/{len(rows)}",
        },
    )
    return result
