"""Figure 16: semantic result caching on a near-duplicate workload.

Beyond the paper: PushdownDB bills per request and per byte scanned,
and production traffic is dominated by near-duplicate queries — the
same pushed template re-executed with slightly different literals.  The
session's semantic cache (PR 9) answers repeats from memory (exact
hits) and *narrower* literals through predicate subsumption (the cached
wider scan replays through a local delta filter), spending zero metered
requests either way.

Setup: the fig15 clustered filter table; the template
``SELECT key, p0 FROM fx WHERE key < t`` swept over selectivities.
Each sweep point runs three arms against one cache-enabled session:

* ``cold`` — empty cache (reset before the run); populates it;
* ``warm`` — the identical statement again: an exact hit;
* ``drift`` — the literal drifted ~10% tighter: provably implied by
  the cached predicate, so the subsumption tier fires.

Row identity is asserted per arm (drift against an uncached reference
execution), requests/cost must never increase from cold to the replay
arms, the warm pass must spend >=50% fewer requests and strictly less
modeled cost than the cold pass overall, and subsumption must fire on
at least one swept point.
"""

from __future__ import annotations

from repro.experiments.harness import (
    ExperimentResult,
    calibrate_tables,
    execution_row,
)
from repro.planner.database import PushdownDB
from repro.workloads.synthetic import FILTER_SCHEMA, clustered_filter_table

DEFAULT_NUM_ROWS = 20_000
DEFAULT_PARTITIONS = 16
DEFAULT_SELECTIVITIES = (0.02, 0.0625, 0.125, 0.25, 0.5, 1.0)
DEFAULT_CACHE_BYTES = 64 << 20

ARMS = ("cold", "warm", "drift")


def run(
    num_rows: int = DEFAULT_NUM_ROWS,
    partitions: int = DEFAULT_PARTITIONS,
    selectivities: tuple = DEFAULT_SELECTIVITIES,
    paper_bytes: float = 10e9,
    seed: int = 1,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
) -> ExperimentResult:
    db = PushdownDB(bucket="fig16", cache_bytes=cache_bytes)
    rows = clustered_filter_table(num_rows, seed=seed)
    db.load_table("fx", rows, FILTER_SCHEMA, partitions=partitions)
    scale = calibrate_tables(db.ctx, db.catalog, ["fx"], paper_bytes)

    result = ExperimentResult(
        experiment="fig16",
        title="Semantic result cache on a drifting-literal workload",
        notes={
            "num_rows": num_rows,
            "partitions": db.table("fx").partitions,
            "cache_bytes": cache_bytes,
            "paper_scale": f"{scale:.2e}",
        },
    )
    matched = 0
    subsumed_points = 0
    for selectivity in sorted(selectivities):
        threshold = max(1, int(round(selectivity * num_rows)))
        drifted = max(1, int(round(threshold * 0.9)))
        sql = f"SELECT key, p0 FROM fx WHERE key < {threshold}"
        drift_sql = f"SELECT key, p0 FROM fx WHERE key < {drifted}"

        db.reset_cache()
        executions = {
            "cold": db.execute(sql, mode="optimized"),
            "warm": db.execute(sql, mode="optimized"),
            "drift": db.execute(drift_sql, mode="optimized"),
        }

        cold, warm, drift = (executions[arm] for arm in ARMS)
        if sorted(warm.rows) != sorted(cold.rows):
            raise AssertionError(
                f"warm rows diverge from cold at selectivity={selectivity}"
            )
        reference = _uncached_reference(db, drift_sql)
        if sorted(drift.rows) != sorted(reference.rows):
            raise AssertionError(
                f"subsumed replay rows diverge from an uncached run at"
                f" selectivity={selectivity}"
            )
        for replay in (warm, drift):
            if replay.num_requests > cold.num_requests:
                raise AssertionError(
                    f"replay issued more requests than cold at"
                    f" selectivity={selectivity}"
                )
            if replay.cost.total > cold.cost.total:
                raise AssertionError(
                    f"replay cost exceeds cold cost at"
                    f" selectivity={selectivity}"
                )
        for arm in ARMS:
            execution = executions[arm]
            row = execution_row("selectivity", selectivity, arm, execution)
            cache_details = execution.details.get("cache", {})
            row["cache"] = _outcome(cache_details)
            result.rows.append(row)
            if arm == "drift" and cache_details.get("subsumed"):
                subsumed_points += 1
        matched += 1

    cold_requests = sum(result.column("cold", "requests"))
    warm_requests = sum(result.column("warm", "requests"))
    cold_cost = sum(result.column("cold", "cost_total"))
    warm_cost = sum(result.column("warm", "cost_total"))
    if warm_requests > 0.5 * cold_requests:
        raise AssertionError(
            f"warm pass spent {warm_requests} requests vs {cold_requests}"
            f" cold — less than the required 50% saving"
        )
    if not warm_cost < cold_cost:
        raise AssertionError(
            f"warm pass cost {warm_cost} not strictly below cold {cold_cost}"
        )
    if subsumed_points == 0:
        raise AssertionError("subsumption fired on no swept point")

    result.notes["matched"] = f"{matched}/{len(selectivities)}"
    result.notes["subsumed_points"] = subsumed_points
    result.notes["warm_request_saving"] = (
        f"{1.0 - warm_requests / max(cold_requests, 1):.0%}"
    )
    return result


def _uncached_reference(db: PushdownDB, sql: str):
    """Execute ``sql`` with the cache detached: the ground truth a
    replayed result must reproduce row-for-row."""
    cache = db.ctx.result_cache
    db.ctx.result_cache = None
    try:
        return db.execute(sql, mode="optimized")
    finally:
        db.ctx.result_cache = cache


def _outcome(details: dict) -> str:
    """Collapse one execution's per-node counters to a display label."""
    for status in ("subsumed", "hit"):
        if details.get(status):
            return status
    return "miss"
