"""The full 22-query TPC-H suite, differentially checked against sqlite3.

Every query in ``benchmarks/tpch/queries/q01.sql .. q22.sql`` is parsed
once, executed through the engine in each requested mode, and its row
set compared — order-insensitively, floats to relative 1e-6 — against
sqlite3 running the *same parsed statement* (``parse(sql).to_sql()``,
so date/INTERVAL arithmetic is already folded to ISO string literals
both engines understand identically).

**Aux tables.**  The SQL dialect has no table aliases, so queries that
read the same table twice (Q2, Q7, Q8, Q21) or need an unambiguous
correlated reference use prefixed copies: ``nation2`` (``n2_*``),
``region2`` (``r2_*``), ``supplier2`` (``s2_*``), ``partsupp2``
(``ps2_*``), ``lineitem2`` (``l2_*``) and ``lineitem3`` (``l3_*``) —
identical rows, renamed columns, loaded into both engines.

**Adaptations** from the spec text (each also documented in its .sql
file): no table aliases (aux copies instead), ``EXTRACT(YEAR ...)``
spelled ``CAST(SUBSTR(d, 1, 4) AS INT)``, LIKE patterns retargeted at
the generator's color-word text corpus (Q9/Q13/Q16/Q20), ship mode
``'REG AIR'`` for the spec's ``'AIR REG'`` (Q19), Q18's quantity
threshold lowered to 250 for reduced scale, Q15's view inlined with
ROUNDed revenue equality, and Q22 country codes drawn from the
generator's phone format.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Sequence

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog, load_table
from repro.experiments.harness import ExperimentResult, close_enough
from repro.sqlparser.parser import parse
from repro.storage.schema import TableSchema
from repro.workloads.tpch import TABLE_SCHEMAS, TpchGenerator

#: ``<repo>/benchmarks/tpch/queries`` relative to this module.
QUERY_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "tpch" / "queries"

ALL_QUERIES = tuple(f"q{i:02d}" for i in range(1, 23))

#: aux name -> (base table, column prefix); see the module docstring.
AUX_TABLES = {
    "nation2": ("nation", "n2"),
    "region2": ("region", "r2"),
    "supplier2": ("supplier", "s2"),
    "partsupp2": ("partsupp", "ps2"),
    "lineitem2": ("lineitem", "l2"),
    "lineitem3": ("lineitem", "l3"),
}

_SQLITE_TYPES = {"int": "INTEGER", "float": "REAL", "str": "TEXT", "date": "TEXT"}


def aux_schema(base: TableSchema, prefix: str) -> TableSchema:
    """Rename ``x_col`` columns to ``<prefix>_col``, keeping types."""
    return TableSchema.of(
        *(f"{prefix}_{c.name.split('_', 1)[1]}:{c.type}" for c in base.columns)
    )


def load_suite_tables(
    ctx: CloudContext,
    catalog: Catalog,
    scale_factor: float,
    seed: int | None = None,
) -> sqlite3.Connection:
    """Load the 8 TPC-H tables plus aux copies into the engine AND an
    in-memory sqlite3 database (the differential oracle); returns the
    sqlite connection."""
    gen = TpchGenerator(scale_factor=scale_factor, seed=seed)
    con = sqlite3.connect(":memory:")
    tables = [(name, name, TABLE_SCHEMAS[name]) for name in TABLE_SCHEMAS]
    tables += [
        (aux, base, aux_schema(TABLE_SCHEMAS[base], prefix))
        for aux, (base, prefix) in AUX_TABLES.items()
    ]
    for name, base, schema in tables:
        rows = gen.table(base)
        load_table(ctx, catalog, name, rows, schema)
        cols = ", ".join(
            f"{c.name} {_SQLITE_TYPES[c.type]}" for c in schema.columns
        )
        con.execute(f"CREATE TABLE {name} ({cols})")
        marks = ", ".join("?" for _ in schema.columns)
        con.executemany(f"INSERT INTO {name} VALUES ({marks})", rows)
    return con


def _canon(rows: Sequence[tuple]) -> list[tuple]:
    """Sort a row multiset for order-insensitive comparison."""
    return sorted(
        [tuple(row) for row in rows],
        key=lambda r: tuple((v is None, v if v is not None else 0) for v in r),
    )


def rows_match(got: Sequence[tuple], expected: Sequence[tuple]) -> bool:
    """Order-insensitive row-set equality; floats to relative 1e-6."""
    if len(got) != len(expected):
        return False
    for ra, rb in zip(_canon(got), _canon(expected)):
        if len(ra) != len(rb):
            return False
        for va, vb in zip(ra, rb):
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
                if not close_enough(float(va), float(vb)):
                    return False
            elif va != vb:
                return False
    return True


def run(
    scale_factor: float = 0.002,
    modes: Sequence[str] = ("baseline", "auto"),
    queries: Sequence[str] | None = None,
    query_dir: str | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """Run the suite; one result row per (query, mode).

    Each row carries the differential verdict (``match``) plus the
    engine-side requests, bytes and modeled runtime/cost, so the result
    doubles as the per-query metrics artifact CI uploads.
    """
    ctx = CloudContext()
    catalog = Catalog()
    con = load_suite_tables(ctx, catalog, scale_factor, seed=seed)

    from repro.planner.planner import execute_parsed

    names = list(queries) if queries else list(ALL_QUERIES)
    qdir = Path(query_dir) if query_dir else QUERY_DIR
    result = ExperimentResult(
        experiment="tpch",
        title="TPC-H 22-query differential suite vs sqlite3",
        notes={
            "scale_factor": scale_factor,
            "oracle": "sqlite3 over parse(sql).to_sql()",
            "comparison": "sorted row multiset, floats to relative 1e-6",
        },
    )
    parsed_count = 0
    ok_count = 0
    for name in names:
        sql = (qdir / f"{name}.sql").read_text()
        query = parse(sql)
        parsed_count += 1
        expected = con.execute(query.to_sql()).fetchall()
        for mode in modes:
            execution = execute_parsed(ctx, catalog, query, mode)
            ok = rows_match(execution.rows, expected)
            ok_count += int(ok)
            result.rows.append({
                "query": name,
                "strategy": mode,
                "rows": len(execution.rows),
                "match": "yes" if ok else "MISMATCH",
                "requests": execution.num_requests,
                "bytes_scanned": execution.bytes_scanned,
                "bytes_returned": (
                    execution.bytes_returned + execution.bytes_transferred
                ),
                "runtime_s": round(execution.runtime_seconds, 4),
                "cost_total": round(execution.cost.total, 6),
            })
    result.notes["parsed"] = f"{parsed_count}/{len(names)}"
    result.notes["matched"] = f"{ok_count}/{len(names) * len(modes)}"
    con.close()
    return result
