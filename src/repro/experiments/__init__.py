"""One experiment harness per paper figure.

Each module exposes ``run(**params) -> ExperimentResult`` with defaults
sized for seconds-scale execution; the benchmarks call these and print
``result.to_table()``.
"""

from repro.experiments import (  # noqa: F401
    auto_strategy,
    fig01_filter,
    fig02_join_customer,
    fig03_join_orders,
    fig04_bloom_fpr,
    fig05_groupby_groups,
    fig06_hybrid_split,
    fig07_groupby_skew,
    fig08_topk_sample,
    fig09_topk_k,
    fig10_tpch,
    fig11_parquet,
    fig12_multijoin,
    fig13_snowflake,
)
from repro.experiments.harness import ExperimentResult  # noqa: F401

ALL_EXPERIMENTS = {
    "fig1": fig01_filter.run,
    "fig2": fig02_join_customer.run,
    "fig3": fig03_join_orders.run,
    "fig4": fig04_bloom_fpr.run,
    "fig5": fig05_groupby_groups.run,
    "fig6": fig06_hybrid_split.run,
    "fig7": fig07_groupby_skew.run,
    "fig8": fig08_topk_sample.run,
    "fig9": fig09_topk_k.run,
    "fig10": fig10_tpch.run,
    "fig11": fig11_parquet.run,
    "fig12": fig12_multijoin.run,
    "fig13": fig13_snowflake.run,
    "auto": auto_strategy.run,
}
