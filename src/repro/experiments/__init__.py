"""One experiment harness per paper figure.

Each module exposes ``run(**params) -> ExperimentResult`` with defaults
sized for seconds-scale execution; the benchmarks call these and print
``result.to_table()``.

:data:`ALL_EXPERIMENTS` is a *lazy* registry: iterating or rendering the
name list (the CLI help does both) imports nothing, and each figure
module loads only when its ``run`` is actually fetched — so
``python -m repro tables`` never pays for fig1..fig14 at startup.
"""

from collections.abc import Mapping
from importlib import import_module
from typing import Callable, Iterator

from repro.experiments.harness import ExperimentResult  # noqa: F401

#: Experiment name -> implementing module, the single source of truth
#: both the registry and the CLI's help string read.
_EXPERIMENT_MODULES = {
    "fig1": "fig01_filter",
    "fig2": "fig02_join_customer",
    "fig3": "fig03_join_orders",
    "fig4": "fig04_bloom_fpr",
    "fig5": "fig05_groupby_groups",
    "fig6": "fig06_hybrid_split",
    "fig7": "fig07_groupby_skew",
    "fig8": "fig08_topk_sample",
    "fig9": "fig09_topk_k",
    "fig10": "fig10_tpch",
    "fig11": "fig11_parquet",
    "fig12": "fig12_multijoin",
    "fig13": "fig13_snowflake",
    "fig14": "fig14_adaptive",
    "fig15": "fig15_pruning",
    "fig16": "fig16_cache",
    "auto": "auto_strategy",
    "tpch": "tpch_suite",
}


class _LazyRegistry(Mapping):
    """Experiment name -> ``run`` callable, imported on first access."""

    def __getitem__(self, name: str) -> Callable:
        module = import_module(
            f"repro.experiments.{_EXPERIMENT_MODULES[name]}"
        )
        return module.run

    def __contains__(self, name: object) -> bool:
        return name in _EXPERIMENT_MODULES

    def __iter__(self) -> Iterator[str]:
        return iter(_EXPERIMENT_MODULES)

    def __len__(self) -> int:
        return len(_EXPERIMENT_MODULES)


ALL_EXPERIMENTS = _LazyRegistry()
