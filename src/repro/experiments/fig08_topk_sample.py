"""Figure 8: sampling top-K sensitivity to sample size.

Paper setup: lineitem SF 10 (60M rows), K = 100, sample size swept
1e3..1e7.  Expected V-shapes: sampling-phase time grows with S, scanning-
phase time shrinks (a larger sample gives a tighter threshold), total
bytes returned is minimized near the analytic optimum
``S* = sqrt(K*N/alpha)``; cost is dominated by data scanning.

Our sweep uses the same S/N ratios against a smaller lineitem.
"""

from __future__ import annotations

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog
from repro.experiments.harness import (
    ExperimentResult,
    PAPER_LINEITEM_BYTES,
    calibrate_tables,
)
from repro.queries.dataset import load_tpch
from repro.strategies.topk import TopKQuery, optimal_sample_size, sampling_top_k

DEFAULT_K = 100
#: Sample sizes as fractions of the table (paper: 1e3/6e7 .. 1e7/6e7).
DEFAULT_SAMPLE_FRACTIONS = (1 / 600, 1 / 60, 1 / 24, 1 / 6, 1 / 3)


def run(
    scale_factor: float = 0.01,
    k: int = DEFAULT_K,
    sample_fractions: tuple = DEFAULT_SAMPLE_FRACTIONS,
    paper_bytes: float = PAPER_LINEITEM_BYTES,
) -> ExperimentResult:
    ctx = CloudContext()
    catalog = Catalog()
    load_tpch(ctx, catalog, scale_factor, tables=("lineitem",))
    scale = calibrate_tables(ctx, catalog, ["lineitem"], paper_bytes)
    table = catalog.get("lineitem")
    alpha = 1.0 / len(table.schema)
    optimum = optimal_sample_size(k, table.num_rows, alpha)

    result = ExperimentResult(
        experiment="fig8",
        title="Sampling top-K vs sample size",
        notes={
            "k": k,
            "num_rows": table.num_rows,
            "paper_scale": f"{scale:.2e}",
            "analytic_optimum_S": optimum,
        },
    )
    query = TopKQuery(table="lineitem", order_column="l_extendedprice", k=k)
    expected = None
    for fraction in sample_fractions:
        sample_size = max(k, int(table.num_rows * fraction))
        execution = sampling_top_k(ctx, catalog, query, sample_size=sample_size)
        values = [r[table.schema.index_of("l_extendedprice")] for r in execution.rows]
        if expected is None:
            expected = values
        elif values != expected:
            raise AssertionError(f"top-K changed with sample size {sample_size}")
        result.rows.append(
            {
                "sample_size": sample_size,
                "strategy": "sampling",
                "runtime_s": round(execution.runtime_seconds, 4),
                "sample_phase_s": round(execution.details["sample_seconds"], 4),
                "scan_phase_s": round(execution.details["scan_seconds"], 4),
                "bytes_returned": execution.bytes_returned,
                "phase2_rows": execution.details["phase2_rows"],
                "cost_total": round(execution.cost.total, 6),
                "cost_scan": round(execution.cost.scan, 6),
            }
        )
    return result
