"""Figure 5: group-by strategies vs number of groups (uniform sizes).

Paper setup: 10 GB, 20 columns — 10 group-ID columns where column ``g{i}``
has ``2^(i+1)`` uniform groups, 10 float value columns; each query
aggregates four value columns, sweeping groups over 2..32.

Expected shape: server-side and filtered group-by are flat (filtered
~64% faster: it loads 5 of 20 columns); S3-side group-by is the fastest
at few groups and degrades linearly in the number of pushed ``CASE``
columns, crossing above filtered by ~32 groups.
"""

from __future__ import annotations

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog, load_table
from repro.experiments.harness import (
    ExperimentResult,
    PAPER_GROUPBY_BYTES,
    calibrate_tables,
    execution_row,
)
from repro.strategies.groupby import (
    AggSpec,
    GroupByQuery,
    filtered_group_by,
    s3_side_group_by,
    server_side_group_by,
)
from repro.workloads.synthetic import groupby_schema, uniform_groupby_table

DEFAULT_NUM_ROWS = 50_000
DEFAULT_GROUP_COUNTS = (2, 4, 8, 16, 32)
#: Four aggregated value columns, as in the paper.
AGG_COLUMNS = ("v0", "v1", "v2", "v3")

STRATEGIES = {
    "server-side": server_side_group_by,
    "filtered": filtered_group_by,
    "s3-side": s3_side_group_by,
}


def run(
    num_rows: int = DEFAULT_NUM_ROWS,
    group_counts: tuple = DEFAULT_GROUP_COUNTS,
    paper_bytes: float = PAPER_GROUPBY_BYTES,
    seed: int = 1,
) -> ExperimentResult:
    ctx = CloudContext()
    catalog = Catalog()
    rows = uniform_groupby_table(num_rows, seed=seed)
    load_table(ctx, catalog, "uniform", rows, groupby_schema(), bucket="fig5")
    scale = calibrate_tables(ctx, catalog, ["uniform"], paper_bytes)

    result = ExperimentResult(
        experiment="fig5",
        title="Group-by strategies vs number of groups (uniform sizes)",
        notes={"num_rows": num_rows, "paper_scale": f"{scale:.2e}"},
    )
    aggregates = [AggSpec("sum", c) for c in AGG_COLUMNS]
    for groups in group_counts:
        # Column g{i} has 2^(i+1) groups.
        column = f"g{groups.bit_length() - 2}"
        query = GroupByQuery(
            table="uniform", group_columns=[column], aggregates=aggregates
        )
        reference = None
        for name, strategy in STRATEGIES.items():
            execution = strategy(ctx, catalog, query)
            normalized = sorted(
                (r[0], *(round(v, 4) for v in r[1:])) for r in execution.rows
            )
            if reference is None:
                reference = normalized
            elif normalized != reference:
                raise AssertionError(f"{name} disagrees at groups={groups}")
            row = execution_row("num_groups", groups, name, execution)
            result.rows.append(row)
    return result
