"""Figure 13 (extension): bushy vs left-deep plans on a snowflake join.

The fig12 sweep showed the cost-based search picking good *left-deep*
orders; this harness exercises the shape left-deep planning cannot win:
a snowflake — a fact table joining two independent dimension branches,
each branch carrying a selective filter on its sub-dimension::

    sub1 -- dim1 -- fact -- dim2 -- sub2
    (s1_attr < t)           (s2_attr < t)

A bushy plan joins each branch first, so *both* dimension scans are
Bloom-reduced by their own filtered sub-dimension; any left-deep chain
reaches the second branch's dimension through the fact-side
intermediate, whose key set is nearly unselective there.  The harness
executes every connected left-deep order plus the DP's pick at every
swept point and records whether the pick (a) is genuinely bushy and
(b) measures no worse than the best left-deep order.
"""

from __future__ import annotations

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog, load_table
from repro.experiments.harness import (
    ExperimentResult,
    PAPER_TPCH_BYTES,
    calibrate_tables,
    close_enough,
    execution_row,
    winners_by_sweep,
)
from repro.optimizer.joinorder import (
    build_join_graph,
    enumerate_left_deep_orders,
    plan_join_order,
)
from repro.planner import physical
from repro.planner.planner import (
    execute_with_join_order,
    execute_with_join_tree,
    plan_and_execute,
)
from repro.sqlparser.parser import parse
from repro.workloads.synthetic import SNOWFLAKE_SCHEMAS, snowflake_tables

TABLES = ("fact", "dim1", "sub1", "dim2", "sub2")

DEFAULT_THRESHOLDS = (4, 10, 25, 60)


def make_sql(threshold: int) -> str:
    return (
        "SELECT SUM(f_v) AS total FROM fact, dim1, sub1, dim2, sub2"
        " WHERE f_d1 = d1_id AND d1_s1 = s1_id"
        " AND f_d2 = d2_id AND d2_s2 = s2_id"
        f" AND s1_attr < {threshold} AND s2_attr < {threshold}"
    )


def run(
    fact_rows: int = 9000,
    thresholds: tuple = DEFAULT_THRESHOLDS,
    paper_bytes: float = PAPER_TPCH_BYTES,
    seed: int = 7,
) -> ExperimentResult:
    """Sweep the branch filters; execute every left-deep order + the pick."""
    ctx = CloudContext()
    catalog = Catalog()
    tables = snowflake_tables(fact_rows, seed=seed)
    for name in TABLES:
        load_table(ctx, catalog, name, tables[name], SNOWFLAKE_SCHEMAS[name])
    scale = calibrate_tables(ctx, catalog, list(TABLES), paper_bytes)

    result = ExperimentResult(
        experiment="fig13",
        title="snowflake join: bushy DP pick vs every left-deep order",
        notes={"fact_rows": fact_rows, "paper_scale": f"{scale:.2e}"},
    )
    agreements = []
    for threshold in thresholds:
        sql = make_sql(threshold)
        query = parse(sql)
        graph = build_join_graph(catalog, query)
        decision = plan_join_order(ctx, catalog, query, graph=graph)
        picked_label = physical.join_tree_label(decision.tree)
        bushy = not physical.is_left_deep(decision.tree)

        reference = None
        measured = []
        for order in enumerate_left_deep_orders(graph):
            execution = execute_with_join_order(ctx, catalog, sql, order)
            total = execution.rows[0][0]
            if reference is None:
                reference = total
            elif not close_enough(total, reference):
                raise AssertionError(
                    f"left-deep result mismatch at t={threshold}:"
                    f" {total} vs {reference} (order {order})"
                )
            measured.append(execution_row(
                "threshold", threshold, " -> ".join(order), execution
            ))
        result.rows.extend(measured)

        # The DP pick, executed through its (possibly bushy) tree shape.
        pick = execute_with_join_tree(ctx, catalog, sql, decision.shape)
        if not close_enough(pick.rows[0][0], reference):
            raise AssertionError(
                f"DP-pick result mismatch at t={threshold}:"
                f" {pick.rows[0][0]} vs {reference} ({picked_label})"
            )
        pick_row = execution_row("threshold", threshold, "dp-pick", pick)
        result.rows.append(pick_row)

        # The auto planner end-to-end (search + mode choice).
        auto = plan_and_execute(ctx, catalog, sql, mode="auto")
        if not close_enough(auto.rows[0][0], reference):
            raise AssertionError(
                f"auto result mismatch at t={threshold}:"
                f" {auto.rows[0][0]} vs {reference}"
            )
        result.rows.append(execution_row("threshold", threshold, "auto", auto))

        best = winners_by_sweep(measured, "threshold")[threshold]
        by_label = {r["strategy"]: r for r in measured}
        best_row = by_label[best]
        agreements.append({
            "threshold": threshold,
            "picked": picked_label,
            "bushy": bushy,
            "best_left_deep": best,
            "beats_left_deep_cost":
                pick_row["cost_total"] <= best_row["cost_total"] * (1 + 1e-9),
            "beats_left_deep_runtime":
                pick_row["runtime_s"] <= best_row["runtime_s"] * (1 + 1e-9),
        })

    result.notes["picks"] = "; ".join(
        f"t={a['threshold']}: picked [{a['picked']}]"
        f" {'BUSHY' if a['bushy'] else 'left-deep'}"
        f" best-ld [{a['best_left_deep']}]"
        f" {'<=' if a['beats_left_deep_cost'] else '>'} ld cost"
        for a in agreements
    )
    result.notes["bushy_wins"] = sum(
        1 for a in agreements
        if a["bushy"] and a["beats_left_deep_cost"]
    )
    result.notes["agreement"] = (
        f"{sum(a['beats_left_deep_cost'] for a in agreements)}"
        f"/{len(agreements)}"
    )
    return result
