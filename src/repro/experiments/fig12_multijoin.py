"""Figure 12 (extension): join-order sweep on a 3-table TPC-H join.

The paper evaluates joins pairwise; this harness runs the full
customer ⋈ orders ⋈ lineitem chain (the shape of TPC-H Q3) through the
N-way planner, executing *every* connected left-deep join order and
comparing the cost-based search's pick against the measured best.
Expected shape: orders-first plans win while the date filter is
selective (a small build side feeds the Bloom filter on the lineitem
probe); the search should pick a measured-optimal or near-optimal order
at every swept point.
"""

from __future__ import annotations

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog
from repro.experiments.harness import (
    ExperimentResult,
    PAPER_TPCH_BYTES,
    calibrate_tables,
    close_enough,
    execution_row,
    winners_by_sweep,
)
from repro.optimizer.joinorder import (
    build_join_graph,
    enumerate_left_deep_orders,
    plan_join_order,
)
from repro.planner.planner import execute_with_join_order, plan_and_execute
from repro.queries.dataset import load_tpch
from repro.sqlparser.parser import parse

TABLES = ("customer", "orders", "lineitem")

DEFAULT_DATES = ("1992-06-01", "1993-06-01", "1995-01-01", None)


def make_sql(date: str | None, acctbal: float) -> str:
    clauses = [
        "c_custkey = o_custkey",
        "o_orderkey = l_orderkey",
        f"c_acctbal > {acctbal}",
    ]
    if date is not None:
        clauses.append(f"o_orderdate < '{date}'")
    return (
        "SELECT c_mktsegment, SUM(l_extendedprice) AS revenue"
        " FROM customer, orders, lineitem"
        " WHERE " + " AND ".join(clauses)
        + " GROUP BY c_mktsegment ORDER BY c_mktsegment"
    )


def _totals(rows) -> dict:
    return {r[0]: r[1] for r in rows}


def run(
    scale_factor: float = 0.005,
    dates: tuple = DEFAULT_DATES,
    acctbal: float = 0.0,
    paper_bytes: float = PAPER_TPCH_BYTES,
) -> ExperimentResult:
    """Sweep the orders-date filter; execute every join order per point."""
    ctx = CloudContext()
    catalog = Catalog()
    load_tpch(ctx, catalog, scale_factor, tables=TABLES)
    scale = calibrate_tables(ctx, catalog, list(TABLES), paper_bytes)

    result = ExperimentResult(
        experiment="fig12",
        title="3-way join: every left-deep order vs the cost-based pick",
        notes={"scale_factor": scale_factor, "paper_scale": f"{scale:.2e}",
               "lower_c_acctbal": acctbal},
    )
    agreements = []
    for date in dates:
        sql = make_sql(date, acctbal)
        query = parse(sql)
        graph = build_join_graph(catalog, query)
        decision = plan_join_order(ctx, catalog, query, graph=graph)
        sweep_value = date or "None"
        reference = None
        measured = []
        for order in enumerate_left_deep_orders(graph):
            execution = execute_with_join_order(ctx, catalog, sql, order)
            totals = _totals(execution.rows)
            if reference is None:
                reference = totals
            elif set(totals) != set(reference) or not all(
                close_enough(totals[k], reference[k]) for k in totals
            ):
                raise AssertionError(
                    f"join result mismatch at date={date}:"
                    f" {reference} vs {totals} (order {order})"
                )
            row = execution_row(
                "upper_o_orderdate", sweep_value, " -> ".join(order), execution
            )
            result.rows.append(row)
            measured.append(row)

        # The auto planner end-to-end (search + mode choice) on the
        # same query, recorded alongside the forced-order sweeps.
        auto = plan_and_execute(ctx, catalog, sql, mode="auto")
        auto_totals = _totals(auto.rows)
        if reference is not None and (
            set(auto_totals) != set(reference)
            or not all(close_enough(auto_totals[k], reference[k]) for k in reference)
        ):
            raise AssertionError(
                f"auto result mismatch at date={date}:"
                f" {auto_totals} vs {reference}"
            )
        result.rows.append(
            execution_row("upper_o_orderdate", sweep_value, "auto", auto)
        )

        picked = " -> ".join(decision.order)
        best = winners_by_sweep(measured, "upper_o_orderdate")[sweep_value]
        by_order = {r["strategy"]: r["cost_total"] for r in measured}
        # Symmetric orders measure identically (ties); the pick agrees
        # whenever its measured cost matches the winner's.
        agree = by_order[picked] <= by_order[best] * (1.0 + 1e-9)
        agreements.append({
            "upper_o_orderdate": sweep_value,
            "picked_order": picked,
            "measured_best": best,
            "agree": agree,
        })

    result.notes["picks"] = "; ".join(
        f"{a['upper_o_orderdate']}: picked [{a['picked_order']}]"
        f" best [{a['measured_best']}]"
        f" {'OK' if a['agree'] else 'MISS'}"
        for a in agreements
    )
    result.notes["agreement"] = (
        f"{sum(a['agree'] for a in agreements)}/{len(agreements)}"
    )
    return result
