"""Figure 14 (extension): feedback-driven adaptive execution.

Two sweeps attack the optimizer where static cost models break:

* **Correlated predicates vs mid-flight re-planning.**  The fig14 star
  workload's ``dima`` table carries two almost perfectly correlated
  columns; the conjunction ``a_x < t AND a_y < t`` keeps ~``t`` percent
  of its rows while the System-R independence assumption predicts
  ``(t/100)^2``.  The cold cost-based search therefore joins ``dima``
  far too early.  The sweep executes each threshold three ways, each in
  a fresh session:

  - ``static``   — the cold optimizer's pick, run as planned;
  - ``adaptive`` — the same pick under ``mode="adaptive"``: when the
    materialized build's Q-error crosses ``adaptive_threshold`` the
    remaining tree is re-planned around the *measured* cardinality;
  - ``warm``     — the same session after the adaptive run: the
    feedback store now holds the measured selectivities and join
    cardinalities, so a plain ``mode="optimized"`` run plans the good
    tree statically (learning, not luck).

  The harness asserts the adaptive run never measures worse than the
  static plan — at points below the Q-error threshold the two are
  byte-identical by construction — and records where re-planning fired
  and won.

* **Session statistics reuse vs repeated probe spend.**  The same
  filter query is optimized with a metered selectivity probe
  (``probe=True``) several times in one session.  The first call pays
  the probe requests; every later call hits the session feedback store
  and spends **zero** metered requests while reporting the same
  measured selectivity.
"""

from __future__ import annotations

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog, load_table
from repro.experiments.harness import (
    ExperimentResult,
    PAPER_TPCH_BYTES,
    calibrate_tables,
    close_enough,
    execution_row,
)
from repro.optimizer.chooser import choose_filter_strategy
from repro.planner.planner import plan_and_execute
from repro.sqlparser.parser import parse_expression
from repro.strategies.filter import FilterQuery
from repro.workloads.synthetic import (
    CORRELATED_STAR_SCHEMAS,
    correlated_star_tables,
)

TABLES = ("fact", "dima", "dimb", "dimc")

#: Swept ``a_x < t AND a_y < t`` thresholds.  The low values are badly
#: underestimated (quadratic error) and fire re-planning; the highest
#: stays under the default 2x Q-error threshold, pinning the
#: byte-identical no-fire contract.
DEFAULT_THRESHOLDS = (10, 15, 25, 55)

#: Fixed, accurately-estimable ``b_sel < B_CUT`` filter on ``dimb``.
B_CUT = 12

#: Repetitions of the probed filter optimization in the session sweep.
PROBE_REPEATS = 4


def make_sql(threshold: int) -> str:
    return (
        "SELECT SUM(f_v) AS total FROM fact, dima, dimb, dimc"
        " WHERE f_a = a_id AND f_b = b_id AND f_c = c_id"
        f" AND a_x < {threshold} AND a_y < {threshold}"
        f" AND b_sel < {B_CUT}"
    )


def _fresh_session(
    fact_rows: int, paper_bytes: float, seed: int
) -> tuple[CloudContext, Catalog, float]:
    ctx = CloudContext()
    catalog = Catalog()
    tables = correlated_star_tables(fact_rows, seed=seed)
    for name in TABLES:
        load_table(ctx, catalog, name, tables[name], CORRELATED_STAR_SCHEMAS[name])
    scale = calibrate_tables(ctx, catalog, list(TABLES), paper_bytes)
    return ctx, catalog, scale


def run(
    fact_rows: int = 8000,
    thresholds: tuple = DEFAULT_THRESHOLDS,
    paper_bytes: float = PAPER_TPCH_BYTES,
    seed: int = 11,
) -> ExperimentResult:
    """Sweep the correlated filter; compare static, adaptive and warm runs."""
    result = ExperimentResult(
        experiment="fig14",
        title="adaptive execution under correlated predicates"
              " + session stats reuse",
        notes={"fact_rows": fact_rows, "b_cut": B_CUT},
    )
    outcomes = []
    for threshold in thresholds:
        sql = make_sql(threshold)
        ctx_s, cat_s, scale = _fresh_session(fact_rows, paper_bytes, seed)
        static = plan_and_execute(ctx_s, cat_s, sql, mode="optimized")
        reference = static.rows[0][0]
        result.rows.append(
            execution_row("threshold", threshold, "static", static)
        )

        ctx_a, cat_a, _ = _fresh_session(fact_rows, paper_bytes, seed)
        adaptive = plan_and_execute(ctx_a, cat_a, sql, mode="adaptive")
        if not close_enough(adaptive.rows[0][0], reference):
            raise AssertionError(
                f"adaptive result mismatch at t={threshold}:"
                f" {adaptive.rows[0][0]} vs {reference}"
            )
        adaptive_row = execution_row("threshold", threshold, "adaptive", adaptive)
        details = adaptive.details["adaptive"]
        adaptive_row["replans"] = details["replans"]
        adaptive_row["max_q_error"] = max(
            (e["q_error"] for e in details["events"]), default=1.0
        )
        result.rows.append(adaptive_row)

        if adaptive.cost.total > static.cost.total * (1 + 1e-9):
            raise AssertionError(
                f"adaptive execution cost regressed at t={threshold}:"
                f" {adaptive.cost.total} vs static {static.cost.total}"
            )
        if adaptive.runtime_seconds > static.runtime_seconds * (1 + 1e-9):
            raise AssertionError(
                f"adaptive runtime regressed at t={threshold}:"
                f" {adaptive.runtime_seconds} vs {static.runtime_seconds}"
            )

        # Same session, same query, static mode: the feedback store now
        # holds measured selectivities/cardinalities, so the *plan-time*
        # search already picks the corrected tree.
        warm = plan_and_execute(ctx_a, cat_a, sql, mode="optimized")
        if not close_enough(warm.rows[0][0], reference):
            raise AssertionError(
                f"warm result mismatch at t={threshold}:"
                f" {warm.rows[0][0]} vs {reference}"
            )
        warm_row = execution_row("threshold", threshold, "warm", warm)
        result.rows.append(warm_row)

        outcomes.append({
            "threshold": threshold,
            "replans": details["replans"],
            "fired": details["replans"] > 0,
            "identical": (
                adaptive.cost.total == static.cost.total
                and adaptive.runtime_seconds == static.runtime_seconds
                and adaptive.num_requests == static.num_requests
                and adaptive.bytes_scanned == static.bytes_scanned
                and adaptive.bytes_returned == static.bytes_returned
            ),
            "won": adaptive.cost.total < static.cost.total * (1 - 1e-9),
            "warm_beats_cold_static":
                warm.cost.total <= static.cost.total * (1 + 1e-9),
        })

    if not any(o["fired"] and o["won"] for o in outcomes):
        raise AssertionError(
            "no swept point fired a re-plan that beat the static plan"
        )
    if not any(o["identical"] for o in outcomes):
        raise AssertionError(
            "no swept point pinned the accurate-estimate byte-identical path"
        )

    probe_rows = _session_probe_sweep(fact_rows, paper_bytes, seed)
    result.rows.extend(probe_rows)
    warm_probe_requests = [r["probe_requests"] for r in probe_rows[1:]]
    if any(r != 0 for r in warm_probe_requests):
        raise AssertionError(
            f"warm probe runs still spent requests: {warm_probe_requests}"
        )

    result.notes["picks"] = "; ".join(
        f"t={o['threshold']}: replans={o['replans']}"
        f" {'WIN' if o['won'] else ('identical' if o['identical'] else 'tie')}"
        for o in outcomes
    )
    result.notes["replan_wins"] = sum(
        1 for o in outcomes if o["fired"] and o["won"]
    )
    result.notes["warm_agreement"] = (
        f"{sum(o['warm_beats_cold_static'] for o in outcomes)}/{len(outcomes)}"
    )
    result.notes["paper_scale"] = f"{scale:.2e}"
    return result


def _session_probe_sweep(
    fact_rows: int, paper_bytes: float, seed: int
) -> list[dict]:
    """Optimize the same probed filter repeatedly in one session.

    Returns one row per repetition with the metered probe request count:
    the first pays, the rest ride the feedback store for free.
    """
    ctx, catalog, _ = _fresh_session(fact_rows, paper_bytes, seed)
    predicate = parse_expression("a_x < 25 AND a_y < 25")
    query = FilterQuery(table="dima", predicate=predicate)
    rows = []
    for repeat in range(1, PROBE_REPEATS + 1):
        mark = ctx.metrics.mark()
        choice = choose_filter_strategy(
            ctx, catalog, query, probe=True, probe_fraction=0.25
        )
        spent = len(ctx.metrics.records_since(mark))
        rows.append({
            "repeat": repeat,
            "strategy": "probed-filter-choice",
            "probe_requests": spent,
            "probed_selectivity": round(
                choice.notes["probe"]["selectivity"], 4
            ),
            "picked": choice.picked,
        })
    return rows
