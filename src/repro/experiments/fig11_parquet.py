"""Figure 11: CSV vs Parquet under S3 Select filters.

Paper setup: tables of 1, 10, and 20 float columns (100 MB per column),
Parquet with Snappy at 100 MB row groups; queries return one filtered
column with selectivity swept 0..1.

Expected shape: Parquet wins big on the wide tables at low selectivity
(it scans only one column chunk where CSV scans everything); the
advantage shrinks as selectivity grows because S3 Select returns CSV
rows either way, so data transfer becomes the shared bottleneck.  On the
1-column table the formats are nearly identical.
"""

from __future__ import annotations

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog, load_table
from repro.experiments.harness import ExperimentResult
from repro.strategies.scans import phase_since, select_table
from repro.workloads.synthetic import float_schema, float_table

DEFAULT_NUM_ROWS = 30_000
DEFAULT_COLUMN_COUNTS = (1, 10, 20)
DEFAULT_SELECTIVITIES = (0.0, 0.01, 0.1, 0.5, 1.0)
#: The paper's tables hold 100 MB per column.
PAPER_BYTES_PER_COLUMN = 100e6


def run(
    num_rows: int = DEFAULT_NUM_ROWS,
    column_counts: tuple = DEFAULT_COLUMN_COUNTS,
    selectivities: tuple = DEFAULT_SELECTIVITIES,
    compression: str = "zlib",
    seed: int = 1,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig11",
        title="CSV vs Parquet filter scans",
        notes={"num_rows": num_rows, "codec": compression},
    )
    for num_columns in column_counts:
        ctx = CloudContext()
        catalog = Catalog()
        rows = float_table(num_rows, num_columns, seed=seed)
        schema = float_schema(num_columns)
        load_table(ctx, catalog, "csv_table", rows, schema, bucket="fig11")
        load_table(
            ctx, catalog, "pq_table", rows, schema, bucket="fig11",
            data_format="parquet",
            row_group_rows=max(1, num_rows // 8),
            compression=compression,
        )
        csv_bytes = catalog.get("csv_table").total_bytes
        pq_bytes = catalog.get("pq_table").total_bytes
        ctx.calibrate_to_paper_scale(
            csv_bytes, PAPER_BYTES_PER_COLUMN * num_columns
        )
        result.notes[f"parquet_size_ratio_{num_columns}col"] = round(
            pq_bytes / csv_bytes, 3
        )
        for selectivity in selectivities:
            # Values are uniform in [0, 1): `f0 < s` matches fraction s.
            sql = f"SELECT f0 FROM S3Object WHERE f0 < {selectivity}"
            reference = None
            for fmt, table_name in (("csv", "csv_table"), ("parquet", "pq_table")):
                table = catalog.get(table_name)
                mark = ctx.begin_query()
                out_rows, _ = select_table(ctx, table, sql)
                phase = phase_since(
                    ctx, mark, "scan", streams=table.partitions,
                    ingest=(len(out_rows), 1),
                )
                execution = ctx.finalize(mark, out_rows, ["f0"], [phase])
                if reference is None:
                    reference = len(out_rows)
                elif len(out_rows) != reference:
                    raise AssertionError(
                        f"row count differs between formats at s={selectivity}"
                    )
                result.rows.append(
                    {
                        "columns": num_columns,
                        "selectivity": selectivity,
                        "strategy": fmt,
                        "runtime_s": round(execution.runtime_seconds, 4),
                        "bytes_scanned": execution.bytes_scanned,
                        "bytes_returned": execution.bytes_returned,
                        "cost_scan": round(execution.cost.scan, 6),
                        "rows_out": len(out_rows),
                    }
                )
    return result
