"""Figure 3: join strategies vs orders-table selectivity.

Customer selectivity fixed at ``c_acctbal <= -950`` (highly selective),
Bloom FPR at 0.01; ``o_orderdate < d`` swept from '1992-03-01' (few
orders) to None (all orders).  Expected shape: filtered join beats
baseline while the orders filter is selective and converges to it as the
filter opens up; Bloom join stays fast and flat because the Bloom filter
keeps the orders rows returned small regardless of the date filter.
"""

from __future__ import annotations

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog
from repro.experiments.fig02_join_customer import STRATEGIES, make_join_query
from repro.experiments.harness import close_enough
from repro.experiments.harness import (
    ExperimentResult,
    PAPER_TPCH_BYTES,
    calibrate_tables,
    execution_row,
)
from repro.queries.dataset import load_tpch

DEFAULT_DATES = (
    "1992-03-01", "1992-06-01", "1993-01-01", "1994-01-01", "1995-01-01", None,
)


def run(
    scale_factor: float = 0.01,
    dates: tuple = DEFAULT_DATES,
    acctbal: float = -950,
    fpr: float = 0.01,
    paper_bytes: float = PAPER_TPCH_BYTES,
) -> ExperimentResult:
    ctx = CloudContext()
    catalog = Catalog()
    load_tpch(ctx, catalog, scale_factor, tables=("customer", "orders"))
    scale = calibrate_tables(ctx, catalog, ["customer", "orders"], paper_bytes * 0.2)

    result = ExperimentResult(
        experiment="fig3",
        title="Join strategies vs orders selectivity (o_orderdate < d)",
        notes={"scale_factor": scale_factor, "paper_scale": f"{scale:.2e}",
               "upper_c_acctbal": acctbal},
    )
    for date in dates:
        query = make_join_query(acctbal, date)
        reference = None
        for name, strategy in STRATEGIES.items():
            if name == "bloom":
                execution = strategy(ctx, catalog, query, fpr=fpr)
            else:
                execution = strategy(ctx, catalog, query)
            value = execution.rows[0][0] if execution.rows else None
            if reference is None:
                reference = value
            elif not close_enough(reference, value):
                raise AssertionError(
                    f"join result mismatch at date={date}: {reference} vs {value}"
                )
            row = execution_row("upper_o_orderdate", date or "None", name, execution)
            result.rows.append(row)
    return result
