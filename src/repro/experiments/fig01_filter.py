"""Figure 1: runtime and cost of the three filter strategies vs selectivity.

Paper setup: 10 GB table, selectivity swept 1e-7..1e-2 (matched rows 6 to
600,000 out of 60M).  Ours sweeps the matched-row count over a smaller
table and calibrates to paper scale, so the x-axis is the *paper
equivalent* selectivity; crossovers land at the same matched-row counts.

Expected shape: S3-side filter ~10x faster than server-side everywhere;
indexing matches S3-side at high selectivity (few matches) and degrades
sharply once per-record requests dominate; indexing is the cheapest
option only when very selective (Fig 1b).
"""

from __future__ import annotations

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog, load_table
from repro.experiments.harness import (
    ExperimentResult,
    calibrate_tables,
    execution_row,
)
from repro.sqlparser import ast
from repro.strategies.filter import (
    FilterQuery,
    indexed_filter,
    s3_side_filter,
    server_side_filter,
)
from repro.workloads.synthetic import FILTER_SCHEMA, filter_table

DEFAULT_NUM_ROWS = 60_000
#: Matched-row counts swept.  With the default 60k-row table each of our
#: rows stands in for 1,000 paper rows (the paper's table has 60M), so
#: this sweep reproduces the paper's 1e-7..1e-2 selectivity axis:
#: matched 6 = paper 6k requests (selectivity 1e-4), matched 600 = paper
#: 600k requests (1e-2), where Figure 1 shows indexing collapsing.
DEFAULT_MATCHES = (1, 6, 60, 600, 1_200)

#: Rows in the paper's scanned table (10 GB TPC-H lineitem, SF 10).
PAPER_ROWS = 60_000_000

STRATEGIES = {
    "server-side": server_side_filter,
    "s3-side": s3_side_filter,
    "indexing": indexed_filter,
}


def run(
    num_rows: int = DEFAULT_NUM_ROWS,
    matches: tuple[int, ...] = DEFAULT_MATCHES,
    paper_bytes: float = 10e9,
    seed: int = 1,
) -> ExperimentResult:
    ctx = CloudContext()
    catalog = Catalog()
    rows = filter_table(num_rows, seed=seed)
    load_table(
        ctx, catalog, "filter_data", rows, FILTER_SCHEMA,
        bucket="fig1", index_columns=["key"],
    )
    scale = calibrate_tables(ctx, catalog, ["filter_data"], paper_bytes)
    # Ranged GETs are issued per matched *row*; weight them by the row
    # ratio (not the byte ratio) so request dispatch time and request
    # cost reproduce the paper's 60M-row axis exactly.
    ctx.client.range_request_weight = PAPER_ROWS / num_rows

    result = ExperimentResult(
        experiment="fig1",
        title="Filter strategies vs selectivity (runtime + cost)",
        notes={
            "num_rows": num_rows,
            "paper_scale": f"{scale:.2e}",
            "selectivity_axis": "paper-equivalent (matched_rows / paper rows)",
        },
    )
    for matched in matches:
        if matched > num_rows:
            continue
        predicate = ast.Binary("<", ast.Column("key"), ast.Literal(matched))
        query = FilterQuery(table="filter_data", predicate=predicate)
        selectivity = matched / num_rows
        for name, strategy in STRATEGIES.items():
            execution = strategy(ctx, catalog, query)
            if len(execution.rows) != matched:
                raise AssertionError(
                    f"{name} returned {len(execution.rows)} rows, expected {matched}"
                )
            row = execution_row("selectivity", selectivity, name, execution)
            row["matched_rows"] = matched
            result.rows.append(row)
    return result
