"""Figure 10: the full query suite — baseline vs optimized PushdownDB.

Four micro-operator queries (filter, group-by, top-K, join) plus TPC-H
Q1, Q3, Q6, Q14, Q17, Q19, each run as:

* PushdownDB (Baseline) — no S3 Select;
* PushdownDB (Optimized) — the pushdown algorithms of Sections IV-VII.

The paper's headline: optimized is on average 6.7x faster and 30%
cheaper.  A synthetic Presto reference series is included for the §VIII
sanity bound ("baseline PushdownDB is slower than Presto by less than
2x; optimized outperforms Presto by 3.4x") — Presto itself is out of
scope, so the series is derived, and clearly labeled as such.
"""

from __future__ import annotations

import math

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog
from repro.experiments.harness import (
    ExperimentResult,
    PAPER_TPCH_BYTES,
    calibrate_tables,
)
from repro.queries.dataset import DEFAULT_TABLES, load_tpch
from repro.queries.micro import MICRO_QUERIES
from repro.queries.tpch_queries import TPCH_QUERIES

#: Paper §VIII: baseline PushdownDB is "slower than Presto by less than
#: 2x" — we derive the reference series with that factor.
PRESTO_BASELINE_FACTOR = 2.0


def run(
    scale_factor: float = 0.01,
    paper_bytes: float = PAPER_TPCH_BYTES,
    include_presto_reference: bool = True,
) -> ExperimentResult:
    ctx = CloudContext()
    catalog = Catalog()
    load_tpch(ctx, catalog, scale_factor)
    scale = calibrate_tables(ctx, catalog, list(DEFAULT_TABLES), paper_bytes)

    result = ExperimentResult(
        experiment="fig10",
        title="Query suite: PushdownDB baseline vs optimized",
        notes={
            "scale_factor": scale_factor,
            "paper_scale": f"{scale:.2e}",
            "presto_series": "derived from baseline (documented synthetic)",
        },
    )
    speedups: list[float] = []
    baseline_costs: list[float] = []
    optimized_costs: list[float] = []
    for name, variants in {**MICRO_QUERIES, **TPCH_QUERIES}.items():
        baseline = variants.baseline(ctx, catalog)
        optimized = variants.optimized(ctx, catalog)
        _check_match(name, baseline.rows, optimized.rows)
        speedup = baseline.runtime_seconds / max(optimized.runtime_seconds, 1e-12)
        speedups.append(speedup)
        baseline_costs.append(baseline.cost.total)
        optimized_costs.append(optimized.cost.total)
        for label, execution in (("baseline", baseline), ("optimized", optimized)):
            result.rows.append(
                {
                    "query": name,
                    "strategy": label,
                    "runtime_s": round(execution.runtime_seconds, 3),
                    "cost_total": round(execution.cost.total, 6),
                    "cost_compute": round(execution.cost.compute, 6),
                    "cost_request": round(execution.cost.request, 6),
                    "cost_scan": round(execution.cost.scan, 6),
                    "cost_transfer": round(execution.cost.transfer, 6),
                    "speedup": round(speedup, 2) if label == "optimized" else "",
                }
            )
        if include_presto_reference:
            result.rows.append(
                {
                    "query": name,
                    "strategy": "presto (derived)",
                    "runtime_s": round(
                        baseline.runtime_seconds / PRESTO_BASELINE_FACTOR, 3
                    ),
                    "cost_total": "",
                }
            )

    geo_speedup = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    cost_ratio = sum(optimized_costs) / sum(baseline_costs)
    result.rows.append(
        {
            "query": "geo-mean",
            "strategy": "optimized/baseline",
            "runtime_s": "",
            "cost_total": "",
            "speedup": round(geo_speedup, 2),
        }
    )
    result.notes["geomean_speedup"] = round(geo_speedup, 2)
    result.notes["total_cost_ratio"] = round(cost_ratio, 3)
    result.notes["paper_headline"] = "6.7x faster, 30% cheaper"
    return result


def _check_match(name: str, a: list[tuple], b: list[tuple]) -> None:
    def norm(rows):
        out = []
        for row in rows:
            out.append(
                tuple(
                    round(v, 6) if isinstance(v, float) and abs(v) < 1e3
                    else round(v, 2) if isinstance(v, float)
                    else v
                    for v in row
                )
            )
        return sorted(out)

    na, nb = norm(a), norm(b)
    if len(na) != len(nb):
        raise AssertionError(f"{name}: row count mismatch {len(na)} vs {len(nb)}")
    for ra, rb in zip(na, nb):
        for va, vb in zip(ra, rb):
            if isinstance(va, float) and isinstance(vb, float):
                if abs(va - vb) > 1e-6 * max(abs(va), abs(vb), 1.0):
                    raise AssertionError(f"{name}: {va} != {vb}")
            elif va != vb:
                raise AssertionError(f"{name}: {va!r} != {vb!r}")
