"""Figure 4: Bloom join vs the filter's false-positive rate.

Customer selectivity fixed at -950, orders unfiltered; FPR swept over
{1e-4, 1e-3, 0.01, 0.1, 0.3, 0.5}.  Expected U-shape (paper: 0.01 is the
sweet spot): a very low FPR means a large bit array and many hash
functions (more S3-side compute per row); a high FPR lets more
non-matching orders rows through (more data returned and processed).
Baseline and filtered join are shown as flat references.
"""

from __future__ import annotations

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog
from repro.experiments.fig02_join_customer import make_join_query
from repro.experiments.harness import (
    ExperimentResult,
    PAPER_TPCH_BYTES,
    calibrate_tables,
    execution_row,
)
from repro.queries.dataset import load_tpch
from repro.strategies.join import baseline_join, bloom_join, filtered_join

DEFAULT_FPRS = (0.0001, 0.001, 0.01, 0.1, 0.3, 0.5)


def run(
    scale_factor: float = 0.01,
    fprs: tuple = DEFAULT_FPRS,
    acctbal: float = -950,
    paper_bytes: float = PAPER_TPCH_BYTES,
) -> ExperimentResult:
    ctx = CloudContext()
    catalog = Catalog()
    load_tpch(ctx, catalog, scale_factor, tables=("customer", "orders"))
    scale = calibrate_tables(ctx, catalog, ["customer", "orders"], paper_bytes * 0.2)

    result = ExperimentResult(
        experiment="fig4",
        title="Bloom join vs false-positive rate",
        notes={"scale_factor": scale_factor, "paper_scale": f"{scale:.2e}",
               "upper_c_acctbal": acctbal},
    )
    query = make_join_query(acctbal, None)
    baseline = baseline_join(ctx, catalog, query)
    filtered = filtered_join(ctx, catalog, query)
    expected = baseline.rows[0][0] if baseline.rows else None
    for name, execution in (("baseline", baseline), ("filtered", filtered)):
        row = execution_row("fpr", "-", name, execution)
        result.rows.append(row)
    for fpr in fprs:
        execution = bloom_join(ctx, catalog, query, fpr=fpr)
        value = execution.rows[0][0] if execution.rows else None
        if (expected is None) != (value is None) or (
            expected is not None
            and abs(expected - value) > 1e-6 * max(abs(expected), 1.0)
        ):
            raise AssertionError(f"bloom join wrong at fpr={fpr}")
        row = execution_row("fpr", fpr, "bloom", execution)
        row["bloom_bits"] = execution.details["bloom_bits"]
        row["bloom_hashes"] = execution.details["bloom_hashes"]
        row["probe_rows_returned"] = execution.details["probe_rows_returned"]
        result.rows.append(row)
    return result
