"""Figure 15: zone-map partition pruning on partition-clustered data.

Beyond the paper: PushdownDB's pushdown model only ever shrinks bytes
per request — every partition object is still SELECTed.  Zone maps
(collected free during the load-time stats pass) let a pushdown scan
skip partitions whose min/max envelope refutes the pushed predicate,
cutting the *request count* itself.

Setup: the fig01 filter table sorted by ``key`` so each contiguous
partition covers a tight, disjoint key interval (the layout ingest-
ordered or sort-keyed warehouse data naturally has).  Sweeping the range
predicate ``key < t`` from selective to all-inclusive sweeps the pruned
fraction from (partitions-1)/partitions down to 0.  Each sweep point
runs the identical optimized plan with pruning on and off.

Expected shape: identical rows across every pair; measured requests,
dollar cost and runtime drop monotonically as the pruning fraction
grows; the unpruned arm pays a flat ``partitions`` requests everywhere.
"""

from __future__ import annotations

from repro.experiments.harness import (
    ExperimentResult,
    calibrate_tables,
    execution_row,
)
from repro.optimizer.pruning import keep_partitions
from repro.planner.database import PushdownDB
from repro.sqlparser import ast
from repro.workloads.synthetic import FILTER_SCHEMA, clustered_filter_table

DEFAULT_NUM_ROWS = 20_000
DEFAULT_PARTITIONS = 16
#: Predicate selectivities swept, most selective (max pruning) first.
DEFAULT_SELECTIVITIES = (0.02, 0.0625, 0.125, 0.25, 0.5, 1.0)

ARMS = ("pruned", "unpruned")


def run(
    num_rows: int = DEFAULT_NUM_ROWS,
    partitions: int = DEFAULT_PARTITIONS,
    selectivities: tuple = DEFAULT_SELECTIVITIES,
    paper_bytes: float = 10e9,
    seed: int = 1,
) -> ExperimentResult:
    db = PushdownDB(bucket="fig15")
    rows = clustered_filter_table(num_rows, seed=seed)
    db.load_table("fx", rows, FILTER_SCHEMA, partitions=partitions)
    scale = calibrate_tables(db.ctx, db.catalog, ["fx"], paper_bytes)
    table = db.table("fx")

    result = ExperimentResult(
        experiment="fig15",
        title="Zone-map partition pruning vs predicate selectivity",
        notes={
            "num_rows": num_rows,
            "partitions": table.partitions,
            "paper_scale": f"{scale:.2e}",
        },
    )
    matched = 0
    for selectivity in sorted(selectivities):
        threshold = max(1, int(round(selectivity * num_rows)))
        sql = f"SELECT key, p0 FROM fx WHERE key < {threshold}"
        predicate = ast.Binary("<", ast.Column("key"), ast.Literal(threshold))
        keep = keep_partitions(table, predicate)
        pruned = 0 if keep is None else table.partitions - len(keep)
        reference = None
        for arm in ARMS:
            db.ctx.prune_partitions = arm == "pruned"
            execution = db.execute(sql, mode="optimized")
            normalized = sorted(execution.rows)
            if reference is None:
                reference = normalized
            elif normalized != reference:
                raise AssertionError(
                    f"pruned and unpruned rows disagree at"
                    f" selectivity={selectivity}"
                )
            row = execution_row("selectivity", selectivity, arm, execution)
            row["partitions_pruned"] = pruned if arm == "pruned" else 0
            result.rows.append(row)
        matched += 1
    db.ctx.prune_partitions = True

    _check_monotone(result, "requests")
    _check_monotone(result, "cost_total")
    _check_monotone(result, "runtime_s")
    result.notes["matched"] = f"{matched}/{len(selectivities)}"
    return result


def _check_monotone(result: ExperimentResult, metric: str) -> None:
    """The pruned arm's sweep runs selective -> inclusive, i.e. pruning
    fraction high -> low, so ``metric`` must be non-decreasing in sweep
    order (equivalently: drop monotonically with the pruning fraction)."""
    series = result.column("pruned", metric)
    for earlier, later in zip(series, series[1:]):
        if later < earlier * (1.0 - 1e-9):
            raise AssertionError(
                f"{metric} not monotone in pruning fraction: {series}"
            )
