"""Figure 9: server-side vs sampling top-K as K grows.

K swept over decades (paper: 1..1e5 on 60M rows; ours uses the same
K/N ratios).  Expected shape: both strategies slow down as K grows (a
bigger heap, more local compute), and sampling top-K stays consistently
faster and cheaper because it never moves the whole table.
"""

from __future__ import annotations

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog
from repro.experiments.harness import (
    ExperimentResult,
    PAPER_LINEITEM_BYTES,
    calibrate_tables,
    execution_row,
)
from repro.queries.dataset import load_tpch
from repro.strategies.topk import (
    TopKQuery,
    sampling_top_k,
    server_side_top_k,
)

#: K as fractions of the table.  The paper sweeps K = 1..1e5 over 6e7
#: rows (1.7e-8..1.7e-3); our tables are ~1000x smaller, so the fractions
#: are shifted up to keep the K values distinct (1 .. ~4% of the table).
DEFAULT_K_FRACTIONS = (1.7e-5, 1.7e-4, 1.7e-3, 8e-3, 4e-2)


def run(
    scale_factor: float = 0.01,
    k_fractions: tuple = DEFAULT_K_FRACTIONS,
    paper_bytes: float = PAPER_LINEITEM_BYTES,
) -> ExperimentResult:
    ctx = CloudContext()
    catalog = Catalog()
    load_tpch(ctx, catalog, scale_factor, tables=("lineitem",))
    scale = calibrate_tables(ctx, catalog, ["lineitem"], paper_bytes)
    table = catalog.get("lineitem")

    result = ExperimentResult(
        experiment="fig9",
        title="Top-K strategies vs K",
        notes={"num_rows": table.num_rows, "paper_scale": f"{scale:.2e}"},
    )
    price_idx = table.schema.index_of("l_extendedprice")
    seen_k: set[int] = set()
    for fraction in k_fractions:
        k = max(1, int(table.num_rows * fraction))
        if k in seen_k:
            continue  # tiny tables can collapse adjacent fractions
        seen_k.add(k)
        query = TopKQuery(table="lineitem", order_column="l_extendedprice", k=k)
        server = server_side_top_k(ctx, catalog, query)
        sampling = sampling_top_k(ctx, catalog, query)
        if [r[price_idx] for r in server.rows] != [
            r[price_idx] for r in sampling.rows
        ]:
            raise AssertionError(f"top-K mismatch at k={k}")
        for name, execution in (("server-side", server), ("sampling", sampling)):
            row = execution_row("k", k, name, execution)
            result.rows.append(row)
    return result
