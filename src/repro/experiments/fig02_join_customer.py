"""Figure 2: join strategies vs customer-table selectivity.

The Section V synthetic query::

    SELECT SUM(O_TOTALPRICE) FROM CUSTOMER, ORDERS
    WHERE O_CUSTKEY = C_CUSTKEY AND C_ACCTBAL <= <v>

sweeping ``v`` from -950 (very selective) to -450.  Expected shape:
baseline and filtered join are flat (both always load all of orders);
Bloom join is several times faster while the customer filter is
selective and converges toward filtered join as selectivity drops.
"""

from __future__ import annotations

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog
from repro.experiments.harness import (
    ExperimentResult,
    PAPER_TPCH_BYTES,
    calibrate_tables,
    close_enough,
    execution_row,
)
from repro.queries.common import items
from repro.queries.dataset import load_tpch
from repro.sqlparser.parser import parse_expression
from repro.strategies.join import (
    JoinQuery,
    baseline_join,
    bloom_join,
    filtered_join,
)

DEFAULT_ACCTBALS = (-950, -850, -750, -650, -550, -450)
DEFAULT_FPR = 0.01

STRATEGIES = {
    "baseline": baseline_join,
    "filtered": filtered_join,
    "bloom": bloom_join,
}


def make_join_query(
    upper_c_acctbal: float | None, upper_o_orderdate: str | None
) -> JoinQuery:
    """The Section V evaluation query with its two swept parameters."""
    build_predicate = (
        None
        if upper_c_acctbal is None
        else parse_expression(f"c_acctbal <= {upper_c_acctbal}")
    )
    probe_predicate = (
        None
        if upper_o_orderdate is None
        else parse_expression(f"o_orderdate < '{upper_o_orderdate}'")
    )
    return JoinQuery(
        build_table="customer",
        probe_table="orders",
        build_key="c_custkey",
        probe_key="o_custkey",
        build_predicate=build_predicate,
        probe_predicate=probe_predicate,
        build_projection=["c_custkey"],
        probe_projection=["o_custkey", "o_totalprice"],
        output=items("SUM(o_totalprice) AS total"),
    )


def run(
    scale_factor: float = 0.01,
    acctbals: tuple = DEFAULT_ACCTBALS,
    fpr: float = DEFAULT_FPR,
    paper_bytes: float = PAPER_TPCH_BYTES,
) -> ExperimentResult:
    ctx = CloudContext()
    catalog = Catalog()
    load_tpch(ctx, catalog, scale_factor, tables=("customer", "orders"))
    # The paper's join experiments scan customer + orders out of the
    # 10 GB dataset; calibrate on those tables against their share
    # (~2 GB of the 10 GB dataset).
    scale = calibrate_tables(ctx, catalog, ["customer", "orders"], paper_bytes * 0.2)

    result = ExperimentResult(
        experiment="fig2",
        title="Join strategies vs customer selectivity (c_acctbal <= v)",
        notes={"scale_factor": scale_factor, "paper_scale": f"{scale:.2e}", "fpr": fpr},
    )
    for acctbal in acctbals:
        query = make_join_query(acctbal, None)
        reference = None
        for name, strategy in STRATEGIES.items():
            if name == "bloom":
                execution = strategy(ctx, catalog, query, fpr=fpr)
            else:
                execution = strategy(ctx, catalog, query)
            value = execution.rows[0][0] if execution.rows else None
            if reference is None:
                reference = value
            elif not close_enough(reference, value):
                raise AssertionError(
                    f"join result mismatch at acctbal={acctbal}: {reference} vs {value}"
                )
            row = execution_row("upper_c_acctbal", acctbal, name, execution)
            row["achieved_fpr"] = execution.details.get("achieved_fpr", "")
            result.rows.append(row)
    return result


