"""Working implementations of the paper's Section X suggestions.

The paper closes with a list of S3 Select interface changes that would
improve PushdownDB.  Two of them are concrete enough to build and
measure against the unmodified strategies:

* **Suggestion 1 — multi-range GETs**: the indexing strategy collapses
  at moderate selectivity because every matched record costs one HTTP
  request (Figure 1).  :func:`multirange_indexed_filter` batches up to
  :data:`MAX_RANGES_PER_REQUEST` byte ranges into one request, cutting
  both the dispatch time and the request bill by three orders.
* **Suggestion 4 — partial group-by in S3**:
  :func:`partial_pushdown_group_by` pushes a real ``GROUP BY`` to the
  (extended) storage engine, one scan instead of the CASE-encoded two
  scans of S3-side group-by, with per-row cost independent of the group
  count.

Both require capabilities the real S3 does not offer; the benchmarks in
``benchmarks/test_ext_suggestions.py`` quantify what AWS users are
leaving on the table.
"""

from __future__ import annotations

from repro.cloud.context import CloudContext, QueryExecution
from repro.common.errors import PlanError
from repro.engine.catalog import Catalog
from repro.engine.operators.project import project_columns
from repro.sqlparser import ast
from repro.strategies.base import finish_output
from repro.strategies.filter import FilterQuery, _single_indexed_column
from repro.strategies.groupby import GroupByQuery, _output_names
from repro.strategies.scans import phase_since, projection_sql
from repro.storage.csvcodec import iter_records

#: Ranges batched into one extended GET request.
MAX_RANGES_PER_REQUEST = 1000


def multirange_indexed_filter(
    ctx: CloudContext, catalog: Catalog, query: FilterQuery
) -> QueryExecution:
    """Indexed filtering with Suggestion 1's multi-range GETs.

    Phase 1 is identical to :func:`repro.strategies.filter.indexed_filter`;
    phase 2 fetches all matched extents of a partition with one request
    per :data:`MAX_RANGES_PER_REQUEST` ranges.
    """
    table = catalog.get(query.table)
    index_column = _single_indexed_column(table, query.predicate)
    index = table.index_for(index_column)

    index_predicate = ast.rename_columns(query.predicate, {index_column: "value"})
    index_sql = projection_sql(["first_byte", "last_byte"], index_predicate.to_sql())
    mark = ctx.begin_query()
    extents_per_partition: list[list[tuple[int, int]]] = []
    for key in index.keys:
        result = ctx.client.select_object_content(table.bucket, key, index_sql)
        extents_per_partition.append([(int(a), int(b)) for a, b in result.rows])
    matched = sum(len(e) for e in extents_per_partition)
    phase1 = phase_since(
        ctx, mark, "index-lookup", streams=len(index.keys), ingest=(matched, 2)
    )

    mark2 = ctx.metrics.mark()
    rows: list[tuple] = []
    # One of our multi-range requests stands for the number of requests
    # the same batch size would need at paper scale.
    row_weight = ctx.client.range_request_weight
    for data_key, extents in zip(table.keys, extents_per_partition):
        for start in range(0, len(extents), MAX_RANGES_PER_REQUEST):
            batch = extents[start : start + MAX_RANGES_PER_REQUEST]
            weight = max(1.0, len(batch) * row_weight / MAX_RANGES_PER_REQUEST)
            payloads = ctx.client.get_object_ranges(
                table.bucket, data_key, batch, weight=weight
            )
            for payload in payloads:
                for record in iter_records(payload):
                    rows.append(table.schema.parse_row(record))
    names = list(table.schema.names)
    cpu = 0.0
    if query.projection is not None:
        projected = project_columns(rows, names, query.projection)
        cpu += projected.cpu_seconds
        rows, names = projected.rows, projected.column_names
    out = finish_output(rows, names, query.output)
    cpu += out.cpu_seconds
    phase2 = phase_since(
        ctx, mark2, "multirange-fetch", streams=table.partitions,
        server_cpu_seconds=cpu, ingest=(matched, len(table.schema)),
    )
    return ctx.finalize(
        mark, out.rows, out.column_names, [phase1, phase2],
        strategy="indexing + multirange GET (suggestion 1)",
        details={"matched_rows": matched},
    )


def partial_pushdown_group_by(
    ctx: CloudContext, catalog: Catalog, query: GroupByQuery
) -> QueryExecution:
    """Group-by with Suggestion 4's partial GROUP BY pushed to storage.

    One scan: each partition returns per-group partial aggregates, merged
    on the query node.  AVG is decomposed into SUM and COUNT so partials
    merge exactly.
    """
    table = catalog.get(query.table)
    pushed_cols: list[str] = list(query.group_columns)
    merge_plan: list[tuple[str, list[int]]] = []  # (func, pushed col positions)
    position = len(query.group_columns)
    for agg in query.aggregates:
        func = agg.func.upper()
        if func == "AVG":
            pushed_cols.append(f"SUM({agg.column})")
            pushed_cols.append(f"COUNT({agg.column})")
            merge_plan.append(("AVG", [position, position + 1]))
            position += 2
        else:
            pushed_cols.append(f"{func}({agg.column})")
            merge_plan.append((func, [position]))
            position += 1

    where_sql = query.predicate.to_sql() if query.predicate is not None else None
    sql = projection_sql(pushed_cols, where_sql)
    sql += " GROUP BY " + ", ".join(query.group_columns)

    mark = ctx.begin_query()
    n_group = len(query.group_columns)
    merged: dict[tuple, list] = {}
    rows_returned = 0
    for key in table.keys:
        result = ctx.client.select_object_content(
            table.bucket, key, sql, allow_group_by=True
        )
        rows_returned += len(result.rows)
        for row in result.rows:
            group = row[:n_group]
            state = merged.get(group)
            if state is None:
                merged[group] = list(row[n_group:])
                continue
            for func, positions in merge_plan:
                for pos in positions:
                    i = pos - n_group
                    state[i] = _merge(func, state[i], row[pos])

    out_rows = []
    for group, state in merged.items():
        values = list(group)
        for func, positions in merge_plan:
            if func == "AVG":
                total, count = (state[p - n_group] for p in positions)
                values.append(None if not count else total / count)
            else:
                values.append(state[positions[0] - n_group])
        out_rows.append(tuple(values))

    phase = phase_since(
        ctx, mark, "partial-groupby", streams=table.partitions,
        ingest=(rows_returned, len(pushed_cols)),
    )
    return ctx.finalize(
        mark, out_rows, _output_names(query), [phase],
        strategy="partial group-by pushdown (suggestion 4)",
        details={"groups": len(merged), "partial_rows_returned": rows_returned},
    )


def _merge(func: str, a, b):
    if a is None:
        return b
    if b is None:
        return a
    if func in ("SUM", "COUNT", "AVG"):
        return a + b
    if func == "MIN":
        return min(a, b)
    if func == "MAX":
        return max(a, b)
    raise PlanError(f"cannot merge partials for {func!r}")
