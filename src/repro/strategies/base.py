"""Shared pieces of the pushdown strategies."""

from __future__ import annotations

from typing import Sequence

from repro.engine.operators.base import OpResult
from repro.engine.operators.groupby import group_by_aggregate
from repro.engine.operators.project import project
from repro.sqlparser import ast


def finish_output(
    rows: list[tuple],
    column_names: Sequence[str],
    output_items: Sequence[ast.SelectItem] | None,
) -> OpResult:
    """Apply a final select list locally.

    ``None`` passes rows through; a list containing aggregates runs a
    single-group aggregation (the micro-benchmarks' ``SUM(o_totalprice)``
    shape); otherwise it is a plain projection.
    """
    if output_items is None:
        return OpResult(rows=list(rows), column_names=list(column_names))
    has_aggregate = any(
        not isinstance(item.expr, ast.Star) and ast.contains_aggregate(item.expr)
        for item in output_items
    )
    if has_aggregate:
        return group_by_aggregate(rows, column_names, (), output_items)
    return project(rows, column_names, output_items)


def sum_items(columns: Sequence[str]) -> list[ast.SelectItem]:
    """Convenience: ``[SUM(col) AS sum_col, ...]`` select items."""
    return [
        ast.SelectItem(
            expr=ast.Aggregate(func="SUM", operand=ast.Column(name=c)),
            alias=f"sum_{c}",
        )
        for c in columns
    ]
