"""The paper's three join strategies (Section V).

All are two-phase hash joins differing only in what reaches the server:

* **baseline join** — GET both tables in full, join locally;
* **filtered join** — push each table's selection + projection into S3
  Select, join locally (both tables load in parallel);
* **Bloom join** — load the build side via S3 Select, construct a Bloom
  filter over its join keys, and ship that filter *inside the probe
  side's S3 Select WHERE clause* so non-matching probe rows never leave
  storage.

Bloom join degrades per Section V-B1: if the rendered filter exceeds the
256 KB expression limit the FPR is raised; if no FPR < 1 fits, the
membership predicate is chunked into exact ``IN``-list scans (up to
:data:`MAX_MEMBERSHIP_CHUNKS` SELECT requests, every one metered), and
only past that does it fall back to an unfiltered probe scan.  All the
degraded scans are *serial* after the build side (the decision is made
only after the build side is loaded).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bloom.filter import build_bloom_filter_within_limit
from repro.cloud.context import CloudContext, QueryExecution
from repro.cloud.perf import SERVER_CPU_PER_ROW
from repro.common.errors import PlanError
from repro.engine.catalog import Catalog, TableInfo
from repro.engine.operators.filter import filter_rows
from repro.engine.operators.hashjoin import hash_join
from repro.engine.operators.project import project_columns
from repro.s3select.validator import EXPRESSION_LIMIT_BYTES
from repro.sqlparser import ast
from repro.strategies.base import finish_output
from repro.strategies.scans import (
    get_table,
    phase_since,
    projection_sql,
    select_table,
)

#: Default Bloom false-positive rate; the paper finds 0.01 the sweet spot
#: (Figure 4).
DEFAULT_FPR = 0.01

#: Most SELECT requests (per partition) the chunked IN-list fallback may
#: issue before an unfiltered scan becomes the cheaper degradation: each
#: chunk re-scans the whole probe table, so past this point the scan bill
#: dwarfs what the membership filter saves in returned bytes.
MAX_MEMBERSHIP_CHUNKS = 16


def membership_chunks(
    attr: str,
    keys,
    overhead_bytes: int,
    limit_bytes: int = EXPRESSION_LIMIT_BYTES,
) -> list[str] | None:
    """Render ``attr IN (...)`` predicates, each within the service limit.

    The unique keys are split greedily so every rendered predicate plus
    ``overhead_bytes`` (the rest of the query) stays at or under
    ``limit_bytes``.  Chunks partition the key set, so unioning the
    chunked scans' results reproduces a single membership scan exactly.
    Returns ``None`` when not even a one-key predicate fits.
    """
    unique = sorted(set(keys))
    budget = limit_bytes - overhead_bytes
    fixed = len(f"{attr} IN (".encode()) + 1
    chunks: list[str] = []
    current: list[str] = []
    current_bytes = 0
    for key in unique:
        literal = ast.Literal(key).to_sql()
        cost = len(literal.encode()) + 2  # ", " separator
        if fixed + len(literal.encode()) > budget:
            return None
        if current and fixed + current_bytes + cost > budget:
            chunks.append(f"{attr} IN ({', '.join(current)})")
            current, current_bytes = [], 0
        current.append(literal)
        current_bytes += cost
    if current:
        chunks.append(f"{attr} IN ({', '.join(current)})")
    return chunks


@dataclass
class JoinQuery:
    """An equi-join between a build (small) and probe (large) table."""

    build_table: str
    probe_table: str
    build_key: str
    probe_key: str
    build_predicate: ast.Expr | None = None
    probe_predicate: ast.Expr | None = None
    #: Pushdown projections; must include the join keys.  ``None`` loads
    #: every column.
    build_projection: list[str] | None = None
    probe_projection: list[str] | None = None
    #: Final select list evaluated locally (e.g. ``SUM(o_totalprice)``).
    output: list[ast.SelectItem] | None = None


def baseline_join(ctx: CloudContext, catalog: Catalog, query: JoinQuery) -> QueryExecution:
    """Load both tables in full (no S3 Select) and join locally."""
    build = catalog.get(query.build_table)
    probe = catalog.get(query.probe_table)
    mark = ctx.begin_query()
    build_rows = get_table(ctx, build)
    probe_rows = get_table(ctx, probe)
    loaded_records = len(build_rows) + len(probe_rows)
    loaded_fields = (
        len(build_rows) * len(build.schema) + len(probe_rows) * len(probe.schema)
    )
    cpu = 0.0
    filtered_build = filter_rows(build_rows, build.schema.names, query.build_predicate)
    filtered_probe = filter_rows(probe_rows, probe.schema.names, query.probe_predicate)
    cpu += filtered_build.cpu_seconds + filtered_probe.cpu_seconds
    # Apply the query's projections locally so baseline output matches the
    # pushdown strategies' column-for-column (it still *moved* every
    # column over the network, which is the point of the comparison).
    build_side = filtered_build.rows, list(build.schema.names)
    probe_side = filtered_probe.rows, list(probe.schema.names)
    if query.build_projection is not None:
        projected = project_columns(*build_side, query.build_projection)
        cpu += projected.cpu_seconds
        build_side = projected.rows, projected.column_names
    if query.probe_projection is not None:
        projected = project_columns(*probe_side, query.probe_projection)
        cpu += projected.cpu_seconds
        probe_side = projected.rows, projected.column_names
    joined = hash_join(
        build_side[0], build_side[1], probe_side[0], probe_side[1],
        query.build_key, query.probe_key,
    )
    cpu += joined.cpu_seconds
    out = finish_output(joined.rows, joined.column_names, query.output)
    cpu += out.cpu_seconds
    phase = phase_since(
        ctx, mark, "load+join",
        streams=build.partitions + probe.partitions,
        server_cpu_seconds=cpu,
        ingest=(loaded_records, loaded_fields / max(loaded_records, 1)),
    )
    return ctx.finalize(mark, out.rows, out.column_names, [phase], strategy="baseline join")


def filtered_join(ctx: CloudContext, catalog: Catalog, query: JoinQuery) -> QueryExecution:
    """Push selections/projections into S3 Select; join locally.

    Both table scans run in parallel (one phase), which is the behaviour
    the paper contrasts with the degraded Bloom join's serial scans.
    """
    build = catalog.get(query.build_table)
    probe = catalog.get(query.probe_table)
    mark = ctx.begin_query()
    build_rows, build_names = _select_side(
        ctx, build, query.build_projection, query.build_predicate
    )
    probe_rows, probe_names = _select_side(
        ctx, probe, query.probe_projection, query.probe_predicate
    )
    joined = hash_join(
        build_rows, build_names, probe_rows, probe_names,
        query.build_key, query.probe_key,
    )
    out = finish_output(joined.rows, joined.column_names, query.output)
    avg_cols = (
        len(build_rows) * len(build_names) + len(probe_rows) * len(probe_names)
    ) / max(len(build_rows) + len(probe_rows), 1)
    phase = phase_since(
        ctx, mark, "select+join",
        streams=build.partitions + probe.partitions,
        server_cpu_seconds=joined.cpu_seconds + out.cpu_seconds,
        ingest=(len(build_rows) + len(probe_rows), avg_cols),
    )
    return ctx.finalize(mark, out.rows, out.column_names, [phase], strategy="filtered join")


def bloom_join(
    ctx: CloudContext,
    catalog: Catalog,
    query: JoinQuery,
    fpr: float = DEFAULT_FPR,
    seed: int | None = None,
    expression_limit_bytes: int = EXPRESSION_LIMIT_BYTES,
) -> QueryExecution:
    """Bloom join (Section V-A2): ship the build side's key set to S3.

    ``expression_limit_bytes`` exists so tests can exercise the
    degradation ladder (Bloom -> chunked IN-list -> unfiltered scan)
    without building megabyte key sets; production callers leave it at
    the service's 256 KB.
    """
    build = catalog.get(query.build_table)
    probe = catalog.get(query.probe_table)
    key_type = build.schema.column(query.build_key).type
    if key_type != "int":
        raise PlanError(
            f"Bloom join requires an integer join attribute; {query.build_key!r}"
            f" is {key_type} (paper Section V-A2 limitation)"
        )

    # Phase 1: build side via S3 Select; construct hash table + Bloom filter.
    mark = ctx.begin_query()
    build_rows, build_names = _select_side(
        ctx, build, query.build_projection, query.build_predicate
    )
    key_idx = [n.lower() for n in build_names].index(query.build_key.lower())
    keys = [row[key_idx] for row in build_rows if row[key_idx] is not None]

    probe_where_parts = []
    if query.probe_predicate is not None:
        probe_where_parts.append(query.probe_predicate.to_sql())
    probe_columns = (
        query.probe_projection
        if query.probe_projection is not None
        else list(probe.schema.names)
    )
    base_sql = projection_sql(probe_columns, " AND ".join(probe_where_parts) or None)
    outcome = build_bloom_filter_within_limit(
        keys, fpr, query.probe_key, sql_overhead_bytes=len(base_sql.encode()) + 16,
        seed=seed, limit_bytes=expression_limit_bytes,
    )
    bloom_cpu = len(keys) * SERVER_CPU_PER_ROW["bloom_insert"]
    phase1 = phase_since(
        ctx, mark, "build+bloom",
        streams=build.partitions, server_cpu_seconds=bloom_cpu,
        ingest=(len(build_rows), len(build_names)),
    )

    # Phase 2: probe side, filtered at S3 by the Bloom predicate.  Runs
    # after phase 1 by construction — including in the degraded case,
    # which is precisely the paper's serial-scans caveat.  When no Bloom
    # filter fits the expression limit, the exact membership predicate is
    # chunked across multiple SELECT requests (each chunk under the
    # limit, each request metered); only when even that would take too
    # many re-scans does the probe run unfiltered.
    mark2 = ctx.metrics.mark()
    degraded = outcome.bloom is None
    num_chunks = 0
    if degraded:
        chunks = membership_chunks(
            query.probe_key,
            keys,
            overhead_bytes=len(base_sql.encode()) + 16,
            limit_bytes=expression_limit_bytes,
        )
        if chunks and len(chunks) <= MAX_MEMBERSHIP_CHUNKS:
            num_chunks = len(chunks)
            probe_rows, probe_names = [], []
            for chunk in chunks:
                where = " AND ".join(probe_where_parts + [chunk])
                rows_part, probe_names = select_table(
                    ctx, probe, projection_sql(probe_columns, where)
                )
                probe_rows.extend(rows_part)
        else:
            probe_rows, probe_names = select_table(ctx, probe, base_sql)
    else:
        bloom_pred = outcome.bloom.to_sql_predicate(query.probe_key)
        where = " AND ".join(probe_where_parts + [bloom_pred])
        probe_sql = projection_sql(probe_columns, where)
        probe_rows, probe_names = select_table(ctx, probe, probe_sql)

    joined = hash_join(
        build_rows, build_names, probe_rows, probe_names,
        query.build_key, query.probe_key,
    )
    out = finish_output(joined.rows, joined.column_names, query.output)
    phase2 = phase_since(
        ctx, mark2, "probe+join",
        streams=probe.partitions,
        server_cpu_seconds=joined.cpu_seconds + out.cpu_seconds,
        ingest=(len(probe_rows), len(probe_names)),
    )
    details = {
        "requested_fpr": fpr,
        "achieved_fpr": outcome.achieved_fpr,
        "degraded": degraded,
        "membership_chunks": num_chunks,
        "bloom_bits": 0 if degraded else outcome.bloom.num_bits,
        "bloom_hashes": 0 if degraded else outcome.bloom.num_hashes,
        "build_keys": len(keys),
        "probe_rows_returned": len(probe_rows),
    }
    return ctx.finalize(
        mark, out.rows, out.column_names, [phase1, phase2],
        strategy="bloom join", details=details,
    )


def _select_side(
    ctx: CloudContext,
    table: TableInfo,
    projection: list[str] | None,
    predicate: ast.Expr | None,
) -> tuple[list[tuple], list[str]]:
    columns = projection if projection is not None else list(table.schema.names)
    sql = projection_sql(columns, predicate.to_sql() if predicate is not None else None)
    rows, names = select_table(ctx, table, sql)
    # S3 Select names computed outputs `_N`; normalize to the requested columns.
    return rows, columns if len(columns) == len(names) else names
