"""The paper's three filtering strategies (Section IV).

* **server-side filter** — GET the whole table, filter on the query node;
* **S3-side filter** — push the WHERE clause into an S3 Select request;
* **S3-side indexing** — query an index table via S3 Select (phase 1),
  then fetch each matching record with its own byte-range GET (phase 2).

Figure 1 compares them across selectivities: S3-side filter wins broadly,
indexing wins only when very few rows match (each match costs one HTTP
request), and server-side is ~10x slower than S3-side throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.context import CloudContext, QueryExecution
from repro.common.errors import PlanError
from repro.engine.catalog import Catalog
from repro.engine.operators.filter import filter_rows
from repro.engine.operators.project import project_columns
from repro.sqlparser import ast
from repro.storage.csvcodec import iter_records
from repro.strategies.base import finish_output
from repro.strategies.scans import (
    get_table,
    phase_since,
    projection_sql,
    select_table,
)


#: Parallel workers issuing the indexing strategy's byte-range GETs
#: (PushdownDB "spawns multiple processes"; one per core of r4.8xlarge).
REQUEST_WORKERS = 32


@dataclass
class FilterQuery:
    """A filter micro-query: predicate plus optional projection/output."""

    table: str
    predicate: ast.Expr
    projection: list[str] | None = None
    #: Optional final select list (aggregates allowed), applied locally.
    output: list[ast.SelectItem] | None = None


def server_side_filter(
    ctx: CloudContext, catalog: Catalog, query: FilterQuery
) -> QueryExecution:
    """Load the entire table from S3 and filter on the compute node."""
    table = catalog.get(query.table)
    mark = ctx.begin_query()
    rows = get_table(ctx, table)
    loaded = (len(rows), len(table.schema))
    filtered = filter_rows(rows, table.schema.names, query.predicate)
    cpu = filtered.cpu_seconds
    rows_out, names = filtered.rows, filtered.column_names
    if query.projection is not None:
        projected = project_columns(rows_out, names, query.projection)
        cpu += projected.cpu_seconds
        rows_out, names = projected.rows, projected.column_names
    out = finish_output(rows_out, names, query.output)
    cpu += out.cpu_seconds
    phase = phase_since(
        ctx, mark, "load+filter", streams=table.partitions,
        server_cpu_seconds=cpu, ingest=loaded,
    )
    return ctx.finalize(
        mark, out.rows, out.column_names, [phase], strategy="server-side filter"
    )


def s3_side_filter(
    ctx: CloudContext, catalog: Catalog, query: FilterQuery
) -> QueryExecution:
    """Push selection (and projection) into S3 Select."""
    table = catalog.get(query.table)
    mark = ctx.begin_query()
    columns = query.projection if query.projection is not None else list(table.schema.names)
    sql = projection_sql(columns, query.predicate.to_sql())
    rows, names = select_table(ctx, table, sql)
    out = finish_output(rows, names, query.output)
    phase = phase_since(
        ctx, mark, "s3-filter", streams=table.partitions,
        server_cpu_seconds=out.cpu_seconds, ingest=(len(rows), len(names)),
    )
    return ctx.finalize(
        mark, out.rows, out.column_names, [phase], strategy="s3-side filter"
    )


def indexed_filter(
    ctx: CloudContext, catalog: Catalog, query: FilterQuery
) -> QueryExecution:
    """Two-phase index access (Section IV-A).

    Phase 1 pushes the predicate to the index table; phase 2 issues one
    byte-range GET per matching record — which is exactly why this
    strategy degrades at higher selectivities (Figure 1) and why the
    paper's Suggestion 1 asks for multi-range GETs.
    """
    table = catalog.get(query.table)
    index_column = _single_indexed_column(table, query.predicate)
    index = table.index_for(index_column)

    # Phase 1: predicate against the index table's `value` column.
    index_predicate = ast.rename_columns(query.predicate, {index_column: "value"})
    index_sql = projection_sql(
        ["first_byte", "last_byte"], index_predicate.to_sql()
    )
    mark = ctx.begin_query()
    extents_per_partition: list[list[tuple[int, int]]] = []
    for key in index.keys:
        result = ctx.client.select_object_content(table.bucket, key, index_sql)
        extents_per_partition.append([(int(a), int(b)) for a, b in result.rows])
    matched = sum(len(e) for e in extents_per_partition)
    phase1 = phase_since(
        ctx, mark, "index-lookup", streams=len(index.keys), ingest=(matched, 2)
    )

    # Phase 2: one ranged GET per matched record (no S3 Select involved,
    # hence no scan/return charges — only request cost).
    mark2 = ctx.metrics.mark()
    rows: list[tuple] = []
    for data_key, extents in zip(table.keys, extents_per_partition):
        for first_byte, last_byte in extents:
            payload = ctx.client.get_object_range(
                table.bucket, data_key, first_byte, last_byte
            )
            for record in iter_records(payload):
                rows.append(table.schema.parse_row(record))
    names: list[str] = list(table.schema.names)
    cpu = 0.0
    if query.projection is not None:
        projected = project_columns(rows, names, query.projection)
        cpu += projected.cpu_seconds
        rows, names = projected.rows, projected.column_names
    out = finish_output(rows, names, query.output)
    cpu += out.cpu_seconds
    # The per-record GETs are issued by a bounded pool of workers; the
    # dispatch term of the performance model charges every request beyond
    # one per worker stream.
    phase2 = phase_since(
        ctx, mark2, "record-fetch", streams=REQUEST_WORKERS,
        server_cpu_seconds=cpu, ingest=(matched, len(table.schema)),
    )
    return ctx.finalize(
        mark,
        out.rows,
        out.column_names,
        [phase1, phase2],
        strategy="s3-side indexing",
        details={"matched_rows": matched},
    )


def _single_indexed_column(table, predicate: ast.Expr) -> str:
    """The one column the predicate touches (index access requirement)."""
    columns = ast.referenced_columns(predicate)
    if len(columns) != 1:
        raise PlanError(
            "indexed filtering requires a predicate over exactly one column,"
            f" got {sorted(columns)}"
        )
    (column,) = columns
    if column.lower() not in table.indexes:
        raise PlanError(
            f"no index on {column!r} for table {table.name!r};"
            f" indexed columns: {sorted(table.indexes)}"
        )
    return column
