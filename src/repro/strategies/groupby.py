"""The paper's four group-by strategies (Section VI).

* **server-side** — GET everything, hash-aggregate locally;
* **filtered** — push projection (group + aggregate columns) into S3
  Select, aggregate locally;
* **S3-side** — phase 1 projects the group column and finds distinct
  values locally; phase 2 pushes one ``SUM(CASE WHEN ...)`` column per
  (group, aggregate) so only final aggregates cross the network;
* **hybrid** — sample a prefix of the table to find the populous groups,
  push aggregation for those to S3 (phase-2 query Q1), and pull the
  long-tail rows for local aggregation (query Q2).

S3 Select has no GROUP BY, which is what forces the CASE encoding — and
what the paper's Suggestion 4 (partial group-by) would fix.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.cloud.context import CloudContext, QueryExecution
from repro.cloud.metrics import Phase
from repro.cloud.perf import SERVER_CPU_PER_ROW
from repro.common.errors import PlanError
from repro.engine.catalog import Catalog, TableInfo
from repro.engine.operators.groupby import group_by_aggregate
from repro.s3select.validator import EXPRESSION_LIMIT_BYTES
from repro.sqlparser import ast
from repro.strategies.scans import (
    get_table,
    phase_since,
    projection_sql,
    select_table,
)

#: Keep pushed aggregation queries comfortably under the 256 KB limit.
_SQL_BUDGET_BYTES = 200 * 1024

#: Fraction of the table the hybrid strategy samples (paper: "the first
#: 1% of data").
DEFAULT_SAMPLE_FRACTION = 0.01

#: Number of groups hybrid pushes to S3; the paper's Figure 6 finds 6-8
#: optimal for its Zipfian workload.
DEFAULT_S3_GROUPS = 8

_MERGEABLE = {"SUM", "COUNT", "MIN", "MAX", "AVG"}


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: function name plus input expression.

    ``column`` is usually a bare column name but may be any SQL scalar
    expression (``"l_extendedprice * (1 - l_discount)"``) — TPC-H Q1's
    pushdown needs that.
    """

    func: str
    column: str
    name: str | None = None

    def __post_init__(self):
        if self.func.upper() not in _MERGEABLE:
            raise PlanError(f"unsupported aggregate {self.func!r}")

    @property
    def output_name(self) -> str:
        if self.name:
            return self.name
        safe = "".join(c if c.isalnum() else "_" for c in self.column)
        return f"{self.func.lower()}_{safe}"

    def parsed_expr(self) -> ast.Expr:
        from repro.sqlparser.parser import parse_expression

        return parse_expression(self.column)

    def referenced_columns(self) -> set[str]:
        return ast.referenced_columns(self.parsed_expr())

    def to_select_item(self) -> ast.SelectItem:
        return ast.SelectItem(
            expr=ast.Aggregate(func=self.func.upper(), operand=self.parsed_expr()),
            alias=self.output_name,
        )


@dataclass
class GroupByQuery:
    """A group-by micro-query over one table."""

    table: str
    group_columns: list[str]
    aggregates: list[AggSpec]
    predicate: ast.Expr | None = None


def _output_names(query: GroupByQuery) -> list[str]:
    return [*query.group_columns, *(a.output_name for a in query.aggregates)]


def _local_group_by(rows, names, query: GroupByQuery):
    return group_by_aggregate(
        rows,
        names,
        [ast.Column(c) for c in query.group_columns],
        [a.to_select_item() for a in query.aggregates],
    )


def server_side_group_by(
    ctx: CloudContext, catalog: Catalog, query: GroupByQuery
) -> QueryExecution:
    """GET all columns of all rows; aggregate on the query node."""
    table = catalog.get(query.table)
    mark = ctx.begin_query()
    rows = get_table(ctx, table)
    names = list(table.schema.names)
    cpu = 0.0
    if query.predicate is not None:
        from repro.engine.operators.filter import filter_rows

        filtered = filter_rows(rows, names, query.predicate)
        rows, cpu = filtered.rows, filtered.cpu_seconds
    grouped = _local_group_by(rows, names, query)
    phase = phase_since(
        ctx, mark, "load+groupby",
        streams=table.partitions, server_cpu_seconds=cpu + grouped.cpu_seconds,
        ingest=(len(rows), len(table.schema)),
    )
    return ctx.finalize(
        mark, grouped.rows, grouped.column_names, [phase],
        strategy="server-side group-by",
    )


def filtered_group_by(
    ctx: CloudContext, catalog: Catalog, query: GroupByQuery
) -> QueryExecution:
    """Push projection (and any predicate) to S3; aggregate locally.

    Loads only the group + aggregate columns — the paper credits this
    with a 64% speedup over server-side on its 20-column table.
    """
    table = catalog.get(query.table)
    agg_columns: list[str] = []
    for agg in query.aggregates:
        agg_columns.extend(
            n for n in table.schema.names if n.lower() in
            {c.lower() for c in agg.referenced_columns()}
        )
    needed = list(dict.fromkeys([*query.group_columns, *agg_columns]))
    sql = projection_sql(
        needed, query.predicate.to_sql() if query.predicate is not None else None
    )
    mark = ctx.begin_query()
    rows, _ = select_table(ctx, table, sql)
    grouped = _local_group_by(rows, needed, query)
    phase = phase_since(
        ctx, mark, "select+groupby",
        streams=table.partitions, server_cpu_seconds=grouped.cpu_seconds,
        ingest=(len(rows), len(needed)),
    )
    return ctx.finalize(
        mark, grouped.rows, grouped.column_names, [phase],
        strategy="filtered group-by",
    )


def s3_side_group_by(
    ctx: CloudContext, catalog: Catalog, query: GroupByQuery
) -> QueryExecution:
    """Push the whole aggregation to S3 via CASE encoding (Section VI-A)."""
    table = catalog.get(query.table)

    # Phase 1: project group columns, find distinct values locally.
    mark = ctx.begin_query()
    group_rows, _ = select_table(
        ctx, table, projection_sql(query.group_columns, _predicate_sql(query))
    )
    groups = list(dict.fromkeys(group_rows))  # distinct, first-seen order
    cpu1 = len(group_rows) * SERVER_CPU_PER_ROW["aggregate"]
    phase1 = phase_since(
        ctx, mark, "collect-groups", streams=table.partitions,
        server_cpu_seconds=cpu1, ingest=(len(group_rows), len(query.group_columns)),
    )

    # Phase 2: one aggregate column per (group, aggregate), chunked to
    # stay under the expression limit.
    mark2 = ctx.metrics.mark()
    merged = _pushdown_group_aggregates(ctx, table, query, groups)
    phase2 = phase_since(ctx, mark2, "s3-aggregate", streams=table.partitions)

    out_rows = _assemble_group_rows(query, groups, merged)
    return ctx.finalize(
        mark, out_rows, _output_names(query), [phase1, phase2],
        strategy="s3-side group-by", details={"num_groups": len(groups)},
    )


def hybrid_group_by(
    ctx: CloudContext,
    catalog: Catalog,
    query: GroupByQuery,
    sample_fraction: float = DEFAULT_SAMPLE_FRACTION,
    s3_groups: int = DEFAULT_S3_GROUPS,
    expression_limit_bytes: int = EXPRESSION_LIMIT_BYTES,
) -> QueryExecution:
    """Hybrid group-by (Section VI-B): big groups at S3, tail locally.

    The pushed-group count is clamped so Q2's ``NOT IN`` tail predicate
    stays within the service's expression limit — a ``NOT IN`` over all
    pushed groups must travel in *one* request (its conjuncts cannot be
    unioned across requests), so groups that do not fit are moved back
    to the local tail instead of failing the query.
    ``expression_limit_bytes`` is a test seam; real S3 is 256 KB.
    """
    table = catalog.get(query.table)
    if len(query.group_columns) != 1:
        raise PlanError("hybrid group-by supports a single group column")
    group_col = query.group_columns[0]

    agg_columns: list[str] = []
    for agg in query.aggregates:
        agg_columns.extend(
            n for n in table.schema.names if n.lower() in
            {c.lower() for c in agg.referenced_columns()}
        )
    needed = list(dict.fromkeys([group_col, *agg_columns]))

    # Phase 1: sample the leading fraction of each partition to find the
    # populous groups.
    mark = ctx.begin_query()
    sample_rows, _ = select_table(
        ctx,
        table,
        projection_sql([group_col], _predicate_sql(query)),
        scan_range_fraction=sample_fraction,
    )
    counts = Counter(row[0] for row in sample_rows)
    large_groups = [(value,) for value, _ in counts.most_common(s3_groups)]

    def q2_sql_for(groups: list[tuple]) -> str:
        tail_predicate = _not_in_sql(group_col, [g[0] for g in groups])
        where_parts = [p for p in (_predicate_sql(query), tail_predicate) if p]
        return projection_sql(needed, " AND ".join(where_parts) or None)

    # Drop the smallest pushed groups until the tail query fits the
    # expression limit; every dropped group is aggregated locally instead.
    while large_groups and len(q2_sql_for(large_groups).encode()) > expression_limit_bytes:
        large_groups.pop()

    cpu1 = len(sample_rows) * SERVER_CPU_PER_ROW["aggregate"]
    phase1 = phase_since(
        ctx, mark, "sample-groups", streams=table.partitions,
        server_cpu_seconds=cpu1, ingest=(len(sample_rows), 1),
    )

    # Phase 2: Q1 pushes aggregation for the large groups; Q2 pulls the
    # remaining rows for local aggregation.  Both run in parallel; the
    # phase model takes the max (cf. Figure 6's two bars).
    mark2 = ctx.metrics.mark()
    merged = _pushdown_group_aggregates(ctx, table, query, large_groups)
    q1_records = ctx.metrics.records_since(mark2)

    mark_q2 = ctx.metrics.mark()
    q2_sql = q2_sql_for(large_groups)
    tail_rows, _ = select_table(ctx, table, q2_sql)
    q2_records = ctx.metrics.records_since(mark_q2)

    tail_grouped = _local_group_by(tail_rows, needed, query)
    phase2 = Phase.from_records(
        "s3-agg+tail",
        q1_records + q2_records,
        streams=2 * table.partitions,
        server_cpu_seconds=tail_grouped.cpu_seconds,
        server_records=len(tail_rows),
        server_fields=len(tail_rows) * len(needed),
    )

    out_rows = _assemble_group_rows(query, large_groups, merged)
    out_rows += tail_grouped.rows
    q1_phase = Phase.from_records("q1", q1_records, streams=table.partitions)
    q2_phase = Phase.from_records(
        "q2", q2_records, streams=table.partitions,
        server_cpu_seconds=tail_grouped.cpu_seconds,
        server_records=len(tail_rows),
        server_fields=len(tail_rows) * len(needed),
    )
    details = {
        "large_groups": len(large_groups),
        "s3_side_seconds": ctx.perf.phase_time(q1_phase),
        "server_side_seconds": ctx.perf.phase_time(q2_phase),
        "tail_rows": len(tail_rows),
        "bytes_returned_phase2": sum(
            r.bytes_returned for r in q1_records + q2_records
        ),
    }
    return ctx.finalize(
        mark, out_rows, _output_names(query), [phase1, phase2],
        strategy="hybrid group-by", details=details,
    )


# ----------------------------------------------------------------------
# pushdown helpers
# ----------------------------------------------------------------------

def _predicate_sql(query: GroupByQuery) -> str | None:
    return query.predicate.to_sql() if query.predicate is not None else None


def _group_match_sql(group_columns: list[str], values: tuple) -> str:
    conjuncts = [
        f"{col} = {ast.Literal(v).to_sql()}" for col, v in zip(group_columns, values)
    ]
    return " AND ".join(conjuncts)


def _not_in_sql(column: str, values: list) -> str | None:
    if not values:
        return None
    rendered = ", ".join(ast.Literal(v).to_sql() for v in values)
    return f"{column} NOT IN ({rendered})"


def _agg_column_sql(agg: AggSpec, match: str) -> list[str]:
    """Pushed S3 Select column(s) computing ``agg`` for one group."""
    func = agg.func.upper()
    if func == "SUM":
        return [f"SUM(CASE WHEN {match} THEN {agg.column} ELSE 0 END)"]
    if func == "COUNT":
        return [f"SUM(CASE WHEN {match} THEN 1 ELSE 0 END)"]
    if func in ("MIN", "MAX"):
        return [f"{func}(CASE WHEN {match} THEN {agg.column} END)"]
    # AVG = SUM / COUNT, merged after partials are combined.
    return [
        f"SUM(CASE WHEN {match} THEN {agg.column} ELSE 0 END)",
        f"SUM(CASE WHEN {match} THEN 1 ELSE 0 END)",
    ]


def _merge_partial(func: str, a, b):
    if a is None:
        return b
    if b is None:
        return a
    if func in ("SUM", "COUNT", "AVG"):
        return a + b
    if func == "MIN":
        return min(a, b)
    return max(a, b)


def _pushdown_group_aggregates(
    ctx: CloudContext,
    table: TableInfo,
    query: GroupByQuery,
    groups: list[tuple],
) -> dict[tuple[int, int], list]:
    """Run the CASE-encoded aggregation queries for ``groups``.

    Returns ``(group_index, agg_index) -> list of merged partial values``
    (one value for most aggregates, two — sum and count — for AVG).

    Queries are chunked so each stays under the expression-size budget;
    every chunk is sent to every partition and partials are merged
    according to the aggregate function.
    """
    # Build the per-(group, agg) column lists with bookkeeping.
    jobs: list[tuple[int, int, list[str]]] = []
    where_sql = _predicate_sql(query)
    for g_idx, values in enumerate(groups):
        match = _group_match_sql(query.group_columns, values)
        for a_idx, agg in enumerate(query.aggregates):
            jobs.append((g_idx, a_idx, _agg_column_sql(agg, match)))

    merged: dict[tuple[int, int], list] = {}
    chunk: list[tuple[int, int, list[str]]] = []
    chunk_bytes = 0
    base_bytes = len(projection_sql(["x"], where_sql).encode()) + 64

    def run_chunk() -> None:
        nonlocal chunk, chunk_bytes
        if not chunk:
            return
        columns = [col for _, _, cols in chunk for col in cols]
        sql = projection_sql(columns, where_sql)
        partial_rows = []
        for key in table.keys:
            result = ctx.client.select_object_content(table.bucket, key, sql)
            if result.rows:
                partial_rows.append(result.rows[0])
        col_pos = 0
        for g_idx, a_idx, cols in chunk:
            func = query.aggregates[a_idx].func.upper()
            values: list = [None] * len(cols)
            for row in partial_rows:
                for j in range(len(cols)):
                    values[j] = _merge_partial(func, values[j], row[col_pos + j])
            merged[(g_idx, a_idx)] = values
            col_pos += len(cols)
        chunk, chunk_bytes = [], 0

    for job in jobs:
        job_bytes = sum(len(c.encode()) + 2 for c in job[2])
        if chunk and base_bytes + chunk_bytes + job_bytes > _SQL_BUDGET_BYTES:
            run_chunk()
        chunk.append(job)
        chunk_bytes += job_bytes
    run_chunk()
    return merged


def _assemble_group_rows(
    query: GroupByQuery,
    groups: list[tuple],
    merged: dict[tuple[int, int], list],
) -> list[tuple]:
    rows = []
    for g_idx, values in enumerate(groups):
        out: list = list(values)
        for a_idx, agg in enumerate(query.aggregates):
            partials = merged.get((g_idx, a_idx), [None])
            if agg.func.upper() == "AVG":
                total, count = partials
                out.append(None if not count else total / count)
            else:
                value = partials[0]
                if agg.func.upper() == "COUNT" and value is None:
                    value = 0
                out.append(value)
        rows.append(tuple(out))
    return rows
