"""Shared table-scan helpers for the pushdown strategies.

Two ways to get table data onto the query node, matching the paper's two
baselines:

* :func:`get_table` — plain GETs of every partition object, parsed
  locally ("server-side" processing);
* :func:`select_table` — one S3 Select request per partition with a SQL
  string ("S3-side" processing).

Both are built on :func:`scan_partitions`, which fans the per-partition
requests out over a worker pool (``workers`` knob, default serial) and
hands back per-partition results.  :func:`iter_scan_batches` exposes the
same scan as a stream of RecordBatches for the planner's streaming
pipeline.  The caller wraps the metered requests into a
:class:`~repro.cloud.metrics.Phase` via :func:`phase_since`.

Concurrency never changes *what* is metered: every partition request is
issued regardless of how results are consumed, so rows, bytes and cost
are identical for any ``workers`` setting — only wall-clock changes.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.cloud.context import CloudContext
from repro.cloud.metrics import Phase
from repro.common.errors import ReproError
from repro.engine.catalog import TableInfo
from repro.s3select.engine import ScanRange
from repro.engine.batch import Batch
from repro.storage.csvcodec import (
    DEFAULT_BATCH_SIZE,
    chunk_rows,
    decode_table,
    iter_decode_column_batches,
)
from repro.storage.parquet import ParquetFile


@dataclass(frozen=True)
class PartitionScan:
    """Result of scanning one table partition (GET + parse, or S3 Select)."""

    index: int
    key: str
    rows: list[tuple]
    #: Column names of an S3 Select response; ``None`` for raw GETs
    #: (the table schema applies unchanged).
    column_names: list[str] | None


def _resolve_workers(ctx: CloudContext, workers: int | None) -> int:
    if workers is None:
        workers = getattr(ctx, "workers", None)
    if workers is None:
        return 1
    return max(1, int(workers))


def scan_partitions(
    ctx: CloudContext,
    table: TableInfo,
    sql: str | None = None,
    *,
    workers: int | None = None,
    scan_range_fraction: float | None = None,
    ordered: bool = True,
    partitions: Sequence[int] | None = None,
) -> Iterator[PartitionScan]:
    """Scan ``table``'s partitions, optionally concurrently.

    Args:
        sql: S3 Select SQL to push per partition; ``None`` issues plain
            GETs and parses locally.
        workers: concurrent partition requests.  ``None`` falls back to
            ``ctx.workers`` (default serial).  Concurrency affects
            wall-clock only, never the metered requests, rows, or cost.
        scan_range_fraction: scan only the leading fraction of each
            partition (sampling phases; S3 bills just the range).
        ordered: yield results in partition order (deterministic row
            order for callers that concatenate).  ``False`` yields in
            completion order.
        partitions: partition indices to scan; ``None`` scans them all.
            Zone-map pruning passes the surviving subset here — skipped
            partitions issue *no* request, so pruning cuts the metered
            request count, not just bytes.
    """
    workers = _resolve_workers(ctx, workers)

    def scan_one(index: int, key: str) -> PartitionScan:
        if sql is None:
            data = ctx.client.get_object(table.bucket, key)
            if table.format == "csv":
                rows = decode_table(data, table.schema, has_header=False)
            else:
                rows = ParquetFile(data).read_rows()
            return PartitionScan(index=index, key=key, rows=rows, column_names=None)
        scan_range = None
        if scan_range_fraction is not None:
            size = ctx.store.object_size(table.bucket, key)
            end = max(1, int(size * scan_range_fraction))
            scan_range = ScanRange(start=0, end=end)
        result = ctx.client.select_object_content(
            table.bucket, key, sql, scan_range=scan_range
        )
        return PartitionScan(
            index=index,
            key=key,
            rows=result.rows,
            column_names=list(result.column_names),
        )

    if partitions is None:
        items = list(enumerate(table.keys))
    else:
        items = [(i, table.keys[i]) for i in partitions]
    if workers <= 1 or len(items) <= 1:
        return iter([scan_one(i, k) for i, k in items])
    with ThreadPoolExecutor(max_workers=min(workers, len(items))) as pool:
        futures = [pool.submit(scan_one, i, k) for i, k in items]
        ordering = futures if ordered else as_completed(futures)
        results = [f.result() for f in ordering]
    return iter(results)


def iter_scan_batches(
    ctx: CloudContext,
    table: TableInfo,
    sql: str | None = None,
    *,
    workers: int | None = None,
    batch_size: int | None = None,
    scan_range_fraction: float | None = None,
    partitions: Sequence[int] | None = None,
) -> Iterator[Batch | list[tuple]]:
    """Stream a table scan as columnar RecordBatches, in partition order.

    The per-partition requests are issued eagerly (so request/byte
    accounting is independent of how far the stream is consumed); for
    plain GETs the *decoding* is lazy, so a downstream LIMIT that stops
    pulling never parses the remaining bytes.
    """
    if batch_size is None:
        batch_size = getattr(ctx, "batch_size", DEFAULT_BATCH_SIZE)
    if sql is None and scan_range_fraction is None:
        return _iter_get_batches(
            ctx, table, workers=workers, batch_size=batch_size,
            partitions=partitions,
        )
    scans = scan_partitions(
        ctx, table, sql, workers=workers, scan_range_fraction=scan_range_fraction,
        partitions=partitions,
    )
    chunks = chunk_rows(
        (row for scan in scans for row in scan.rows), batch_size
    )
    # S3 Select responses arrive as row lists; re-shape each chunk into a
    # columnar Batch so downstream operators take the vectorized path.
    return (Batch.from_rows(chunk) for chunk in chunks)


def _iter_get_batches(
    ctx: CloudContext,
    table: TableInfo,
    workers: int | None,
    batch_size: int,
    partitions: Sequence[int] | None = None,
) -> Iterator[Batch | list[tuple]]:
    """GET the partitions (metered, possibly concurrent), decode lazily."""
    workers = _resolve_workers(ctx, workers)
    if partitions is None:
        keys = list(table.keys)
    else:
        keys = [table.keys[i] for i in partitions]
    if workers <= 1 or len(keys) <= 1:
        payloads = [ctx.client.get_object(table.bucket, k) for k in keys]
    else:
        with ThreadPoolExecutor(max_workers=min(workers, len(keys))) as pool:
            payloads = list(
                pool.map(lambda k: ctx.client.get_object(table.bucket, k), keys)
            )

    def decoded() -> Iterator[Batch | list[tuple]]:
        for data in payloads:
            if table.format == "csv":
                yield from iter_decode_column_batches(
                    data, table.schema, batch_size=batch_size, has_header=False
                )
            else:
                yield from ParquetFile(data).iter_batches(batch_size=batch_size)

    return decoded()


def get_table(
    ctx: CloudContext, table: TableInfo, workers: int | None = None
) -> list[tuple]:
    """Load every partition with plain GETs and parse locally."""
    rows: list[tuple] = []
    for scan in scan_partitions(ctx, table, workers=workers):
        rows.extend(scan.rows)
    return rows


def _merge_names(names: list[str], scan: PartitionScan) -> list[str]:
    """Adopt the first partition's column names; insist the rest agree."""
    if not scan.column_names:
        return names
    if not names:
        return scan.column_names
    if scan.column_names != names:
        raise ReproError(
            f"partition {scan.key!r} returned columns {scan.column_names},"
            f" expected {names}"
        )
    return names


def select_table(
    ctx: CloudContext,
    table: TableInfo,
    sql: str,
    scan_range_fraction: float | None = None,
    workers: int | None = None,
    partitions: Sequence[int] | None = None,
) -> tuple[list[tuple], list[str]]:
    """Run one S3 Select per (surviving) partition; concatenate results.

    Column names come from the first partition's response (they are a
    function of the query and schema, so an empty trailing partition can
    no longer blank them out) and are asserted consistent across
    partitions.

    Args:
        scan_range_fraction: if given, scan only the leading fraction of
            each partition (used by sampling phases; S3 bills just the
            range scanned).
        workers: concurrent partition requests (default ``ctx.workers``).
        partitions: partition indices to request (zone-map pruning's
            surviving subset); ``None`` selects every partition.
    """
    rows: list[tuple] = []
    names: list[str] = []
    for scan in scan_partitions(
        ctx, table, sql, workers=workers, scan_range_fraction=scan_range_fraction,
        partitions=partitions,
    ):
        rows.extend(scan.rows)
        names = _merge_names(names, scan)
    return rows, names


def select_aggregate(
    ctx: CloudContext,
    table: TableInfo,
    sql: str,
    workers: int | None = None,
    partitions: Sequence[int] | None = None,
) -> tuple[list[list[object]], list[str]]:
    """Run an aggregate-only select per partition, keeping partials apart.

    Each partition returns exactly one row of partial aggregates; the
    caller merges them (SUM/COUNT add, MIN/MAX compare).  Returned as a
    list of per-partition rows, in partition order.  A pruned-away
    partition contributes no partial — sound for SUM/COUNT/MIN/MAX
    because its refuted rows would only have produced NULL/zero
    partials.
    """
    partials: list[list[object]] = []
    names: list[str] = []
    for scan in scan_partitions(ctx, table, sql, workers=workers,
                                partitions=partitions):
        if scan.rows:
            partials.append(list(scan.rows[0]))
        names = _merge_names(names, scan)
    return partials, names


def merge_sum_partials(partials: list[list[object]]) -> list[object]:
    """Merge per-partition SUM/COUNT rows by element-wise addition.

    NULL partials (empty partitions) are skipped, matching SQL SUM
    semantics.
    """
    if not partials:
        return []
    merged: list[object] = list(partials[0])
    for row in partials[1:]:
        for i, value in enumerate(row):
            if value is None:
                continue
            merged[i] = value if merged[i] is None else merged[i] + value
    return merged


def phase_since(
    ctx: CloudContext,
    mark: int,
    name: str,
    streams: int | None = None,
    server_cpu_seconds: float = 0.0,
    ingest: tuple[int, int] | None = None,
    workers: int | None = None,
) -> Phase:
    """Bundle all requests issued since ``mark`` into one phase.

    Args:
        ingest: ``(records, columns)`` the query node materializes from
            this phase's responses; the performance model charges
            per-record and per-field parse time for them.
        workers: bound the modeled stream concurrency of the phase
            (see :class:`~repro.cloud.metrics.Phase`).  ``None`` keeps
            the fully overlapped model.
    """
    records, columns = ingest if ingest is not None else (0, 0)
    return Phase.from_records(
        name,
        ctx.metrics.records_since(mark),
        streams=streams,
        server_cpu_seconds=server_cpu_seconds,
        server_records=records,
        server_fields=records * columns,
        workers=workers,
    )


def projection_sql(columns: Sequence[str], where_sql: str | None = None) -> str:
    """Build the simple pushdown SQL used all over the strategies."""
    select_list = ", ".join(columns) if columns else "*"
    sql = f"SELECT {select_list} FROM S3Object"
    if where_sql:
        sql += f" WHERE {where_sql}"
    return sql
