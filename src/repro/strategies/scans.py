"""Shared table-scan helpers for the pushdown strategies.

Two ways to get table data onto the query node, matching the paper's two
baselines:

* :func:`get_table` — plain GETs of every partition object, parsed
  locally ("server-side" processing);
* :func:`select_table` — one S3 Select request per partition with a SQL
  string ("S3-side" processing).

Both return materialized rows; the caller wraps the metered requests into
a :class:`~repro.cloud.metrics.Phase` via :func:`phase_since`.
"""

from __future__ import annotations

from typing import Sequence

from repro.cloud.context import CloudContext
from repro.cloud.metrics import Phase
from repro.engine.catalog import TableInfo
from repro.s3select.engine import ScanRange
from repro.storage.csvcodec import decode_table
from repro.storage.parquet import ParquetFile


def get_table(ctx: CloudContext, table: TableInfo) -> list[tuple]:
    """Load every partition with plain GETs and parse locally."""
    rows: list[tuple] = []
    for key in table.keys:
        data = ctx.client.get_object(table.bucket, key)
        if table.format == "csv":
            rows.extend(decode_table(data, table.schema, has_header=False))
        else:
            rows.extend(ParquetFile(data).read_rows())
    return rows


def select_table(
    ctx: CloudContext,
    table: TableInfo,
    sql: str,
    scan_range_fraction: float | None = None,
) -> tuple[list[tuple], list[str]]:
    """Run one S3 Select per partition; concatenate results.

    Args:
        scan_range_fraction: if given, scan only the leading fraction of
            each partition (used by sampling phases; S3 bills just the
            range scanned).
    """
    rows: list[tuple] = []
    names: list[str] = []
    for key in table.keys:
        scan_range = None
        if scan_range_fraction is not None:
            size = ctx.store.object_size(table.bucket, key)
            end = max(1, int(size * scan_range_fraction))
            scan_range = ScanRange(start=0, end=end)
        result = ctx.client.select_object_content(
            table.bucket, key, sql, scan_range=scan_range
        )
        rows.extend(result.rows)
        names = result.column_names
    return rows, names


def select_aggregate(
    ctx: CloudContext, table: TableInfo, sql: str
) -> tuple[list[list[object]], list[str]]:
    """Run an aggregate-only select per partition, keeping partials apart.

    Each partition returns exactly one row of partial aggregates; the
    caller merges them (SUM/COUNT add, MIN/MAX compare).  Returned as a
    list of per-partition rows.
    """
    partials: list[list[object]] = []
    names: list[str] = []
    for key in table.keys:
        result = ctx.client.select_object_content(table.bucket, key, sql)
        if result.rows:
            partials.append(list(result.rows[0]))
        names = result.column_names
    return partials, names


def merge_sum_partials(partials: list[list[object]]) -> list[object]:
    """Merge per-partition SUM/COUNT rows by element-wise addition.

    NULL partials (empty partitions) are skipped, matching SQL SUM
    semantics.
    """
    if not partials:
        return []
    merged: list[object] = list(partials[0])
    for row in partials[1:]:
        for i, value in enumerate(row):
            if value is None:
                continue
            merged[i] = value if merged[i] is None else merged[i] + value
    return merged


def phase_since(
    ctx: CloudContext,
    mark: int,
    name: str,
    streams: int | None = None,
    server_cpu_seconds: float = 0.0,
    ingest: tuple[int, int] | None = None,
) -> Phase:
    """Bundle all requests issued since ``mark`` into one phase.

    Args:
        ingest: ``(records, columns)`` the query node materializes from
            this phase's responses; the performance model charges
            per-record and per-field parse time for them.
    """
    records, columns = ingest if ingest is not None else (0, 0)
    return Phase.from_records(
        name,
        ctx.metrics.records_since(mark),
        streams=streams,
        server_cpu_seconds=server_cpu_seconds,
        server_records=records,
        server_fields=records * columns,
    )


def projection_sql(columns: Sequence[str], where_sql: str | None = None) -> str:
    """Build the simple pushdown SQL used all over the strategies."""
    select_list = ", ".join(columns) if columns else "*"
    sql = f"SELECT {select_list} FROM S3Object"
    if where_sql:
        sql += f" WHERE {where_sql}"
    return sql
