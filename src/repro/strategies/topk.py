"""The paper's top-K strategies (Section VII).

* **server-side top-K** — GET the whole table, heap-select locally;
* **sampling-based top-K** — phase 1 samples ``S`` records (projected to
  the ORDER BY columns) and takes the K-th order statistic as a
  threshold; phase 2 pushes ``WHERE expr <= threshold`` into S3 Select
  and heap-selects the final K from the (much smaller) result.

The optimal sample size minimizing bytes moved is ``S* = sqrt(K*N/alpha)``
where ``alpha`` is the fraction of row bytes the ORDER BY expression
needs (Section VII-B); :func:`optimal_sample_size` implements it and the
Figure 8 experiment sweeps around it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cloud.context import CloudContext, QueryExecution
from repro.common.errors import PlanError
from repro.engine.catalog import Catalog, TableInfo
from repro.engine.operators.topk import top_k
from repro.sqlparser import ast
from repro.strategies.scans import (
    get_table,
    phase_since,
    projection_sql,
    select_table,
)


@dataclass
class TopKQuery:
    """``SELECT * FROM table ORDER BY <expr> [DESC] LIMIT k``."""

    table: str
    order_column: str
    k: int
    descending: bool = False

    def order_items(self) -> list[ast.OrderItem]:
        return [
            ast.OrderItem(
                expr=ast.Column(self.order_column), descending=self.descending
            )
        ]


#: Smallest alpha the sizing formula accepts; anything at or below zero
#: clamps here (the formula then asks for the whole table anyway).
_MIN_ALPHA = 1e-9


def optimal_sample_size(k: int, n_rows: int, alpha: float) -> int:
    """``S* = sqrt(K*N/alpha)`` clamped to ``[max(10K, 1), N]``.

    The lower clamp keeps the threshold estimate stable (the paper's
    smallest swept sample is 10x K); the upper clamp is the table.
    Degenerate inputs clamp rather than raise: ``k > n_rows`` sizes for
    the full table, ``alpha <= 0`` is treated as :data:`_MIN_ALPHA`
    (avoiding the division blow-up), ``alpha > 1`` as 1, and an empty
    table yields a zero-row sample.
    """
    if k <= 0:
        raise PlanError(f"K must be positive, got {k}")
    if n_rows <= 0:
        return 0
    k = min(k, n_rows)
    alpha = min(max(alpha, _MIN_ALPHA), 1.0)
    ideal = math.sqrt(k * n_rows / alpha)
    return max(min(int(ideal), n_rows), min(10 * k, n_rows), 1)


def order_bytes_fraction(table: TableInfo, order_column: str) -> float:
    """Estimate alpha: the ORDER BY column's share of a row's bytes.

    Approximated by column count (1/num_columns), which is within 2x for
    TPC-H's lineitem; callers can override when they know better.
    """
    table.schema.index_of(order_column)  # validate the column exists
    return 1.0 / len(table.schema)


def server_side_top_k(
    ctx: CloudContext, catalog: Catalog, query: TopKQuery
) -> QueryExecution:
    """Load everything; heap-select K locally."""
    table = catalog.get(query.table)
    mark = ctx.begin_query()
    rows = get_table(ctx, table)
    selected = top_k(rows, table.schema.names, query.order_items(), query.k)
    phase = phase_since(
        ctx, mark, "load+topk",
        streams=table.partitions, server_cpu_seconds=selected.cpu_seconds,
        ingest=(len(rows), len(table.schema)),
    )
    return ctx.finalize(
        mark, selected.rows, selected.column_names, [phase],
        strategy="server-side top-k",
    )


def sampling_top_k(
    ctx: CloudContext,
    catalog: Catalog,
    query: TopKQuery,
    sample_size: int | None = None,
    alpha: float | None = None,
) -> QueryExecution:
    """Two-phase sampling top-K (Section VII-A).

    Args:
        sample_size: rows to sample in phase 1; defaults to the analytic
            optimum ``sqrt(K*N/alpha)``.
        alpha: ORDER BY bytes fraction; defaults to a column-count
            estimate.

    The threshold (the K-th order statistic of the sample) guarantees at
    least K rows pass phase 2's pushed predicate, because the K sampled
    records at or below it are themselves in the table.
    """
    table = catalog.get(query.table)
    if query.k > table.num_rows:
        raise PlanError(
            f"K={query.k} exceeds table rows ({table.num_rows});"
            " use server-side top-k"
        )
    if alpha is None:
        alpha = order_bytes_fraction(table, query.order_column)
    if sample_size is None:
        sample_size = optimal_sample_size(query.k, table.num_rows, alpha)
    sample_size = max(min(sample_size, table.num_rows), min(query.k, table.num_rows))

    # Phase 1: sample the leading fraction of each partition, projected
    # to the ORDER BY column.  (The paper assumes either random row order
    # or random byte-range sampling; our generators emit rows in random
    # order, so a prefix is a uniform sample.)
    fraction = min(1.0, sample_size / table.num_rows)
    mark = ctx.begin_query()
    sample_rows, _ = select_table(
        ctx,
        table,
        projection_sql([query.order_column]),
        scan_range_fraction=fraction,
    )
    values = sorted(
        (row[0] for row in sample_rows if row[0] is not None),
        reverse=query.descending,
    )
    if len(values) < query.k:
        # Sample came up short (tiny tables): keep everything in phase 2.
        threshold = values[-1] if values else None
        unbounded = True
    else:
        threshold = values[query.k - 1]
        unbounded = False
    cpu1 = len(sample_rows) * math.log2(max(len(sample_rows), 2)) * 6e-9
    phase1 = phase_since(
        ctx, mark, "sample", streams=table.partitions,
        server_cpu_seconds=cpu1, ingest=(len(sample_rows), 1),
    )

    # Phase 2: pushed range scan; only rows at or below (above, for DESC)
    # the threshold come back.  The comparison is inclusive in both
    # directions so duplicates *at* the K-th order statistic survive the
    # pushdown — a strict comparison could return fewer than K rows when
    # the threshold value is tied.  Ascending order additionally keeps
    # NULL keys: the local top-K operator sorts NULLs first, so they are
    # part of the true result and must not be dropped by the pushed
    # predicate (NULL compares as unknown and would be filtered out).
    # Descending order sorts NULLs last; they can only matter when the
    # sample came up short, which takes the unbounded full-scan path.
    mark2 = ctx.metrics.mark()
    if unbounded or threshold is None:
        where = None
    else:
        op = ">=" if query.descending else "<="
        where = f"{query.order_column} {op} {ast.Literal(threshold).to_sql()}"
        if not query.descending:
            where = f"({where} OR {query.order_column} IS NULL)"
    scan_rows, _ = select_table(ctx, table, projection_sql(list(table.schema.names), where))
    selected = top_k(scan_rows, table.schema.names, query.order_items(), query.k)
    phase2 = phase_since(
        ctx, mark2, "scan", streams=table.partitions,
        server_cpu_seconds=selected.cpu_seconds,
        ingest=(len(scan_rows), len(table.schema)),
    )
    details = {
        "sample_size": sample_size,
        "alpha": alpha,
        "threshold": threshold,
        "phase2_rows": len(scan_rows),
        "sample_seconds": ctx.perf.phase_time(phase1),
        "scan_seconds": ctx.perf.phase_time(phase2),
    }
    return ctx.finalize(
        mark, selected.rows, selected.column_names, [phase1, phase2],
        strategy="sampling top-k", details=details,
    )
