"""Aggregate accumulators shared by S3 Select and the PushdownDB engine.

S3 Select supports ``SUM``/``COUNT``/``AVG``/``MIN``/``MAX`` *without*
GROUP BY; PushdownDB's group-by operator reuses the same accumulators with
one accumulator set per group.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.common.errors import UnsupportedFeatureError
from repro.expr.compiler import RowFunc, compile_expr
from repro.sqlparser import ast


class Accumulator:
    """Incremental state for a single aggregate over one group."""

    __slots__ = ("func", "distinct", "_sum", "_count", "_min", "_max", "_seen")

    def __init__(self, func: str, distinct: bool = False):
        if func not in ast.AGGREGATE_FUNCS:
            raise UnsupportedFeatureError(f"unknown aggregate {func!r}")
        self.func = func
        self.distinct = distinct
        self._sum: float = 0
        self._count: int = 0
        self._min: object = None
        self._max: object = None
        self._seen: set | None = set() if distinct else None

    def add(self, value: object) -> None:
        """Fold one input value into the aggregate (SQL skips NULLs)."""
        if value is None:
            return
        if self._seen is not None:
            if value in self._seen:
                return
            self._seen.add(value)
        self._count += 1
        if self.func in ("SUM", "AVG"):
            self._sum += value
        elif self.func == "MIN":
            if self._min is None or value < self._min:
                self._min = value
        elif self.func == "MAX":
            if self._max is None or value > self._max:
                self._max = value

    def add_many(self, values) -> None:
        """Fold a whole column of input values, in order.

        Exactly ``for v in values: self.add(v)``, but with the per-call
        dispatch hoisted out of the loop.  Sums fold sequentially (not
        ``sum()`` then merge) so float results stay bit-identical to the
        row-wise path regardless of batch boundaries.
        """
        if self._seen is not None:
            for v in values:
                self.add(v)
            return
        func = self.func
        if func == "COUNT":
            self._count += sum(1 for v in values if v is not None)
            return
        if func in ("SUM", "AVG"):
            s = self._sum
            n = self._count
            for v in values:
                if v is not None:
                    n += 1
                    s += v
            self._sum = s
            self._count = n
            return
        present = [v for v in values if v is not None]
        if not present:
            return
        self._count += len(present)
        if func == "MIN":
            m = min(present)
            if self._min is None or m < self._min:
                self._min = m
        else:
            m = max(present)
            if self._max is None or m > self._max:
                self._max = m

    def merge(self, other: "Accumulator") -> None:
        """Combine a partial aggregate computed elsewhere (e.g. at S3)."""
        if self.func != other.func:
            raise UnsupportedFeatureError("cannot merge different aggregates")
        if self.distinct or other.distinct:
            raise UnsupportedFeatureError("DISTINCT aggregates cannot be merged")
        self._count += other._count
        self._sum += other._sum
        for candidate in (other._min,):
            if candidate is not None and (self._min is None or candidate < self._min):
                self._min = candidate
        for candidate in (other._max,):
            if candidate is not None and (self._max is None or candidate > self._max):
                self._max = candidate

    def result(self) -> object:
        """Final aggregate value (SQL semantics: empty SUM/AVG/MIN/MAX are NULL)."""
        if self.func == "COUNT":
            return self._count
        if self._count == 0:
            return None
        if self.func == "SUM":
            return self._sum
        if self.func == "AVG":
            return self._sum / self._count
        if self.func == "MIN":
            return self._min
        return self._max


class CompiledAggregate:
    """An aggregate call bound to an input schema.

    ``new_accumulator()`` makes per-group state; ``input_value(row)``
    evaluates the aggregate's argument for one row.
    """

    def __init__(self, agg: ast.Aggregate, schema: Mapping[str, int]):
        self.func = agg.func
        self.distinct = agg.distinct
        if isinstance(agg.operand, ast.Star):
            if agg.func != "COUNT":
                raise UnsupportedFeatureError(f"{agg.func}(*) is not valid SQL")
            self._arg: RowFunc = lambda row: 1  # COUNT(*) counts rows, not values
        else:
            self._arg = compile_expr(agg.operand, schema)

    def new_accumulator(self) -> Accumulator:
        return Accumulator(self.func, self.distinct)

    def input_value(self, row: tuple) -> object:
        return self._arg(row)


def split_aggregate_expr(
    expr: ast.Expr,
) -> tuple[list[ast.Aggregate], Callable[[list[object]], object] | None]:
    """Decompose an expression containing aggregates.

    Returns the list of aggregate sub-expressions (in traversal order) and
    a finisher that, given their computed values, evaluates the enclosing
    arithmetic.  For a bare aggregate the finisher is ``None``.

    Example: ``SUM(a) / COUNT(b) + 1`` yields two aggregates and a
    finisher over their results.
    """
    if isinstance(expr, ast.Aggregate):
        return [expr], None
    aggregates: list[ast.Aggregate] = []
    placeholder_names: list[str] = []
    rewritten = _replace_aggregates(expr, aggregates, placeholder_names)
    if not aggregates:
        return [], None
    schema = {name: i for i, name in enumerate(placeholder_names)}
    fn = compile_expr(rewritten, schema)

    def finisher(values: list[object]) -> object:
        return fn(tuple(values))
    return aggregates, finisher


def _replace_aggregates(
    expr: ast.Expr, out: list[ast.Aggregate], names: list[str]
) -> ast.Expr:
    """Rewrite aggregates to placeholder columns ``__agg_N``."""
    if isinstance(expr, ast.Aggregate):
        name = f"__agg_{len(out)}"
        out.append(expr)
        names.append(name)
        return ast.Column(name=name)
    if isinstance(expr, ast.Binary):
        return ast.Binary(
            expr.op,
            _replace_aggregates(expr.left, out, names),
            _replace_aggregates(expr.right, out, names),
        )
    if isinstance(expr, ast.Unary):
        return ast.Unary(expr.op, _replace_aggregates(expr.operand, out, names))
    if isinstance(expr, ast.Cast):
        return ast.Cast(_replace_aggregates(expr.operand, out, names), expr.type_name)
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name,
            tuple(_replace_aggregates(a, out, names) for a in expr.args),
        )
    if isinstance(expr, ast.Case):
        return ast.Case(
            tuple(
                (
                    _replace_aggregates(cond, out, names),
                    _replace_aggregates(val, out, names),
                )
                for cond, val in expr.whens
            ),
            None
            if expr.default is None
            else _replace_aggregates(expr.default, out, names),
        )
    return expr
