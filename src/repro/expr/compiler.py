"""Compile SQL expression ASTs into Python closures.

Both the simulated S3 Select engine and PushdownDB's own operators share
this compiler.  ``compile_expr(expr, schema)`` returns a function
``row -> value`` over tuples laid out according to ``schema`` (a mapping
from column name to tuple index).

NULL semantics follow SQL closely enough for the paper's workloads:
arithmetic or comparison against NULL yields NULL (``None``), and WHERE
clauses treat NULL as not-matching.  AND/OR use three-valued logic.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Mapping

from repro.common.errors import TypeMismatchError, UnsupportedFeatureError
from repro.sqlparser import ast

RowFunc = Callable[[tuple], object]


def compile_expr(expr: ast.Expr, schema: Mapping[str, int]) -> RowFunc:
    """Compile ``expr`` into a ``row -> value`` closure.

    Args:
        expr: parsed expression AST (must not contain aggregates; those
            are evaluated by the aggregation machinery, not per-row).
        schema: column name -> tuple index.  Lookup is case-insensitive
            because SQL identifiers are.

    Raises:
        UnsupportedFeatureError: unknown column/function, or an aggregate
            appearing in a scalar context.
    """
    lowered = _lower_schema(schema)
    return _compile(expr, lowered)


def compile_predicate(expr: ast.Expr, schema: Mapping[str, int]) -> Callable[[tuple], bool]:
    """Compile a WHERE-clause predicate; NULL results become ``False``."""
    fn = compile_expr(expr, schema)

    def predicate(row: tuple) -> bool:
        return fn(row) is True

    return predicate


def _lower_schema(schema: Mapping[str, int]) -> dict[str, int]:
    return {name.lower(): idx for name, idx in schema.items()}


def _compile(expr: ast.Expr, schema: dict[str, int]) -> RowFunc:
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ast.Column):
        return _compile_column(expr, schema)
    if isinstance(expr, ast.Unary):
        return _compile_unary(expr, schema)
    if isinstance(expr, ast.Binary):
        return _compile_binary(expr, schema)
    if isinstance(expr, ast.Cast):
        return _compile_cast(expr, schema)
    if isinstance(expr, ast.Case):
        return _compile_case(expr, schema)
    if isinstance(expr, ast.InList):
        return _compile_in(expr, schema)
    if isinstance(expr, ast.Between):
        return _compile_between(expr, schema)
    if isinstance(expr, ast.Like):
        return _compile_like(expr, schema)
    if isinstance(expr, ast.IsNull):
        return _compile_is_null(expr, schema)
    if isinstance(expr, ast.FuncCall):
        return _compile_func(expr, schema)
    if isinstance(expr, ast.Aggregate):
        raise UnsupportedFeatureError(
            "aggregate functions cannot appear in a per-row expression"
        )
    if isinstance(expr, ast.Star):
        raise UnsupportedFeatureError("'*' is only valid in a select list or COUNT(*)")
    raise UnsupportedFeatureError(f"cannot compile expression node {type(expr).__name__}")


def _compile_column(expr: ast.Column, schema: dict[str, int]) -> RowFunc:
    key = expr.name.lower()
    if key not in schema:
        known = ", ".join(sorted(schema))
        raise UnsupportedFeatureError(
            f"unknown column {expr.name!r}; available columns: {known}"
        )
    idx = schema[key]
    return lambda row: row[idx]


def _compile_unary(expr: ast.Unary, schema: dict[str, int]) -> RowFunc:
    operand = _compile(expr.operand, schema)
    if expr.op == "-":
        def negate(row: tuple) -> object:
            value = operand(row)
            if value is None:
                return None
            _require_number(value, "-")
            return -value
        return negate
    if expr.op == "NOT":
        def invert(row: tuple) -> object:
            value = operand(row)
            if value is None:
                return None
            return not value
        return invert
    raise UnsupportedFeatureError(f"unknown unary operator {expr.op!r}")


_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "%": lambda a, b: a % b,
}

_COMPARE = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _compile_binary(expr: ast.Binary, schema: dict[str, int]) -> RowFunc:
    op = expr.op
    if op in ("AND", "OR"):
        return _compile_logical(expr, schema)
    left = _compile(expr.left, schema)
    right = _compile(expr.right, schema)
    if op == "||":
        def concat(row: tuple) -> object:
            a, b = left(row), right(row)
            if a is None or b is None:
                return None
            return _to_str(a) + _to_str(b)
        return concat
    if op == "/":
        def divide(row: tuple) -> object:
            a, b = left(row), right(row)
            if a is None or b is None:
                return None
            _require_number(a, "/")
            _require_number(b, "/")
            if b == 0:
                return None  # SQL engines raise; S3 Select returns an error row — NULL keeps scans total
            if isinstance(a, int) and isinstance(b, int) and a % b == 0:
                return a // b
            return a / b
        return divide
    if op in _ARITH:
        fn = _ARITH[op]
        def arith(row: tuple) -> object:
            a, b = left(row), right(row)
            if a is None or b is None:
                return None
            _require_number(a, op)
            _require_number(b, op)
            return fn(a, b)
        return arith
    if op in _COMPARE:
        fn = _COMPARE[op]
        def compare(row: tuple) -> object:
            a, b = left(row), right(row)
            if a is None or b is None:
                return None
            a, b = _coerce_pair(a, b, op)
            return fn(a, b)
        return compare
    raise UnsupportedFeatureError(f"unknown binary operator {op!r}")


def _compile_logical(expr: ast.Binary, schema: dict[str, int]) -> RowFunc:
    left = _compile(expr.left, schema)
    right = _compile(expr.right, schema)
    if expr.op == "AND":
        def conj(row: tuple) -> object:
            a = left(row)
            if a is False:
                return False
            b = right(row)
            if b is False:
                return False
            if a is None or b is None:
                return None
            return bool(a) and bool(b)
        return conj

    def disj(row: tuple) -> object:
        a = left(row)
        if a is True:
            return True
        b = right(row)
        if b is True:
            return True
        if a is None or b is None:
            return None
        return bool(a) or bool(b)
    return disj


def _compile_cast(expr: ast.Cast, schema: dict[str, int]) -> RowFunc:
    operand = _compile(expr.operand, schema)
    caster = _CASTS.get(expr.type_name)
    if caster is None:
        raise UnsupportedFeatureError(f"CAST to {expr.type_name} is not supported")

    def cast(row: tuple) -> object:
        value = operand(row)
        if value is None:
            return None
        try:
            return caster(value)
        except (ValueError, TypeError) as exc:
            raise TypeMismatchError(
                f"cannot CAST {value!r} to {expr.type_name}"
            ) from exc
    return cast


def _cast_int(value: object) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return int(value)
    return int(str(value).strip())


def _cast_float(value: object) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    return float(str(value).strip())


_CASTS: dict[str, Callable[[object], object]] = {
    "INT": _cast_int,
    "FLOAT": _cast_float,
    "STRING": lambda v: _to_str(v),
    "BOOL": lambda v: bool(v),
    "DATE": lambda v: _validate_date(_to_str(v)),
    "TIMESTAMP": lambda v: _to_str(v),
}


def _compile_case(expr: ast.Case, schema: dict[str, int]) -> RowFunc:
    compiled = [(_compile(cond, schema), _compile(val, schema)) for cond, val in expr.whens]
    default = _compile(expr.default, schema) if expr.default is not None else None

    def case(row: tuple) -> object:
        for cond, val in compiled:
            if cond(row) is True:
                return val(row)
        if default is not None:
            return default(row)
        return None
    return case


def _compile_in(expr: ast.InList, schema: dict[str, int]) -> RowFunc:
    """``IN`` with SQL three-valued semantics.

    A NULL operand yields NULL; a miss against a list that *contains* a
    NULL also yields NULL (the NULL item might have been equal), and only
    a miss against an all-non-NULL list yields FALSE.  ``NOT IN`` negates
    TRUE/FALSE and leaves NULL alone.
    """
    operand = _compile(expr.operand, schema)
    items = [_compile(item, schema) for item in expr.items]
    constant_items = all(isinstance(item, ast.Literal) for item in expr.items)
    negated = expr.negated
    if constant_items:
        literals = [item.value for item in expr.items]  # type: ignore[union-attr]
        values = frozenset(v for v in literals if v is not None)
        has_null_item = any(v is None for v in literals)

        def member_const(row: tuple) -> object:
            value = operand(row)
            if value is None:
                return None
            if value in values:
                return not negated
            if has_null_item:
                return None
            return negated
        return member_const

    def member(row: tuple) -> object:
        value = operand(row)
        if value is None:
            return None
        saw_null = False
        for item in items:
            candidate = item(row)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return not negated
        if saw_null:
            return None
        return negated
    return member


def _compile_between(expr: ast.Between, schema: dict[str, int]) -> RowFunc:
    operand = _compile(expr.operand, schema)
    low = _compile(expr.low, schema)
    high = _compile(expr.high, schema)
    negated = expr.negated

    def between(row: tuple) -> object:
        # SQL defines BETWEEN as (x >= lo AND x <= hi) with three-valued
        # AND: a NULL bound makes one comparison UNKNOWN, but the other
        # comparison can still decide FALSE (e.g. ``5 BETWEEN NULL AND
        # 3``); only an undecided conjunction yields NULL.
        value = operand(row)
        lo, hi = low(row), high(row)
        above: object = None
        if value is not None and lo is not None:
            a, b = _coerce_pair(value, lo, "BETWEEN")
            above = a >= b
        below: object = None
        if value is not None and hi is not None:
            a, b = _coerce_pair(value, hi, "BETWEEN")
            below = a <= b
        if above is False or below is False:
            return negated
        if above is None or below is None:
            return None  # NOT of UNKNOWN is still UNKNOWN
        return not negated
    return between


def like_to_regex(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern (``%``, ``_``) into a compiled regex."""
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", flags=re.DOTALL)


def _compile_like(expr: ast.Like, schema: dict[str, int]) -> RowFunc:
    operand = _compile(expr.operand, schema)
    negated = expr.negated
    if isinstance(expr.pattern, ast.Literal) and isinstance(expr.pattern.value, str):
        regex = like_to_regex(expr.pattern.value)

        def like_const(row: tuple) -> object:
            value = operand(row)
            if value is None:
                return None
            result = regex.match(_to_str(value)) is not None
            return (not result) if negated else result
        return like_const
    pattern_fn = _compile(expr.pattern, schema)

    def like(row: tuple) -> object:
        value = operand(row)
        pattern = pattern_fn(row)
        if value is None or pattern is None:
            return None
        result = like_to_regex(_to_str(pattern)).match(_to_str(value)) is not None
        return (not result) if negated else result
    return like


def _compile_is_null(expr: ast.IsNull, schema: dict[str, int]) -> RowFunc:
    operand = _compile(expr.operand, schema)
    negated = expr.negated

    def is_null(row: tuple) -> bool:
        result = operand(row) is None
        return (not result) if negated else result
    return is_null


# ----------------------------------------------------------------------
# scalar functions
# ----------------------------------------------------------------------

def _fn_substring(args: list[RowFunc]) -> RowFunc:
    """SUBSTRING(str, start[, length]) with SQL 1-based positions.

    Matches S3 Select semantics: a start before position 1 still counts
    length from that virtual start.
    """
    if len(args) not in (2, 3):
        raise UnsupportedFeatureError("SUBSTRING takes 2 or 3 arguments")
    text_fn, start_fn = args[0], args[1]
    length_fn = args[2] if len(args) == 3 else None

    def substring(row: tuple) -> object:
        text = text_fn(row)
        start = start_fn(row)
        if text is None or start is None:
            return None
        text = _to_str(text)
        start = int(start)
        if length_fn is None:
            begin = max(start - 1, 0)
            return text[begin:]
        length = length_fn(row)
        if length is None:
            return None
        length = int(length)
        if length < 0:
            raise TypeMismatchError("SUBSTRING length must be non-negative")
        end = start - 1 + length
        begin = max(start - 1, 0)
        if end <= begin:
            return ""
        return text[begin:end]
    return substring


def _simple_fn(py_fn: Callable, arity: int, name: str) -> Callable[[list[RowFunc]], RowFunc]:
    def build(args: list[RowFunc]) -> RowFunc:
        if len(args) != arity:
            raise UnsupportedFeatureError(f"{name} takes {arity} argument(s)")

        def call(row: tuple) -> object:
            values = [fn(row) for fn in args]
            if any(v is None for v in values):
                return None
            return py_fn(*values)
        return call
    return build


def _fn_coalesce(args: list[RowFunc]) -> RowFunc:
    if not args:
        raise UnsupportedFeatureError("COALESCE requires at least one argument")

    def coalesce(row: tuple) -> object:
        for fn in args:
            value = fn(row)
            if value is not None:
                return value
        return None
    return coalesce


_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}")


def _validate_date(text: str) -> str:
    """Dates travel as ISO-8601 strings; lexical order == chronological order."""
    if not _DATE_RE.match(text):
        raise TypeMismatchError(f"not an ISO date: {text!r}")
    return text[:10]


def _fn_year(args: list[RowFunc]) -> RowFunc:
    if len(args) != 1:
        raise UnsupportedFeatureError("YEAR takes 1 argument")
    operand = args[0]

    def year(row: tuple) -> object:
        value = operand(row)
        if value is None:
            return None
        return int(_validate_date(_to_str(value))[:4])
    return year


_FUNCTIONS: dict[str, Callable[[list[RowFunc]], RowFunc]] = {
    "SUBSTRING": _fn_substring,
    "SUBSTR": _fn_substring,
    "UPPER": _simple_fn(lambda s: _to_str(s).upper(), 1, "UPPER"),
    "LOWER": _simple_fn(lambda s: _to_str(s).lower(), 1, "LOWER"),
    "TRIM": _simple_fn(lambda s: _to_str(s).strip(), 1, "TRIM"),
    "LENGTH": _simple_fn(lambda s: len(_to_str(s)), 1, "LENGTH"),
    "CHAR_LENGTH": _simple_fn(lambda s: len(_to_str(s)), 1, "CHAR_LENGTH"),
    "ABS": _simple_fn(abs, 1, "ABS"),
    "FLOOR": _simple_fn(lambda x: math.floor(x), 1, "FLOOR"),
    "CEIL": _simple_fn(lambda x: math.ceil(x), 1, "CEIL"),
    "CEILING": _simple_fn(lambda x: math.ceil(x), 1, "CEILING"),
    "ROUND": _simple_fn(lambda x: round(x), 1, "ROUND"),
    "SQRT": _simple_fn(math.sqrt, 1, "SQRT"),
    "MOD": _simple_fn(lambda a, b: a % b, 2, "MOD"),
    "DATE": _simple_fn(lambda s: _validate_date(_to_str(s)), 1, "DATE"),
    "YEAR": _fn_year,
    "COALESCE": _fn_coalesce,
}


def _compile_func(expr: ast.FuncCall, schema: dict[str, int]) -> RowFunc:
    builder = _FUNCTIONS.get(expr.name)
    if builder is None:
        raise UnsupportedFeatureError(f"unknown function {expr.name!r}")
    args = [_compile(arg, schema) for arg in expr.args]
    return builder(args)


# ----------------------------------------------------------------------
# coercion helpers
# ----------------------------------------------------------------------

def _to_str(value: object) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float) and value.is_integer():
        return str(value)
    return str(value)


def _require_number(value: object, op: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeMismatchError(f"operator {op!r} requires numeric operands, got {value!r}")


def _coerce_pair(a: object, b: object, op: str) -> tuple[object, object]:
    """Coerce a comparison pair to a common type.

    Numbers compare numerically; strings compare lexically; a string
    compared with a number is parsed as a number when possible (CSV data
    arrives untyped, matching S3 Select's behaviour with CAST-free
    comparisons handled by our typed schemas upstream).
    """
    a_num = isinstance(a, (int, float)) and not isinstance(a, bool)
    b_num = isinstance(b, (int, float)) and not isinstance(b, bool)
    if a_num and b_num:
        return a, b
    if isinstance(a, str) and isinstance(b, str):
        return a, b
    if a_num and isinstance(b, str):
        try:
            return a, float(b)
        except ValueError:
            raise TypeMismatchError(f"cannot compare {a!r} {op} {b!r}") from None
    if b_num and isinstance(a, str):
        try:
            return float(a), b
        except ValueError:
            raise TypeMismatchError(f"cannot compare {a!r} {op} {b!r}") from None
    if isinstance(a, bool) and isinstance(b, bool):
        return a, b
    raise TypeMismatchError(f"cannot compare {a!r} {op} {b!r}")
