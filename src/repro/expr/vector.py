"""Vectorized expression compilation over columnar Batches.

``compile_expr_vector(expr, schema)`` returns a ``batch -> list[value]``
function mirroring :func:`repro.expr.compiler.compile_expr` value-for-
value: same three-valued NULL semantics, same coercions, same errors.
Instead of calling a closure per row, each supported operator runs as a
list-comprehension kernel over whole columns, with constant operands
folded once per batch.

Two fallback layers keep the vector path exactly row-equivalent:

* **per-node**: constructs without a kernel (CASE, scalar functions,
  non-constant IN/LIKE) compile row-wise and are mapped over the batch,
  so a single exotic sub-expression never forces the whole tree off the
  fast path;
* **whole-expression**: vectorized AND/OR evaluate both sides over all
  rows, a superset of the row-wise short-circuit evaluation.  If that
  superset hits a :class:`TypeMismatchError` the row-wise compiler may
  not have — e.g. ``a IS NULL OR a < 5`` over unparseable strings — the
  batch transparently re-evaluates row-by-row.  Vector success implies
  row-identical values, because every kernel computes the row formula
  pointwise.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.common.errors import TypeMismatchError
from repro.engine.batch import Batch
from repro.expr.compiler import (
    _ARITH,
    _CASTS,
    _COMPARE,
    _coerce_pair,
    _compile,
    _lower_schema,
    compile_predicate,
    _require_number,
    _to_str,
    like_to_regex,
)
from repro.sqlparser import ast

#: A compiled vector expression: batch -> one value per row.
VectorFunc = Callable[[Batch], list]

_NUMBER_TYPES = {int, float}


class _Node:
    """One compiled vector node: a batch evaluator, maybe a constant.

    ``thunk`` is set for column-free subtrees; it computes the scalar
    lazily (first use on a non-empty batch) so runtime type errors keep
    firing exactly when the row-wise compiler would fire them — never at
    compile time, never over an empty batch.
    """

    __slots__ = ("fn", "thunk", "_const_cache")

    def __init__(self, fn=None, thunk=None):
        self.fn = fn
        self.thunk = thunk
        self._const_cache = _UNSET

    @property
    def is_const(self) -> bool:
        return self.thunk is not None

    def const_value(self):
        if self._const_cache is _UNSET:
            self._const_cache = self.thunk()
        return self._const_cache

    def values(self, batch: Batch) -> list:
        n = len(batch)
        if n == 0:
            return []
        if self.thunk is not None:
            return [self.const_value()] * n
        return self.fn(batch)


_UNSET = object()


def compile_expr_vector(expr: ast.Expr, schema: Mapping[str, int]) -> VectorFunc:
    """Compile ``expr`` into a ``batch -> list of values`` function.

    Compile-time errors (unknown columns/functions, aggregates in scalar
    context) are raised here, identical to :func:`compile_expr`.
    """
    lowered = _lower_schema(schema)
    node = _compile_v(expr, lowered)
    row_fn: list = []  # lazily compiled row-wise twin for the fallback

    def evaluate(batch: Batch) -> list:
        try:
            return node.values(batch)
        except TypeMismatchError:
            # The vector path evaluated a (row, subexpression) pair the
            # row-wise short-circuit would have skipped; re-run this
            # batch row-by-row for exact semantics.
            if not row_fn:
                row_fn.append(_compile(expr, lowered))
            fn = row_fn[0]
            return [fn(row) for row in batch.iter_rows()]

    return evaluate


def compile_predicate_vector(
    expr: ast.Expr, schema: Mapping[str, int]
) -> Callable[[Batch], list]:
    """Compile a WHERE predicate into a boolean keep-mask per batch.

    Runs in *mask space*: because ``(A AND B) IS TRUE`` equals
    ``(A IS TRUE) AND (B IS TRUE)`` (and likewise for OR), the whole
    conjunction tree combines plain booleans and comparison leaves emit
    booleans directly — the three-valued intermediates are never
    materialized.  Same whole-expression row-wise fallback as
    :func:`compile_expr_vector`.
    """
    lowered = _lower_schema(schema)
    mask_fn = _compile_mask(expr, lowered)
    row_pred: list = []

    def predicate_mask(batch: Batch) -> list:
        try:
            return mask_fn(batch)
        except TypeMismatchError:
            if not row_pred:
                row_pred.append(compile_predicate(expr, lowered))
            pred = row_pred[0]
            return [pred(row) for row in batch.iter_rows()]

    return predicate_mask


def _compile_mask(expr: ast.Expr, schema: dict[str, int]) -> Callable[[Batch], list]:
    """``batch -> [bool]`` mask compiler (``value IS TRUE`` per row)."""
    if isinstance(expr, ast.Binary) and expr.op in ("AND", "OR"):
        left = _compile_mask(expr.left, schema)
        right = _compile_mask(expr.right, schema)
        if expr.op == "AND":
            return lambda batch: [
                a and b for a, b in zip(left(batch), right(batch))
            ]
        return lambda batch: [a or b for a, b in zip(left(batch), right(batch))]
    if isinstance(expr, ast.Binary) and expr.op in _COMPARE:
        return _compare_mask_kernel(
            expr.op, _compile_v(expr.left, schema), _compile_v(expr.right, schema)
        )
    if isinstance(expr, ast.Unary) and expr.op == "NOT":
        # NOT NULL is NULL, so the inner three-valued result is needed:
        # the mask keeps exactly the rows where it is False.
        inner = _compile_v(expr.operand, schema)
        return lambda batch: [v is False for v in inner.values(batch)]
    node = _compile_v(expr, schema)
    return lambda batch: [v is True for v in node.values(batch)]


def _compare_mask_kernel(op: str, left: _Node, right: _Node):
    """Bool-mask comparison kernels (the 3VL column is never built)."""
    fn = _COMPARE[op]

    const, column = (right, left) if right.is_const else (left, right)
    if not const.is_const:
        def mask_generic(batch: Batch) -> list:
            return [
                a is not None and b is not None and (
                    fn(a, b)
                    if type(a) is type(b)
                    and (type(a) in _NUMBER_TYPES or type(a) is str)
                    else _compare_one(a, b, op, fn) is True
                )
                for a, b in zip(left.values(batch), right.values(batch))
            ]

        return mask_generic

    def mask_const(batch: Batch) -> list:
        n = len(batch)
        if not n:
            return []
        c = const.const_value()
        if c is None:
            return [False] * n
        vals = column.values(batch)
        flipped = const is left
        if type(c) in _NUMBER_TYPES:
            if flipped:
                return [
                    v is not None and (
                        fn(c, v) if type(v) in _NUMBER_TYPES
                        else _compare_one(c, v, op, fn) is True
                    )
                    for v in vals
                ]
            return [
                v is not None and (
                    fn(v, c) if type(v) in _NUMBER_TYPES
                    else _compare_one(v, c, op, fn) is True
                )
                for v in vals
            ]
        if type(c) is str:
            if flipped:
                return [
                    v is not None and (
                        fn(c, v) if type(v) is str
                        else _compare_one(c, v, op, fn) is True
                    )
                    for v in vals
                ]
            return [
                v is not None and (
                    fn(v, c) if type(v) is str
                    else _compare_one(v, c, op, fn) is True
                )
                for v in vals
            ]
        if flipped:
            return [
                v is not None and _compare_one(c, v, op, fn) is True
                for v in vals
            ]
        return [
            v is not None and _compare_one(v, c, op, fn) is True for v in vals
        ]

    return mask_const


def compile_aggregate_input_vector(
    agg: ast.Aggregate, schema: Mapping[str, int]
) -> VectorFunc:
    """Vectorized twin of :meth:`CompiledAggregate.input_value`."""
    if isinstance(agg.operand, ast.Star):
        return lambda batch: [1] * len(batch)  # COUNT(*) counts rows
    return compile_expr_vector(agg.operand, schema)


# ----------------------------------------------------------------------
# per-node compilation
# ----------------------------------------------------------------------

def _row_fallback(expr: ast.Expr, schema: dict[str, int]) -> _Node:
    """No kernel for this construct: map the row-wise closure per batch."""
    fn = _compile(expr, schema)
    return _Node(fn=lambda batch: [fn(row) for row in batch.iter_rows()])


def _compile_v(expr: ast.Expr, schema: dict[str, int]) -> _Node:
    if isinstance(expr, ast.Literal):
        value = expr.value
        return _Node(thunk=lambda: value)
    if isinstance(expr, ast.Column):
        fn = _compile(expr, schema)  # raises the canonical unknown-column error
        idx = schema[expr.name.lower()]
        return _Node(fn=lambda batch: batch.column(idx))
    if not ast.referenced_columns(expr) and not ast.contains_aggregate(expr):
        # Column-free subtree: constant-fold (lazily) via the row compiler.
        fn = _compile(expr, schema)
        return _Node(thunk=lambda: fn(()))
    if isinstance(expr, ast.Unary):
        return _compile_unary_v(expr, schema)
    if isinstance(expr, ast.Binary):
        return _compile_binary_v(expr, schema)
    if isinstance(expr, ast.Cast):
        return _compile_cast_v(expr, schema)
    if isinstance(expr, ast.InList):
        return _compile_in_v(expr, schema)
    if isinstance(expr, ast.Between):
        return _compile_between_v(expr, schema)
    if isinstance(expr, ast.Like):
        return _compile_like_v(expr, schema)
    if isinstance(expr, ast.IsNull):
        operand = _compile_v(expr.operand, schema)
        negated = expr.negated
        if negated:
            return _Node(fn=lambda batch: [v is not None for v in operand.values(batch)])
        return _Node(fn=lambda batch: [v is None for v in operand.values(batch)])
    # CASE, scalar functions, and anything new compile row-wise per batch.
    return _row_fallback(expr, schema)


def _compile_unary_v(expr: ast.Unary, schema: dict[str, int]) -> _Node:
    operand = _compile_v(expr.operand, schema)
    if expr.op == "-":
        def negate(batch: Batch) -> list:
            out = []
            for v in operand.values(batch):
                if v is None:
                    out.append(None)
                elif type(v) in _NUMBER_TYPES:
                    out.append(-v)
                else:
                    _require_number(v, "-")
            return out
        return _Node(fn=negate)
    if expr.op == "NOT":
        return _Node(fn=lambda batch: [
            None if v is None else (not v) for v in operand.values(batch)
        ])
    return _row_fallback(expr, schema)


def _compile_binary_v(expr: ast.Binary, schema: dict[str, int]) -> _Node:
    op = expr.op
    if op in ("AND", "OR"):
        return _compile_logical_v(expr, schema)
    left = _compile_v(expr.left, schema)
    right = _compile_v(expr.right, schema)
    if op == "||":
        def concat(batch: Batch) -> list:
            return [
                None if a is None or b is None else _to_str(a) + _to_str(b)
                for a, b in zip(left.values(batch), right.values(batch))
            ]
        return _Node(fn=concat)
    if op == "/":
        return _Node(fn=_divide_kernel(left, right))
    if op in _ARITH:
        return _Node(fn=_arith_kernel(op, left, right))
    if op in _COMPARE:
        return _Node(fn=_compare_kernel(op, left, right))
    return _row_fallback(expr, schema)


def _compile_logical_v(expr: ast.Binary, schema: dict[str, int]) -> _Node:
    left = _compile_v(expr.left, schema)
    right = _compile_v(expr.right, schema)
    if expr.op == "AND":
        def conj(batch: Batch) -> list:
            return [
                False if a is False or b is False
                else None if a is None or b is None
                else bool(a) and bool(b)
                for a, b in zip(left.values(batch), right.values(batch))
            ]
        return _Node(fn=conj)

    def disj(batch: Batch) -> list:
        return [
            True if a is True or b is True
            else None if a is None or b is None
            else bool(a) or bool(b)
            for a, b in zip(left.values(batch), right.values(batch))
        ]
    return _Node(fn=disj)


def _arith_one(a: object, b: object, op: str, fn) -> object:
    _require_number(a, op)
    _require_number(b, op)
    return fn(a, b)


def _arith_kernel(op: str, left: _Node, right: _Node):
    fn = _ARITH[op]

    def arith(batch: Batch) -> list:
        return [
            None if a is None or b is None
            else fn(a, b) if type(a) in _NUMBER_TYPES and type(b) in _NUMBER_TYPES
            else _arith_one(a, b, op, fn)
            for a, b in zip(left.values(batch), right.values(batch))
        ]
    return arith


def _divide_one(a: object, b: object) -> object:
    _require_number(a, "/")
    _require_number(b, "/")
    if b == 0:
        return None  # row-wise compiler: NULL keeps scans total
    if isinstance(a, int) and isinstance(b, int) and a % b == 0:
        return a // b
    return a / b


def _divide_kernel(left: _Node, right: _Node):
    def divide(batch: Batch) -> list:
        return [
            None if a is None or b is None else _divide_one(a, b)
            for a, b in zip(left.values(batch), right.values(batch))
        ]
    return divide


def _compare_one(a: object, b: object, op: str, fn) -> object:
    ca, cb = _coerce_pair(a, b, op)
    return fn(ca, cb)


def _compare_kernel(op: str, left: _Node, right: _Node):
    fn = _COMPARE[op]

    def compare_generic(batch: Batch) -> list:
        return [
            None if a is None or b is None
            else fn(a, b)
            if type(a) is type(b) and (type(a) in _NUMBER_TYPES or type(a) is str)
            else _compare_one(a, b, op, fn)
            for a, b in zip(left.values(batch), right.values(batch))
        ]

    const, column = (right, left) if right.is_const else (left, right)
    if not const.is_const:
        return compare_generic

    def compare_const(batch: Batch) -> list:
        if not len(batch):
            return []
        c = const.const_value()
        vals = column.values(batch)
        if c is None:
            return [None] * len(vals)
        flipped = const is left
        # Same-type fast path: numbers against a number, strings against
        # a string, skip _coerce_pair (it would return the pair as-is).
        if type(c) in _NUMBER_TYPES:
            if flipped:
                return [
                    None if v is None
                    else fn(c, v) if type(v) in _NUMBER_TYPES
                    else _compare_one(c, v, op, fn)
                    for v in vals
                ]
            return [
                None if v is None
                else fn(v, c) if type(v) in _NUMBER_TYPES
                else _compare_one(v, c, op, fn)
                for v in vals
            ]
        if type(c) is str:
            if flipped:
                return [
                    None if v is None
                    else fn(c, v) if type(v) is str
                    else _compare_one(c, v, op, fn)
                    for v in vals
                ]
            return [
                None if v is None
                else fn(v, c) if type(v) is str
                else _compare_one(v, c, op, fn)
                for v in vals
            ]
        if flipped:
            return [None if v is None else _compare_one(c, v, op, fn) for v in vals]
        return [None if v is None else _compare_one(v, c, op, fn) for v in vals]

    return compare_const


def _compile_cast_v(expr: ast.Cast, schema: dict[str, int]) -> _Node:
    caster = _CASTS.get(expr.type_name)
    if caster is None:
        return _row_fallback(expr, schema)  # canonical unsupported-CAST error
    operand = _compile_v(expr.operand, schema)
    type_name = expr.type_name

    def cast(batch: Batch) -> list:
        out = []
        for v in operand.values(batch):
            if v is None:
                out.append(None)
                continue
            try:
                out.append(caster(v))
            except (ValueError, TypeError) as exc:
                raise TypeMismatchError(
                    f"cannot CAST {v!r} to {type_name}"
                ) from exc
        return out
    return _Node(fn=cast)


def _compile_in_v(expr: ast.InList, schema: dict[str, int]) -> _Node:
    if not all(isinstance(item, ast.Literal) for item in expr.items):
        return _row_fallback(expr, schema)
    operand = _compile_v(expr.operand, schema)
    literals = [item.value for item in expr.items]  # type: ignore[union-attr]
    values = frozenset(v for v in literals if v is not None)
    has_null_item = any(v is None for v in literals)
    negated = expr.negated
    hit, miss = (not negated), (None if has_null_item else negated)

    def member(batch: Batch) -> list:
        return [
            None if v is None else hit if v in values else miss
            for v in operand.values(batch)
        ]
    return _Node(fn=member)


def _compile_between_v(expr: ast.Between, schema: dict[str, int]) -> _Node:
    operand = _compile_v(expr.operand, schema)
    low = _compile_v(expr.low, schema)
    high = _compile_v(expr.high, schema)
    negated = expr.negated

    def between(batch: Batch) -> list:
        out = []
        for value, lo, hi in zip(
            operand.values(batch), low.values(batch), high.values(batch)
        ):
            above: object = None
            if value is not None and lo is not None:
                a, b = _coerce_pair(value, lo, "BETWEEN")
                above = a >= b
            below: object = None
            if value is not None and hi is not None:
                a, b = _coerce_pair(value, hi, "BETWEEN")
                below = a <= b
            if above is False or below is False:
                out.append(negated)
            elif above is None or below is None:
                out.append(None)  # NOT of UNKNOWN is still UNKNOWN
            else:
                out.append(not negated)
        return out
    return _Node(fn=between)


def _compile_like_v(expr: ast.Like, schema: dict[str, int]) -> _Node:
    if not (isinstance(expr.pattern, ast.Literal) and isinstance(expr.pattern.value, str)):
        return _row_fallback(expr, schema)
    operand = _compile_v(expr.operand, schema)
    match = like_to_regex(expr.pattern.value).match
    negated = expr.negated
    if negated:
        return _Node(fn=lambda batch: [
            None if v is None else match(_to_str(v)) is None
            for v in operand.values(batch)
        ])
    return _Node(fn=lambda batch: [
        None if v is None else match(_to_str(v)) is not None
        for v in operand.values(batch)
    ])
