"""Execution engine for the simulated S3 Select service.

Given a stored object (CSV or SPQ1 "Parquet") and a SQL query inside the
S3 Select dialect, the engine scans the object, evaluates the query, and
returns a CSV payload — *always CSV*, even for Parquet input, mirroring
the limitation the paper calls out in Section IX ("the current S3 Select
always returns data in CSV format").

Accounting mirrors AWS billing:

* CSV input: ``bytes_scanned`` is the full object (or the requested
  ScanRange);
* Parquet input: ``bytes_scanned`` is only the referenced column chunks
  plus footer;
* ``bytes_returned`` is the size of the CSV payload shipped back.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.common.errors import UnsupportedFeatureError
from repro.engine.batch import Batch
from repro.expr.aggregates import CompiledAggregate, split_aggregate_expr
from repro.expr.compiler import compile_expr, compile_predicate
from repro.expr.vector import compile_expr_vector, compile_predicate_vector
from repro.s3select.validator import (
    EXPRESSION_LIMIT_BYTES,
    expression_complexity,
    validate_select_sql,
)
from repro.sqlparser import ast, parser
from repro.storage.csvcodec import (
    DEFAULT_BATCH_SIZE,
    chunk_rows,
    encode_row,
    iter_decode_column_batches,
    iter_records_with_offsets,
)
from repro.storage.object_store import StoredObject
from repro.storage.parquet import ParquetFile
from repro.storage.schema import TableSchema


@dataclass(frozen=True)
class ScanRange:
    """CSV scan range (inclusive start, exclusive end byte).

    Matches S3 Select semantics: a record belongs to the range if its
    first byte lies inside it, and scanning is billed for the range
    length only.  PushdownDB's sampling strategies (hybrid group-by,
    top-K) use this to read a prefix or slice of a table cheaply.
    """

    start: int
    end: int


@dataclass
class SelectResult:
    """Outcome of one S3 Select request."""

    payload: bytes
    rows: list[tuple]
    column_names: list[str]
    bytes_scanned: int
    bytes_returned: int
    rows_scanned: int
    term_evals: int


def object_schema(obj: StoredObject) -> TableSchema:
    """Recover the table schema attached to an object at load time.

    PushdownDB writes ``schema`` metadata (``["name:type", ...]``) when
    it loads tables; real S3 Select would instead see untyped CSV and
    rely on CAST.  Using typed schemas keeps the paper's queries readable
    without changing which bytes are scanned or returned.
    """
    spec = obj.metadata.get("schema")
    if not spec:
        raise UnsupportedFeatureError("object has no schema metadata")
    return TableSchema.of(*spec)


def execute_select(
    obj: StoredObject,
    sql: str,
    scan_range: ScanRange | None = None,
    expression_limit: int = EXPRESSION_LIMIT_BYTES,
    allow_group_by: bool = False,
    compress_output: bool = False,
) -> SelectResult:
    """Run one S3 Select request against ``obj``.

    Args:
        allow_group_by: enable the *partial group-by* extension of the
            paper's Suggestion 4 (see :mod:`repro.strategies.extensions`).
        compress_output: enable the Section IX mitigation the paper
            proposes for the always-CSV return format: compress the
            response payload, shrinking ``bytes_returned`` (and hence
            transfer cost and network/ingest time).  Not offered by the
            real service.

    Raises:
        SQLSyntaxError: bad SQL.
        UnsupportedFeatureError: SQL outside the S3 Select dialect.
        ExpressionLimitExceededError: SQL text over ``expression_limit``.
    """
    query = parser.parse(sql)
    validate_select_sql(sql, query, expression_limit, allow_group_by=allow_group_by)
    fmt = obj.metadata.get("format", "csv")
    if fmt == "csv":
        result = _execute_csv(obj, query, scan_range)
    elif fmt == "parquet":
        if scan_range is not None:
            raise UnsupportedFeatureError("ScanRange applies to CSV input only")
        result = _execute_parquet(obj, query)
    else:
        raise UnsupportedFeatureError(f"unknown object format {fmt!r}")
    if compress_output:
        result.payload = zlib.compress(result.payload)
        result.bytes_returned = len(result.payload)
    return result


def _execute_csv(
    obj: StoredObject, query: ast.Query, scan_range: ScanRange | None
) -> SelectResult:
    schema = object_schema(obj)
    has_header = obj.metadata.get("header", True)
    if scan_range is not None:
        window = obj.data[scan_range.start : scan_range.end]
        bytes_scanned = len(window)
        rows = _iter_range_rows(obj, window, scan_range, schema, has_header)
        batches = chunk_rows(rows, DEFAULT_BATCH_SIZE)
    else:
        bytes_scanned = len(obj.data)
        # Full-object scans decode straight into columnar batches; the
        # query then runs through the vectorized kernels.
        batches = iter_decode_column_batches(obj.data, schema, has_header=has_header)
    return _evaluate(query, batches, schema, bytes_scanned)


def _iter_range_rows(
    obj: StoredObject,
    window: bytes,
    scan_range: ScanRange,
    schema: TableSchema,
    has_header: bool,
) -> Iterator[tuple]:
    """Lazily parse the rows of one CSV ScanRange window.

    A record is in-range if it *starts* inside the range; the engine
    reads through its end.  We approximate by dropping a trailing record
    only when the range genuinely cuts it mid-content: a trailing record
    is complete when the range reaches the object boundary, when the
    window ends with the record delimiter, or when the delimiter is the
    very next byte after the window (a range ending exactly on a record
    boundary must not lose that record).
    """
    keep_trailing = (
        scan_range.end >= len(obj.data)
        or window.endswith(b"\n")
        or obj.data[scan_range.end : scan_range.end + 1] == b"\n"
    )
    header = list(schema.names)
    pending: list[str] | None = None
    for _, _, record in iter_records_with_offsets(window):
        if pending is not None:
            yield schema.parse_row(pending)
        if has_header and record == header:
            pending = None  # range started at 0 and swallowed the header
            continue
        pending = record
    if pending is not None and keep_trailing:
        yield schema.parse_row(pending)


def _execute_parquet(obj: StoredObject, query: ast.Query) -> SelectResult:
    pq = ParquetFile(obj.data)
    needed = _referenced_columns(query, pq.schema)
    batches = chunk_rows(pq.iter_rows(needed), DEFAULT_BATCH_SIZE)
    schema = pq.schema.project(needed) if needed else pq.schema
    bytes_scanned = pq.scan_bytes_for(needed if needed else None)
    return _evaluate(query, batches, schema, bytes_scanned)


def _referenced_columns(query: ast.Query, schema: TableSchema) -> list[str]:
    """Columns the query touches, in schema order (``*`` means all)."""
    names: set[str] = set()
    for item in query.select_items:
        if isinstance(item.expr, ast.Star):
            return list(schema.names)
        names |= ast.referenced_columns(item.expr)
    if query.where is not None:
        names |= ast.referenced_columns(query.where)
    lowered = {n.lower() for n in names}
    return [n for n in schema.names if n.lower() in lowered]


class _BatchCounter:
    """Counts rows pulled from a lazy batch source (``rows_scanned``).

    With LIMIT early-termination the engine stops pulling once enough
    output rows exist, so the count reflects what was actually parsed.
    Counting whole batches totals the same as the old per-row meter:
    the decoder has no lookahead and the count is only read at the end.
    """

    __slots__ = ("_batches", "count")

    def __init__(self, batches: Iterable):
        self._batches = batches
        self.count = 0

    def __iter__(self) -> Iterator:
        for batch in self._batches:
            self.count += len(batch)
            yield batch


def _filtered_batches(
    batches: Iterable, where: ast.Expr | None, name_to_index: dict[str, int]
) -> Iterator:
    """Apply the WHERE predicate per batch, vectorized when columnar."""
    if where is None:
        yield from batches
        return
    keep_mask = compile_predicate_vector(where, name_to_index)
    keep = None
    for batch in batches:
        if isinstance(batch, Batch):
            yield batch.filter(keep_mask(batch))
        else:
            if keep is None:
                keep = compile_predicate(where, name_to_index)
            yield [r for r in batch if keep(r)]


def _evaluate(
    query: ast.Query,
    raw_batches: Iterable,
    schema: TableSchema,
    bytes_scanned: int,
) -> SelectResult:
    """Evaluate ``query`` over a lazy batch source.

    Batches are either columnar :class:`Batch`es (full-object CSV scans)
    or ``list[tuple]`` chunks (ScanRange windows, Parquet row groups).
    ``rows_scanned`` / ``term_evals`` meter the records actually parsed;
    ``bytes_scanned`` is fixed by the caller (the full object or the
    requested ScanRange — billing does not shrink when LIMIT stops the
    scan early, matching the byte accounting of the materialized engine).
    """
    name_to_index = schema.name_to_index
    counter = _BatchCounter(raw_batches)
    batches = _filtered_batches(counter, query.where, name_to_index)

    if query.group_by:
        out_rows, names = _run_grouped_aggregation(query, batches, name_to_index)
    else:
        is_aggregation = any(
            not isinstance(item.expr, ast.Star) and ast.contains_aggregate(item.expr)
            for item in query.select_items
        )
        if is_aggregation:
            out_rows, names = _run_aggregation(query, batches, name_to_index)
            if query.limit is not None:
                out_rows = out_rows[: query.limit]
        else:
            out_rows, names = _run_projection(
                query, batches, schema, name_to_index, query.limit
            )

    payload = b"".join(encode_row(row) for row in out_rows)
    return SelectResult(
        payload=payload,
        rows=out_rows,
        column_names=names,
        bytes_scanned=bytes_scanned,
        bytes_returned=len(payload),
        rows_scanned=counter.count,
        term_evals=counter.count * expression_complexity(query),
    )


def _run_projection(
    query: ast.Query,
    batches: Iterable,
    schema: TableSchema,
    name_to_index: dict[str, int],
    limit: int | None,
) -> tuple[list[tuple], list[str]]:
    """Project batches through the select list, stopping at ``limit`` rows.

    Early termination is what makes ``LIMIT n`` cheap: the batch source
    is never pulled past the batch that completes the n-th output row.
    Columnar batches evaluate each select item once per column and
    transpose; list batches keep the per-row extractors.
    """
    extractors = []
    vec_extractors = []
    names: list[str] = []
    for ordinal, item in enumerate(query.select_items, start=1):
        if isinstance(item.expr, ast.Star):
            for idx, col in enumerate(schema.columns):
                extractors.append(lambda row, i=idx: row[i])
                vec_extractors.append(lambda batch, i=idx: batch.column(i))
                names.append(col.name)
            continue
        extractors.append(compile_expr(item.expr, name_to_index))
        vec_extractors.append(compile_expr_vector(item.expr, name_to_index))
        names.append(item.output_name(ordinal))
    out: list[tuple] = []
    for batch in batches:
        if isinstance(batch, Batch):
            out.extend(zip(*(fn(batch) for fn in vec_extractors)))
        else:
            out.extend(tuple(fn(row) for fn in extractors) for row in batch)
        if limit is not None and len(out) >= limit:
            return out[:limit], names
    return out, names


def _run_aggregation(
    query: ast.Query,
    batches: Iterable[list[tuple]],
    name_to_index: dict[str, int],
) -> tuple[list[tuple], list[str]]:
    """Evaluate an aggregate-only select list over filtered rows.

    Supports arithmetic around aggregates (e.g. ``SUM(a*b) / 100``) —
    the S3-side group-by pushdown emits plain ``SUM(CASE ...)`` columns
    but TPC-H pushdowns use compound forms.
    """
    names: list[str] = []
    per_item: list[tuple[list[CompiledAggregate], object]] = []
    for ordinal, item in enumerate(query.select_items, start=1):
        agg_nodes, finisher = split_aggregate_expr(item.expr)
        compiled = [CompiledAggregate(node, name_to_index) for node in agg_nodes]
        per_item.append((compiled, finisher))
        names.append(item.output_name(ordinal))

    accumulators = [
        [agg.new_accumulator() for agg in compiled] for compiled, _ in per_item
    ]
    for batch in batches:
        for row in batch:
            for (compiled, _), accs in zip(per_item, accumulators):
                for agg, acc in zip(compiled, accs):
                    acc.add(agg.input_value(row))

    values: list[object] = []
    for (compiled, finisher), accs in zip(per_item, accumulators):
        results = [acc.result() for acc in accs]
        if finisher is None:
            values.append(results[0])
        else:
            values.append(finisher(results))
    return [tuple(values)], names


def _run_grouped_aggregation(
    query: ast.Query,
    batches: Iterable[list[tuple]],
    name_to_index: dict[str, int],
) -> tuple[list[tuple], list[str]]:
    """Partial group-by at the storage side (Suggestion 4 extension).

    Group columns come from the GROUP BY clause; every select item must
    be either a group expression or an aggregate.  Partials from
    different partitions merge at the query node (the "partial" in
    partial group-by).
    """
    group_fns = [compile_expr(g, name_to_index) for g in query.group_by]
    group_sql = {g.to_sql() for g in query.group_by}

    names: list[str] = []
    agg_items: list[tuple[list[CompiledAggregate], object]] = []
    layout: list[tuple[str, int]] = []  # ("group", key_pos) | ("agg", item_pos)
    for ordinal, item in enumerate(query.select_items, start=1):
        names.append(item.output_name(ordinal))
        if not isinstance(item.expr, ast.Star) and ast.contains_aggregate(item.expr):
            agg_nodes, finisher = split_aggregate_expr(item.expr)
            compiled = [CompiledAggregate(n, name_to_index) for n in agg_nodes]
            layout.append(("agg", len(agg_items)))
            agg_items.append((compiled, finisher))
            continue
        if isinstance(item.expr, ast.Star) or item.expr.to_sql() not in group_sql:
            raise UnsupportedFeatureError(
                "partial group-by select items must be group expressions"
                " or aggregates"
            )
        key_pos = [g.to_sql() for g in query.group_by].index(item.expr.to_sql())
        layout.append(("group", key_pos))

    groups: dict[tuple, list] = {}
    for batch in batches:
        for row in batch:
            key = tuple(fn(row) for fn in group_fns)
            state = groups.get(key)
            if state is None:
                state = [
                    [agg.new_accumulator() for agg in compiled]
                    for compiled, _ in agg_items
                ]
                groups[key] = state
            for (compiled, _), accs in zip(agg_items, state):
                for agg, acc in zip(compiled, accs):
                    acc.add(agg.input_value(row))

    out: list[tuple] = []
    for key, state in groups.items():
        agg_values = []
        for (compiled, finisher), accs in zip(agg_items, state):
            results = [acc.result() for acc in accs]
            agg_values.append(results[0] if finisher is None else finisher(results))
        row_out = []
        for kind, pos in layout:
            row_out.append(key[pos] if kind == "group" else agg_values[pos])
        out.append(tuple(row_out))
    return out, names
