"""Dialect validation for S3 Select queries.

The real service accepts only a narrow SQL subset; PushdownDB's whole
design revolves around that boundary (Sections IV-VII rebuild join,
group-by and top-K *on top of* this subset).  The validator enforces it
so a strategy that accidentally pushes unsupported SQL fails exactly the
way it would against AWS.
"""

from __future__ import annotations

from repro.common.errors import (
    ExpressionLimitExceededError,
    UnsupportedFeatureError,
)
from repro.sqlparser import ast

#: The service limit on the SQL expression length (Section V-B1).
EXPRESSION_LIMIT_BYTES = 256 * 1024

#: The only table name S3 Select accepts.
S3_OBJECT_TABLE = "s3object"


def validate_select_sql(sql: str, query: ast.Query,
                        expression_limit: int = EXPRESSION_LIMIT_BYTES,
                        allow_group_by: bool = False) -> None:
    """Raise unless ``query`` is inside the S3 Select dialect.

    Checks, in the order the real service would reject them:

    * total expression size <= 256 KB;
    * ``FROM S3Object`` only — no joins;
    * no GROUP BY, no ORDER BY (LIMIT is allowed);
    * aggregates must not be mixed with per-row select items.

    Args:
        allow_group_by: opt into the *partial group-by* extension the
            paper's Suggestion 4 proposes (not in the real service).
    """
    size = len(sql.encode())
    if size > expression_limit:
        raise ExpressionLimitExceededError(size, expression_limit)
    if query.table.lower() != S3_OBJECT_TABLE:
        raise UnsupportedFeatureError(
            f"S3 Select queries must read FROM S3Object, got {query.table!r}"
        )
    if query.join_table is not None:
        raise UnsupportedFeatureError("S3 Select does not support joins")
    if query.group_by and not allow_group_by:
        raise UnsupportedFeatureError("S3 Select does not support GROUP BY")
    if query.order_by:
        raise UnsupportedFeatureError("S3 Select does not support ORDER BY")
    if not query.group_by:
        _validate_select_list(query)
    if query.where is not None and ast.contains_aggregate(query.where):
        raise UnsupportedFeatureError("aggregates are not allowed in WHERE")


def _validate_select_list(query: ast.Query) -> None:
    has_aggregate = False
    has_scalar = False
    for item in query.select_items:
        if isinstance(item.expr, ast.Star):
            has_scalar = True
            continue
        if ast.contains_aggregate(item.expr):
            has_aggregate = True
        else:
            has_scalar = True
    if has_aggregate and has_scalar:
        raise UnsupportedFeatureError(
            "S3 Select cannot mix aggregates with per-row columns"
            " (it has no GROUP BY)"
        )


def expression_complexity(query: ast.Query) -> int:
    """Expression *terms* evaluated per scanned row.

    A term is one computed select item (bare columns and ``*`` are free —
    they are just parsed fields) or one top-level WHERE conjunct.  The
    performance model charges S3-side CPU proportional to this count
    times rows scanned, which is what makes huge ``CASE WHEN`` lists
    (S3-side group-by, Fig 5) and many-hash Bloom filters (Fig 4)
    progressively slower while leaving plain filters and projections at
    scan speed.
    """
    count = 0
    for item in query.select_items:
        if not isinstance(item.expr, (ast.Star, ast.Column)):
            count += 1
    if query.where is not None:
        count += _count_conjuncts(query.where)
    return count


def _count_conjuncts(expr: ast.Expr) -> int:
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return _count_conjuncts(expr.left) + _count_conjuncts(expr.right)
    return 1
