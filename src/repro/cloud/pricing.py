"""AWS US-East pricing from the paper (Section II-B) and cost breakdowns.

The paper decomposes query cost into four components:

* **compute** — EC2 time (r4.8xlarge, $2.128/hour) for the whole query;
* **request** — HTTP GETs at $0.0004 per 1,000 requests (both plain GETs
  and S3 Select requests);
* **scan** — S3 Select data scanned at $0.002/GB;
* **transfer** — S3 Select data returned at $0.0007/GB (in-region plain
  transfer is free, so this component is entirely S3 Select return).

Storage cost is excluded, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.cloud.metrics import RequestRecord
from repro.common.units import SECONDS_PER_HOUR, bytes_to_gb


@dataclass(frozen=True)
class Pricing:
    """Unit prices; defaults are the paper's US East (N. Virginia) rates."""

    select_scan_per_gb: float = 0.002
    select_return_per_gb: float = 0.0007
    get_per_1000_requests: float = 0.0004
    ec2_per_hour: float = 2.128          # r4.8xlarge
    transfer_out_per_gb: float = 0.0     # same-region transfer is free
    s3_storage_per_gb_month: float = 0.022  # reported, never charged to queries


PAPER_PRICING = Pricing()


def scaled_pricing(pricing: Pricing, data_scale: float) -> Pricing:
    """Pricing for a *paper-equivalent* run at a smaller data scale.

    Our datasets are ``data_scale`` times the paper's (e.g. 1/1000 of
    10 GB).  Dividing the per-GB unit prices by that factor makes a query
    over the small dataset cost what the same query would cost at paper
    scale — byte counts shrink linearly with the data.  The per-request
    price is left alone: row-proportional requests are virtualized via
    :class:`~repro.cloud.metrics.RequestRecord.weight` instead, and
    constant per-partition scan requests should cost what they cost.
    EC2 compute is already priced off the (paper-calibrated) simulated
    runtime and stays unchanged.
    """
    if data_scale <= 0:
        raise ValueError(f"data_scale must be positive, got {data_scale}")
    return Pricing(
        select_scan_per_gb=pricing.select_scan_per_gb / data_scale,
        select_return_per_gb=pricing.select_return_per_gb / data_scale,
        get_per_1000_requests=pricing.get_per_1000_requests,
        ec2_per_hour=pricing.ec2_per_hour,
        transfer_out_per_gb=pricing.transfer_out_per_gb / data_scale,
        s3_storage_per_gb_month=pricing.s3_storage_per_gb_month,
    )


@dataclass(frozen=True)
class CostBreakdown:
    """Dollar cost of one query, split the way the paper's figures are."""

    compute: float = 0.0
    request: float = 0.0
    scan: float = 0.0
    transfer: float = 0.0

    @property
    def total(self) -> float:
        return self.compute + self.request + self.scan + self.transfer

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            compute=self.compute + other.compute,
            request=self.request + other.request,
            scan=self.scan + other.scan,
            transfer=self.transfer + other.transfer,
        )

    def scaled(self, factor: float) -> "CostBreakdown":
        return CostBreakdown(
            compute=self.compute * factor,
            request=self.request * factor,
            scan=self.scan * factor,
            transfer=self.transfer * factor,
        )


def cost_of_requests(
    records: Iterable[RequestRecord], pricing: Pricing = PAPER_PRICING
) -> CostBreakdown:
    """Price the storage-side components of a batch of requests.

    Compute cost is added separately (it needs the simulated runtime; see
    :func:`cost_of_query`).
    """
    n_requests = 0.0
    scanned = 0
    returned = 0
    transferred = 0
    for record in records:
        n_requests += record.weight
        scanned += record.bytes_scanned
        returned += record.bytes_returned
        transferred += record.bytes_transferred
    return CostBreakdown(
        compute=0.0,
        request=n_requests / 1000.0 * pricing.get_per_1000_requests,
        scan=bytes_to_gb(scanned) * pricing.select_scan_per_gb,
        transfer=(
            bytes_to_gb(returned) * pricing.select_return_per_gb
            + bytes_to_gb(transferred) * pricing.transfer_out_per_gb
        ),
    )


def cost_of_query(
    records: Iterable[RequestRecord],
    runtime_seconds: float,
    pricing: Pricing = PAPER_PRICING,
) -> CostBreakdown:
    """Full query cost: storage-side components plus EC2 compute time."""
    storage_side = cost_of_requests(records, pricing)
    compute = runtime_seconds / SECONDS_PER_HOUR * pricing.ec2_per_hour
    return CostBreakdown(
        compute=compute,
        request=storage_side.request,
        scan=storage_side.scan,
        transfer=storage_side.transfer,
    )
