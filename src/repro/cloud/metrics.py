"""Request metering and per-query work accounting.

Every interaction with the simulated S3 front-end is recorded as a
:class:`RequestRecord`.  Strategies group records into :class:`Phase`
objects describing *how* the work was structured (which requests ran in
parallel, what the server did with the bytes); the performance model then
prices a phase in simulated seconds, and the cost model prices the
records in dollars.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum


class RequestKind(Enum):
    GET = "get"          # plain object / byte-range GET
    SELECT = "select"    # S3 Select request


@dataclass(frozen=True)
class RequestRecord:
    """One HTTP request against the storage service."""

    kind: RequestKind
    bucket: str
    key: str
    #: Bytes the storage side scanned to serve the request (S3 Select
    #: bills these; plain GETs scan nothing).
    bytes_scanned: int = 0
    #: Bytes returned to the requester by an S3 Select request.
    bytes_returned: int = 0
    #: Bytes returned by a plain GET (free in-region, still metered).
    bytes_transferred: int = 0
    #: Row x expression-term evaluations performed at the storage side
    #: (drives the S3-side compute term of the performance model).
    term_evals: int = 0
    #: Paper-equivalent request count this record represents.  Normally 1;
    #: calibrated contexts weight *row-proportional* requests (the
    #: indexing strategy's per-record ranged GETs) by 1/scale so request
    #: dispatch time and request dollar cost land at paper scale, while
    #: constant per-partition scan requests stay at weight 1.
    weight: float = 1.0


class MetricsCollector:
    """Accumulates request records; supports marked sub-ranges.

    Strategies call :meth:`mark` before a phase and :meth:`records_since`
    after it to attribute requests to phases without threading labels
    through every call.

    Recording is thread-safe: the concurrent partition scans of
    :func:`repro.strategies.scans.scan_partitions` issue requests from a
    worker pool, so appends may race.  Marks are only taken between
    phases (never while workers are in flight), so a mark still cleanly
    partitions the record list; the *order* of records within a
    concurrent phase is unspecified, which is fine because every
    consumer aggregates per-phase sums or deals records onto one stream
    each.
    """

    def __init__(self):
        self._records: list[RequestRecord] = []
        self._lock = threading.Lock()

    def record(self, record: RequestRecord) -> None:
        with self._lock:
            self._records.append(record)

    def mark(self) -> int:
        """Return a position token for :meth:`records_since`."""
        with self._lock:
            return len(self._records)

    def records_since(self, mark: int) -> list[RequestRecord]:
        with self._lock:
            return self._records[mark:]

    @property
    def records(self) -> list[RequestRecord]:
        with self._lock:
            return list(self._records)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def num_requests(self) -> int:
        return len(self._records)

    @property
    def bytes_scanned(self) -> int:
        return sum(r.bytes_scanned for r in self._records)

    @property
    def bytes_returned(self) -> int:
        return sum(r.bytes_returned for r in self._records)

    @property
    def bytes_transferred(self) -> int:
        return sum(r.bytes_transferred for r in self._records)

    def reset(self) -> None:
        with self._lock:
            self._records.clear()


@dataclass
class StreamWork:
    """Work carried by one parallel stream within a phase.

    A "stream" is one logical connection: e.g. the S3 Select scan of one
    table partition, or the batch of byte-range GETs one worker issues.
    ``requests`` is weighted (see :class:`RequestRecord.weight`).
    """

    requests: float = 0.0
    select_scan_bytes: int = 0
    select_returned_bytes: int = 0
    get_bytes: int = 0
    term_evals: int = 0

    @classmethod
    def from_record(cls, record: RequestRecord) -> "StreamWork":
        return cls(
            requests=record.weight,
            select_scan_bytes=record.bytes_scanned,
            select_returned_bytes=record.bytes_returned,
            get_bytes=record.bytes_transferred,
            term_evals=record.term_evals,
        )

    def add_record(self, record: RequestRecord) -> None:
        self.requests += record.weight
        self.select_scan_bytes += record.bytes_scanned
        self.select_returned_bytes += record.bytes_returned
        self.get_bytes += record.bytes_transferred
        self.term_evals += record.term_evals


@dataclass
class Phase:
    """One sequential step of a strategy: parallel streams + local CPU.

    Phases execute one after another; streams inside a phase execute
    concurrently.  ``server_cpu_seconds`` is compute the query node spends
    beyond ingestion (hash-table builds, heaps, ...), estimated from row
    counts by the strategies.  ``server_records`` / ``server_fields``
    count the rows and fields the query node must materialize from the
    phase's responses — the performance model charges ingestion per
    record and per field, which is what separates "load 4 of 20 columns"
    from "load everything" (paper Fig 5) while keeping wide-row GET loads
    and S3 Select responses on one mechanism.

    ``workers`` optionally bounds how many of the phase's streams can be
    in flight at once (the concurrent-scan worker pool).  ``None`` keeps
    the historical fully-overlapped model — every stream concurrent —
    which is also what the paper's testbed assumed.
    """

    name: str
    streams: list[StreamWork] = field(default_factory=list)
    server_cpu_seconds: float = 0.0
    server_records: float = 0.0
    server_fields: float = 0.0
    workers: int | None = None

    @classmethod
    def from_records(
        cls,
        name: str,
        records: list[RequestRecord],
        streams: int | None = None,
        server_cpu_seconds: float = 0.0,
        server_records: float = 0.0,
        server_fields: float = 0.0,
        workers: int | None = None,
    ) -> "Phase":
        """Build a phase by dealing records round-robin onto N streams.

        ``streams=None`` gives every record its own stream (fully
        parallel); strategies pass an explicit count when parallelism is
        bounded (e.g. one stream per table partition).
        """
        if streams is None or streams >= len(records):
            work = [StreamWork.from_record(r) for r in records]
        else:
            work = [StreamWork() for _ in range(max(streams, 1))]
            for i, record in enumerate(records):
                work[i % len(work)].add_record(record)
        return cls(
            name=name,
            streams=work,
            server_cpu_seconds=server_cpu_seconds,
            server_records=server_records,
            server_fields=server_fields,
            workers=workers,
        )

    @property
    def requests(self) -> float:
        """Weighted (paper-equivalent) request count of the phase."""
        return sum(s.requests for s in self.streams)

    @property
    def select_scan_bytes(self) -> int:
        return sum(s.select_scan_bytes for s in self.streams)

    @property
    def select_returned_bytes(self) -> int:
        return sum(s.select_returned_bytes for s in self.streams)

    @property
    def get_bytes(self) -> int:
        return sum(s.get_bytes for s in self.streams)
