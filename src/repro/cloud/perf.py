"""Deterministic performance model: measured work -> simulated seconds.

The paper measured wall-clock on an r4.8xlarge against real S3.  We
replace the testbed with an analytic model over the *exact* work counts
the simulated execution produces (bytes scanned, bytes moved, requests
issued, S3-side expression evaluations).  The rates below are calibrated
so the paper's headline ratios reproduce:

* server-side filter is ~10x slower than S3-side filter (Fig 1):
  raw-GET loading is parse-bound at ``server_record_rate`` /
  ``server_field_rate`` on the query node, while S3 Select scans run at
  ``select_scan_rate_per_stream`` per partition in parallel and return
  almost nothing;
* S3-side group-by degrades linearly with the number of ``CASE WHEN``
  terms (Fig 5) via ``s3_term_eval_rate``;
* S3-side indexing degrades with selectivity (Fig 1) because each
  matched row costs one byte-range GET, throttled by
  ``request_dispatch_rate`` on the query node.

A phase's duration is the maximum over its bottleneck candidates —
slowest parallel stream, aggregate server-side ingest, aggregate network,
request dispatch — plus one request round-trip of latency.  Phases are
sequential, so a query's runtime is the sum of its phase times.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cloud.metrics import Phase
from repro.common.units import MB, GB


@dataclass(frozen=True)
class PerfModel:
    """Rate parameters for the simulated cloud.

    All rates are bytes/second unless noted.  Defaults are the "paper"
    calibration; experiments may scale them (documented per-experiment in
    EXPERIMENTS.md).
    """

    #: S3 Select scan rate of one partition stream.
    select_scan_rate_per_stream: float = 60 * MB
    #: Raw GET streaming rate of one connection.
    get_rate_per_stream: float = 35 * MB
    #: Records/second the query node can materialize from responses
    #: (row-framing + tuple construction; shared by GET parsing and S3
    #: Select response decoding).  Fitted to Figs 1, 2 and 5 jointly.
    server_record_rate: float = 3e6
    #: Fields/second the query node can parse within those records —
    #: the per-column cost that makes projection pushdown pay off on
    #: wide tables (Fig 5's filtered vs server-side gap).
    server_field_rate: float = 1.4e7
    #: Wire bandwidth between storage and the query node (10 GigE).
    network_bandwidth: float = 1.25 * GB
    #: Requests/second the query node can issue (dominates the indexing
    #: strategy at low selectivity, per Fig 1's discussion).
    request_dispatch_rate: float = 6000.0
    #: One round-trip to S3, charged once per phase (requests pipeline).
    request_latency: float = 0.02
    #: Expression terms/second one S3 Select stream evaluates.  A "term"
    #: is one *computed* select item (e.g. a ``SUM(CASE ...)`` column) or
    #: one WHERE conjunct per scanned row — the units in which CASE-heavy
    #: group-by pushdowns (Fig 5) and wide Bloom filters (Fig 4) get
    #: progressively slower.  Calibrated against those two figures.
    s3_term_eval_rate: float = 5e6
    #: Multiplier applied to strategies' estimated local CPU seconds.
    #: ``scaled()`` raises it as rates drop, so one of our rows stands in
    #: for ``1/factor`` paper-scale rows on the query node too.
    server_cpu_factor: float = 1.0

    def scaled(self, factor: float) -> "PerfModel":
        """A model with all throughput rates multiplied by ``factor``.

        Used for paper-equivalent calibration (run a 10 MB dataset as if
        it were the paper's 10 GB) and for substrate what-ifs in ablation
        benches; latency is left unchanged.
        """
        return replace(
            self,
            select_scan_rate_per_stream=self.select_scan_rate_per_stream * factor,
            get_rate_per_stream=self.get_rate_per_stream * factor,
            server_record_rate=self.server_record_rate * factor,
            server_field_rate=self.server_field_rate * factor,
            network_bandwidth=self.network_bandwidth * factor,
            # request_dispatch_rate stays fixed: request counts are
            # virtualized through RequestRecord.weight instead, so that
            # constant per-partition scan requests do not blow up under
            # paper-equivalent calibration.
            s3_term_eval_rate=self.s3_term_eval_rate * factor,
            server_cpu_factor=self.server_cpu_factor / factor,
        )

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def stream_time(self, stream) -> float:
        """Storage-side service time of one stream."""
        scan = stream.select_scan_bytes / self.select_scan_rate_per_stream
        compute = stream.term_evals / self.s3_term_eval_rate
        get = stream.get_bytes / self.get_rate_per_stream
        return scan + compute + get

    def phase_time(self, phase: Phase) -> float:
        """Simulated duration of one phase (see module docstring).

        When ``phase.workers`` bounds stream concurrency, the storage
        side runs the streams on that many lanes: its duration is the
        greedy lower bound ``max(slowest stream, total stream work /
        workers)``.  Unbounded phases (``workers=None``) keep the fully
        overlapped model.
        """
        if not phase.streams and phase.server_cpu_seconds == 0.0:
            return 0.0
        stream_times = [self.stream_time(s) for s in phase.streams]
        slowest_stream = max(stream_times, default=0.0)
        if phase.workers is not None and 0 < phase.workers < len(stream_times):
            slowest_stream = max(
                slowest_stream, sum(stream_times) / phase.workers
            )
        ingest = (
            phase.server_records / self.server_record_rate
            + phase.server_fields / self.server_field_rate
        )
        network = (phase.get_bytes + phase.select_returned_bytes) / self.network_bandwidth
        # Dispatch charges the per-request CPU *beyond* one request per
        # stream: a 16-partition scan issues 16 long-lived requests whose
        # setup hides inside the streams, while the indexing strategy's
        # flood of per-record GETs pays for every extra request.
        extra_requests = max(0.0, phase.requests - len(phase.streams))
        dispatch = extra_requests / self.request_dispatch_rate
        # Response parsing and local operator work share the query node's
        # CPU, so they add; everything else can overlap with the slowest
        # of them.
        local_cpu = phase.server_cpu_seconds * self.server_cpu_factor
        query_node = ingest + local_cpu
        bottleneck = max(slowest_stream, query_node, network, dispatch)
        latency = self.request_latency if phase.requests else 0.0
        return bottleneck + latency

    def runtime(self, phases: list[Phase]) -> float:
        """Total simulated runtime of sequential phases."""
        return sum(self.phase_time(p) for p in phases)


#: The calibration used by all paper-reproduction experiments.
PAPER_PERF = PerfModel()

#: Per-row CPU-time constants (seconds/row) used by strategies to estimate
#: ``server_cpu_seconds`` for local operator work.  Calibrated against the
#: same budget as the ingest rates (a 32-core r4.8xlarge running Python).
SERVER_CPU_PER_ROW = {
    "filter": 4e-9,        # vectorized predicate over parsed batches
    "hash_build": 4e-8,    # insert into a partitioned hash table
    "hash_probe": 3e-8,    # probe + emit
    "aggregate": 1.2e-8,   # accumulate one row into one aggregate
    "heap": 2.5e-8,        # heap push/replace during top-K
    "sort_per_cmp": 6e-9,  # per comparison in final sorts
    "bloom_insert": 5e-8,  # hash k times + set bits
}
