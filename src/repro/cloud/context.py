"""The CloudContext: everything a query needs in one bundle.

A context pairs the storage service with the pricing sheet and the
performance calibration.  Strategies receive a context, do their work
through ``ctx.client``, and finalize into a :class:`QueryExecution`
(rows + simulated runtime + dollar cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cloud.client import S3Client
from repro.cloud.metrics import MetricsCollector, Phase
from repro.cloud.perf import PAPER_PERF, PerfModel
from repro.cloud.pricing import PAPER_PRICING, CostBreakdown, Pricing, cost_of_query
from repro.storage.csvcodec import DEFAULT_BATCH_SIZE
from repro.storage.object_store import ObjectStore

#: Process-wide defaults for the streaming-pipeline knobs.  ``None``
#: workers means serial partition scans (the pre-pipeline behavior); the
#: CLI and the experiment harness override these via
#: :func:`set_default_pipeline` so every context they create inherits
#: the chosen concurrency without threading parameters through each
#: experiment.
_PIPELINE_DEFAULTS = {"workers": None, "batch_size": DEFAULT_BATCH_SIZE}


def set_default_pipeline(
    workers: int | None = None, batch_size: int | None = None
) -> None:
    """Set process-wide defaults for ``CloudContext`` pipeline knobs.

    Arguments left as ``None`` keep their current default.

    Raises:
        ValueError: on a non-positive ``workers`` or ``batch_size`` —
            rejected here rather than silently clamped, so a typo'd knob
            fails loudly instead of degrading downstream.
    """
    if workers is not None:
        if int(workers) <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        _PIPELINE_DEFAULTS["workers"] = int(workers)
    if batch_size is not None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        _PIPELINE_DEFAULTS["batch_size"] = int(batch_size)


@dataclass
class QueryExecution:
    """The result of running one query through a strategy."""

    rows: list[tuple]
    column_names: list[str]
    phases: list[Phase]
    runtime_seconds: float
    cost: CostBreakdown
    num_requests: int
    bytes_scanned: int
    bytes_returned: int
    bytes_transferred: int
    strategy: str = ""
    #: Strategy-specific extras (achieved Bloom FPR, per-phase splits, ...).
    details: dict = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return self.cost.total

    def phase_times(self, perf) -> dict[str, float]:
        """Per-phase simulated durations under ``perf`` (for reports)."""
        return {p.name: perf.phase_time(p) for p in self.phases}

    def explain(self, perf=None) -> str:
        """Human-readable execution report: phases, work, time, cost.

        Pass the context's :class:`~repro.cloud.perf.PerfModel` to get
        per-phase durations; without it only counts are shown.
        """
        from repro.common.units import human_bytes, human_dollars, human_seconds

        lines = [f"strategy: {self.strategy or '(unnamed)'}"]
        lines.append(
            f"runtime {human_seconds(self.runtime_seconds)}"
            f"   cost {human_dollars(self.cost.total)}"
            f" (compute {human_dollars(self.cost.compute)},"
            f" request {human_dollars(self.cost.request)},"
            f" scan {human_dollars(self.cost.scan)},"
            f" transfer {human_dollars(self.cost.transfer)})"
        )
        for phase in self.phases:
            duration = f" {human_seconds(perf.phase_time(phase)):>9}" if perf else ""
            lines.append(
                f"  phase {phase.name!r}:{duration}"
                f"  streams={len(phase.streams)}"
                f" requests={phase.requests:g}"
                f" scanned={human_bytes(phase.select_scan_bytes)}"
                f" returned={human_bytes(phase.select_returned_bytes)}"
                f" get={human_bytes(phase.get_bytes)}"
            )
        extras = {
            k: v for k, v in self.details.items()
            if k not in ("plan", "actuals", "operator_times")
        }
        if extras:
            lines.append(f"  details: {extras}")
        if self.details.get("plan"):
            # The physical-plan tree and the estimate-vs-actual table
            # render as their own blocks, not as raw dict dumps.
            lines.append("  plan:")
            lines.extend(
                "    " + line for line in self.details["plan"].splitlines()
            )
        if self.details.get("actuals"):
            from repro.planner.physical import render_execution_report

            lines.extend(
                "  " + line
                for line in render_execution_report(self).splitlines()[1:]
            )
        lines.append(
            f"  result: {len(self.rows)} row(s), columns {self.column_names}"
        )
        return "\n".join(lines)


class CloudContext:
    """Storage + metering + pricing + performance calibration."""

    #: Default Q-error (max(est/actual, actual/est)) a completed hash
    #: build may reach before adaptive execution re-plans the remaining
    #: join tree.  ~2x matches the classic mid-query re-optimization
    #: literature: below it, reordering rarely pays for itself.
    DEFAULT_ADAPTIVE_THRESHOLD = 2.0

    def __init__(
        self,
        perf: PerfModel | None = None,
        pricing: Pricing | None = None,
        store: ObjectStore | None = None,
        workers: int | None = None,
        batch_size: int | None = None,
        adaptive_threshold: float | None = None,
        prune_partitions: bool = True,
        cache_bytes: int = 0,
    ):
        """Args:
            workers: default partition-scan concurrency for this context
                (``None`` falls back to the process default, normally
                serial).  Concurrency changes wall-clock only — rows,
                bytes and dollar cost are independent of it.
            batch_size: rows per RecordBatch in the streaming pipeline.
            adaptive_threshold: build-cardinality Q-error above which
                ``mode="adaptive"`` executions re-plan the un-executed
                part of a join tree (default 2.0).
            prune_partitions: let pushdown scans skip partitions whose
                zone map statically refutes the pushed predicate (fewer
                metered requests).  Results are identical either way —
                the knob exists for A/B measurement and debugging.
            cache_bytes: byte budget for the session's semantic result
                cache (:class:`repro.optimizer.cache.SemanticCache`).
                ``0`` (the default) disables caching entirely —
                ``result_cache`` stays ``None`` and every execution is
                cold, byte-identical to a cache-free build.
        """
        from repro.optimizer.feedback import FeedbackStore

        self.store = store if store is not None else ObjectStore()
        self.metrics = MetricsCollector()
        self.client = S3Client(self.store, self.metrics)
        self.perf = perf if perf is not None else PAPER_PERF
        self.pricing = pricing if pricing is not None else PAPER_PRICING
        #: Session-scoped measured-selectivity/cardinality store; every
        #: executed plan feeds it, every estimate consults it.
        self.feedback = FeedbackStore()
        self.adaptive_threshold = (
            float(adaptive_threshold) if adaptive_threshold is not None
            else self.DEFAULT_ADAPTIVE_THRESHOLD
        )
        if self.adaptive_threshold < 1.0:
            raise ValueError(
                "adaptive_threshold is a Q-error bound and must be >= 1.0,"
                f" got {self.adaptive_threshold}"
            )
        if workers is not None and int(workers) <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = (
            int(workers) if workers is not None
            else _PIPELINE_DEFAULTS["workers"]
        )
        self.batch_size = (
            int(batch_size) if batch_size is not None
            else _PIPELINE_DEFAULTS["batch_size"]
        )
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        self.prune_partitions = bool(prune_partitions)
        self.cache_bytes = int(cache_bytes)
        if self.cache_bytes < 0:
            raise ValueError(
                f"cache_bytes must be >= 0, got {self.cache_bytes}"
            )
        #: Session-scoped semantic result cache; ``None`` when disabled
        #: (``cache_bytes=0``) so the cold path never consults it.
        if self.cache_bytes > 0:
            from repro.optimizer.cache import SemanticCache

            self.result_cache = SemanticCache(self.cache_bytes)
        else:
            self.result_cache = None

    def calibrate_to_paper_scale(self, data_bytes: int, paper_bytes: float) -> float:
        """Re-rate the context so ``data_bytes`` behaves like paper scale.

        The paper ran against a 10 GB dataset; ours are orders of
        magnitude smaller.  Scaling every throughput rate by
        ``data_bytes / paper_bytes`` makes simulated runtimes land in the
        paper's absolute ranges (and keeps fixed per-request latency from
        dominating), while :func:`~repro.cloud.pricing.scaled_pricing`
        does the same for dollar costs.  Returns the scale factor.
        """
        from repro.cloud.pricing import scaled_pricing

        scale = data_bytes / paper_bytes
        if scale <= 0:
            raise ValueError("data_bytes and paper_bytes must be positive")
        self.perf = self.perf.scaled(scale)
        self.pricing = scaled_pricing(self.pricing, scale)
        # Per-row ranged GETs stand in for 1/scale paper-scale requests.
        self.client.range_request_weight = 1.0 / scale
        return scale

    def begin_query(self) -> int:
        """Mark the start of a query; returns a metrics position token."""
        return self.metrics.mark()

    def finalize(
        self,
        mark: int,
        rows: list[tuple],
        column_names: Sequence[str],
        phases: list[Phase],
        strategy: str = "",
        details: dict | None = None,
    ) -> QueryExecution:
        """Price and time the records accumulated since ``mark``."""
        records = self.metrics.records_since(mark)
        runtime = self.perf.runtime(phases)
        cost = cost_of_query(records, runtime, self.pricing)
        return QueryExecution(
            rows=rows,
            column_names=list(column_names),
            phases=phases,
            runtime_seconds=runtime,
            cost=cost,
            num_requests=len(records),
            bytes_scanned=sum(r.bytes_scanned for r in records),
            bytes_returned=sum(r.bytes_returned for r in records),
            bytes_transferred=sum(r.bytes_transferred for r in records),
            strategy=strategy,
            details=details or {},
        )
