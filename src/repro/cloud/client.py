"""Metered front-end to the simulated S3 service.

This is the only path PushdownDB uses to touch storage at query time, so
every byte and request that matters for the paper's cost/performance
accounting flows through here.  The API shape intentionally mirrors the
boto3 calls the original PushdownDB used (``get_object`` with an optional
byte range, ``select_object_content``).
"""

from __future__ import annotations

import time

from repro.cloud.metrics import MetricsCollector, RequestKind, RequestRecord
from repro.s3select.engine import ScanRange, SelectResult, execute_select
from repro.s3select.validator import EXPRESSION_LIMIT_BYTES
from repro.storage.object_store import ObjectStore


class S3Client:
    """Issues GET / SELECT requests against an :class:`ObjectStore`.

    Writes (``put_object``) are not metered: the paper excludes load-time
    cost from query cost, and S3 PUTs are billed separately anyway.

    ``request_delay`` is a benchmark-only knob: real seconds slept per
    request, emulating the network round-trip the in-process store
    otherwise lacks, so the concurrency benchmarks have actual I/O waits
    to overlap.  It never affects results, simulated runtime, or cost —
    leave it at ``0.0`` (the default) outside wall-clock benchmarks.
    Negative values are rejected at assignment.
    """

    def __init__(self, store: ObjectStore, metrics: MetricsCollector | None = None):
        self.store = store
        self.metrics = metrics if metrics is not None else MetricsCollector()
        #: Paper-equivalent weight of one byte-range GET.  Calibrated
        #: contexts set this to 1/scale because ranged GETs are issued
        #: per matching *row* and row counts shrink with the dataset.
        self.range_request_weight: float = 1.0
        self._request_delay: float = 0.0

    @property
    def request_delay(self) -> float:
        """Benchmark-only per-request sleep (see class docstring)."""
        return self._request_delay

    @request_delay.setter
    def request_delay(self, value: float) -> None:
        value = float(value)
        if value < 0:
            raise ValueError(f"request_delay must be >= 0, got {value}")
        self._request_delay = value

    def _simulate_latency(self) -> None:
        if self.request_delay > 0:
            time.sleep(self.request_delay)

    # ------------------------------------------------------------------
    # plain data plane
    # ------------------------------------------------------------------
    def get_object(self, bucket: str, key: str) -> bytes:
        """Fetch a whole object (one metered GET)."""
        self._simulate_latency()
        data = self.store.get_bytes(bucket, key)
        self.metrics.record(
            RequestRecord(
                kind=RequestKind.GET,
                bucket=bucket,
                key=key,
                bytes_transferred=len(data),
            )
        )
        return data

    def get_object_range(self, bucket: str, key: str, first_byte: int, last_byte: int) -> bytes:
        """Fetch one inclusive byte range (one metered GET).

        The paper's Suggestion 1 notes S3 allows only a *single* range
        per GET — the indexing strategy's cost hinges on that, so this
        client deliberately offers no multi-range call.
        """
        self._simulate_latency()
        data = self.store.get_range(bucket, key, first_byte, last_byte)
        self.metrics.record(
            RequestRecord(
                kind=RequestKind.GET,
                bucket=bucket,
                key=key,
                bytes_transferred=len(data),
                weight=self.range_request_weight,
            )
        )
        return data

    def get_object_ranges(
        self,
        bucket: str,
        key: str,
        ranges: list[tuple[int, int]],
        weight: float = 1.0,
    ) -> list[bytes]:
        """EXTENSION (paper Suggestion 1): one GET, many byte ranges.

        The real S3 supports a single range per GET; the paper argues
        multi-range GETs would rescue the indexing strategy at moderate
        selectivities.  This call is only used by the extension
        strategies in :mod:`repro.strategies.extensions` and is metered
        as a single request with the caller-supplied paper-equivalent
        ``weight``.
        """
        self._simulate_latency()
        payloads = [
            self.store.get_range(bucket, key, first, last)
            for first, last in ranges
        ]
        self.metrics.record(
            RequestRecord(
                kind=RequestKind.GET,
                bucket=bucket,
                key=key,
                bytes_transferred=sum(len(p) for p in payloads),
                weight=weight,
            )
        )
        return payloads

    # ------------------------------------------------------------------
    # S3 Select
    # ------------------------------------------------------------------
    def select_object_content(
        self,
        bucket: str,
        key: str,
        sql: str,
        scan_range: ScanRange | None = None,
        expression_limit: int = EXPRESSION_LIMIT_BYTES,
        allow_group_by: bool = False,
        compress_output: bool = False,
    ) -> SelectResult:
        """Run an S3 Select query against one object (metered SELECT).

        ``allow_group_by`` and ``compress_output`` opt into the paper's
        Suggestion 4 and Section IX extensions respectively (neither is
        available on the real service).
        """
        self._simulate_latency()
        obj = self.store.get_object(bucket, key)
        result = execute_select(
            obj, sql, scan_range=scan_range, expression_limit=expression_limit,
            allow_group_by=allow_group_by, compress_output=compress_output,
        )
        self.metrics.record(
            RequestRecord(
                kind=RequestKind.SELECT,
                bucket=bucket,
                key=key,
                bytes_scanned=result.bytes_scanned,
                bytes_returned=result.bytes_returned,
                term_evals=result.term_evals,
            )
        )
        return result

    # ------------------------------------------------------------------
    # control plane (unmetered)
    # ------------------------------------------------------------------
    def create_bucket(self, bucket: str) -> None:
        self.store.create_bucket(bucket)

    def put_object(self, bucket: str, key: str, data: bytes, metadata: dict | None = None) -> None:
        self.store.put_object(bucket, key, data, metadata)
