"""The explicit physical-plan IR: one operator tree for everything.

Prior to this module the planner executed through ad-hoc per-strategy
code paths (inline single-table pipelines, a hand-chained multi-join
loop), so plan *shape* was hard-coded: left-deep joins only, Bloom
filters on the outermost probe only, and no way for EXPLAIN to show the
actual operator structure.  This module makes the plan a first-class
tree of :class:`PlanNode` objects that

* a **single recursive executor** (:func:`execute_plan`) walks, yielding
  RecordBatches bottom-up through the same streaming operator functions
  the old paths used (so metering is unchanged where the shape is);
* the **cost model** prices node-by-node (:func:`predicted_phases`
  assembles the same :class:`~repro.cloud.metrics.Phase` objects the
  executor meters; the join-order search ranks candidate trees with it);
* **EXPLAIN** renders (:func:`render_plan`), including per-node
  ``est_rows`` / ``est_cost`` annotations and — after execution —
  observed cardinalities with estimate-vs-actual Q-error columns
  (:func:`render_execution_report`).

Execution contract (kept identical to the pre-IR planner so two-table
pairwise queries stay byte-for-byte the same):

* every **materialized** scan (hash-build sides) issues its requests and
  appends its phase immediately; the one **streaming** scan on the
  pipeline spine defers its phase until the root drains, so its ingest
  accounting reflects what was actually pulled (LIMIT early-exit);
* in ``baseline`` mode for joins, all scans collapse into one
  ``load+join`` phase whose ingest is the whole-table formula;
* all local-operator CPU accumulates into one :class:`CpuTally` charged
  to the final phase, exactly as before.

New plan shapes unlocked by the IR: **bushy** join trees (both sides of
a join may themselves be joins), Bloom predicates on **inner**
(non-outermost) probe scans, and **cross products** for small
disconnected FROM lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Iterator, Sequence

from repro.cloud.context import CloudContext, QueryExecution
from repro.cloud.metrics import Phase
from repro.cloud.perf import SERVER_CPU_PER_ROW
from repro.common.errors import PlanError
from repro.engine.batch import Batch as ColumnBatch
from repro.engine.catalog import TableInfo
from repro.engine.operators.base import (
    Batch,
    BatchCounter,
    CpuTally,
    materialize,
)
from repro.engine.operators.filter import filter_batches, filter_rows
from repro.engine.operators.groupby import group_by_batches
from repro.engine.operators.hashjoin import hash_join, hash_join_batches
from repro.engine.operators.limit import limit_batches
from repro.engine.operators.project import project_batches, projected_names
from repro.engine.operators.sort import sort_batches
from repro.engine.operators.topk import top_k_batches
from repro.queries.common import bloom_where
from repro.sqlparser import ast
from repro.strategies.scans import (
    iter_scan_batches,
    merge_sum_partials,
    phase_since,
    projection_sql,
    select_aggregate,
    select_table,
)


# ----------------------------------------------------------------------
# execution state
# ----------------------------------------------------------------------

@dataclass
class _PendingScan:
    """The spine's streaming scan, finalized after the root drains."""

    mark: int
    label: str
    streams: int
    counter: BatchCounter
    ncols: int


@dataclass
class ExecState:
    """Mutable state threaded through one plan execution."""

    ctx: CloudContext
    #: True for baseline join plans: scans skip per-scan phases; the
    #: executor builds one whole-query ``load+join`` phase instead.
    combined: bool = False
    tally: CpuTally = field(default_factory=CpuTally)
    phases: list[Phase] = field(default_factory=list)
    pending: _PendingScan | None = None


def _counted(node: "PlanNode", batches: Iterable[Batch]) -> Iterator[Batch]:
    """Record observed cardinality and wall-clock on ``node`` per batch.

    The clock runs only while *this* node's stream is being pulled, so
    ``wall_seconds`` is the inclusive production time of the subtree
    (children wrapped in their own ``_counted`` subtract out as
    self-time in :func:`collect_operator_times`).  Nodes past a LIMIT
    cut-off are never pulled and keep ``actual_rows``/``wall_seconds``
    at ``None``.
    """
    node.actual_rows = 0
    if node.wall_seconds is None:
        node.wall_seconds = 0.0
    source = iter(batches)
    while True:
        start = perf_counter()
        batch = next(source, _DONE)
        node.wall_seconds += perf_counter() - start
        if batch is _DONE:
            return
        node.actual_rows += len(batch)
        yield batch


_DONE = object()


def _add_wall(node: "PlanNode", seconds: float) -> None:
    """Accumulate explicitly-timed work (pipeline-breaker drains)."""
    node.wall_seconds = (node.wall_seconds or 0.0) + seconds


def _index_of(names: Sequence[str], wanted: str) -> int:
    lowered = [n.lower() for n in names]
    try:
        return lowered.index(wanted.lower())
    except ValueError:
        raise PlanError(
            f"join key {wanted!r} not in columns {list(names)}"
        ) from None


# ----------------------------------------------------------------------
# plan nodes
# ----------------------------------------------------------------------

class PlanNode:
    """One operator in the physical plan tree.

    Annotation fields (filled by the plan builder / join-order search):

    * ``est_rows`` — estimated output cardinality;
    * ``est_cost`` — estimated cumulative dollar cost of the subtree,
      priced through the context's PerfModel + Pricing;
    * ``actual_rows`` — observed output cardinality, recorded during
      execution (estimate-vs-actual feedback for EXPLAIN);
    * ``wall_seconds`` — measured inclusive wall-clock this subtree
      spent producing its output (``None`` until the node runs).
    """

    est_rows: float | None = None
    est_cost: float | None = None
    actual_rows: int | None = None
    wall_seconds: float | None = None

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def describe(self) -> str:
        raise NotImplementedError

    def run(self, state: ExecState) -> tuple[list[str], Iterator[Batch]]:
        """Execute this subtree, returning (column names, batch stream)."""
        raise NotImplementedError


class ScanNode(PlanNode):
    """Leaf: scan one table, either pushed down or GET + local filter."""

    def __init__(
        self,
        table: TableInfo,
        columns: Sequence[str],
        predicate: ast.Expr | None,
        pushdown: bool,
        phase_label: str | None = None,
        prune: bool = True,
    ):
        self.table = table
        self.columns = list(columns)
        self.predicate = predicate
        self.pushdown = pushdown
        self.phase_label = phase_label or f"scan-{table.name}"
        #: Probe-key attribute a parent join blooms this scan on (the
        #: Bloom clause itself is built at run time from build rows).
        self.bloom_attr: str | None = None
        #: Estimated S3-side term evaluations (WHERE conjuncts + Bloom
        #: hashes per scanned row), for the cost model.
        self.est_terms: float = 0.0
        #: Pre-Bloom estimate of the rows the predicate alone keeps;
        #: baseline twins (GET + local filter, no Bloom) annotate with
        #: this so their Q-error reports stay meaningful.
        self.est_filtered_rows: float | None = None
        self.est_rows = None
        self.est_cost = None
        self.actual_rows = None
        self.tables: frozenset = frozenset((table.name,))
        #: Partition indices this scan will actually request, or ``None``
        #: for all of them.  Pushdown scans refute the table's zone maps
        #: against the pushed predicate at plan time; baseline GET scans
        #: never prune (they are the paper's whole-table reference point).
        self.keep_partitions: list[int] | None = None
        if prune and pushdown and predicate is not None:
            from repro.optimizer.pruning import keep_partitions

            self.keep_partitions = keep_partitions(table, predicate)
        #: Semantic-cache outcome (``hit``/``subsumed``/``miss``) when a
        #: cache is enabled; ``None`` means no cache was consulted, so
        #: EXPLAIN output on cache-free sessions is unchanged.
        self.cache_status: str | None = None
        self._cache_batches: list[Batch] | None = None
        self._cache_done = False

    @property
    def pruned_partitions(self) -> int:
        """How many partitions zone-map refutation eliminated."""
        if self.keep_partitions is None:
            return 0
        return self.table.partitions - len(self.keep_partitions)

    def _effective_partitions(self, ctx) -> tuple[list[int] | None, int]:
        """(surviving indices or None, request-stream count) for ``ctx``.

        Honors the context's ``prune_partitions`` kill switch at run
        time so one plan can be A/B-executed with pruning on and off.
        """
        if self.keep_partitions is None or not getattr(
            ctx, "prune_partitions", True
        ):
            return None, self.table.partitions
        return self.keep_partitions, len(self.keep_partitions)

    def describe(self) -> str:
        how = "select" if self.pushdown else "get"
        if self.bloom_attr:
            how += f"+bloom({self.bloom_attr})"
        parts = [f"scan {self.table.name} [{how}] cols={len(self.columns)}"]
        if self.predicate is not None:
            parts.append(f"pred=({self.predicate.to_sql()})")
        if self.pruned_partitions:
            parts.append(
                f"partitions pruned:"
                f" {self.pruned_partitions}/{self.table.partitions}"
            )
        if self.cache_status is not None:
            parts.append(f"cache: {self.cache_status}")
        return " ".join(parts)

    def _cacheable(self, state: ExecState, bloom_keys: Sequence | None):
        """The session cache, when this scan may consult/populate it.

        Only plain pushdown scans participate: Bloom-annotated scans
        carry run-time-dependent predicates, and combined (baseline
        join) executions are the paper's unmetered-per-scan reference
        point.
        """
        if (
            not self.pushdown
            or self.bloom_attr is not None
            or bloom_keys
            or state.combined
        ):
            return None
        return getattr(state.ctx, "result_cache", None)

    def _replay(
        self, state: ExecState, reuse
    ) -> Iterator[Batch]:
        """Cached batches, through the delta filter on a subsumed hit."""
        stream: Iterable[Batch] = iter(reuse.batches)
        if reuse.delta is not None:
            stream = filter_batches(
                stream, reuse.names, self.predicate, state.tally
            )
        if reuse.extra:
            width = len(self.columns)
            stream = (
                ColumnBatch(b.columns[:width], len(b)) for b in stream
            )
        return iter(stream)

    def _tee_cache(self, stream: Iterator[Batch]) -> Iterator[Batch]:
        """Retain yielded batches; mark complete only when drained."""
        buffer: list[Batch] = []
        self._cache_batches = buffer
        self._cache_done = False
        for batch in stream:
            if isinstance(batch, ColumnBatch):
                buffer.append(batch)
            else:
                buffer.append(
                    ColumnBatch.from_rows(
                        list(batch), num_columns=len(self.columns)
                    )
                )
            yield batch
        self._cache_done = True

    def flush_cache(self, cache) -> int:
        """Store the teed stream if it fully drained; 1 if stored."""
        if self._cache_batches is None or not self._cache_done:
            return 0
        batches = self._cache_batches
        self._cache_batches = None
        stored = cache.store_scan(
            self.table.name, self.predicate, self.columns, batches
        )
        return 1 if stored else 0

    def _scan_sql(self, bloom_keys: Sequence | None) -> str:
        clauses = []
        if self.predicate is not None:
            clauses.append(self.predicate.to_sql())
        if bloom_keys and self.bloom_attr:
            base_sql = projection_sql(self.columns, " AND ".join(clauses) or None)
            clause = bloom_where(bloom_keys, self.bloom_attr, base_sql)
            if clause is not None:
                clauses.append(clause)
        return projection_sql(self.columns, " AND ".join(clauses) or None)

    def run(self, state: ExecState, bloom_keys: Sequence | None = None):
        """Streaming scan: requests issue now, the phase finalizes at the
        end of the pipeline so ingest reflects the rows actually pulled."""
        ctx = state.ctx
        mark = ctx.metrics.mark()
        if not self.pushdown:
            names = list(self.table.schema.names)
            stream = filter_batches(
                iter_scan_batches(ctx, self.table), names, self.predicate,
                state.tally,
            )
            counter = BatchCounter(stream)
            if not state.combined:
                state.pending = _PendingScan(
                    mark, self.phase_label, self.table.partitions,
                    counter, len(names),
                )
            return names, _counted(self, iter(counter))
        cache = self._cacheable(state, bloom_keys)
        if cache is not None:
            reuse = cache.lookup_scan(
                self.table.name, self.predicate, self.columns
            )
            if reuse is not None:
                self.cache_status = reuse.status
                # Zero metered requests: nothing was issued since the
                # mark, so the phase carries streams but no records.
                state.phases.append(
                    phase_since(ctx, mark, self.phase_label, streams=1)
                )
                return (
                    list(self.columns),
                    _counted(self, self._replay(state, reuse)),
                )
            self.cache_status = "miss"
        keep, streams = self._effective_partitions(ctx)
        counter = BatchCounter(
            iter_scan_batches(
                ctx, self.table, self._scan_sql(bloom_keys), partitions=keep
            )
        )
        state.pending = _PendingScan(
            mark, self.phase_label, streams,
            counter, len(self.columns),
        )
        stream: Iterator[Batch] = iter(counter)
        if cache is not None:
            stream = self._tee_cache(stream)
        return list(self.columns), _counted(self, stream)

    def run_materialized(
        self, state: ExecState, bloom_keys: Sequence | None = None
    ) -> tuple[list[str], list[tuple]]:
        """Materializing scan (hash-build sides): phase appended now."""
        ctx = state.ctx
        start = perf_counter()
        if not self.pushdown:
            names = list(self.table.schema.names)
            rows = materialize(iter_scan_batches(ctx, self.table))
            result = state.tally.add(filter_rows(rows, names, self.predicate))
            self.actual_rows = len(result.rows)
            _add_wall(self, perf_counter() - start)
            return names, result.rows
        mark = ctx.metrics.mark()
        cache = self._cacheable(state, bloom_keys)
        if cache is not None:
            reuse = cache.lookup_scan(
                self.table.name, self.predicate, self.columns
            )
            if reuse is not None:
                self.cache_status = reuse.status
                rows = materialize(self._replay(state, reuse))
                state.phases.append(
                    phase_since(ctx, mark, self.phase_label, streams=1)
                )
                self.actual_rows = len(rows)
                _add_wall(self, perf_counter() - start)
                return list(self.columns), rows
            self.cache_status = "miss"
        keep, streams = self._effective_partitions(ctx)
        rows, _ = select_table(
            ctx, self.table, self._scan_sql(bloom_keys), partitions=keep
        )
        state.phases.append(phase_since(
            ctx, mark, self.phase_label, streams=streams,
            ingest=(len(rows), len(self.columns)),
        ))
        if cache is not None:
            self._cache_batches = [
                ColumnBatch.from_rows(rows, num_columns=len(self.columns))
            ]
            self._cache_done = True
        self.actual_rows = len(rows)
        _add_wall(self, perf_counter() - start)
        return list(self.columns), rows


class PushedAggregateNode(PlanNode):
    """Leaf: a fully-pushable additive aggregate (SUM/COUNT shapes)."""

    def __init__(self, table: TableInfo, query: ast.Query, prune: bool = True):
        self.table = table
        self.query = query
        self.est_rows = 1.0
        self.est_cost = None
        self.actual_rows = None
        self.tables: frozenset = frozenset((table.name,))
        #: Surviving partitions after zone-map refutation of the WHERE
        #: clause (``None`` = all).  Sound for additive aggregates: a
        #: refuted partition can only contribute NULL/zero partials,
        #: which ``merge_sum_partials`` ignores anyway; at least one
        #: partition always survives so the result row keeps its shape.
        self.keep_partitions: list[int] | None = None
        if prune and query.where is not None:
            from repro.optimizer.pruning import keep_partitions

            self.keep_partitions = keep_partitions(table, query.where)
        #: Semantic-cache outcome; ``None`` until a cache is consulted.
        self.cache_status: str | None = None
        self._cache_partials: list[list] | None = None

    @property
    def pruned_partitions(self) -> int:
        if self.keep_partitions is None:
            return 0
        return self.table.partitions - len(self.keep_partitions)

    def describe(self) -> str:
        items = ", ".join(i.to_sql() for i in self.query.select_items)
        text = f"pushed-aggregate {self.table.name} [{items}]"
        if self.pruned_partitions:
            text += (
                f" partitions pruned:"
                f" {self.pruned_partitions}/{self.table.partitions}"
            )
        if self.cache_status is not None:
            text += f" cache: {self.cache_status}"
        return text

    def _item_signatures(self) -> list[str]:
        """Alias-insensitive signature of each pushed aggregate item."""
        return [item.expr.to_sql() for item in self.query.select_items]

    def flush_cache(self, cache) -> int:
        """Store the retained per-partition partials; 1 if stored."""
        if self._cache_partials is None:
            return 0
        partials = self._cache_partials
        self._cache_partials = None
        stored = cache.store_aggregate(
            self.table.name, self.query.where, self._item_signatures(),
            partials,
        )
        return 1 if stored else 0

    def run(self, state: ExecState):
        ctx = state.ctx
        start = perf_counter()
        mark = ctx.metrics.mark()
        out_names = [
            item.output_name(i)
            for i, item in enumerate(self.query.select_items, start=1)
        ]
        cache = (
            getattr(ctx, "result_cache", None)
            if not state.combined else None
        )
        if cache is not None:
            reuse = cache.lookup_aggregate(
                self.table.name, self.query.where, self._item_signatures()
            )
            if reuse is not None:
                self.cache_status = reuse.status
                merged = merge_sum_partials(reuse.partials)
                state.phases.append(phase_since(
                    ctx, mark, "pushed-aggregate", streams=1
                ))
                self.actual_rows = 1
                _add_wall(self, perf_counter() - start)
                return out_names, iter([[tuple(merged)]])
            self.cache_status = "miss"
        pushed = ast.Query(
            select_items=self.query.select_items, table="S3Object",
            where=self.query.where,
        )
        keep = self.keep_partitions
        if not getattr(ctx, "prune_partitions", True):
            keep = None
        streams = self.table.partitions if keep is None else len(keep)
        partials, _ = select_aggregate(
            ctx, self.table, pushed.to_sql(), partitions=keep
        )
        if cache is not None:
            self._cache_partials = [list(row) for row in partials]
        merged = merge_sum_partials(partials)
        state.phases.append(phase_since(
            ctx, mark, "pushed-aggregate", streams=streams
        ))
        self.actual_rows = 1
        _add_wall(self, perf_counter() - start)
        return out_names, iter([[tuple(merged)]])


class HashJoinNode(PlanNode):
    """Equi hash join: build side materializes, probe side streams.

    ``stream_probe`` marks the plan's spine join (the outermost one):
    its probe child streams batch-by-batch through the rest of the
    pipeline.  Inner joins materialize both children and pick the hash
    build side from the *actual* row counts, as the chained executor
    always did.  ``bloom`` pushes a Bloom predicate on the probe scan
    when the probe child is a pushdown scan and the build key is an
    integer column — including inner (non-outermost) probes, which the
    left-deep chain executor could never do.
    """

    def __init__(
        self,
        build: PlanNode,
        probe: PlanNode,
        build_key: str,
        probe_key: str,
        bloom: bool = False,
        stream_probe: bool = False,
        join_type: str = "inner",
        match_cond: ast.Expr | None = None,
        provenance: str | None = None,
    ):
        self.build = build
        self.probe = probe
        self.build_key = build_key
        self.probe_key = probe_key
        self.bloom = bloom
        self.stream_probe = stream_probe
        #: inner | left | semi | anti | anti_null (see operators.hashjoin).
        self.join_type = join_type
        #: Residual ON/correlation condition evaluated per candidate
        #: (build_row + probe_row) pair before it counts as a match.
        self.match_cond = match_cond
        #: Where this join came from, for EXPLAIN (e.g. "decorrelated
        #: EXISTS", "LEFT OUTER JOIN").
        self.provenance = provenance
        self.est_rows = None
        self.est_cost = None
        self.actual_rows = None
        #: Estimated rows this node itself emits when extra equi edges
        #: are deferred to the plan's residual filter: ``est_rows``
        #: folds every crossing edge's selectivity in (the quantity the
        #: DP ranks with), but the hash join only applies its own edge,
        #: so the materialized count is compared against this instead.
        self.est_out_rows: float | None = None
        #: Pre-Bloom estimated build/probe input rows, for CPU pricing.
        self.est_build_rows: float = 0.0
        self.est_probe_rows: float = 0.0
        #: Estimated local CPU of this join (with / without Bloom build).
        self.est_cpu: float = 0.0
        self.est_cpu_plain: float = 0.0
        #: Equality edges beyond the hash edge, deferred to a residual
        #: filter above the join tree.
        self.extra_edges: list = []
        self.tables: frozenset = getattr(build, "tables", frozenset()) | getattr(
            probe, "tables", frozenset()
        )

    def children(self):
        return (self.build, self.probe)

    def describe(self) -> str:
        tag = " streamed" if self.stream_probe else ""
        kind = "" if self.join_type == "inner" else f"{self.join_type} "
        cond = f" on ({self.match_cond.to_sql()})" if self.match_cond else ""
        src = f" ({self.provenance})" if self.provenance else ""
        return (
            f"{kind}hash-join [{self.build_key} = {self.probe_key}]"
            f"{cond}{tag}{src}"
        )

    def _bloom_keys(self, build_names, build_rows):
        if self.join_type not in ("inner", "semi"):
            # Left/anti joins must see every probe row: a Bloom filter on
            # the probe scan would drop exactly the rows they preserve.
            return None
        if not (self.bloom and isinstance(self.probe, ScanNode)
                and self.probe.pushdown):
            return None
        idx = _index_of(build_names, self.build_key)
        keys = [r[idx] for r in build_rows if r[idx] is not None]
        return keys or None

    def _match_pred(self, build_names, probe_names):
        if self.match_cond is None:
            return None
        from repro.expr.compiler import compile_predicate

        combined = [*build_names, *probe_names]
        return compile_predicate(
            self.match_cond, {name: i for i, name in enumerate(combined)}
        )

    def run(self, state: ExecState):
        start = perf_counter()
        build_names, build_rows = _materialize_node(self.build, state)
        bloom_keys = self._bloom_keys(build_names, build_rows)
        if self.stream_probe:
            probe_names, probe_stream = _run_node(self.probe, state, bloom_keys)
            names, joined = hash_join_batches(
                build_rows, build_names, probe_stream, probe_names,
                self.build_key, self.probe_key, state.tally,
                join_type=self.join_type,
                match_pred=self._match_pred(build_names, probe_names),
            )
            _add_wall(self, perf_counter() - start)  # build phase
            return names, _counted(self, joined)     # + streamed probe
        probe_names, probe_rows = _materialize_node(self.probe, state, bloom_keys)
        # Inner joins hash the actually-smaller side, as the chained
        # executor did; Bloom placement stays per the plan's orientation.
        # Non-inner joins (and residual match conditions) have asymmetric
        # sides, so the planned orientation is kept.
        if self.join_type == "inner" and self.match_cond is None and len(
            build_rows
        ) <= len(probe_rows):
            out = state.tally.add(hash_join(
                build_rows, build_names, probe_rows, probe_names,
                self.build_key, self.probe_key,
            ))
        elif self.join_type == "inner" and self.match_cond is None:
            out = state.tally.add(hash_join(
                probe_rows, probe_names, build_rows, build_names,
                self.probe_key, self.build_key,
            ))
        else:
            out = state.tally.add(hash_join(
                build_rows, build_names, probe_rows, probe_names,
                self.build_key, self.probe_key,
                join_type=self.join_type,
                match_pred=self._match_pred(build_names, probe_names),
            ))
        self.actual_rows = len(out.rows)
        _add_wall(self, perf_counter() - start)
        return out.column_names, iter([out.rows])


class MaterializedNode(PlanNode):
    """A subtree that already executed: its rows live in memory.

    The adaptive executor replaces each pipeline breaker it finishes
    with one of these, so the *remaining* tree can be re-planned around
    a cardinality that is now a fact rather than an estimate.  Running
    one is free — no requests, no phases, no CPU — because everything
    was metered when the wrapped ``source`` subtree actually ran.
    """

    def __init__(
        self,
        rows: list[tuple],
        names: Sequence[str],
        tables: Iterable[str],
        source: PlanNode | None = None,
    ):
        self.rows = rows
        self.names = list(names)
        self.tables: frozenset = frozenset(tables)
        #: The executed subtree this result came from (reporting +
        #: feedback harvesting descend into it; execution does not).
        self.source = source
        self.est_rows = float(len(rows))
        self.est_cost = None
        self.actual_rows = len(rows)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.source,) if self.source is not None else ()

    def describe(self) -> str:
        label = "+".join(sorted(self.tables))
        return f"materialized[{label}] rows={len(self.rows)}"

    def run(self, state: ExecState):
        return list(self.names), iter([self.rows])


class CrossProductNode(PlanNode):
    """Cartesian product for small disconnected FROM lists.

    The build side materializes; every probe-side batch fans out against
    it.  CPU is charged like a degenerate hash join: one build touch per
    build row, one probe touch per emitted row.
    """

    def __init__(self, build: PlanNode, probe: PlanNode,
                 stream_probe: bool = False):
        self.build = build
        self.probe = probe
        self.stream_probe = stream_probe
        self.est_rows = None
        self.est_cost = None
        self.actual_rows = None
        self.est_build_rows: float = 0.0
        self.est_probe_rows: float = 0.0
        self.est_cpu: float = 0.0
        self.est_cpu_plain: float = 0.0
        self.extra_edges: list = []
        self.tables: frozenset = getattr(build, "tables", frozenset()) | getattr(
            probe, "tables", frozenset()
        )

    def children(self):
        return (self.build, self.probe)

    def describe(self) -> str:
        tag = " streamed" if self.stream_probe else ""
        return f"cross-product{tag}"

    def run(self, state: ExecState):
        start = perf_counter()
        build_names, build_rows = _materialize_node(self.build, state)
        state.tally.add_seconds(
            len(build_rows) * SERVER_CPU_PER_ROW["hash_build"]
        )
        if self.stream_probe:
            probe_names, probe_stream = _run_node(self.probe, state, None)
        else:
            probe_names, probe_rows = _materialize_node(self.probe, state)
            probe_stream = iter([probe_rows])
        out_names = [*build_names, *probe_names]
        if len(set(n.lower() for n in out_names)) != len(out_names):
            raise PlanError(
                f"cross product would produce duplicate column names:"
                f" {out_names}"
            )

        def product() -> Iterator[Batch]:
            per_row = SERVER_CPU_PER_ROW["hash_probe"]
            for batch in probe_stream:
                out: Batch = [
                    build_row + row for row in batch for build_row in build_rows
                ]
                state.tally.add_seconds(len(out) * per_row)
                yield out

        _add_wall(self, perf_counter() - start)  # build phase
        return out_names, _counted(self, product())


class FilterNode(PlanNode):
    """Local predicate over the stream (residual cross-table filters)."""

    def __init__(self, child: PlanNode, predicate: ast.Expr):
        self.child = child
        self.predicate = predicate
        self.est_rows = None
        self.est_cost = None
        self.actual_rows = None

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"filter [{self.predicate.to_sql()}]"

    def run(self, state: ExecState):
        names, stream = _run_node(self.child, state)
        return names, _counted(
            self, filter_batches(stream, names, self.predicate, state.tally)
        )


class ProjectNode(PlanNode):
    """Evaluate the select list per row (streaming)."""

    def __init__(self, child: PlanNode, items: Sequence[ast.SelectItem]):
        self.child = child
        self.items = list(items)
        self.est_rows = None
        self.est_cost = None
        self.actual_rows = None

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        rendered = ", ".join(i.to_sql() for i in self.items)
        if len(rendered) > 60:
            rendered = rendered[:57] + "..."
        return f"project [{rendered}]"

    def run(self, state: ExecState):
        names, stream = _run_node(self.child, state)
        out_names = projected_names(names, self.items)
        return out_names, _counted(
            self, project_batches(stream, names, self.items, state.tally)
        )


class GroupByNode(PlanNode):
    """Hash aggregation (pipeline breaker)."""

    def __init__(
        self,
        child: PlanNode,
        group_exprs: Sequence[ast.Expr],
        agg_items: Sequence[ast.SelectItem],
    ):
        self.child = child
        self.group_exprs = tuple(group_exprs)
        self.agg_items = list(agg_items)
        self.est_rows = None
        self.est_cost = None
        self.actual_rows = None

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        groups = ", ".join(e.to_sql() for e in self.group_exprs) or "-"
        return f"group-by [{groups}] aggs={len(self.agg_items)}"

    def run(self, state: ExecState):
        names, stream = _run_node(self.child, state)
        start = perf_counter()
        out = state.tally.add(
            group_by_batches(stream, names, self.group_exprs, self.agg_items)
        )
        self.actual_rows = len(out.rows)
        _add_wall(self, perf_counter() - start)
        return out.column_names, iter([out.rows])


class SortNode(PlanNode):
    """Full sort (pipeline breaker)."""

    def __init__(self, child: PlanNode, order_by: Sequence[ast.OrderItem]):
        self.child = child
        self.order_by = tuple(order_by)
        self.est_rows = None
        self.est_cost = None
        self.actual_rows = None

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(o.to_sql() for o in self.order_by)
        return f"sort [{keys}]"

    def run(self, state: ExecState):
        names, stream = _run_node(self.child, state)
        start = perf_counter()
        out = state.tally.add(sort_batches(stream, names, self.order_by))
        self.actual_rows = len(out.rows)
        _add_wall(self, perf_counter() - start)
        return out.column_names, iter([out.rows])


class TopKNode(PlanNode):
    """ORDER BY + LIMIT as a bounded heap (pipeline breaker)."""

    def __init__(
        self, child: PlanNode, order_by: Sequence[ast.OrderItem], k: int
    ):
        self.child = child
        self.order_by = tuple(order_by)
        self.k = k
        self.est_rows = None
        self.est_cost = None
        self.actual_rows = None

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(o.to_sql() for o in self.order_by)
        return f"top-k [{keys}] k={self.k}"

    def run(self, state: ExecState):
        names, stream = _run_node(self.child, state)
        start = perf_counter()
        out = state.tally.add(
            top_k_batches(stream, names, self.order_by, self.k)
        )
        self.actual_rows = len(out.rows)
        _add_wall(self, perf_counter() - start)
        return out.column_names, iter([out.rows])


class LimitNode(PlanNode):
    """Streaming LIMIT: stops pulling upstream once satisfied."""

    def __init__(self, child: PlanNode, n: int):
        self.child = child
        self.n = n
        self.est_rows = None
        self.est_cost = None
        self.actual_rows = None

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"limit [{self.n}]"

    def run(self, state: ExecState):
        names, stream = _run_node(self.child, state)
        return names, _counted(self, limit_batches(stream, self.n))


def q_error(est: float | None, actual: int | None) -> float:
    """Smoothed quotient error: ``max((est+1)/(act+1), (act+1)/(est+1))``.

    1.0 is a perfect estimate; the +1 keeps empty results finite.  The
    one formula behind both the EXPLAIN-ANALYZE report column
    (:func:`collect_actuals`) and the adaptive executor's re-planning
    trigger, so the reported number is always the number that decided.
    """
    if est is None or actual is None:
        return 1.0
    e, a = est + 1.0, actual + 1.0
    return max(e / a, a / e)


def tree_signature(node: PlanNode):
    """``(tables_with_predicates, applied_edges)`` of a hash-join subtree.

    The semantic identity of a join result: which base tables it joins,
    the single-table predicate pushed into each scan, and the hash edges
    applied inside.  Bloom predicates are excluded on purpose — they
    only pre-drop rows the join drops anyway — so Bloom and non-Bloom
    plans over the same query share feedback.  Returns ``None`` for
    shapes feedback does not model (cross products, pushed aggregates).
    """
    tables: list[tuple[str, ast.Expr | None]] = []
    edges: list[tuple[str, str]] = []

    def collect(n: PlanNode) -> bool:
        if isinstance(n, MaterializedNode):
            return n.source is not None and collect(n.source)
        if isinstance(n, ScanNode):
            tables.append((n.table.name, n.predicate))
            return True
        if isinstance(n, HashJoinNode):
            if n.join_type != "inner" or n.match_cond is not None:
                # Semi/anti/outer joins have different output-cardinality
                # semantics; keep their trees out of the shared feedback.
                return False
            edges.append((n.build_key, n.probe_key))
            return collect(n.build) and collect(n.probe)
        return False

    if not collect(node):
        return None
    return tables, edges


def _adaptive_leaves(node: PlanNode) -> list[PlanNode]:
    """The not-yet-joined relations of a working tree: pending scans and
    finished materializations."""
    if isinstance(node, (ScanNode, MaterializedNode)):
        return [node]
    return [
        leaf
        for child in (node.build, node.probe)
        for leaf in _adaptive_leaves(child)
    ]


def _join_extra_edges(node: PlanNode) -> list:
    """Extra (non-hash) equi edges of the *live* joins in a working tree.

    Materialized results are opaque here: their deferred edges were part
    of the originally planned tree, so the plan-time residual filter
    already covers them.
    """
    if isinstance(node, (ScanNode, MaterializedNode)):
        return []
    out = list(getattr(node, "extra_edges", ()))
    out += _join_extra_edges(node.build) + _join_extra_edges(node.probe)
    return out


def _tree_shape_key(node: PlanNode):
    """Hashable shape identity used to detect a no-op re-plan."""
    if isinstance(node, MaterializedNode):
        return ("m", tuple(sorted(node.tables)))
    if isinstance(node, ScanNode):
        return ("s", node.table.name)
    return (
        "j", node.build_key, node.probe_key,
        _tree_shape_key(node.build), _tree_shape_key(node.probe),
    )


def _adaptive_label(node: PlanNode) -> str:
    if isinstance(node, MaterializedNode):
        return "[" + "+".join(sorted(node.tables)) + "]"
    if isinstance(node, ScanNode):
        return node.table.name
    return f"({_adaptive_label(node.build)} >< {_adaptive_label(node.probe)})"


def _next_adaptive_step(root: "HashJoinNode"):
    """The next materialization the static recursive executor would run.

    Mirrors :meth:`HashJoinNode.run` order exactly — build subtree fully
    first, then the probe subtree — so an adaptive execution in which no
    re-plan fires issues the same requests, in the same order, as the
    static plan.  Returns ``(action, join, parent)`` where ``action`` is
    ``"build_scan"`` (materialize ``join.build``, a leaf scan),
    ``"join"`` (both children ready; run the whole inner join) or
    ``"final"`` (only the streaming spine remains).
    """
    node, parent = root, None
    while True:
        build = node.build
        if isinstance(build, HashJoinNode):
            node, parent = build, node
            continue
        if not isinstance(build, MaterializedNode):
            return ("build_scan", node, parent)
        probe = node.probe
        if isinstance(probe, HashJoinNode):
            node, parent = probe, node
            continue
        if parent is None:
            return ("final", node, None)
        return ("join", node, parent)


class AdaptiveJoinNode(PlanNode):
    """Mid-flight re-optimizing wrapper around a multiway hash-join tree.

    Executes the planned tree on the same materialization schedule the
    recursive executor follows (deepest build first), checking each
    completed pipeline breaker's observed cardinality against its
    estimate.  While every Q-error stays at or under ``threshold`` the
    execution is byte-identical — rows, bytes, requests, runtime, cost —
    to the static plan.  When a build comes out badly misestimated, the
    observed cardinality is fed into the join-order search and the bushy
    DP re-runs over the *remaining* relations (the fresh materialization
    plus every not-yet-started scan); the winning tree is spliced in and
    execution continues.  Already-issued requests and billed bytes are
    never revisited: re-planning only reorders work not yet started.
    """

    def __init__(
        self,
        child: PlanNode,
        search,
        threshold: float,
        objective: str = "cost",
    ):
        self.child = child
        #: The session's :class:`~repro.optimizer.joinorder.JoinOrderSearch`,
        #: re-used for mid-flight DP runs (duck-typed to avoid a planner
        #: import cycle).
        self.search = search
        self.threshold = float(threshold)
        self.objective = objective
        self.events: list[dict] = []
        self.replans = 0
        self.est_rows = child.est_rows
        self.est_cost = None
        self.actual_rows = None
        self.tables: frozenset = getattr(child, "tables", frozenset())
        #: Extra equi edges the *planned* tree deferred — the planner put
        #: them in the residual filter above this node.  A re-planned
        #: tree may defer different edges; the delta is applied here.
        self._known_extras = set(_join_extra_edges(child))
        self._missing_residual: list = []

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"adaptive [threshold={self.threshold:g} replans={self.replans}]"

    def run(self, state: ExecState):
        tree = self.child
        if not isinstance(tree, HashJoinNode):
            return _run_node(tree, state)
        start = perf_counter()
        while True:
            action, join, parent = _next_adaptive_step(tree)
            if action == "final":
                break
            if action == "build_scan":
                scan = join.build
                names, rows = scan.run_materialized(state)
                done = MaterializedNode(rows, names, scan.tables, source=scan)
                join.build = done
                tree = self._check(tree, done, scan.est_rows)
            else:
                names, stream = join.run(state)
                rows = materialize(stream)
                done = MaterializedNode(rows, names, join.tables, source=join)
                if parent.build is join:
                    parent.build = done
                else:
                    parent.probe = done
                # Joins with deferred extra equi edges emit *pre-residual*
                # rows; compare against the commensurate estimate so an
                # accurately-planned cyclic join never fires.
                est = (
                    join.est_out_rows
                    if join.est_out_rows is not None else join.est_rows
                )
                tree = self._check(tree, done, est)
        self.child = tree
        names, stream = tree.run(state)
        if self._missing_residual:
            residual = ast.and_join(
                [edge.to_expr() for edge in self._missing_residual]
            )
            stream = filter_batches(stream, names, residual, state.tally)
        _add_wall(self, perf_counter() - start)  # materialization schedule
        return names, _counted(self, stream)     # + final spine drain

    def _check(
        self, tree: "HashJoinNode", done: MaterializedNode,
        est_rows: float | None,
    ) -> "HashJoinNode":
        """Record the estimate-vs-actual outcome; re-plan when it is bad."""
        q = q_error(est_rows, done.actual_rows)
        event = {
            "tables": sorted(done.tables),
            "est_rows": round(est_rows, 1) if est_rows is not None else None,
            "actual_rows": done.actual_rows,
            "q_error": round(q, 3),
            "replanned": False,
        }
        self.events.append(event)
        if q <= self.threshold:
            return tree
        leaves = _adaptive_leaves(tree)
        if len(leaves) < 3:
            event["note"] = "no alternative join order remains"
            return tree
        try:
            new_tree = self.search.replan_remaining(leaves, self.objective)
        except PlanError as exc:
            event["note"] = f"replan failed: {exc}"
            return tree
        if _tree_shape_key(new_tree) == _tree_shape_key(tree):
            event["note"] = "replan confirmed the current tree"
            return tree
        new_tree.stream_probe = True
        if isinstance(new_tree.probe, ScanNode):
            new_tree.probe.phase_label = (
                f"probe-scan-{new_tree.probe.table.name}"
            )
        covered = self._known_extras | set(self._missing_residual)
        self._missing_residual.extend(
            edge for edge in _join_extra_edges(new_tree) if edge not in covered
        )
        self.replans += 1
        event["replanned"] = True
        event["old_tree"] = _adaptive_label(tree)
        event["new_tree"] = _adaptive_label(new_tree)
        return new_tree


def _run_node(node: PlanNode, state: ExecState, bloom_keys=None):
    if isinstance(node, ScanNode):
        return node.run(state, bloom_keys)
    return node.run(state)


def _materialize_node(node: PlanNode, state: ExecState, bloom_keys=None):
    """Drain a subtree into a row list (hash-build / cross-build sides)."""
    if isinstance(node, ScanNode):
        return node.run_materialized(state, bloom_keys)
    names, stream = node.run(state)
    return names, materialize(stream)


# ----------------------------------------------------------------------
# the local tail (GROUP BY / ORDER BY / LIMIT), as plan nodes
# ----------------------------------------------------------------------

def agg_items(query: ast.Query) -> list[ast.SelectItem]:
    """Aggregate-bearing select items (group columns come from GROUP BY)."""
    return [
        item
        for item in query.select_items
        if not isinstance(item.expr, ast.Star)
        and ast.contains_aggregate(item.expr)
    ]


def unalias(expr: ast.Expr, select_items) -> ast.Expr:
    """Substitute output-alias references with their select expressions.

    Recurses through the whole expression (``ORDER BY k + l_tax`` with
    ``... AS k`` rewrites the ``k`` inside the sum), matching SQL's rule
    that ORDER BY names resolve against the select list first.
    """
    aliases = {
        item.alias.lower(): item.expr for item in select_items if item.alias
    }

    def substitute(column: ast.Column) -> ast.Expr:
        if column.table is None:
            replacement = aliases.get(column.name.lower())
            if replacement is not None:
                return replacement
        return column

    return ast.map_columns(expr, substitute)


def _rewrite_having(
    query: ast.Query, items: list[ast.SelectItem]
) -> tuple[ast.Expr, list[ast.SelectItem]]:
    """Rewrite HAVING into a predicate over the group-by output schema.

    Aggregates already produced by the select list become references to
    their output columns; aggregates appearing only in HAVING get hidden
    ``__having_N`` items (computed by the GroupByNode, filtered on, then
    projected away).  Group-key columns pass through by name.
    """
    having = unalias(query.having, query.select_items)
    known: list[tuple[ast.Expr, str]] = [
        (item.expr, item.output_name(ordinal))
        for ordinal, item in enumerate(items, start=1)
    ]
    hidden: list[ast.SelectItem] = []

    def rewrite(expr: ast.Expr) -> ast.Expr:
        for src, name in known:
            if expr == src:
                return ast.Column(name)
        if isinstance(expr, ast.Aggregate):
            name = f"__having_{len(hidden)}"
            hidden.append(ast.SelectItem(expr, alias=name))
            known.append((expr, name))
            return ast.Column(name)
        if isinstance(expr, ast.Unary):
            return ast.Unary(expr.op, rewrite(expr.operand))
        if isinstance(expr, ast.Binary):
            return ast.Binary(expr.op, rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, ast.FuncCall):
            return ast.FuncCall(expr.name, tuple(rewrite(a) for a in expr.args))
        if isinstance(expr, ast.Cast):
            return ast.Cast(rewrite(expr.operand), expr.type_name)
        if isinstance(expr, ast.Case):
            return ast.Case(
                tuple((rewrite(c), rewrite(v)) for c, v in expr.whens),
                None if expr.default is None else rewrite(expr.default),
            )
        if isinstance(expr, ast.InList):
            return ast.InList(
                rewrite(expr.operand),
                tuple(rewrite(i) for i in expr.items), expr.negated,
            )
        if isinstance(expr, ast.Between):
            return ast.Between(
                rewrite(expr.operand), rewrite(expr.low), rewrite(expr.high),
                expr.negated,
            )
        if isinstance(expr, ast.Like):
            return ast.Like(rewrite(expr.operand), rewrite(expr.pattern),
                            expr.negated)
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(rewrite(expr.operand), expr.negated)
        return expr

    return rewrite(having), hidden


def _group_output_projection(
    query: ast.Query, items: list[ast.SelectItem], has_hidden: bool
) -> list[ast.SelectItem] | None:
    """Projection restoring select-list column order over group-by output.

    The GroupByNode always emits group keys first, then aggregate items;
    when the select list interleaves them (TPC-H Q3's ``key, SUM(...),
    date, priority``) — or hidden HAVING aggregates must be dropped — a
    ProjectNode reorders by output-column reference.  Returns ``None``
    when the group-by output already matches (the historical fast path,
    byte-identical to prior releases).
    """
    group_names = [
        g.name if isinstance(g, ast.Column) else f"group_{i}"
        for i, g in enumerate(query.group_by)
    ]
    visible = group_names + [
        item.output_name(ordinal) for ordinal, item in enumerate(items, start=1)
    ]
    proj: list[ast.SelectItem] = []
    for item in query.select_items:
        if not isinstance(item.expr, ast.Star) and ast.contains_aggregate(
            item.expr
        ):
            try:
                j = items.index(item)
            except ValueError:
                return None
            proj.append(ast.SelectItem(ast.Column(item.output_name(j + 1))))
        elif isinstance(item.expr, ast.Column):
            proj.append(ast.SelectItem(ast.Column(item.expr.name)))
        else:
            match = next(
                (i for i, g in enumerate(query.group_by) if g == item.expr),
                None,
            )
            if match is None:
                return None
            proj.append(ast.SelectItem(ast.Column(group_names[match])))
    names = [p.expr.name.lower() for p in proj]
    if not has_hidden and names == [v.lower() for v in visible]:
        return None
    return proj


def attach_local_tail(
    node: PlanNode, query: ast.Query, input_names: Sequence[str]
) -> PlanNode:
    """GROUP BY / aggregate / ORDER BY / LIMIT as plan nodes above ``node``.

    Mirrors the streaming planner's tail exactly: row-at-a-time operators
    (projection, LIMIT) stay streaming; pipeline breakers (group-by,
    sort, top-K) drain internally.  ``ORDER BY`` keys outside the select
    list defer the projection until after the sort so the keys stay in
    scope; alias references in the deferred sort are rewritten to their
    select expressions.  ``input_names`` are the plan-time column names
    of ``node``'s output (presence only — runtime order may differ when
    an inner join swaps its hash sides).
    """
    deferred_projection = False
    if query.group_by:
        items = agg_items(query)
        having_pred, hidden = (None, [])
        if query.having is not None:
            having_pred, hidden = _rewrite_having(query, items)
        node = GroupByNode(node, tuple(query.group_by), items + hidden)
        if having_pred is not None:
            node = FilterNode(node, having_pred)
        reorder = _group_output_projection(query, items, bool(hidden))
        if reorder is not None:
            node = ProjectNode(node, reorder)
    elif any(
        not isinstance(i.expr, ast.Star) and ast.contains_aggregate(i.expr)
        for i in query.select_items
    ):
        items = list(query.select_items)
        having_pred, hidden = (None, [])
        if query.having is not None:
            having_pred, hidden = _rewrite_having(query, items)
        node = GroupByNode(node, (), items + hidden)
        if having_pred is not None:
            node = FilterNode(node, having_pred)
            if hidden:
                node = ProjectNode(node, [
                    ast.SelectItem(ast.Column(item.output_name(i)))
                    for i, item in enumerate(items, start=1)
                ])
    elif not all(isinstance(i.expr, ast.Star) for i in query.select_items):
        out_names = {
            n.lower()
            for n in projected_names(list(input_names), query.select_items)
        }
        deferred_projection = any(
            ref.lower() not in out_names
            for item in query.order_by
            for ref in ast.referenced_columns(item.expr)
        )
        if not deferred_projection:
            node = ProjectNode(node, query.select_items)

    order_by = query.order_by
    if deferred_projection:
        order_by = tuple(
            ast.OrderItem(unalias(o.expr, query.select_items), o.descending)
            for o in order_by
        )
    if order_by:
        if query.limit is not None:
            node = TopKNode(node, order_by, query.limit)
        else:
            node = SortNode(node, order_by)
    elif query.limit is not None:
        node = LimitNode(node, query.limit)
    if deferred_projection:
        node = ProjectNode(node, query.select_items)
    return node


# ----------------------------------------------------------------------
# the plan object + the single recursive executor
# ----------------------------------------------------------------------

@dataclass
class PhysicalPlan:
    """A complete physical plan: operator tree + phase-assembly policy."""

    root: PlanNode
    mode: str
    strategy: str
    #: Tables every scan in the plan touches (combined-phase accounting).
    scan_tables: list[TableInfo] = field(default_factory=list)
    #: Phase name for baseline join plans, which meter all scans as one
    #: whole-query phase with formula ingest; ``None`` = per-scan phases.
    combined_label: str | None = None
    #: The mid-flight re-optimization wrapper, when this is an adaptive
    #: plan (``mode="adaptive"`` over a 3+-way equi-join tree).
    adaptive_node: "AdaptiveJoinNode | None" = None

    def describe(self) -> str:
        return render_plan(self.root)


def execute_plan(
    ctx: CloudContext,
    plan: PhysicalPlan,
    mark: int | None = None,
    pre_phases: list[Phase] | None = None,
) -> QueryExecution:
    """Walk the plan tree once, meter it, and finalize the execution.

    This is the single executor behind every planner path.  The root is
    drained into a row list; phases are assembled per the plan's policy;
    all accumulated local CPU lands on the final phase; observed per-node
    cardinalities are recorded into ``details["actuals"]``.

    ``mark``/``pre_phases`` let the planner charge subquery
    pre-executions to the enclosing query: the mark was taken before the
    subqueries ran (so their requests bill to this execution) and their
    phases prepend to this plan's own.
    """
    state = ExecState(ctx, combined=plan.combined_label is not None)
    if mark is None:
        mark = ctx.begin_query()
    # The combined baseline phase spans only this plan's own requests;
    # pre-executed subqueries carry their own phases in ``pre_phases``.
    query_mark = ctx.metrics.mark()
    names, stream = _run_node(plan.root, state)
    rows = materialize(stream)
    if plan.combined_label is not None:
        n_records = sum(t.num_rows for t in plan.scan_tables)
        n_fields = sum(
            t.num_rows * len(t.schema) for t in plan.scan_tables
        )
        phases = (pre_phases or []) + [phase_since(
            ctx, query_mark, plan.combined_label,
            streams=sum(t.partitions for t in plan.scan_tables),
            server_cpu_seconds=state.tally.seconds,
            ingest=(n_records, n_fields / max(n_records, 1)),
        )]
    else:
        phases = (pre_phases or []) + state.phases
        if state.pending is not None:
            pending = state.pending
            phases.append(phase_since(
                ctx, pending.mark, pending.label, streams=pending.streams,
                ingest=(pending.counter.rows, pending.ncols),
            ))
        phases[-1].server_cpu_seconds += state.tally.seconds
    execution = ctx.finalize(mark, rows, names, phases, strategy=plan.strategy)
    execution.details["plan"] = render_plan(plan.root)
    execution.details["actuals"] = collect_actuals(plan.root)
    execution.details["operator_times"] = collect_operator_times(plan.root)
    if plan.adaptive_node is not None:
        adaptive = plan.adaptive_node
        execution.details["adaptive"] = {
            "threshold": adaptive.threshold,
            "replans": adaptive.replans,
            "events": list(adaptive.events),
        }
    feedback = getattr(ctx, "feedback", None)
    if feedback is not None:
        # Close the loop: every measured cardinality becomes a learned
        # estimate for the rest of the session, for free.
        from repro.optimizer.feedback import harvest_plan

        harvest_plan(feedback, plan.root)
    result_cache = getattr(ctx, "result_cache", None)
    if result_cache is not None:
        # Same walk, other direction: fully-drained pushed scans and
        # aggregates become reusable cache entries (LIMIT-cut subtrees
        # excluded), and the per-query outcome counters surface next to
        # the session totals.
        from repro.optimizer.cache import collect_statuses
        from repro.optimizer.cache import harvest_plan as harvest_cache

        stored = harvest_cache(result_cache, plan.root)
        details = collect_statuses(plan.root)
        details["stores"] = stored
        details["session"] = result_cache.stats.summary()
        execution.details["cache"] = details
    return execution


# ----------------------------------------------------------------------
# cost-model hooks: predicted phases + cumulative cost annotations
# ----------------------------------------------------------------------

def _pruned_scan_profile(n: ScanNode) -> tuple[int, float, float]:
    """(streams, scanned bytes, scanned-row fraction) after pruning.

    Exact per-partition sizes and row counts are used when the catalog
    has them; tables registered by hand fall back to a pro-rata split so
    the prediction still shrinks with the partition count.
    """
    keep = n.keep_partitions
    total = max(n.table.partitions, 1)
    if keep is None:
        return n.table.partitions, float(n.table.total_bytes), 1.0
    sizes = n.table.partition_bytes
    if len(sizes) == n.table.partitions:
        scan_bytes = float(sum(sizes[i] for i in keep))
    else:
        scan_bytes = float(n.table.total_bytes) * len(keep) / total
    counts = n.table.partition_rows
    if len(counts) == n.table.partitions and n.table.num_rows:
        row_frac = sum(counts[i] for i in keep) / n.table.num_rows
    else:
        row_frac = len(keep) / total
    return len(keep), scan_bytes, row_frac


def predicted_phases(node: PlanNode, ctx: CloudContext | None = None) -> list[Phase]:
    """Assemble the predicted phases of a join subtree, node by node.

    Mirrors what :func:`execute_plan` meters for the same tree: one
    phase per scan (with Bloom-reduced returned rows where a parent join
    attached a Bloom predicate), and each join's local CPU charged to the
    last phase emitted before it completes.  The join-order search prices
    candidate trees by running these through
    :meth:`~repro.optimizer.cost.CostModel.price_phases`, so the
    context's calibrated PerfModel/Pricing carry over unchanged.

    When ``ctx`` carries a warm semantic cache, pushdown scans that
    would answer from it are priced at zero requests and bytes — the
    chooser and the join-order DP therefore *prefer* cacheable plans
    exactly when the cache would fire.
    """
    from repro.optimizer.cost import _phase

    cache = getattr(ctx, "result_cache", None) if ctx is not None else None
    phases: list[Phase] = []

    def walk(n: PlanNode) -> None:
        if isinstance(n, MaterializedNode):
            # Already executed (and billed): contributes no future work.
            return
        if isinstance(n, ScanNode):
            stats = n.table.stats_or_default()
            est = (
                n.est_rows if n.est_rows is not None
                else float(n.table.num_rows)
            )
            if n.pushdown:
                if (
                    cache is not None
                    and n.bloom_attr is None
                    and cache.peek_scan(
                        n.table.name, n.predicate, n.columns
                    ) is not None
                ):
                    # Replay is local: no requests, no scanned bytes,
                    # no server-side ingest.
                    phases.append(_phase(n.phase_label, 1, requests=0.0))
                    return
                streams, scan_bytes, row_frac = _pruned_scan_profile(n)
                phases.append(_phase(
                    n.phase_label, streams,
                    scan_bytes=scan_bytes,
                    returned_bytes=est * stats.projected_row_bytes(n.columns),
                    term_evals=n.est_terms * row_frac,
                    records=est,
                    fields=est * max(len(n.columns), 1),
                ))
            else:
                raw = n.table.num_rows
                cpu = (
                    raw * SERVER_CPU_PER_ROW["filter"]
                    if n.predicate is not None else 0.0
                )
                phases.append(_phase(
                    n.phase_label, n.table.partitions,
                    get_bytes=float(n.table.total_bytes),
                    cpu_seconds=cpu,
                    records=raw,
                    fields=raw * len(n.table.schema),
                ))
            return
        if isinstance(n, (HashJoinNode, CrossProductNode)):
            walk(n.build)
            walk(n.probe)
            if phases:
                phases[-1].server_cpu_seconds += n.est_cpu
            elif n.est_cpu:
                # Both inputs already materialized (mid-flight replan
                # candidates): the join's local CPU is still future work
                # and must not vanish from the ranking — carry it on a
                # zero-IO phase.
                phases.append(_phase(
                    "local-join", 1, requests=0.0, cpu_seconds=n.est_cpu,
                ))
            return
        for child in n.children():
            walk(child)

    walk(node)
    return phases


def annotate_costs(root: PlanNode, ctx: CloudContext, catalog) -> None:
    """Fill ``est_cost`` on scan/join/cross nodes: cumulative subtree
    cost priced through the existing CostModel phase machinery."""
    from repro.optimizer.cost import CostModel

    model = CostModel(ctx, catalog)

    def walk(node: PlanNode) -> None:
        for child in node.children():
            walk(child)
        if isinstance(node, (ScanNode, HashJoinNode, CrossProductNode,)):
            phases = predicted_phases(node, ctx)
            if phases:
                node.est_cost = model.price_phases(
                    "node", phases
                ).total_cost

    walk(root)


# ----------------------------------------------------------------------
# tree utilities: shape (de)serialization, labels, cloning
# ----------------------------------------------------------------------

def clone_tree(node: PlanNode) -> PlanNode:
    """Deep-copy a join subtree (scan/join/cross nodes only).

    The join-order search memoizes the best subtree per table subset;
    candidates embedding a memoized subtree clone it first so Bloom
    annotations on one candidate never leak into another.
    """
    if isinstance(node, MaterializedNode):
        # Executed results are immutable facts: candidates share them.
        return node
    if isinstance(node, ScanNode):
        twin = ScanNode(
            node.table, node.columns, node.predicate, node.pushdown,
            node.phase_label, prune=False,
        )
        twin.bloom_attr = node.bloom_attr
        twin.est_rows = node.est_rows
        twin.est_terms = node.est_terms
        twin.est_filtered_rows = node.est_filtered_rows
        twin.keep_partitions = node.keep_partitions
        twin.cache_status = node.cache_status
        return twin
    if isinstance(node, (HashJoinNode, CrossProductNode)):
        build = clone_tree(node.build)
        probe = clone_tree(node.probe)
        if isinstance(node, HashJoinNode):
            twin = HashJoinNode(
                build, probe, node.build_key, node.probe_key,
                bloom=node.bloom, stream_probe=node.stream_probe,
                join_type=node.join_type, match_cond=node.match_cond,
                provenance=node.provenance,
            )
            twin.est_out_rows = node.est_out_rows
        else:
            twin = CrossProductNode(build, probe, node.stream_probe)
        twin.est_rows = node.est_rows
        twin.est_build_rows = node.est_build_rows
        twin.est_probe_rows = node.est_probe_rows
        twin.est_cpu = node.est_cpu
        twin.est_cpu_plain = node.est_cpu_plain
        twin.extra_edges = list(node.extra_edges)
        return twin
    raise PlanError(f"cannot clone plan node {type(node).__name__}")


def serialize_shape(node: PlanNode):
    """Join-subtree shape as nested lists: ``name`` or ``[kind, b, p]``.

    Orientation (build first) is preserved; estimates are not — they are
    recomputed when the shape is rebuilt against a catalog.
    """
    if isinstance(node, ScanNode):
        return node.table.name
    if isinstance(node, MaterializedNode):
        # Mid-flight shapes are descriptive only — a materialized result
        # cannot be rebuilt from a shape against a fresh catalog.
        return ["materialized", sorted(node.tables)]
    if isinstance(node, HashJoinNode):
        kind = "hash" if node.join_type == "inner" else f"hash-{node.join_type}"
        return [kind, serialize_shape(node.build), serialize_shape(node.probe)]
    if isinstance(node, CrossProductNode):
        return ["cross", serialize_shape(node.build), serialize_shape(node.probe)]
    raise PlanError(f"cannot serialize plan node {type(node).__name__}")


def join_leaf_order(node: PlanNode) -> list[str]:
    """Left-deep-equivalent table order of a join subtree, for display.

    A join with exactly one leaf child maps to 'join the deep side
    first, then that leaf' — the order whose forced left-deep execution
    matches this tree.  Genuinely bushy nodes concatenate build then
    probe (display only; no left-deep equivalent exists).
    """
    if isinstance(node, (ScanNode, MaterializedNode)):
        return [_leaf_label(node)]
    build, probe = node.build, node.probe
    build_leaf = isinstance(build, (ScanNode, MaterializedNode))
    probe_leaf = isinstance(probe, (ScanNode, MaterializedNode))
    if build_leaf and probe_leaf:
        return [_leaf_label(build), _leaf_label(probe)]
    if probe_leaf:
        return join_leaf_order(build) + [_leaf_label(probe)]
    if build_leaf:
        return join_leaf_order(probe) + [_leaf_label(build)]
    return join_leaf_order(build) + join_leaf_order(probe)


def _leaf_label(node: PlanNode) -> str:
    if isinstance(node, ScanNode):
        return node.table.name
    return "[" + "+".join(sorted(node.tables)) + "]"


def is_left_deep(node: PlanNode) -> bool:
    """True when the tree has a left-deep-equivalent execution order."""
    if isinstance(node, (ScanNode, MaterializedNode)):
        return True
    if isinstance(node, CrossProductNode):
        return False
    build_leaf = isinstance(node.build, (ScanNode, MaterializedNode))
    probe_leaf = isinstance(node.probe, (ScanNode, MaterializedNode))
    if build_leaf and probe_leaf:
        return True
    if probe_leaf:
        return is_left_deep(node.build)
    if build_leaf:
        return is_left_deep(node.probe)
    return False


def join_tree_label(node: PlanNode) -> str:
    """Compact label: `a >< b >< c` for left-deep, parenthesized for bushy."""
    if isinstance(node, (ScanNode, MaterializedNode)):
        return _leaf_label(node)
    if is_left_deep(node) and not _has_cross(node):
        return " >< ".join(join_leaf_order(node))

    def render(n: PlanNode) -> str:
        if isinstance(n, (ScanNode, MaterializedNode)):
            return _leaf_label(n)
        op = " x " if isinstance(n, CrossProductNode) else " >< "
        return f"({render(n.build)}{op}{render(n.probe)})"

    return render(node)


def _has_cross(node: PlanNode) -> bool:
    if isinstance(node, CrossProductNode):
        return True
    return any(_has_cross(c) for c in node.children())


# ----------------------------------------------------------------------
# EXPLAIN rendering + estimate-vs-actual feedback
# ----------------------------------------------------------------------

def _annotation(node: PlanNode) -> str:
    parts = []
    if node.est_rows is not None:
        parts.append(f"est_rows={node.est_rows:.1f}")
    if node.est_cost is not None:
        parts.append(f"est_cost=${node.est_cost:.6g}")
    return f"  ({', '.join(parts)})" if parts else ""


def render_plan(root: PlanNode) -> str:
    """ASCII tree of the plan with per-node estimate annotations."""
    lines: list[str] = []

    def walk(node: PlanNode, prefix: str, tag: str, is_last: bool,
             is_root: bool) -> None:
        if is_root:
            lines.append(f"{node.describe()}{_annotation(node)}")
            child_prefix = ""
        else:
            branch = "`- " if is_last else "+- "
            lines.append(
                f"{prefix}{branch}{tag}{node.describe()}{_annotation(node)}"
            )
            child_prefix = prefix + ("   " if is_last else "|  ")
        kids = node.children()
        for i, child in enumerate(kids):
            child_tag = ""
            if isinstance(node, (HashJoinNode, CrossProductNode)):
                child_tag = "build: " if i == 0 else "probe: "
            walk(child, child_prefix, child_tag, i == len(kids) - 1, False)

    walk(root, "", "", True, True)
    return "\n".join(lines)


def collect_actuals(root: PlanNode) -> list[dict]:
    """Pre-order per-node cardinality records for ``details["actuals"]``.

    ``q_error`` is the smoothed quotient error
    ``max((est+1)/(actual+1), (actual+1)/(est+1))`` — 1.0 is a perfect
    estimate; the +1 keeps empty results finite.  Nodes that never ran
    (e.g. past a LIMIT cut-off) report ``actual_rows=None``.
    """
    out: list[dict] = []

    def walk(node: PlanNode, depth: int) -> None:
        quotient = None
        if node.est_rows is not None and node.actual_rows is not None:
            quotient = round(q_error(node.est_rows, node.actual_rows), 3)
        out.append({
            "node": node.describe(),
            "depth": depth,
            "est_rows": (
                round(node.est_rows, 1) if node.est_rows is not None else None
            ),
            "actual_rows": node.actual_rows,
            "q_error": quotient,
        })
        for child in node.children():
            walk(child, depth + 1)

    walk(root, 0)
    return out


def _inclusive_seconds(node: PlanNode) -> float:
    """Wall-clock the whole subtree spent producing its output.

    A node's own clock covers everything it pulled while running, which
    excludes :class:`MaterializedNode` children — their work happened
    earlier, on the wrapped source's clock — so those are added back.
    """
    if isinstance(node, MaterializedNode):
        return _inclusive_seconds(node.source) if node.source is not None else 0.0
    total = node.wall_seconds or 0.0
    for child in node.children():
        if isinstance(child, MaterializedNode):
            total += _inclusive_seconds(child)
    return total


def collect_operator_times(root: PlanNode) -> list[dict]:
    """Pre-order per-node wall-clock records for ``details["operator_times"]``.

    ``seconds`` is the subtree-inclusive production time; ``self_seconds``
    subtracts the children's inclusive time, so it is what *this*
    operator cost; ``rows_per_sec`` is output rows over self time.
    Nodes that never ran (past a LIMIT cut-off, or free materialized
    replays) report ``None`` throughout.
    """
    out: list[dict] = []

    def walk(node: PlanNode, depth: int) -> None:
        wall = node.wall_seconds
        if isinstance(node, MaterializedNode) or wall is None:
            seconds = self_seconds = rate = None
        else:
            seconds = _inclusive_seconds(node)
            inside = sum(
                _inclusive_seconds(child)
                for child in node.children()
                if not isinstance(child, MaterializedNode)
            )
            self_seconds = max(wall - inside, 0.0)
            rate = (
                node.actual_rows / self_seconds
                if node.actual_rows and self_seconds > 0.0
                else None
            )
        out.append({
            "node": node.describe(),
            "depth": depth,
            "seconds": round(seconds, 6) if seconds is not None else None,
            "self_seconds": (
                round(self_seconds, 6) if self_seconds is not None else None
            ),
            "rows": node.actual_rows,
            "rows_per_sec": round(rate) if rate is not None else None,
        })
        for child in node.children():
            walk(child, depth + 1)

    walk(root, 0)
    return out


def render_execution_report(execution: QueryExecution) -> str:
    """Estimate-vs-actual table for an executed plan (EXPLAIN ANALYZE).

    Renders the per-node observed cardinalities recorded in
    ``details["actuals"]`` next to the optimizer's estimates, with a
    Q-error column — the groundwork for adaptive reordering.
    """
    actuals = execution.details.get("actuals")
    if not actuals:
        return "(no plan recorded for this execution)"
    # actuals and operator_times walk the same tree pre-order: align by
    # position.
    times = execution.details.get("operator_times") or []
    width = max(len("  " * r["depth"] + r["node"]) for r in actuals)
    width = min(max(width, 20), 72)
    lines = [f"physical plan: {execution.strategy}"]
    lines.append(
        f"  {'operator':<{width}} {'est rows':>12} {'actual':>10}"
        f" {'q-error':>8} {'time':>9} {'rows/s':>10}"
    )
    for i, record in enumerate(actuals):
        name = ("  " * record["depth"] + record["node"])[:width]
        est = (
            f"{record['est_rows']:.1f}" if record["est_rows"] is not None
            else "-"
        )
        actual = (
            str(record["actual_rows"]) if record["actual_rows"] is not None
            else "-"
        )
        q_error = (
            f"{record['q_error']:.2f}" if record["q_error"] is not None
            else "-"
        )
        timed = times[i] if i < len(times) else {}
        seconds = timed.get("seconds")
        time_s = f"{seconds * 1000:.1f}ms" if seconds is not None else "-"
        rate = timed.get("rows_per_sec")
        rate_s = f"{rate:,}" if rate is not None else "-"
        lines.append(
            f"  {name:<{width}} {est:>12} {actual:>10} {q_error:>8}"
            f" {time_s:>9} {rate_s:>10}"
        )
    return "\n".join(lines)
