"""The PushdownDB facade: the library's front door.

Bundles a cloud context, a catalog, and the planner behind a small API::

    from repro import PushdownDB

    db = PushdownDB()
    db.load_table("lineitem", rows, schema)
    result = db.execute("SELECT SUM(l_extendedprice) FROM lineitem")
    print(result.rows, result.runtime_seconds, result.cost.total)
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cloud.context import CloudContext, QueryExecution
from repro.cloud.perf import PerfModel
from repro.cloud.pricing import Pricing
from repro.engine.catalog import DEFAULT_PARTITIONS, Catalog, TableInfo, load_table
from repro.planner.planner import plan_and_execute
from repro.storage.schema import TableSchema


class PushdownDB:
    """An embedded PushdownDB instance over a simulated S3."""

    def __init__(
        self,
        perf: PerfModel | None = None,
        pricing: Pricing | None = None,
        bucket: str = "pushdowndb",
        workers: int | None = None,
        batch_size: int | None = None,
        adaptive_threshold: float | None = None,
        prune_partitions: bool = True,
        cache_bytes: int = 0,
    ):
        """Args:
            workers: concurrent partition-scan requests per table scan
                (default serial).  Changes wall-clock only; rows, bytes
                and simulated cost are identical for any setting.
            batch_size: rows per RecordBatch in the streaming executor.
            adaptive_threshold: Q-error bound for ``mode="adaptive"``
                executions — a completed hash build whose observed
                cardinality misses its estimate by more than this factor
                triggers a mid-flight re-plan of the remaining join tree
                (default 2.0).
            prune_partitions: zone-map partition pruning for pushdown
                scans (default on).  Pruned partitions are never
                requested, so request counts and cost drop; results are
                identical with the knob off.
            cache_bytes: byte budget for the session's semantic result
                cache.  ``0`` (the default) disables caching; a positive
                budget lets repeated or subsumed pushed scans and
                aggregates answer from memory with zero metered
                requests.  Reloading a table evicts its entries.
        """
        self.ctx = CloudContext(
            perf=perf, pricing=pricing, workers=workers, batch_size=batch_size,
            adaptive_threshold=adaptive_threshold,
            prune_partitions=prune_partitions,
            cache_bytes=cache_bytes,
        )
        self.catalog = Catalog()
        self.bucket = bucket

    @property
    def feedback(self):
        """The session's learned-selectivity store.

        Populated automatically from every executed plan and every
        metered selectivity probe; consulted by every estimate.  Session
        scoped: two ``PushdownDB`` instances never share feedback.
        """
        return self.ctx.feedback

    def reset_feedback(self) -> None:
        """Forget learned statistics: back to cold-start System-R plans."""
        self.ctx.feedback.reset()

    @property
    def cache(self):
        """The session's semantic result cache, or ``None`` if disabled.

        Enabled with a positive ``cache_bytes``; exposes hit/miss
        counters via ``db.cache.stats`` and the current footprint via
        ``db.cache.current_bytes``.
        """
        return self.ctx.result_cache

    def reset_cache(self) -> None:
        """Drop every cached result: the next execution runs cold."""
        if self.ctx.result_cache is not None:
            self.ctx.result_cache.clear()

    # ------------------------------------------------------------------
    # data loading
    # ------------------------------------------------------------------
    def load_table(
        self,
        name: str,
        rows: Sequence[tuple],
        schema: TableSchema,
        partitions: int = DEFAULT_PARTITIONS,
        data_format: str = "csv",
        index_columns: Iterable[str] = (),
    ) -> TableInfo:
        """Partition ``rows`` into S3 objects and register the table."""
        return load_table(
            self.ctx,
            self.catalog,
            name,
            rows,
            schema,
            bucket=self.bucket,
            partitions=partitions,
            data_format=data_format,
            index_columns=index_columns,
        )

    def table(self, name: str) -> TableInfo:
        return self.catalog.get(name)

    def table_names(self) -> list[str]:
        return self.catalog.table_names()

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def execute(
        self, sql: str, mode: str = "optimized", strategy: str | None = None
    ) -> QueryExecution:
        """Run a SQL query.

        Args:
            sql: a SELECT over one or more tables (see
                :mod:`repro.planner.planner` for the supported subset);
                multi-table queries are equi-join chains whose join
                order the cost-based search picks automatically.
            mode: ``"optimized"`` uses the paper's pushdown strategies;
                ``"baseline"`` loads whole tables with plain GETs;
                ``"auto"`` lets the cost-based optimizer pick whichever
                the statistics predict cheaper (the per-candidate
                estimates land in ``execution.details["optimizer"]``);
                ``"adaptive"`` runs the optimized plan with mid-flight
                join re-optimization — misestimated hash builds
                (Q-error beyond ``adaptive_threshold``) re-plan the
                remaining tree around the observed cardinality, and
                accurate estimates execute byte-identically to
                ``"optimized"`` (re-plan events land in
                ``execution.details["adaptive"]``).
            strategy: alias for ``mode`` matching the CLI's
                ``--strategy`` flag; wins when both are given.
        """
        return plan_and_execute(
            self.ctx, self.catalog, sql, strategy if strategy is not None else mode
        )

    def explain(self, sql: str) -> str:
        """The optimizer's EXPLAIN report for ``sql``.

        Lists every candidate plan's predicted requests, bytes, runtime
        and dollar cost, and marks the pick.  For multi-table queries
        the report also carries the join-order search's candidate table
        (each considered tree with its predicted rows, runtime and
        cost).  The picked mode's physical operator tree is rendered
        below the candidate table, annotated with per-node ``est_rows``
        and cumulative ``est_cost``.  Plan building itself never touches
        storage, with one exception: queries with subqueries or derived
        tables pre-execute those legs (decorrelation joins against their
        actual result), so their scans run and are billed to the
        session.  Decorrelated joins render with their provenance, e.g.
        ``semi hash-join [...] (decorrelated EXISTS)``.
        """
        from repro.optimizer.chooser import choose_planner_mode
        from repro.planner.planner import build_plan
        from repro.planner.subquery import needs_rewrite, prepare_query
        from repro.sqlparser.parser import parse

        query = parse(sql)
        prepared = None
        if needs_rewrite(query):
            prepared = prepare_query(self.ctx, self.catalog, query, "optimized")
            query = prepared.query
        if prepared is not None and prepared.derived_rows is not None:
            plan = build_plan(
                self.ctx, self.catalog, query, "optimized", prepared=prepared
            )
            return f"physical plan (optimized):\n{plan.describe()}"
        choice = choose_planner_mode(
            self.ctx, self.catalog, query,
            extra_refs=prepared.extra_refs if prepared is not None else (),
        )
        plan = build_plan(
            self.ctx, self.catalog, query, choice.picked,
            shape=choice.notes.get("join_tree"),
            prepared=prepared,
        )
        return (
            f"{choice.explain()}\n"
            f"physical plan ({choice.picked}):\n{plan.describe()}"
        )

    def calibrate_to_paper_scale(self, paper_bytes: float = 10e9) -> float:
        """Re-rate the context as if loaded data were paper-sized."""
        total = sum(
            self.catalog.get(t).total_bytes for t in self.catalog.table_names()
        )
        return self.ctx.calibrate_to_paper_scale(total, paper_bytes)
