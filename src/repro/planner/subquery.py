"""Decorrelation: subqueries and outer joins become hash-join wraps.

The planner's core understands only conjunctive comma-joins.  This
module rewrites everything richer — ``EXISTS`` / ``IN (SELECT ...)``,
scalar subqueries, ``LEFT OUTER JOIN ... ON`` and derived tables — into
that core plus a list of :class:`SubJoin` wraps the plan builders stack
on top of the core join tree (below the GROUP BY / ORDER BY tail):

* ``EXISTS`` / ``NOT EXISTS`` → semi / anti hash join against the
  subquery's pre-executed correlation columns;
* ``col IN (SELECT ...)`` → semi join; ``NOT IN`` → NULL-aware anti
  join (``anti_null``), preserving three-valued ``NOT IN`` semantics
  (a NULL in the subquery result empties the output; a NULL probe
  value never qualifies);
* correlated scalar aggregates (``x < (SELECT AVG(y) ... WHERE k =
  outer.k)``) → the subquery is re-grouped by its correlation keys,
  pre-executed, and inner-joined back on those keys; the comparison
  becomes the join's residual ``match_cond`` (rows without a matching
  group drop, exactly like a comparison against a NULL scalar);
* uncorrelated scalar subqueries → pre-executed and inlined as literal
  constants (in WHERE and HAVING);
* ``LEFT OUTER JOIN t ON ...`` → a left hash join whose build side is a
  scan of ``t`` (ON-clause predicates local to ``t`` push into the
  scan; cross-side conditions become ``match_cond``).  Outer WHERE
  conjuncts that reference ``t``'s columns are held back in
  :attr:`PreparedQuery.post_filter` so they see the NULL padding
  (three-valued logic) instead of being pushed into a scan;
* a sole derived table (``FROM (SELECT ...) AS x``) → pre-executed into
  a materialized core the outer query's tail runs over.

Pre-executed legs run through the full planner recursively, so nested
subqueries decorrelate the same way; their phases ride back on
:attr:`PreparedQuery.pre_phases` and the outer query's cost read-out
covers their requests (the outer mark is taken before they run).  Name
collisions between build and probe sides are impossible: every
pre-executed build column is renamed to a ``__sq<N>_`` prefix.  Column
scoping follows SQL: an unqualified name resolves to the innermost
query that has it, so self-correlation needs a renamed table copy (the
TPC-H suite loads ``lineitem2`` etc. for exactly this).

Join-order interaction: wraps are *pinned*.  The join-order DP reorders
only the inner comma-join core; outer/semi/anti edges keep their
syntactic position on top of it, which is always sound (they were
defined relative to the completed core result).
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field

from repro.cloud.context import CloudContext
from repro.common.errors import PlanError
from repro.engine.catalog import Catalog, TableInfo
from repro.sqlparser import ast

_SUBQUERY_NODES = (ast.Exists, ast.InSubquery, ast.ScalarSubquery)


def contains_subquery(expr: ast.Expr | None) -> bool:
    """Whether ``expr`` contains any subquery construct."""
    return expr is not None and any(
        isinstance(n, _SUBQUERY_NODES) for n in ast.walk(expr)
    )


def needs_rewrite(query: ast.Query) -> bool:
    """Whether ``query`` uses constructs the conjunctive core can't run.

    Queries without subqueries, explicit JOINs or derived tables take
    the planner's historical path untouched (plain HAVING is handled by
    the local tail directly and needs no rewrite).
    """
    return bool(
        query.joins
        or query.derived is not None
        or contains_subquery(query.where)
        or contains_subquery(query.having)
        or any(
            not isinstance(i.expr, ast.Star) and contains_subquery(i.expr)
            for i in query.select_items
        )
    )


@dataclass
class SubJoin:
    """One decorrelated join to stack on top of the core join tree."""

    kind: str  # left | semi | anti | anti_null | inner
    build_key: str
    probe_key: str
    match_cond: ast.Expr | None
    provenance: str
    #: Pre-executed build side (EXISTS / IN / scalar decorrelations);
    #: column names already carry their collision-proof ``__sq<N>_``
    #: prefix.
    rows: list[tuple] | None = None
    names: list[str] | None = None
    source_tables: tuple[str, ...] = ()
    #: Scanned build side (LEFT JOIN): the planner builds the ScanNode
    #: itself so pushdown follows the chosen execution mode.
    table: TableInfo | None = None
    scan_pred: ast.Expr | None = None
    scan_cols: list[str] | None = None


@dataclass
class PreparedQuery:
    """A rewritten query: conjunctive core plus the wraps around it."""

    query: ast.Query
    sub_joins: list[SubJoin] = field(default_factory=list)
    #: Phases of every pre-executed subquery leg, in execution order;
    #: prepended to the outer plan's own phases.
    pre_phases: list = field(default_factory=list)
    #: Outer WHERE conjuncts referencing LEFT-JOINed columns; applied
    #: as a filter above the wraps so NULL padding survives into 3VL.
    post_filter: ast.Expr | None = None
    #: Core-side columns the wraps probe or evaluate (lower-cased);
    #: threaded into the core scans' projections.
    extra_refs: set[str] = field(default_factory=set)
    #: Pre-executed derived table (sole-FROM ``(SELECT ...) AS x``).
    derived_rows: list[tuple] | None = None
    derived_names: list[str] | None = None


def prepare_query(
    ctx: CloudContext, catalog: Catalog, query: ast.Query, mode: str
) -> PreparedQuery:
    """Rewrite ``query`` for planning, pre-executing subquery legs.

    ``mode`` is the requested execution mode; pre-executed legs run
    through the full planner with the same mode (``"auto"`` legs each
    make their own choice).
    """
    return _Rewriter(ctx, catalog, query, mode).run()


class _Rewriter:
    """Single-use rewrite pass over one parsed query."""

    def __init__(
        self, ctx: CloudContext, catalog: Catalog, query: ast.Query, mode: str
    ):
        self.ctx = ctx
        self.catalog = catalog
        self.query = query
        self.mode = mode
        self.sub_joins: list[SubJoin] = []
        self.pre_phases: list = []
        self.extra_refs: set[str] = set()
        self._counter = itertools.count()
        self.outer: list[TableInfo] = []

    def run(self) -> PreparedQuery:
        query = self.query
        for item in query.select_items:
            if not isinstance(item.expr, ast.Star) and contains_subquery(
                item.expr
            ):
                raise PlanError(
                    "subqueries in the select list are not supported"
                )
        if query.derived is not None:
            return self._prepare_derived(query)
        self.outer = [self.catalog.get(t) for t in query.all_tables]
        # FROM-clause joins wrap closest to the core (they run before
        # WHERE-derived semi/anti joins in SQL's evaluation order).
        for spec in query.joins:
            self.sub_joins.append(self._left_join(spec))
        kept, post = self._rewrite_where()
        having = query.having
        if contains_subquery(having):
            having = self._inline_having(having)
        core = dataclasses.replace(
            query, where=ast.and_join(kept), having=having, joins=()
        )
        return PreparedQuery(
            query=core,
            sub_joins=self.sub_joins,
            pre_phases=self.pre_phases,
            post_filter=ast.and_join(post),
            extra_refs=self.extra_refs,
        )

    # ------------------------------------------------------------------
    # derived tables
    # ------------------------------------------------------------------
    def _prepare_derived(self, query: ast.Query) -> PreparedQuery:
        if query.joins:
            raise PlanError(
                "explicit JOINs over a derived table are not supported"
            )
        if contains_subquery(query.where) or contains_subquery(query.having):
            raise PlanError(
                "subqueries over a derived table are not supported"
            )
        rows, names, _ = self._execute(query.derived)
        # The executor names group-key outputs after their source column,
        # dropping any ``AS`` alias; the derived table's schema must use
        # the aliases, so rebuild names from the select list when we can
        # (a ``*`` select keeps the executed names).
        items = query.derived.select_items
        if not any(isinstance(it.expr, ast.Star) for it in items):
            names = [it.output_name(i) for i, it in enumerate(items)]
        return PreparedQuery(
            query=dataclasses.replace(query, derived=None),
            pre_phases=self.pre_phases,
            derived_rows=rows,
            derived_names=names,
        )

    # ------------------------------------------------------------------
    # WHERE conjunct rewriting
    # ------------------------------------------------------------------
    def _rewrite_where(self) -> tuple[list[ast.Expr], list[ast.Expr]]:
        query = self.query
        joined_cols = {
            c.lower()
            for spec in query.joins
            for c in self.catalog.get(spec.table).schema.names
        }
        kept: list[ast.Expr] = []
        post: list[ast.Expr] = []
        for conj in ast.split_conjuncts(query.where):
            if not contains_subquery(conj):
                refs = {c.lower() for c in ast.referenced_columns(conj)}
                (post if refs & joined_cols else kept).append(conj)
                continue
            replaced = self._rewrite_conjunct(conj)
            if replaced is not None:
                kept.append(replaced)
        return kept, post

    def _rewrite_conjunct(self, conj: ast.Expr) -> ast.Expr | None:
        if isinstance(conj, ast.Exists):
            return self._exists(conj)
        if isinstance(conj, ast.InSubquery):
            return self._in_subquery(conj)
        nodes = [n for n in ast.walk(conj) if isinstance(n, _SUBQUERY_NODES)]
        if any(not isinstance(n, ast.ScalarSubquery) for n in nodes):
            raise PlanError(
                "EXISTS / IN (SELECT ...) must appear as top-level AND"
                " conjuncts of the WHERE clause"
            )
        correlated: list[ast.ScalarSubquery] = []
        for node in nodes:
            if self._is_correlated(node.query):
                correlated.append(node)
            else:
                conj = _replace(
                    conj, node, ast.Literal(self._scalar_value(node.query))
                )
        if not correlated:
            return conj
        if len(correlated) > 1:
            raise PlanError(
                "at most one correlated scalar subquery per conjunct"
            )
        self.sub_joins.append(self._correlated_scalar(conj, correlated[0]))
        return None

    # ------------------------------------------------------------------
    # EXISTS / IN
    # ------------------------------------------------------------------
    def _exists(self, node: ast.Exists) -> ast.Expr | None:
        sub = node.query
        what = "NOT EXISTS" if node.negated else "EXISTS"
        if (
            sub.group_by
            or sub.having is not None
            or sub.joins
            or sub.derived is not None
        ):
            raise PlanError(
                f"{what} supports plain SELECT ... FROM ... WHERE bodies"
            )
        inner, local, corr = self._split_sub_where(sub)
        if not corr:
            # Uncorrelated EXISTS is a run-time constant; probing for a
            # single row is enough to decide it.
            probe = dataclasses.replace(
                sub, limit=1 if sub.limit is None else min(1, sub.limit)
            )
            rows, _, _ = self._execute(probe)
            return ast.Literal(bool(rows) != node.negated)
        edge: tuple[str, str] | None = None
        rest: list[ast.Expr] = []
        for conj in corr:
            pair = None if edge is not None else self._corr_edge(
                conj, inner, self.outer
            )
            if pair is not None:
                edge = pair
            else:
                rest.append(conj)
        if edge is None:
            raise PlanError(
                f"correlated {what} needs an inner = outer equality"
            )
        # The build side is the subquery's correlation columns only —
        # the hash key plus whatever the residual conditions read.
        cols: list[str] = [edge[0]]
        for conj in rest:
            for c in ast.walk(conj):
                if (
                    isinstance(c, ast.Column)
                    and self._side(c, inner, self.outer) == "inner"
                    and c.name not in cols
                ):
                    cols.append(c.name)
        synth = _make_query(
            [ast.SelectItem(ast.Column(c)) for c in cols],
            sub.from_tables,
            ast.and_join(local),
        )
        rows, names, _ = self._execute(synth)
        renamed, ren = self._rename(names)
        self._note_outer_refs(edge[1], rest, inner)
        self.sub_joins.append(
            SubJoin(
                kind="anti" if node.negated else "semi",
                build_key=ren[edge[0].lower()],
                probe_key=edge[1],
                match_cond=ast.and_join(
                    [_substitute(c, ren) for c in rest]
                ),
                provenance=f"decorrelated {what}",
                rows=rows,
                names=renamed,
                source_tables=sub.from_tables,
            )
        )
        return None

    def _in_subquery(self, node: ast.InSubquery) -> None:
        if not isinstance(node.operand, ast.Column):
            raise PlanError(
                "IN (SELECT ...) needs a plain column on the left-hand side"
            )
        sub = node.query
        what = "NOT IN" if node.negated else "IN"
        if self._is_correlated(sub):
            raise PlanError(f"correlated {what} subqueries are not supported")
        if len(sub.select_items) != 1 or isinstance(
            sub.select_items[0].expr, ast.Star
        ):
            raise PlanError("an IN subquery must select exactly one column")
        rows, names, _ = self._execute(sub)
        renamed, _ = self._rename(names)
        self.extra_refs.add(node.operand.name.lower())
        self.sub_joins.append(
            SubJoin(
                kind="anti_null" if node.negated else "semi",
                build_key=renamed[0],
                probe_key=node.operand.name,
                match_cond=None,
                provenance=f"decorrelated {what}",
                rows=rows,
                names=renamed,
                source_tables=sub.from_tables,
            )
        )
        return None

    # ------------------------------------------------------------------
    # scalar subqueries
    # ------------------------------------------------------------------
    def _scalar_value(self, sub: ast.Query) -> object:
        rows, names, _ = self._execute(sub)
        if len(names) != 1 or len(rows) > 1:
            raise PlanError(
                "a scalar subquery must produce one column and at most"
                " one row"
            )
        return rows[0][0] if rows else None

    def _correlated_scalar(
        self, conj: ast.Expr, node: ast.ScalarSubquery
    ) -> SubJoin:
        sub = node.query
        if (
            sub.group_by
            or sub.having is not None
            or sub.joins
            or sub.derived is not None
        ):
            raise PlanError(
                "correlated scalar subqueries support plain aggregate bodies"
            )
        if len(sub.select_items) != 1 or not ast.contains_aggregate(
            sub.select_items[0].expr
        ):
            raise PlanError(
                "a correlated scalar subquery must compute one aggregate"
            )
        inner, local, corr = self._split_sub_where(sub)
        pairs: list[tuple[str, str]] = []
        for c in corr:
            pair = self._corr_edge(c, inner, self.outer)
            if pair is None:
                raise PlanError(
                    "correlated scalar subqueries support only"
                    " inner = outer equality correlation"
                )
            pairs.append(pair)
        keys: list[str] = []
        for inner_col, _ in pairs:
            if inner_col not in keys:
                keys.append(inner_col)
        # Re-group the aggregate by its correlation keys: one build row
        # per key combination, joined back as an at-most-one-match
        # inner join (group keys are unique).
        synth = _make_query(
            [ast.SelectItem(ast.Column(k)) for k in keys]
            + [ast.SelectItem(sub.select_items[0].expr, alias="__val")],
            sub.from_tables,
            ast.and_join(local),
            group_by=[ast.Column(k) for k in keys],
        )
        rows, names, _ = self._execute(synth)
        renamed, ren = self._rename(names)
        comparison = _replace(conj, node, ast.Column(ren["__val"]))
        extras = [
            ast.Binary("=", ast.Column(ren[i.lower()]), ast.Column(o))
            for i, o in pairs[1:]
        ]
        for _, outer_col in pairs:
            self.extra_refs.add(outer_col.lower())
        build_lower = {r.lower() for r in renamed}
        for c in ast.referenced_columns(comparison):
            if c.lower() not in build_lower:
                self.extra_refs.add(c.lower())
        return SubJoin(
            kind="inner",
            build_key=ren[pairs[0][0].lower()],
            probe_key=pairs[0][1],
            match_cond=ast.and_join(extras + [comparison]),
            provenance="decorrelated scalar subquery",
            rows=rows,
            names=renamed,
            source_tables=sub.from_tables,
        )

    def _inline_having(self, having: ast.Expr) -> ast.Expr:
        nodes = [
            n for n in ast.walk(having) if isinstance(n, _SUBQUERY_NODES)
        ]
        for node in nodes:
            if not isinstance(node, ast.ScalarSubquery):
                raise PlanError(
                    "only scalar subqueries are supported in HAVING"
                )
            if self._is_correlated(node.query):
                raise PlanError(
                    "correlated subqueries in HAVING are not supported"
                )
            having = _replace(
                having, node, ast.Literal(self._scalar_value(node.query))
            )
        return having

    # ------------------------------------------------------------------
    # LEFT OUTER JOIN
    # ------------------------------------------------------------------
    def _left_join(self, spec: ast.JoinSpec) -> SubJoin:
        jt = self.catalog.get(spec.table)
        inner = [jt]
        outer = [
            t for t in self.outer if t.name.lower() != jt.name.lower()
        ]
        scan_preds: list[ast.Expr] = []
        rest: list[ast.Expr] = []
        edge: tuple[str, str] | None = None
        for conj in ast.split_conjuncts(spec.condition):
            if contains_subquery(conj):
                raise PlanError(
                    "subqueries in ON conditions are not supported"
                )
            sides = {
                self._side(c, inner, outer)
                for c in ast.walk(conj)
                if isinstance(c, ast.Column)
            }
            if sides == {"inner"}:
                # Local to the joined table: push into its scan — sound
                # for a LEFT JOIN because it only shrinks the build
                # side, never the preserved probe side.
                scan_preds.append(conj)
                continue
            pair = None if edge is not None else self._corr_edge(
                conj, inner, outer
            )
            if pair is not None:
                edge = pair
            else:
                rest.append(conj)
        if edge is None:
            raise PlanError(
                "LEFT JOIN needs an ON equality linking the joined table"
                " to the FROM list"
            )
        star = any(
            isinstance(i.expr, ast.Star) for i in self.query.select_items
        )
        if star:
            scan_cols = list(jt.schema.names)
        else:
            refs = self._query_refs()
            for conj in rest:
                refs |= {c.lower() for c in ast.referenced_columns(conj)}
            scan_cols = [
                n
                for n in jt.schema.names
                if n.lower() in refs or n.lower() == edge[0].lower()
            ]
        self._note_outer_refs(edge[1], rest, inner)
        return SubJoin(
            kind="left",
            build_key=edge[0],
            probe_key=edge[1],
            match_cond=ast.and_join([_substitute(c, {}) for c in rest]),
            provenance="LEFT OUTER JOIN",
            table=jt,
            scan_pred=ast.and_join(scan_preds),
            scan_cols=scan_cols,
        )

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------
    def _execute(self, query: ast.Query):
        """Run a subquery leg through the full planner (recursively)."""
        from repro.planner.planner import execute_parsed

        execution = execute_parsed(self.ctx, self.catalog, query, self.mode)
        self.pre_phases.extend(execution.phases)
        return execution.rows, list(execution.column_names), execution.phases

    def _rename(self, names: list[str]) -> tuple[list[str], dict[str, str]]:
        n = next(self._counter)
        renamed = [f"__sq{n}_{c}" for c in names]
        return renamed, {c.lower(): r for c, r in zip(names, renamed)}

    def _side(
        self,
        col: ast.Column,
        inner: list[TableInfo],
        outer: list[TableInfo],
    ) -> str:
        if col.table:
            t = col.table.lower()
            if any(i.name.lower() == t for i in inner):
                return "inner"
            if any(o.name.lower() == t for o in outer):
                return "outer"
            raise PlanError(f"unknown table {col.table!r} in subquery")
        if any(i.schema.has_column(col.name) for i in inner):
            return "inner"  # the innermost scope shadows the outer query
        if any(o.schema.has_column(col.name) for o in outer):
            return "outer"
        raise PlanError(f"unknown column {col.name!r} in subquery")

    def _split_sub_where(self, sub: ast.Query):
        """Split a subquery's WHERE into local and correlated conjuncts."""
        inner = [self.catalog.get(t) for t in sub.all_tables]
        local: list[ast.Expr] = []
        corr: list[ast.Expr] = []
        for conj in ast.split_conjuncts(sub.where):
            sides = {
                self._side(c, inner, self.outer)
                for c in ast.walk(conj)
                if isinstance(c, ast.Column)
            }
            (corr if "outer" in sides else local).append(conj)
        return inner, local, corr

    def _is_correlated(self, sub: ast.Query) -> bool:
        if sub.derived is not None:
            return False
        return bool(self._split_sub_where(sub)[2])

    def _corr_edge(
        self,
        conj: ast.Expr,
        inner: list[TableInfo],
        outer: list[TableInfo],
    ) -> tuple[str, str] | None:
        """``(inner_col, outer_col)`` when ``conj`` is a cross-side
        equality between two plain columns."""
        if (
            isinstance(conj, ast.Binary)
            and conj.op == "="
            and isinstance(conj.left, ast.Column)
            and isinstance(conj.right, ast.Column)
        ):
            ls = self._side(conj.left, inner, outer)
            rs = self._side(conj.right, inner, outer)
            if ls == "inner" and rs == "outer":
                return conj.left.name, conj.right.name
            if ls == "outer" and rs == "inner":
                return conj.right.name, conj.left.name
        return None

    def _note_outer_refs(
        self,
        probe_key: str,
        conjs: list[ast.Expr],
        inner: list[TableInfo],
    ) -> None:
        """Record core-side columns a wrap reads, so scans project them."""
        self.extra_refs.add(probe_key.lower())
        for conj in conjs:
            for c in ast.walk(conj):
                if (
                    isinstance(c, ast.Column)
                    and self._side(c, inner, self.outer) == "outer"
                ):
                    self.extra_refs.add(c.name.lower())

    def _query_refs(self) -> set[str]:
        """Lower-cased column names the outer query references anywhere."""
        q = self.query
        exprs: list[ast.Expr] = [
            i.expr
            for i in q.select_items
            if not isinstance(i.expr, ast.Star)
        ]
        exprs += list(q.group_by)
        exprs += [o.expr for o in q.order_by]
        if q.where is not None:
            exprs.append(q.where)
        if q.having is not None:
            exprs.append(q.having)
        refs: set[str] = set()
        for e in exprs:
            refs |= {c.lower() for c in ast.referenced_columns(e)}
        return refs


def _make_query(
    select_items,
    from_tables,
    where: ast.Expr | None,
    group_by=(),
) -> ast.Query:
    """Assemble a synthesized subquery over the comma FROM list."""
    tables = tuple(from_tables)
    return ast.Query(
        select_items=tuple(select_items),
        table=tables[0],
        where=where,
        group_by=tuple(group_by),
        join_table=tables[1] if len(tables) > 1 else None,
        extra_tables=tables[2:],
    )


def _substitute(expr: ast.Expr, renames: dict[str, str]) -> ast.Expr:
    """Strip table qualifiers and apply build-side renames, so the
    expression compiles against the join's combined output schema."""
    return ast.map_columns(
        expr,
        lambda col: ast.Column(renames.get(col.name.lower(), col.name)),
    )


def _replace(expr, target, replacement):
    """Rebuild ``expr`` with the node ``target`` (matched by identity)
    swapped for ``replacement``.  Subquery bodies are separate scopes
    and are not descended into."""
    if expr is target:
        return replacement
    if isinstance(expr, tuple):
        out = tuple(_replace(x, target, replacement) for x in expr)
        return out if any(a is not b for a, b in zip(out, expr)) else expr
    if isinstance(expr, ast.Query) or not dataclasses.is_dataclass(expr):
        return expr
    changed = False
    values = {}
    for f in dataclasses.fields(expr):
        old = getattr(expr, f.name)
        new = _replace(old, target, replacement)
        changed = changed or new is not old
        values[f.name] = new
    return type(expr)(**values) if changed else expr
