"""A minimal SQL planner for PushdownDB.

The paper describes PushdownDB's optimizer as "minimal" (Section III);
ours goes one step further: besides choosing between the baseline (GET
everything) and optimized (pushdown) physical strategies, multi-table
queries run through a cost-based join-tree search
(:mod:`repro.optimizer.joinorder`).

Every path **builds an explicit physical plan** — a
:mod:`repro.planner.physical` operator tree — and hands it to the single
recursive executor.  The same tree is what the cost model prices and
what ``db.explain()`` renders.

Supported SQL per query:

* single table — WHERE / GROUP BY / aggregates / ORDER BY / LIMIT;
* two tables (``FROM a, b WHERE a.k = b.k AND ...``) — equi-join plus
  the same local tail (kept on the historical pairwise plan shape so its
  metering is unchanged); pairs *without* an equi-join condition fall
  back to a guarded cross product;
* three or more tables — an equi-join tree (left-deep or bushy) planned
  by the join-order search, with Bloom predicates on probe-side scans
  and cross-product fallbacks for small disconnected FROM lists.

Anything else raises :class:`~repro.common.errors.PlanError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.context import CloudContext, QueryExecution
from repro.common.errors import PlanError
from repro.engine.catalog import Catalog, TableInfo
from repro.optimizer.feedback import estimate_selectivity_with_feedback
from repro.planner import physical
from repro.planner.physical import (
    FilterNode,
    HashJoinNode,
    PhysicalPlan,
    PushedAggregateNode,
    ScanNode,
    attach_local_tail,
    execute_plan,
)
from repro.sqlparser import ast
from repro.sqlparser.parser import parse

#: Aggregates whose per-partition partials merge by plain addition.
_ADDITIVE = {"SUM", "COUNT"}


def plan_and_execute(
    ctx: CloudContext, catalog: Catalog, sql: str, mode: str = "optimized"
) -> QueryExecution:
    """Parse, plan, and run ``sql``; returns the finalized execution.

    ``mode="auto"`` asks the cost-based optimizer to pick between the
    baseline and optimized physical plans; the per-candidate estimates
    land in ``execution.details["optimizer"]``.  ``mode="adaptive"``
    executes the optimized plan with mid-flight re-optimization: when a
    completed hash build's cardinality misses its estimate by more than
    the context's ``adaptive_threshold`` Q-error, the remaining join
    tree is re-planned around the observed count (see
    :class:`~repro.planner.physical.AdaptiveJoinNode`); accurate
    estimates execute byte-identically to ``mode="optimized"``.
    """
    return execute_parsed(ctx, catalog, parse(sql), mode)


def execute_parsed(
    ctx: CloudContext, catalog: Catalog, query: ast.Query, mode: str
) -> QueryExecution:
    """Plan and run an already-parsed query (see :func:`plan_and_execute`).

    Queries with subqueries, explicit JOINs or derived tables go through
    the decorrelation pass first (:mod:`repro.planner.subquery`); its
    pre-executed legs bill to this query — the cost read-out mark is
    taken before they run and their phases prepend to the plan's own.
    This is also the subquery pass's re-entry point, so nested
    subqueries decorrelate recursively.
    """
    if mode not in ("baseline", "optimized", "auto", "adaptive"):
        raise PlanError(
            f"unknown mode {mode!r}; use 'baseline', 'optimized',"
            " 'auto' or 'adaptive'"
        )
    from repro.planner.subquery import needs_rewrite, prepare_query

    prepared = None
    mark = None
    if needs_rewrite(query):
        mark = ctx.begin_query()
        prepared = prepare_query(ctx, catalog, query, mode)
        query = prepared.query
    summary = None
    if mode == "auto":
        if prepared is not None and prepared.derived_rows is not None:
            # A derived-table core reads no storage; there is nothing
            # for the baseline-vs-pushdown chooser to decide.
            mode = "optimized"
        else:
            from repro.optimizer.chooser import choose_planner_mode

            choice = choose_planner_mode(
                ctx, catalog, query,
                extra_refs=(
                    prepared.extra_refs if prepared is not None else ()
                ),
            )
            mode = choice.picked
            summary = choice.summary()
    # Reuse the tree the auto-mode search already picked rather than
    # running the DP a second time.
    shape = summary.get("join_tree") if summary is not None else None
    plan = build_plan(ctx, catalog, query, mode, shape=shape, prepared=prepared)
    execution = execute_plan(
        ctx, plan, mark=mark,
        pre_phases=prepared.pre_phases if prepared is not None else None,
    )
    if summary is not None:
        execution.details["optimizer"] = summary
    return execution


def build_plan(
    ctx: CloudContext,
    catalog: Catalog,
    query: ast.Query,
    mode: str,
    shape=None,
    force_order: list[str] | None = None,
    prepared=None,
) -> PhysicalPlan:
    """Build the physical plan for ``query`` without executing it.

    ``shape`` forces a serialized join-tree shape (the auto-mode reuse
    path); ``force_order`` forces a left-deep order (experiment sweeps).
    ``prepared`` is the decorrelation pass's output
    (:class:`repro.planner.subquery.PreparedQuery`) — its sub-joins
    stack on top of the core join tree, below the local tail.  Plan
    building never touches storage (pre-executed subquery legs already
    ran inside ``prepared``), so ``db.explain()`` can render the tree
    for free.
    """
    forced = shape is not None or force_order is not None
    if prepared is not None and prepared.derived_rows is not None:
        plan = _build_derived_plan(query, mode, prepared)
    elif query.join_table is None:
        plan = _build_single_plan(ctx, catalog, query, mode, prepared=prepared)
    elif (
        not forced
        and len(query.from_tables) == 2
        and _has_equi_join(catalog, query)
    ):
        plan = _build_pairwise_plan(ctx, catalog, query, mode, prepared=prepared)
    else:
        plan = _build_multiway_plan(
            ctx, catalog, query, mode, shape=shape, force_order=force_order,
            prepared=prepared,
        )
    physical.annotate_costs(plan.root, ctx, catalog)
    return plan


def _build_derived_plan(query: ast.Query, mode: str, prepared) -> PhysicalPlan:
    """The outer query of ``FROM (SELECT ...) AS x``: its tail runs over
    the pre-executed derived rows; no storage is touched again."""
    node: physical.PlanNode = physical.MaterializedNode(
        prepared.derived_rows, prepared.derived_names, tables=(query.table,)
    )
    names = list(prepared.derived_names)
    if query.where is not None:
        node = FilterNode(node, query.where)
    root = attach_local_tail(node, query, names)
    return PhysicalPlan(
        root=root, mode=mode, strategy=f"{mode} derived-table",
        scan_tables=[],
    )


def _apply_sub_joins(
    ctx: CloudContext,
    node: physical.PlanNode,
    names: list[str],
    prepared,
    mode: str,
) -> tuple[physical.PlanNode, list[str], list[TableInfo]]:
    """Stack the decorrelated joins on top of the core tree.

    Wraps are pinned: the join-order DP never reorders them.  Pricing
    uses output caps by join kind — semi/anti joins emit at most the
    probe side, a left-outer join emits at least it, and a decorrelated
    scalar join (unique group keys) at most it; all four estimate at
    the probe cardinality.  Bloom predicates are never attached here:
    left/anti joins must see every probe row, and the pre-executed
    build sides never rescan storage anyway.  Returns the wrapped node,
    its output names, and the tables any LEFT JOIN scans added (the
    baseline combined-phase formula must cover them).
    """
    from repro.cloud.perf import SERVER_CPU_PER_ROW
    from repro.engine.operators.hashjoin import join_output_names

    extra_tables: list[TableInfo] = []
    probe_est = getattr(node, "est_rows", None) or 0.0
    for sj in prepared.sub_joins:
        if sj.table is not None:
            optimized = mode != "baseline"
            build: physical.PlanNode = ScanNode(
                sj.table,
                sj.scan_cols if optimized else list(sj.table.schema.names),
                sj.scan_pred, pushdown=optimized,
                phase_label=f"join-scan-{sj.table.name}",
                prune=getattr(ctx, "prune_partitions", True),
            )
            build.est_rows = estimate_selectivity_with_feedback(
                getattr(ctx, "feedback", None), sj.table.name, sj.scan_pred,
                sj.table.stats_or_default(),
            ) * sj.table.num_rows
            if optimized:
                build.est_terms = float(
                    sj.table.num_rows * len(ast.split_conjuncts(sj.scan_pred))
                )
            build_names = list(build.columns)
            build_rows_est = build.est_rows
            extra_tables.append(sj.table)
        else:
            build = physical.MaterializedNode(
                sj.rows, sj.names, tables=sj.source_tables
            )
            build_names = list(sj.names)
            build_rows_est = float(len(sj.rows))
        join = HashJoinNode(
            build, node, sj.build_key, sj.probe_key,
            stream_probe=True, join_type=sj.kind,
            match_cond=sj.match_cond, provenance=sj.provenance,
        )
        join.est_build_rows = build_rows_est
        join.est_probe_rows = probe_est
        join.est_rows = probe_est
        join.est_cpu = join.est_cpu_plain = (
            build_rows_est * SERVER_CPU_PER_ROW["hash_build"]
            + probe_est * SERVER_CPU_PER_ROW["hash_probe"]
        )
        names = join_output_names(build_names, names, sj.kind)
        node = join
        probe_est = join.est_rows
    if prepared.post_filter is not None:
        node = FilterNode(node, prepared.post_filter)
    return node, names, extra_tables


def _has_equi_join(catalog: Catalog, query: ast.Query) -> bool:
    """Whether a 2-table query carries an equi-join condition."""
    from repro.optimizer.joinorder import build_join_graph

    return bool(build_join_graph(catalog, query).edges)


# ----------------------------------------------------------------------
# single-table plans
# ----------------------------------------------------------------------

def _build_single_plan(
    ctx: CloudContext, catalog: Catalog, query: ast.Query, mode: str,
    prepared=None,
) -> PhysicalPlan:
    """A single-table query as one streaming scan + local-tail pipeline.

    The scan issues every partition request up front (so request and
    byte accounting never depend on how far the pipeline is pulled);
    batches flow through the local tail; a LIMIT cuts parsing and
    operator work short without changing what was billed.  Decorrelated
    sub-joins stack between the scan and the tail; the aggregate
    pushdown shortcut is disabled for them (an S3-side aggregate leaves
    nothing to join against).
    """
    table = catalog.get(query.table)
    wrapped = prepared is not None and (
        prepared.sub_joins or prepared.post_filter is not None
    )
    if (
        mode in ("optimized", "adaptive")
        and not wrapped
        and _fully_pushable(query)
    ):
        root = PushedAggregateNode(
            table, query, prune=getattr(ctx, "prune_partitions", True)
        )
        return PhysicalPlan(
            root=root, mode=mode, strategy="optimized single-table",
            scan_tables=[table],
        )
    stats = table.stats_or_default()
    selectivity = estimate_selectivity_with_feedback(
        getattr(ctx, "feedback", None), table.name, query.where, stats
    )
    if mode == "baseline":
        names = list(table.schema.names)
        scan = ScanNode(table, names, query.where, pushdown=False,
                        phase_label="scan")
    else:
        names = _needed_columns(
            query, table,
            extra=prepared.extra_refs if prepared is not None else (),
        )
        scan = ScanNode(table, names, query.where, pushdown=True,
                        phase_label="scan",
                        prune=getattr(ctx, "prune_partitions", True))
        scan.est_terms = float(
            table.num_rows * len(ast.split_conjuncts(query.where))
        )
    scan.est_rows = selectivity * table.num_rows
    node: physical.PlanNode = scan
    extra_tables: list[TableInfo] = []
    if wrapped:
        node, names, extra_tables = _apply_sub_joins(
            ctx, node, names, prepared, mode
        )
    root = attach_local_tail(node, query, names)
    # A baseline LEFT JOIN scan materializes via plain GETs whose
    # ingest only the combined-phase formula accounts for; plans
    # without such scans keep their historical per-scan phase.
    combined = "load+join" if mode == "baseline" and extra_tables else None
    return PhysicalPlan(
        root=root, mode=mode, strategy=f"{mode} single-table",
        scan_tables=[table] + extra_tables,
        combined_label=combined,
    )


def _fully_pushable(query: ast.Query) -> bool:
    """True when the whole query fits the S3 Select dialect with additive
    aggregates (pure SUM/COUNT shapes like TPC-H Q6)."""
    if (
        query.group_by
        or query.order_by
        or query.limit is not None
        or query.having is not None
        or query.joins
        or query.derived is not None
    ):
        return False
    aggs: list[ast.Aggregate] = []
    for item in query.select_items:
        if isinstance(item.expr, ast.Star) or not ast.contains_aggregate(item.expr):
            return False
        aggs.extend(n for n in ast.walk(item.expr) if isinstance(n, ast.Aggregate))
    return all(a.func in _ADDITIVE and not a.distinct for a in aggs)


def _needed_columns(
    query: ast.Query, table: TableInfo, extra=()
) -> list[str]:
    referenced: set[str] = set()
    star = False
    for item in query.select_items:
        if isinstance(item.expr, ast.Star):
            star = True
        else:
            referenced |= ast.referenced_columns(item.expr)
    for expr in query.group_by:
        referenced |= ast.referenced_columns(expr)
    for order in query.order_by:
        referenced |= ast.referenced_columns(order.expr)
    if query.having is not None:
        referenced |= ast.referenced_columns(query.having)
    if star:
        return list(table.schema.names)
    lowered = {c.lower() for c in referenced} | {c.lower() for c in extra}
    needed = [n for n in table.schema.names if n.lower() in lowered]
    if not needed:
        # A pure-literal select list (``SELECT 1 FROM t WHERE ...``, the
        # shape EXISTS probes take) still needs one projected column so
        # the pushed scan preserves row count.
        needed = [table.schema.names[0]]
    return needed


# ----------------------------------------------------------------------
# two-table join plans (the historical pairwise shape)
# ----------------------------------------------------------------------

@dataclass
class _JoinPlan:
    build: TableInfo
    probe: TableInfo
    build_key: str
    probe_key: str
    build_pred: ast.Expr | None
    probe_pred: ast.Expr | None
    residual: ast.Expr | None


#: Shared WHERE-decomposition primitives (also used by the join-order
#: search); kept as module aliases for the pairwise planner's call sites.
_split_conjuncts = ast.split_conjuncts
_and_join = ast.and_join


def _owner(column: ast.Column, a: TableInfo, b: TableInfo) -> TableInfo | None:
    if column.table:
        if column.table.lower() == a.name.lower():
            return a
        if column.table.lower() == b.name.lower():
            return b
        return None
    in_a = a.schema.has_column(column.name)
    in_b = b.schema.has_column(column.name)
    if in_a and not in_b:
        return a
    if in_b and not in_a:
        return b
    if in_a and in_b:
        raise PlanError(
            f"ambiguous column {column.name!r}: qualify it with a table name"
        )
    return None


def _build_join_plan(
    catalog: Catalog, query: ast.Query
) -> tuple[_JoinPlan, list[ast.Expr]]:
    a = catalog.get(query.table)
    b = catalog.get(query.join_table)
    join_cond: tuple[str, str] | None = None
    side_preds: dict[str, list[ast.Expr]] = {a.name: [], b.name: []}
    residual: list[ast.Expr] = []
    for conjunct in _split_conjuncts(query.where):
        if (
            join_cond is None
            and isinstance(conjunct, ast.Binary)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.Column)
            and isinstance(conjunct.right, ast.Column)
        ):
            lo = _owner(conjunct.left, a, b)
            ro = _owner(conjunct.right, a, b)
            if lo is not None and ro is not None and lo is not ro:
                if lo is a:
                    join_cond = (conjunct.left.name, conjunct.right.name)
                else:
                    join_cond = (conjunct.right.name, conjunct.left.name)
                continue
        owners = set()
        for column in ast.walk(conjunct):
            if isinstance(column, ast.Column):
                owner = _owner(column, a, b)
                if owner is not None:
                    owners.add(owner.name)
        if owners == {a.name}:
            side_preds[a.name].append(conjunct)
        elif owners == {b.name}:
            side_preds[b.name].append(conjunct)
        else:
            residual.append(conjunct)
    if join_cond is None:
        raise PlanError(
            "two-table queries need an equi-join condition like a.k = b.k"
        )
    a_key, b_key = join_cond
    # Build side = smaller table, as in the paper's hash joins.
    if a.num_rows <= b.num_rows:
        plan = _JoinPlan(
            build=a, probe=b, build_key=a_key, probe_key=b_key,
            build_pred=_and_join(side_preds[a.name]),
            probe_pred=_and_join(side_preds[b.name]),
            residual=_and_join(residual),
        )
    else:
        plan = _JoinPlan(
            build=b, probe=a, build_key=b_key, probe_key=a_key,
            build_pred=_and_join(side_preds[b.name]),
            probe_pred=_and_join(side_preds[a.name]),
            residual=_and_join(residual),
        )
    return plan, residual


def _join_needed_columns(
    query: ast.Query, table: TableInfo, key: str, residual: ast.Expr | None,
    extra=(),
) -> list[str]:
    referenced: set[str] = {key.lower()} | {c.lower() for c in extra}
    star = False
    exprs = [i.expr for i in query.select_items]
    exprs += list(query.group_by)
    exprs += [o.expr for o in query.order_by]
    if query.having is not None:
        exprs.append(query.having)
    if residual is not None:
        exprs.append(residual)
    for expr in exprs:
        if isinstance(expr, ast.Star):
            star = True
            continue
        referenced |= {c.lower() for c in ast.referenced_columns(expr)}
    if star:
        return list(table.schema.names)
    return [n for n in table.schema.names if n.lower() in referenced]


def _build_pairwise_plan(
    ctx: CloudContext, catalog: Catalog, query: ast.Query, mode: str,
    prepared=None,
) -> PhysicalPlan:
    """Two-table equi-join as the historical pairwise plan shape.

    The build side is a pipeline breaker (its rows must be hashed before
    probing), so its scan materializes; the probe side streams
    batch-by-batch through the join, the residual filter, and the local
    tail.  Metering is byte-identical to the pre-IR pairwise path.
    Decorrelated sub-joins stack above the residual filter, below the
    tail.
    """
    extra = prepared.extra_refs if prepared is not None else ()
    plan, _ = _build_join_plan(catalog, query)
    build_cols = _join_needed_columns(
        query, plan.build, plan.build_key, plan.residual, extra=extra
    )
    probe_cols = _join_needed_columns(
        query, plan.probe, plan.probe_key, plan.residual, extra=extra
    )
    optimized = mode != "baseline"
    prune = getattr(ctx, "prune_partitions", True)
    build_scan = ScanNode(
        plan.build,
        build_cols if optimized else list(plan.build.schema.names),
        plan.build_pred, pushdown=optimized, phase_label="build-scan",
        prune=prune,
    )
    probe_scan = ScanNode(
        plan.probe,
        probe_cols if optimized else list(plan.probe.schema.names),
        plan.probe_pred, pushdown=optimized, phase_label="probe-scan",
        prune=prune,
    )
    bloom = optimized and plan.build.schema.column(plan.build_key).type == "int"
    if bloom:
        probe_scan.bloom_attr = plan.probe_key
    join = HashJoinNode(
        build_scan, probe_scan, plan.build_key, plan.probe_key,
        bloom=bloom, stream_probe=True,
    )
    _annotate_pairwise(ctx, catalog, plan, build_scan, probe_scan, join)
    node: physical.PlanNode = join
    if plan.residual is not None:
        node = FilterNode(node, plan.residual)
    names = (
        build_scan.columns + probe_scan.columns
        if optimized
        else list(plan.build.schema.names) + list(plan.probe.schema.names)
    )
    extra_tables: list[TableInfo] = []
    if prepared is not None:
        node, names, extra_tables = _apply_sub_joins(
            ctx, node, names, prepared, mode
        )
    root = attach_local_tail(node, query, names)
    return PhysicalPlan(
        root=root, mode=mode, strategy=f"{mode} join",
        scan_tables=[plan.build, plan.probe] + extra_tables,
        combined_label=None if optimized else "load+join",
    )


def _annotate_pairwise(
    ctx: CloudContext,
    catalog: Catalog,
    plan: _JoinPlan,
    build_scan: ScanNode,
    probe_scan: ScanNode,
    join: HashJoinNode,
) -> None:
    """Containment estimates for the pairwise plan's EXPLAIN annotations."""
    feedback = getattr(ctx, "feedback", None)
    b_stats = plan.build.stats_or_default()
    p_stats = plan.probe.stats_or_default()
    build_rows = estimate_selectivity_with_feedback(
        feedback, plan.build.name, plan.build_pred, b_stats
    ) * plan.build.num_rows
    probe_rows = estimate_selectivity_with_feedback(
        feedback, plan.probe.name, plan.probe_pred, p_stats
    ) * plan.probe.num_rows
    build_scan.est_rows = build_rows
    build_scan.est_terms = float(
        plan.build.num_rows * len(ast.split_conjuncts(plan.build_pred))
    )
    probe_scan.est_rows = probe_rows
    probe_scan.est_terms = float(
        plan.probe.num_rows * len(ast.split_conjuncts(plan.probe_pred))
    )
    build_key_stats = b_stats.column(plan.build_key)
    probe_key_stats = p_stats.column(plan.probe_key)
    build_distinct = (
        max(build_key_stats.distinct, 1) if build_key_stats
        else max(plan.build.num_rows, 1)
    )
    probe_distinct = (
        max(probe_key_stats.distinct, 1) if probe_key_stats
        else max(plan.probe.num_rows, 1)
    )
    distinct_keys = min(build_rows, build_distinct)
    matched = probe_rows * min(1.0, distinct_keys / probe_distinct)
    if feedback is not None and feedback.has_join_feedback():
        from repro.optimizer.feedback import join_signature

        parts = physical.tree_signature(join)
        if parts is not None:
            measured = feedback.lookup_join(join_signature(*parts))
            if measured is not None:
                matched = measured
    join.est_rows = matched
    join.est_build_rows = min(build_rows, probe_rows)
    join.est_probe_rows = max(build_rows, probe_rows)
    from repro.cloud.perf import SERVER_CPU_PER_ROW

    join.est_cpu_plain = (
        join.est_build_rows * SERVER_CPU_PER_ROW["hash_build"]
        + join.est_probe_rows * SERVER_CPU_PER_ROW["hash_probe"]
    )
    join.est_cpu = join.est_cpu_plain
    if join.bloom:
        # Mirror what the executor meters: the Bloom predicate reduces
        # the probe scan's returned rows to the expected pass-rows and
        # adds its hash evaluations to the scanned-row terms.
        from repro.bloom.filter import optimal_num_bits, optimal_num_hashes
        from repro.s3select.validator import EXPRESSION_LIMIT_BYTES
        from repro.strategies.join import DEFAULT_FPR

        join.est_cpu += build_rows * SERVER_CPU_PER_ROW["bloom_insert"]
        hashes = optimal_num_hashes(DEFAULT_FPR)
        bits = optimal_num_bits(int(max(distinct_keys, 1)), DEFAULT_FPR)
        if hashes * (bits + 60) <= EXPRESSION_LIMIT_BYTES:
            pass_rows = matched + (probe_rows - matched) * DEFAULT_FPR
            probe_scan.est_rows = min(probe_rows, pass_rows)
            probe_scan.est_terms += float(plan.probe.num_rows * hashes)


# ----------------------------------------------------------------------
# N-way (>2 table) and cross-product join plans
# ----------------------------------------------------------------------

def execute_with_join_order(
    ctx: CloudContext,
    catalog: Catalog,
    sql: str,
    order: list[str],
    mode: str = "optimized",
) -> QueryExecution:
    """Run a multi-table query with a caller-forced left-deep join order.

    The fig12/fig13 experiments use this to sweep every connected order
    and compare the optimizer's pick against the measured best.
    """
    query = parse(sql)
    if len(query.from_tables) < 3:
        raise PlanError("execute_with_join_order needs a 3+-table query")
    plan = build_plan(
        ctx, catalog, query, mode, force_order=[t.lower() for t in order]
    )
    return execute_plan(ctx, plan)


def execute_with_join_tree(
    ctx: CloudContext,
    catalog: Catalog,
    sql: str,
    shape,
    mode: str = "optimized",
) -> QueryExecution:
    """Run a multi-table query with a caller-forced join-tree shape.

    ``shape`` is :func:`repro.planner.physical.serialize_shape` output —
    a table name or ``[kind, build, probe]`` nesting — so experiments can
    force genuinely bushy plans the left-deep order API cannot express.
    """
    query = parse(sql)
    if len(query.from_tables) < 2:
        raise PlanError("execute_with_join_tree needs a multi-table query")
    plan = build_plan(ctx, catalog, query, mode, shape=shape)
    return execute_plan(ctx, plan)


def _build_multiway_plan(
    ctx: CloudContext,
    catalog: Catalog,
    query: ast.Query,
    mode: str,
    shape=None,
    force_order: list[str] | None = None,
    prepared=None,
) -> PhysicalPlan:
    """N-way equi-join (or guarded cross product) as a physical plan.

    The join-tree search (``optimizer/joinorder.py``) decides the shape
    — left-deep or bushy — unless the caller forces one.  Hash-build
    sides materialize; the spine join streams its probe through the
    residual filter and the local tail.  In optimized mode each table's
    predicate and projection are pushed into its S3 Select scan, and
    *every* probe-side scan whose build key is an integer carries a
    Bloom predicate — inner probes included, which is what bushy
    snowflake plans profit from.
    """
    from repro.optimizer.joinorder import JoinOrderSearch, build_join_graph

    graph = build_join_graph(catalog, query)
    search = JoinOrderSearch(
        ctx, catalog, graph, query,
        extra_refs=frozenset(prepared.extra_refs) if prepared is not None
        else frozenset(),
    )
    if force_order is not None:
        order = list(force_order)
        if sorted(order) != sorted(graph.table_names()):
            raise PlanError(
                f"join order {order} does not cover tables"
                f" {graph.table_names()}"
            )
        for i in range(1, len(order)):
            if not graph.edges_between(order[i], set(order[:i])):
                raise PlanError(
                    f"join order {order} is not connected at {order[i]!r}"
                )
        tree = search.left_deep_tree(order)
    elif shape is not None:
        tree = search.build_tree(shape)
    else:
        tree = search.search().tree

    optimized = mode != "baseline"
    if not optimized:
        tree = _as_baseline_tree(tree)
    _mark_spine(tree)
    label = physical.join_tree_label(tree)

    deferred = [
        edge.to_expr() for edge in _collect_extra_edges(tree)
    ]
    residual = _and_join(deferred + _split_conjuncts(graph.residual))
    node: physical.PlanNode = tree
    adaptive_node = None
    if (
        mode == "adaptive"
        and isinstance(tree, HashJoinNode)
        and _all_hash_joins(tree)
        and len(_leaf_scans(tree)) >= 3
    ):
        # Mid-flight re-optimization needs at least three relations (two
        # leave nothing to reorder) and a pure equi-join tree; the search
        # object rides along so re-plans price through the same
        # calibrated cost model the original plan did.
        adaptive_node = physical.AdaptiveJoinNode(
            tree, search, ctx.adaptive_threshold
        )
        node = adaptive_node
    if residual is not None:
        node = FilterNode(node, residual)
    names = [
        column
        for leaf in _leaf_scans(tree)
        for column in leaf.columns
    ]
    extra_tables: list[TableInfo] = []
    if prepared is not None:
        node, names, extra_tables = _apply_sub_joins(
            ctx, node, names, prepared, mode
        )
    root = attach_local_tail(node, query, names)
    return PhysicalPlan(
        root=root, mode=mode,
        strategy=f"{mode} multi-join ({label})",
        scan_tables=[leaf.table for leaf in _leaf_scans(tree)] + extra_tables,
        combined_label=None if optimized else "load+join",
        adaptive_node=adaptive_node,
    )


def _leaf_scans(tree: physical.PlanNode) -> list[ScanNode]:
    if isinstance(tree, ScanNode):
        return [tree]
    return [leaf for child in tree.children() for leaf in _leaf_scans(child)]


def _all_hash_joins(tree: physical.PlanNode) -> bool:
    """True when ``tree`` is scans composed purely by *inner* hash joins
    (adaptive re-planning may not reorder outer/semi/anti edges)."""
    if isinstance(tree, ScanNode):
        return True
    if isinstance(tree, HashJoinNode):
        return (
            tree.join_type == "inner"
            and tree.match_cond is None
            and _all_hash_joins(tree.build)
            and _all_hash_joins(tree.probe)
        )
    return False


def _collect_extra_edges(tree: physical.PlanNode) -> list:
    if isinstance(tree, ScanNode):
        return []
    extra = list(getattr(tree, "extra_edges", ()))
    for child in tree.children():
        extra.extend(_collect_extra_edges(child))
    return extra


def _as_baseline_tree(tree: physical.PlanNode) -> physical.PlanNode:
    """Rebuild a search tree for baseline mode: GET scans, no Blooms."""
    if isinstance(tree, ScanNode):
        twin = ScanNode(
            tree.table, list(tree.table.schema.names), tree.predicate,
            pushdown=False, phase_label=tree.phase_label,
        )
        # Baseline scans carry no Bloom, so annotate with the pre-Bloom
        # filtered estimate — the optimized tree's est_rows may have
        # been reduced to the Bloom pass-rows.
        twin.est_rows = (
            tree.est_filtered_rows
            if tree.est_filtered_rows is not None
            else tree.est_rows
        )
        return twin
    build = _as_baseline_tree(tree.build)
    probe = _as_baseline_tree(tree.probe)
    if isinstance(tree, HashJoinNode):
        twin = HashJoinNode(
            build, probe, tree.build_key, tree.probe_key, bloom=False
        )
    else:
        twin = physical.CrossProductNode(build, probe)
    twin.est_rows = tree.est_rows
    twin.est_build_rows = tree.est_build_rows
    twin.est_probe_rows = tree.est_probe_rows
    twin.est_cpu = tree.est_cpu_plain
    twin.est_cpu_plain = tree.est_cpu_plain
    twin.extra_edges = list(tree.extra_edges)
    return twin


def _mark_spine(tree: physical.PlanNode) -> None:
    """Stream the root join's probe side; relabel its probe scan."""
    if isinstance(tree, (HashJoinNode, physical.CrossProductNode)):
        tree.stream_probe = True
        probe = tree.probe
        if isinstance(probe, ScanNode):
            probe.phase_label = f"probe-scan-{probe.table.name}"
