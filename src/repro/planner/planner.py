"""A minimal SQL planner for PushdownDB.

The paper describes PushdownDB's optimizer as "minimal" (Section III);
ours goes one step further: besides choosing between the baseline (GET
everything) and optimized (pushdown) physical strategies, multi-table
queries run through a cost-based join-order search
(:mod:`repro.optimizer.joinorder`).

Supported SQL per query:

* single table — WHERE / GROUP BY / aggregates / ORDER BY / LIMIT;
* two tables (``FROM a, b WHERE a.k = b.k AND ...``) — equi-join plus
  the same local tail (kept on the historical pairwise path so its
  metering is unchanged);
* three or more tables — an equi-join chain planned left-deep by the
  join-order search and executed as chained streaming hash joins.

Anything else raises :class:`~repro.common.errors.PlanError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.context import CloudContext, QueryExecution
from repro.common.errors import PlanError
from repro.engine.catalog import Catalog, TableInfo
from repro.engine.operators.base import (
    BatchCounter,
    CpuTally,
    batches_of,
    materialize,
)
from repro.engine.operators.filter import filter_batches, filter_rows
from repro.engine.operators.groupby import group_by_batches
from repro.engine.operators.hashjoin import hash_join, hash_join_batches
from repro.engine.operators.limit import limit_batches
from repro.engine.operators.project import (
    project,
    project_batches,
    projected_names,
)
from repro.engine.operators.sort import sort_batches
from repro.engine.operators.topk import top_k_batches
from repro.queries.common import bloom_where
from repro.sqlparser import ast
from repro.sqlparser.parser import parse
from repro.storage.csvcodec import DEFAULT_BATCH_SIZE
from repro.strategies.scans import (
    iter_scan_batches,
    merge_sum_partials,
    phase_since,
    projection_sql,
    select_aggregate,
    select_table,
)

#: Aggregates whose per-partition partials merge by plain addition.
_ADDITIVE = {"SUM", "COUNT"}


def plan_and_execute(
    ctx: CloudContext, catalog: Catalog, sql: str, mode: str = "optimized"
) -> QueryExecution:
    """Parse, plan, and run ``sql``; returns the finalized execution.

    ``mode="auto"`` asks the cost-based optimizer to pick between the
    baseline and optimized physical plans; the per-candidate estimates
    land in ``execution.details["optimizer"]``.
    """
    if mode not in ("baseline", "optimized", "auto"):
        raise PlanError(
            f"unknown mode {mode!r}; use 'baseline', 'optimized' or 'auto'"
        )
    query = parse(sql)
    summary = None
    if mode == "auto":
        from repro.optimizer.chooser import choose_planner_mode

        choice = choose_planner_mode(ctx, catalog, query)
        mode = choice.picked
        summary = choice.summary()
    if len(query.from_tables) > 2:
        # Reuse the order the auto-mode search already picked rather
        # than running the DP a second time.
        order = summary.get("join_order_list") if summary is not None else None
        execution = _execute_multijoin(ctx, catalog, query, mode, force_order=order)
    elif query.join_table is not None:
        execution = _execute_join(ctx, catalog, query, mode)
    else:
        execution = _execute_single(ctx, catalog, query, mode)
    if summary is not None:
        execution.details["optimizer"] = summary
    return execution


# ----------------------------------------------------------------------
# single-table plans
# ----------------------------------------------------------------------

def _execute_single(
    ctx: CloudContext, catalog: Catalog, query: ast.Query, mode: str
) -> QueryExecution:
    """Run a single-table query as a streaming RecordBatch pipeline.

    The scan source issues every partition request up front (so request
    and byte accounting never depend on how far the pipeline is pulled),
    then batches flow through the local tail; a LIMIT cuts parsing and
    operator work short without changing what was billed.
    """
    table = catalog.get(query.table)
    tally = CpuTally()
    mark = ctx.begin_query()

    if mode == "optimized" and _fully_pushable(query):
        return _execute_pushed_aggregate(ctx, table, query, mark)

    if mode == "baseline":
        names = list(table.schema.names)
        # Ingest is counted after the local filter, exactly as the
        # materialized planner did (the model charges parse time for
        # rows the tail consumes; a LIMIT that stops pulling shrinks it).
        source = BatchCounter(
            filter_batches(iter_scan_batches(ctx, table), names, query.where, tally)
        )
    else:
        needed = _needed_columns(query, table)
        where_sql = query.where.to_sql() if query.where is not None else None
        source = BatchCounter(
            iter_scan_batches(ctx, table, projection_sql(needed, where_sql))
        )
        names = needed

    scanned_columns = len(names)
    rows, names = _local_tail_batches(query, iter(source), names, tally)
    phase = phase_since(
        ctx, mark, "scan", streams=table.partitions,
        server_cpu_seconds=tally.seconds,
        ingest=(source.rows, scanned_columns),
    )
    return ctx.finalize(mark, rows, names, [phase], strategy=f"{mode} single-table")


def _fully_pushable(query: ast.Query) -> bool:
    """True when the whole query fits the S3 Select dialect with additive
    aggregates (pure SUM/COUNT shapes like TPC-H Q6)."""
    if query.group_by or query.order_by or query.limit is not None:
        return False
    aggs: list[ast.Aggregate] = []
    for item in query.select_items:
        if isinstance(item.expr, ast.Star) or not ast.contains_aggregate(item.expr):
            return False
        aggs.extend(n for n in ast.walk(item.expr) if isinstance(n, ast.Aggregate))
    return all(a.func in _ADDITIVE and not a.distinct for a in aggs)


def _execute_pushed_aggregate(
    ctx: CloudContext, table: TableInfo, query: ast.Query, mark: int
) -> QueryExecution:
    pushed = ast.Query(
        select_items=query.select_items, table="S3Object", where=query.where
    )
    partials, names = select_aggregate(ctx, table, pushed.to_sql())
    merged = merge_sum_partials(partials)
    out_names = [
        item.output_name(i) for i, item in enumerate(query.select_items, start=1)
    ]
    phase = phase_since(ctx, mark, "pushed-aggregate", streams=table.partitions)
    return ctx.finalize(
        mark, [tuple(merged)], out_names, [phase], strategy="optimized single-table"
    )


def _needed_columns(query: ast.Query, table: TableInfo) -> list[str]:
    referenced: set[str] = set()
    star = False
    for item in query.select_items:
        if isinstance(item.expr, ast.Star):
            star = True
        else:
            referenced |= ast.referenced_columns(item.expr)
    for expr in query.group_by:
        referenced |= ast.referenced_columns(expr)
    for order in query.order_by:
        referenced |= ast.referenced_columns(order.expr)
    if star:
        return list(table.schema.names)
    lowered = {c.lower() for c in referenced}
    needed = [n for n in table.schema.names if n.lower() in lowered]
    if not needed:
        raise PlanError("query references no columns of its table")
    return needed


def _local_tail_batches(
    query: ast.Query, stream, names: list[str], tally: CpuTally
) -> tuple[list[tuple], list[str]]:
    """GROUP BY / aggregate / ORDER BY / LIMIT as a streaming pipeline.

    ``stream`` is an iterator of RecordBatches.  Row-at-a-time operators
    (projection, LIMIT) stay streaming; pipeline breakers (group-by,
    aggregation, sort, top-K) drain the stream internally and re-enter
    the pipeline as a single batch.

    SQL allows ``ORDER BY`` keys outside the select list; projection is
    deferred until after the sort/top-K in that case so the keys are
    still in scope (queries whose keys are selected keep the historical
    project-first pipeline and its metering).
    """
    deferred_projection = False
    if query.group_by:
        grouped = tally.add(
            group_by_batches(stream, names, query.group_by, _agg_items(query))
        )
        stream, names = iter([grouped.rows]), grouped.column_names
    elif any(
        not isinstance(i.expr, ast.Star) and ast.contains_aggregate(i.expr)
        for i in query.select_items
    ):
        out = tally.add(
            group_by_batches(stream, names, (), list(query.select_items))
        )
        stream, names = iter([out.rows]), out.column_names
    elif not all(isinstance(i.expr, ast.Star) for i in query.select_items):
        out_names = {n.lower() for n in projected_names(names, query.select_items)}
        deferred_projection = any(
            ref.lower() not in out_names
            for item in query.order_by
            for ref in ast.referenced_columns(item.expr)
        )
        if not deferred_projection:
            stream = project_batches(stream, names, query.select_items, tally)
            names = projected_names(names, query.select_items)

    order_by = query.order_by
    if deferred_projection:
        # SQL resolves ORDER BY names against the select list first;
        # with projection deferred the sort sees raw scan columns, so
        # alias references must be rewritten to their expressions.
        order_by = tuple(
            ast.OrderItem(_unalias(o.expr, query.select_items), o.descending)
            for o in order_by
        )
    if order_by:
        if query.limit is not None:
            out = tally.add(top_k_batches(stream, names, order_by, query.limit))
            rows = out.rows
        else:
            out = tally.add(sort_batches(stream, names, order_by))
            rows = out.rows
    else:
        rows = materialize(limit_batches(stream, query.limit))
    if deferred_projection:
        projected = tally.add(project(rows, names, query.select_items))
        rows, names = projected.rows, projected.column_names
    return rows, names


def _unalias(expr: ast.Expr, select_items) -> ast.Expr:
    """Substitute output-alias references with their select expressions.

    Recurses through the whole expression (``ORDER BY k + l_tax`` with
    ``... AS k`` rewrites the ``k`` inside the sum), matching SQL's
    rule that ORDER BY names resolve against the select list first.
    """
    aliases = {
        item.alias.lower(): item.expr
        for item in select_items
        if item.alias
    }

    def substitute(column: ast.Column) -> ast.Expr:
        if column.table is None:
            replacement = aliases.get(column.name.lower())
            if replacement is not None:
                return replacement
        return column

    return ast.map_columns(expr, substitute)


def _agg_items(query: ast.Query) -> list[ast.SelectItem]:
    """Aggregate-bearing select items (group columns come from GROUP BY)."""
    return [
        item
        for item in query.select_items
        if not isinstance(item.expr, ast.Star) and ast.contains_aggregate(item.expr)
    ]


# ----------------------------------------------------------------------
# two-table join plans
# ----------------------------------------------------------------------

@dataclass
class _JoinPlan:
    build: TableInfo
    probe: TableInfo
    build_key: str
    probe_key: str
    build_pred: ast.Expr | None
    probe_pred: ast.Expr | None
    residual: ast.Expr | None


#: Shared WHERE-decomposition primitives (also used by the join-order
#: search); kept as module aliases for the pairwise planner's call sites.
_split_conjuncts = ast.split_conjuncts
_and_join = ast.and_join


def _owner(column: ast.Column, a: TableInfo, b: TableInfo) -> TableInfo | None:
    if column.table:
        if column.table.lower() == a.name.lower():
            return a
        if column.table.lower() == b.name.lower():
            return b
        return None
    in_a = a.schema.has_column(column.name)
    in_b = b.schema.has_column(column.name)
    if in_a and not in_b:
        return a
    if in_b and not in_a:
        return b
    if in_a and in_b:
        raise PlanError(
            f"ambiguous column {column.name!r}: qualify it with a table name"
        )
    return None


def _build_join_plan(
    catalog: Catalog, query: ast.Query
) -> tuple[_JoinPlan, list[ast.Expr]]:
    a = catalog.get(query.table)
    b = catalog.get(query.join_table)
    join_cond: tuple[str, str] | None = None
    side_preds: dict[str, list[ast.Expr]] = {a.name: [], b.name: []}
    residual: list[ast.Expr] = []
    for conjunct in _split_conjuncts(query.where):
        if (
            join_cond is None
            and isinstance(conjunct, ast.Binary)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.Column)
            and isinstance(conjunct.right, ast.Column)
        ):
            lo = _owner(conjunct.left, a, b)
            ro = _owner(conjunct.right, a, b)
            if lo is not None and ro is not None and lo is not ro:
                if lo is a:
                    join_cond = (conjunct.left.name, conjunct.right.name)
                else:
                    join_cond = (conjunct.right.name, conjunct.left.name)
                continue
        owners = set()
        for column in ast.walk(conjunct):
            if isinstance(column, ast.Column):
                owner = _owner(column, a, b)
                if owner is not None:
                    owners.add(owner.name)
        if owners == {a.name}:
            side_preds[a.name].append(conjunct)
        elif owners == {b.name}:
            side_preds[b.name].append(conjunct)
        else:
            residual.append(conjunct)
    if join_cond is None:
        raise PlanError(
            "two-table queries need an equi-join condition like a.k = b.k"
        )
    a_key, b_key = join_cond
    # Build side = smaller table, as in the paper's hash joins.
    if a.num_rows <= b.num_rows:
        plan = _JoinPlan(
            build=a, probe=b, build_key=a_key, probe_key=b_key,
            build_pred=_and_join(side_preds[a.name]),
            probe_pred=_and_join(side_preds[b.name]),
            residual=_and_join(residual),
        )
    else:
        plan = _JoinPlan(
            build=b, probe=a, build_key=b_key, probe_key=a_key,
            build_pred=_and_join(side_preds[b.name]),
            probe_pred=_and_join(side_preds[a.name]),
            residual=_and_join(residual),
        )
    return plan, residual


def _join_needed_columns(
    query: ast.Query, table: TableInfo, key: str, residual: ast.Expr | None
) -> list[str]:
    referenced: set[str] = {key.lower()}
    star = False
    exprs = [i.expr for i in query.select_items]
    exprs += list(query.group_by)
    exprs += [o.expr for o in query.order_by]
    if residual is not None:
        exprs.append(residual)
    for expr in exprs:
        if isinstance(expr, ast.Star):
            star = True
            continue
        referenced |= {c.lower() for c in ast.referenced_columns(expr)}
    if star:
        return list(table.schema.names)
    return [n for n in table.schema.names if n.lower() in referenced]


def _execute_join(
    ctx: CloudContext, catalog: Catalog, query: ast.Query, mode: str
) -> QueryExecution:
    """Two-table equi-join as a streaming pipeline.

    The build side is a pipeline breaker (its rows must be hashed before
    probing), so it materializes; the probe side streams batch-by-batch
    through the join, the residual filter, and the local tail.
    """
    plan, _ = _build_join_plan(catalog, query)
    tally = CpuTally()
    mark = ctx.begin_query()
    build_cols = _join_needed_columns(query, plan.build, plan.build_key, plan.residual)
    probe_cols = _join_needed_columns(query, plan.probe, plan.probe_key, plan.residual)
    phases = []
    mark2 = mark

    if mode == "baseline":
        build_rows = materialize(iter_scan_batches(ctx, plan.build))
        b = tally.add(filter_rows(build_rows, plan.build.schema.names, plan.build_pred))
        probe_stream = filter_batches(
            iter_scan_batches(ctx, plan.probe),
            plan.probe.schema.names, plan.probe_pred, tally,
        )
        names, joined_stream = hash_join_batches(
            b.rows, plan.build.schema.names,
            probe_stream, plan.probe.schema.names,
            plan.build_key, plan.probe_key, tally,
        )
        probe_source = None
    else:
        build_sql = projection_sql(
            build_cols,
            plan.build_pred.to_sql() if plan.build_pred is not None else None,
        )
        build_rows, _ = select_table(ctx, plan.build, build_sql)
        phases.append(
            phase_since(
                ctx, mark, "build-scan", streams=plan.build.partitions,
                ingest=(len(build_rows), len(build_cols)),
            )
        )
        mark2 = ctx.metrics.mark()
        key_idx = [c.lower() for c in build_cols].index(plan.build_key.lower())
        keys = [r[key_idx] for r in build_rows if r[key_idx] is not None]
        probe_clauses = []
        if plan.probe_pred is not None:
            probe_clauses.append(plan.probe_pred.to_sql())
        use_bloom = (
            plan.build.schema.column(plan.build_key).type == "int" and keys
        )
        if use_bloom:
            base_sql = projection_sql(probe_cols, " AND ".join(probe_clauses) or None)
            clause = bloom_where(keys, plan.probe_key, base_sql)
            if clause is not None:
                probe_clauses.append(clause)
        probe_sql = projection_sql(probe_cols, " AND ".join(probe_clauses) or None)
        probe_source = BatchCounter(iter_scan_batches(ctx, plan.probe, probe_sql))
        names, joined_stream = hash_join_batches(
            build_rows, build_cols, probe_source, probe_cols,
            plan.build_key, plan.probe_key, tally,
        )

    if plan.residual is not None:
        joined_stream = filter_batches(joined_stream, names, plan.residual, tally)
    rows, names = _local_tail_batches(query, joined_stream, names, tally)

    if mode == "baseline":
        n_records = plan.build.num_rows + plan.probe.num_rows
        n_fields = (
            plan.build.num_rows * len(plan.build.schema)
            + plan.probe.num_rows * len(plan.probe.schema)
        )
        phases = [
            phase_since(
                ctx, mark, "load+join",
                streams=plan.build.partitions + plan.probe.partitions,
                server_cpu_seconds=tally.seconds,
                ingest=(n_records, n_fields / max(n_records, 1)),
            )
        ]
    else:
        phases.append(
            phase_since(
                ctx, mark2, "probe-scan", streams=plan.probe.partitions,
                ingest=(probe_source.rows, len(probe_cols)),
            )
        )
        phases[-1].server_cpu_seconds += tally.seconds
    return ctx.finalize(mark, rows, names, phases, strategy=f"{mode} join")


# ----------------------------------------------------------------------
# N-way (>2 table) join plans
# ----------------------------------------------------------------------

def execute_with_join_order(
    ctx: CloudContext,
    catalog: Catalog,
    sql: str,
    order: list[str],
    mode: str = "optimized",
) -> QueryExecution:
    """Run a multi-table query with a caller-forced left-deep join order.

    The fig12 experiment uses this to sweep every connected order and
    compare the optimizer's pick against the measured best.
    """
    query = parse(sql)
    if len(query.from_tables) < 3:
        raise PlanError("execute_with_join_order needs a 3+-table query")
    return _execute_multijoin(
        ctx, catalog, query, mode, force_order=[t.lower() for t in order]
    )


def _execute_multijoin(
    ctx: CloudContext,
    catalog: Catalog,
    query: ast.Query,
    mode: str,
    force_order: list[str] | None = None,
) -> QueryExecution:
    """N-way equi-join as a chain of hash joins over the picked order.

    The join-order search (``optimizer/joinorder.py``) decides the
    left-deep sequence; every table but the outermost probe materializes
    (each is a hash-build pipeline breaker), while the final probe side
    streams batch-by-batch through the last join, the residual filter
    and the local tail.  In optimized mode each table's predicate and
    projection are pushed into its S3 Select scan, and the outermost
    probe scan carries a Bloom predicate when the build key is an
    integer column.
    """
    from repro.optimizer.joinorder import (
        build_join_graph,
        needed_columns,
        plan_join_order,
    )
    from repro.optimizer.selectivity import estimate_selectivity

    graph = build_join_graph(catalog, query)
    if force_order is not None:
        order = list(force_order)
        if sorted(order) != sorted(graph.table_names()):
            raise PlanError(
                f"join order {order} does not cover tables"
                f" {graph.table_names()}"
            )
        for i in range(1, len(order)):
            if not graph.edges_between(order[i], set(order[:i])):
                raise PlanError(
                    f"join order {order} is not connected at {order[i]!r}"
                )
    else:
        order = plan_join_order(ctx, catalog, query, graph=graph).order

    columns = needed_columns(graph, query)
    tally = CpuTally()
    mark = ctx.begin_query()
    phases = []
    #: Equality edges beyond the hash edge at each step, applied as
    #: residual filters over the joined stream.
    deferred: list[ast.Expr] = []

    def scan_names(name: str) -> list[str]:
        return (
            list(graph.tables[name].schema.names)
            if mode == "baseline"
            else columns[name]
        )

    def load_filtered(name: str) -> list[tuple]:
        """Materialize one table's filtered, projected rows (metered)."""
        table = graph.tables[name]
        pred = graph.predicates[name]
        scan_mark = ctx.metrics.mark()
        if mode == "baseline":
            rows = materialize(iter_scan_batches(ctx, table))
            rows = tally.add(filter_rows(rows, table.schema.names, pred)).rows
            return rows
        sql = projection_sql(
            columns[name], pred.to_sql() if pred is not None else None
        )
        rows, _ = select_table(ctx, table, sql)
        phases.append(phase_since(
            ctx, scan_mark, f"scan-{name}", streams=table.partitions,
            ingest=(len(rows), len(columns[name])),
        ))
        return rows

    # Materialize every table but the outermost probe, joining as we go.
    cur_rows = load_filtered(order[0])
    cur_names = scan_names(order[0])
    joined: set[str] = {order[0]}
    for name in order[1:-1]:
        rows = load_filtered(name)
        names = scan_names(name)
        edges = graph.edges_between(name, joined)
        hash_edge, extra = edges[0], edges[1:]
        deferred.extend(e.to_expr() for e in extra)
        inter_key = hash_edge.key_for(hash_edge.other(name))
        table_key = hash_edge.key_for(name)
        if len(cur_rows) <= len(rows):
            out = tally.add(hash_join(
                cur_rows, cur_names, rows, names, inter_key, table_key
            ))
        else:
            out = tally.add(hash_join(
                rows, names, cur_rows, cur_names, table_key, inter_key
            ))
        cur_rows, cur_names = out.rows, out.column_names
        joined.add(name)

    # Outermost step: pick the build side per edge, stream the probe.
    last = order[-1]
    last_table = graph.tables[last]
    last_pred = graph.predicates[last]
    last_names = scan_names(last)
    edges = graph.edges_between(last, joined)
    hash_edge, extra = edges[0], edges[1:]
    deferred.extend(e.to_expr() for e in extra)
    inter_key = hash_edge.key_for(hash_edge.other(last))
    last_key = hash_edge.key_for(last)
    est_last_rows = (
        estimate_selectivity(last_pred, last_table.stats_or_default())
        * last_table.num_rows
    )
    probe_mark = ctx.metrics.mark()

    if est_last_rows < len(cur_rows):
        # The final table is the smaller side: build from it and stream
        # the intermediate through the join instead.
        build_rows = load_filtered(last)
        probe_source = None
        names, joined_stream = hash_join_batches(
            build_rows, last_names,
            iter(batches_of(cur_rows, getattr(ctx, "batch_size", None)
                            or DEFAULT_BATCH_SIZE)),
            cur_names, last_key, inter_key, tally,
        )
    elif mode == "baseline":
        probe_stream = filter_batches(
            iter_scan_batches(ctx, last_table),
            last_table.schema.names, last_pred, tally,
        )
        probe_source = BatchCounter(probe_stream)
        names, joined_stream = hash_join_batches(
            cur_rows, cur_names, probe_source, last_names,
            inter_key, last_key, tally,
        )
    else:
        probe_clauses = []
        if last_pred is not None:
            probe_clauses.append(last_pred.to_sql())
        build_endpoint = hash_edge.other(last)
        key_type = graph.tables[build_endpoint].schema.column(
            hash_edge.key_for(build_endpoint)
        ).type
        if key_type == "int":
            key_idx = [c.lower() for c in cur_names].index(inter_key.lower())
            keys = [r[key_idx] for r in cur_rows if r[key_idx] is not None]
            if keys:
                base_sql = projection_sql(
                    last_names, " AND ".join(probe_clauses) or None
                )
                clause = bloom_where(keys, last_key, base_sql)
                if clause is not None:
                    probe_clauses.append(clause)
        probe_sql = projection_sql(
            last_names, " AND ".join(probe_clauses) or None
        )
        probe_source = BatchCounter(iter_scan_batches(ctx, last_table, probe_sql))
        names, joined_stream = hash_join_batches(
            cur_rows, cur_names, probe_source, last_names,
            inter_key, last_key, tally,
        )

    residual = _and_join(deferred + _split_conjuncts(graph.residual))
    if residual is not None:
        joined_stream = filter_batches(joined_stream, names, residual, tally)
    rows, names = _local_tail_batches(query, joined_stream, names, tally)

    if mode == "baseline":
        n_records = sum(t.num_rows for t in graph.tables.values())
        n_fields = sum(
            t.num_rows * len(t.schema) for t in graph.tables.values()
        )
        phases = [phase_since(
            ctx, mark, "load+join",
            streams=sum(t.partitions for t in graph.tables.values()),
            server_cpu_seconds=tally.seconds,
            ingest=(n_records, n_fields / max(n_records, 1)),
        )]
    else:
        if probe_source is not None:
            phases.append(phase_since(
                ctx, probe_mark, f"probe-scan-{last}",
                streams=last_table.partitions,
                ingest=(probe_source.rows, len(last_names)),
            ))
        phases[-1].server_cpu_seconds += tally.seconds
    strategy = f"{mode} multi-join ({' >< '.join(order)})"
    return ctx.finalize(mark, rows, names, phases, strategy=strategy)
