"""Table catalog and table loader.

PushdownDB addresses tables as sets of S3 objects: each table is
partitioned into multiple objects so partitions can be scanned in
parallel (Section III, "each table is partitioned into multiple objects
in S3").  The catalog records where each table's partitions live, its
schema, and any index tables built for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cloud.context import CloudContext
from repro.common.errors import CatalogError
from repro.storage.csvcodec import encode_table
from repro.storage.parquet import DEFAULT_ROW_GROUP_ROWS, write_parquet
from repro.storage.schema import TableSchema

#: Default number of partition objects per table.  The paper does not fix
#: a count ("the techniques ... do not make any assumptions about how the
#: data is partitioned"); 16 matches the
#: parallelism our performance calibration assumes for the paper's
#: testbed (32 cores, streams per table).
DEFAULT_PARTITIONS = 16


@dataclass
class IndexInfo:
    """One index table (Section IV-A): per data partition, an index object."""

    column: str
    #: index object key for each data partition, parallel to
    #: ``TableInfo.keys``.
    keys: list[str]
    schema: TableSchema
    #: Total encoded size of the index objects; the cost model scans
    #: these in the indexing strategy's phase 1.
    total_bytes: int = 0


@dataclass
class TableInfo:
    """Catalog entry for one table."""

    name: str
    bucket: str
    keys: list[str]
    schema: TableSchema
    format: str
    num_rows: int
    total_bytes: int
    partition_rows: list[int] = field(default_factory=list)
    #: Encoded size of each partition object, parallel to ``keys``; lets
    #: the cost model price a pruned scan by the bytes it actually touches.
    partition_bytes: list[int] = field(default_factory=list)
    indexes: dict[str, IndexInfo] = field(default_factory=dict)
    #: Optimizer statistics collected at load time (``None`` when the
    #: table was registered with ``collect_stats=False``).
    stats: "TableStats | None" = None
    #: Per-partition zone maps (min/max/null-count per column), parallel
    #: to ``keys``; empty when stats collection was disabled.  Pushdown
    #: scans refute these against the pushed predicate to skip whole
    #: partition requests.
    zone_maps: "list[PartitionZoneMap]" = field(default_factory=list)

    @property
    def partitions(self) -> int:
        return len(self.keys)

    def stats_or_default(self) -> "TableStats":
        """Collected statistics, or a synthesized fallback."""
        if self.stats is not None:
            return self.stats
        from repro.optimizer.stats import synthesize_table_stats

        return synthesize_table_stats(self.schema, self.num_rows, self.total_bytes)

    def index_for(self, column: str) -> IndexInfo:
        key = column.lower()
        if key not in self.indexes:
            raise CatalogError(
                f"table {self.name!r} has no index on {column!r};"
                f" available: {sorted(self.indexes)}"
            )
        return self.indexes[key]


class Catalog:
    """Name -> :class:`TableInfo` registry."""

    def __init__(self):
        self._tables: dict[str, TableInfo] = {}

    def register(self, info: TableInfo) -> None:
        self._tables[info.name.lower()] = info

    def get(self, name: str) -> TableInfo:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            )
        return self._tables[key]

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables


def _partition_slices(n_rows: int, partitions: int) -> list[slice]:
    """Split ``n_rows`` into contiguous, near-equal slices."""
    partitions = max(1, min(partitions, n_rows) if n_rows else 1)
    base, extra = divmod(n_rows, partitions)
    slices = []
    start = 0
    for i in range(partitions):
        size = base + (1 if i < extra else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices


def load_table(
    ctx: CloudContext,
    catalog: Catalog,
    name: str,
    rows: Sequence[tuple],
    schema: TableSchema,
    bucket: str = "tpch",
    partitions: int = DEFAULT_PARTITIONS,
    data_format: str = "csv",
    index_columns: Iterable[str] = (),
    row_group_rows: int = DEFAULT_ROW_GROUP_ROWS,
    compression: str = "zlib",
    collect_stats: bool = True,
) -> TableInfo:
    """Write ``rows`` to partitioned objects and register the table.

    Data objects carry no header row (the schema travels as object
    metadata), so index-table byte offsets address records directly.
    Loading is a setup step and is deliberately unmetered, matching the
    paper's exclusion of load cost from query cost.

    Args:
        index_columns: columns to build Section IV-A index tables for.
            Index objects live under ``{name}/index/{column}/``.
        collect_stats: run the optimizer's statistics pass over ``rows``
            (row/column counts, min/max, distinct, widths, MCVs) and
            attach the result to the catalog entry.  One linear pass at
            load time; disable for throughput-sensitive bulk loads.
    """
    if data_format not in ("csv", "parquet"):
        raise CatalogError(f"unknown format {data_format!r}")
    feedback = getattr(ctx, "feedback", None)
    if feedback is not None:
        # (Re)loading invalidates every measurement taken against the
        # table's previous contents — stale "facts" must not outlive
        # the data they were measured on.
        feedback.forget_table(name)
    result_cache = getattr(ctx, "result_cache", None)
    if result_cache is not None:
        # Same rule for cached results: a reloaded name bumps the
        # table's content version and drops every derived entry, so the
        # semantic cache can never serve rows from the old contents.
        result_cache.invalidate_table(name)
    ctx.store.create_bucket(bucket)
    slices = _partition_slices(len(rows), partitions)
    schema_spec = [f"{c.name}:{c.type}" for c in schema.columns]

    keys: list[str] = []
    partition_rows: list[int] = []
    partition_bytes: list[int] = []
    zone_maps: list = []
    total_bytes = 0
    extents_per_partition: list[list] = []
    for i, sl in enumerate(slices):
        chunk = rows[sl]
        if collect_stats:
            from repro.optimizer.stats import collect_zone_map

            zone_maps.append(collect_zone_map(chunk, schema))
        ext = "csv" if data_format == "csv" else "spq"
        key = f"{name}/part-{i:04d}.{ext}"
        if data_format == "csv":
            data, extents = encode_table(chunk, header=None)
            extents_per_partition.append(extents)
        else:
            data = write_parquet(
                chunk, schema, row_group_rows=row_group_rows, compression=compression
            )
            extents_per_partition.append([])
        ctx.store.put_object(
            bucket,
            key,
            data,
            metadata={"format": data_format, "schema": schema_spec, "header": False},
        )
        keys.append(key)
        partition_rows.append(len(chunk))
        partition_bytes.append(len(data))
        total_bytes += len(data)

    info = TableInfo(
        name=name,
        bucket=bucket,
        keys=keys,
        schema=schema,
        format=data_format,
        num_rows=len(rows),
        total_bytes=total_bytes,
        partition_rows=partition_rows,
        partition_bytes=partition_bytes,
        zone_maps=zone_maps,
    )
    if collect_stats:
        from repro.optimizer.stats import collect_table_stats

        info.stats = collect_table_stats(rows, schema)

    for column in index_columns:
        if data_format != "csv":
            raise CatalogError("index tables are only supported for CSV data")
        info.indexes[column.lower()] = _build_index(
            ctx, info, column, rows, slices, extents_per_partition, schema_spec
        )

    catalog.register(info)
    return info


def _build_index(
    ctx: CloudContext,
    info: TableInfo,
    column: str,
    rows: Sequence[tuple],
    slices: list[slice],
    extents_per_partition: list[list],
    schema_spec: list[str],
) -> IndexInfo:
    """Materialize ``|value|first_byte|last_byte|`` index objects."""
    col_idx = info.schema.index_of(column)
    col_type = info.schema.columns[col_idx].type
    index_schema = TableSchema.of(
        f"value:{col_type}", "first_byte:int", "last_byte:int"
    )
    index_spec = [f"{c.name}:{c.type}" for c in index_schema.columns]
    index_keys = []
    index_bytes = 0
    for i, (sl, extents) in enumerate(zip(slices, extents_per_partition)):
        chunk = rows[sl]
        index_rows = [
            (row[col_idx], ext.first_byte, ext.last_byte)
            for row, ext in zip(chunk, extents)
        ]
        data, _ = encode_table(index_rows, header=None)
        key = f"{info.name}/index/{column.lower()}/part-{i:04d}.csv"
        ctx.store.put_object(
            info.bucket,
            key,
            data,
            metadata={"format": "csv", "schema": index_spec, "header": False},
        )
        index_keys.append(key)
        index_bytes += len(data)
    return IndexInfo(
        column=column.lower(), keys=index_keys, schema=index_schema,
        total_bytes=index_bytes,
    )
