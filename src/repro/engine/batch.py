"""The columnar RecordBatch: one value sequence per column.

The streaming pipeline historically moved ``list[tuple]`` chunks.  Row
tuples are convenient but slow to build and tear apart: every operator
pays a Python-level loop per row, and the CSV decoder materializes a
tuple per record just so a filter can immediately discard most of them.
A :class:`Batch` stores the same chunk column-wise — one plain Python
list (or ``array.array`` for NULL-free fixed-width numerics, see
:meth:`compact`) per column plus a row count — so the vectorized
expression kernels in :mod:`repro.expr.vector` can sweep whole columns
with C-speed list comprehensions.

Compatibility contract: a :class:`Batch` behaves like the sequence of
row tuples it represents.  ``len(batch)`` is the row count, iteration
yields tuples, ``batch[i]`` is a row, and ``batch[a:b]`` is a sliced
*view* — column slices share the underlying value objects and no row
tuple is ever rebuilt.  Operators that receive plain lists keep their
row-wise paths, so the two batch currencies can coexist in one stream.
"""

from __future__ import annotations

from array import array
from itertools import compress
from typing import Iterable, Iterator, Sequence

#: ``array.array`` typecodes used by :meth:`Batch.compact`.
_COMPACT_TYPECODES = {int: "q", float: "d"}


class Batch:
    """One columnar RecordBatch: per-column value sequences + a length.

    ``columns`` is a list with one entry per output column; each entry is
    an indexable sequence (usually a list, possibly an ``array.array``)
    of exactly ``length`` values, where ``None`` encodes SQL NULL.
    Columns are treated as immutable once a batch is constructed, which
    is what makes slicing and projection views safe to share.
    """

    __slots__ = ("columns", "length")

    def __init__(self, columns: Sequence[Sequence[object]], length: int | None = None):
        self.columns = list(columns)
        if length is None:
            if not self.columns:
                raise ValueError("a Batch without columns needs an explicit length")
            length = len(self.columns[0])
        self.length = length

    # -- converters ----------------------------------------------------

    @classmethod
    def from_rows(
        cls, rows: Sequence[tuple], num_columns: int | None = None
    ) -> "Batch":
        """Transpose row tuples into a columnar batch.

        ``num_columns`` is only needed for an empty ``rows`` (the column
        count cannot be inferred from nothing).
        """
        if not rows:
            if num_columns is None:
                raise ValueError("from_rows([]) needs num_columns")
            return cls([[] for _ in range(num_columns)], 0)
        return cls([list(col) for col in zip(*rows)], len(rows))

    def to_rows(self) -> list[tuple]:
        """Materialize the batch as a list of row tuples."""
        if not self.columns:
            return [()] * self.length
        return list(zip(*self.columns))

    def iter_rows(self) -> Iterator[tuple]:
        """Iterate row tuples without materializing them all up front."""
        if not self.columns:
            return iter([()] * self.length)
        return zip(*self.columns)

    # -- sequence protocol (a Batch acts like its list of row tuples) --

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[tuple]:
        return self.iter_rows()

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self.length)
            if step != 1:
                raise ValueError("Batch slices must be contiguous (step 1)")
            if start == 0 and stop == self.length:
                return self
            return Batch([col[start:stop] for col in self.columns], max(stop - start, 0))
        return self.row(index)

    def row(self, i: int) -> tuple:
        """Materialize one row tuple."""
        return tuple(col[i] for col in self.columns)

    def column(self, i: int) -> Sequence[object]:
        """The ``i``-th column's value sequence (shared, not copied)."""
        return self.columns[i]

    # -- columnar transforms -------------------------------------------

    def filter(self, mask: Sequence[object]) -> "Batch":
        """Rows whose mask entry is ``True`` (SQL WHERE: NULL drops).

        ``mask`` entries must be ``True``, ``False`` or ``None`` (the
        three values a predicate produces); counting and compressing
        then both run at C speed.
        """
        kept = mask.count(True) if isinstance(mask, list) else sum(
            v is True for v in mask
        )
        if kept == self.length:
            return self
        return Batch([list(compress(col, mask)) for col in self.columns], kept)

    def take(self, indices: Sequence[int]) -> "Batch":
        """Gather the given row positions into a new batch."""
        return Batch([[col[i] for i in indices] for col in self.columns], len(indices))

    def compact(self) -> "Batch":
        """Repack NULL-free int/float columns into ``array.array``.

        A memory-density optimization for long-lived batches (pipeline
        breakers buffering input): fixed-width numerics drop the
        per-object overhead.  Columns with NULLs, mixed types, or values
        outside the fixed width stay as-is; values read back compare
        equal, so semantics never change.
        """
        packed = []
        for col in self.columns:
            typecode = None
            if self.length and not isinstance(col, array):
                first = type(col[0])
                typecode = _COMPACT_TYPECODES.get(first)
                if typecode is not None and any(type(v) is not first for v in col):
                    typecode = None
            if typecode is None:
                packed.append(col)
                continue
            try:
                packed.append(array(typecode, col))
            except (OverflowError, TypeError):
                packed.append(col)
        return Batch(packed, self.length)

    def __repr__(self) -> str:
        return f"Batch(columns={len(self.columns)}, rows={self.length})"


def batch_rows(batch: "Batch | Iterable[tuple]") -> Iterable[tuple]:
    """Row tuples of either batch currency (columnar or list)."""
    if isinstance(batch, Batch):
        return batch.iter_rows()
    return batch
