"""Local filter: apply a WHERE predicate on the query node.

This is what the paper's *server-side* baselines do after loading raw
table bytes: parse, then filter locally.
"""

from __future__ import annotations

from typing import Sequence

from repro.cloud.perf import SERVER_CPU_PER_ROW
from repro.engine.operators.base import OpResult
from repro.expr.compiler import compile_predicate
from repro.sqlparser import ast


def filter_rows(
    rows: list[tuple],
    column_names: Sequence[str],
    predicate: ast.Expr | None,
) -> OpResult:
    """Keep rows satisfying ``predicate`` (``None`` keeps everything)."""
    if predicate is None:
        return OpResult(rows=list(rows), column_names=list(column_names))
    schema = {name: i for i, name in enumerate(column_names)}
    keep = compile_predicate(predicate, schema)
    out = [row for row in rows if keep(row)]
    cpu = len(rows) * SERVER_CPU_PER_ROW["filter"]
    return OpResult(rows=out, column_names=list(column_names), cpu_seconds=cpu)
