"""Local filter: apply a WHERE predicate on the query node.

This is what the paper's *server-side* baselines do after loading raw
table bytes: parse, then filter locally.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.cloud.perf import SERVER_CPU_PER_ROW
from repro.engine.batch import Batch as ColumnBatch
from repro.engine.operators.base import Batch, CpuTally, OpResult
from repro.expr.compiler import compile_predicate
from repro.expr.vector import compile_predicate_vector
from repro.sqlparser import ast


def filter_batches(
    batches: Iterable[Batch],
    column_names: Sequence[str],
    predicate: ast.Expr | None,
    tally: CpuTally | None = None,
) -> Iterator[Batch]:
    """Streaming :func:`filter_rows`: filter each RecordBatch as it flows.

    Columnar batches are filtered through the vectorized predicate (one
    mask sweep + one gather); list batches keep the row-wise closure.
    Charges the same per-input-row CPU as the materialized variant into
    ``tally`` while batches are pulled, so a downstream LIMIT that stops
    early also stops paying.
    """
    if predicate is None:
        yield from batches
        return
    schema = {name: i for i, name in enumerate(column_names)}
    keep_mask = compile_predicate_vector(predicate, schema)  # compile errors now
    keep = None
    per_row = SERVER_CPU_PER_ROW["filter"]
    for batch in batches:
        if tally is not None:
            tally.add_seconds(len(batch) * per_row)
        if isinstance(batch, ColumnBatch):
            yield batch.filter(keep_mask(batch))
        else:
            if keep is None:
                keep = compile_predicate(predicate, schema)
            yield [row for row in batch if keep(row)]


def filter_rows(
    rows: list[tuple],
    column_names: Sequence[str],
    predicate: ast.Expr | None,
) -> OpResult:
    """Keep rows satisfying ``predicate`` (``None`` keeps everything)."""
    if predicate is None:
        return OpResult(rows=list(rows), column_names=list(column_names))
    schema = {name: i for i, name in enumerate(column_names)}
    keep = compile_predicate(predicate, schema)
    out = [row for row in rows if keep(row)]
    cpu = len(rows) * SERVER_CPU_PER_ROW["filter"]
    return OpResult(rows=out, column_names=list(column_names), cpu_seconds=cpu)
