"""Local hash join (build + probe), the core of all three join strategies.

The paper's joins are two-phase hash joins (Section V): the build phase
hashes the smaller table, the probe phase streams the bigger one.  What
differs between baseline / filtered / Bloom join is only *which rows
reach the query node*; they all finish here.

Beyond the inner equi-join, the probe loop supports the join types the
TPC-H decorrelation pass produces:

* ``left`` — left-outer with the *probe* side preserved: probe rows with
  no match are emitted once, NULL-padded on the build columns;
* ``semi`` — emit each probe row at most once if any build row matches;
* ``anti`` — emit each probe row only if no build row matches (a NULL
  probe key never matches, so it is emitted);
* ``anti_null`` — NULL-aware anti join for ``NOT IN``: if the build side
  contains a NULL key nothing qualifies, and a NULL probe key is never
  emitted (three-valued ``NOT IN`` semantics).

``match_pred`` evaluates a residual ON/correlation condition per
candidate (build_row + probe_row) pair before a pair counts as a match.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.cloud.perf import SERVER_CPU_PER_ROW
from repro.common.errors import PlanError
from repro.engine.batch import Batch as ColumnBatch
from repro.engine.operators.base import Batch, CpuTally, OpResult

JOIN_TYPES = ("inner", "left", "semi", "anti", "anti_null")


def join_output_names(
    build_names: Sequence[str], probe_names: Sequence[str], join_type: str = "inner"
) -> list[str]:
    """Output schema of a join: build columns then probe columns for
    inner/left joins, probe columns only for semi/anti variants."""
    if join_type in ("semi", "anti", "anti_null"):
        return list(probe_names)
    return [*build_names, *probe_names]


class _BuildTable:
    """Hash table over the build side plus NULL-key bookkeeping."""

    __slots__ = ("table", "has_null", "num_rows")

    def __init__(self, build_rows: list[tuple], build_idx: int):
        table: dict[object, list[tuple]] = {}
        has_null = False
        for row in build_rows:
            key = row[build_idx]
            if key is None:
                has_null = True  # NULL never matches an equi-join
                continue
            table.setdefault(key, []).append(row)
        self.table = table
        self.has_null = has_null
        self.num_rows = len(build_rows)


def _check_names(
    build_names: Sequence[str], probe_names: Sequence[str], join_type: str
) -> list[str]:
    combined = [*build_names, *probe_names]
    if len(set(n.lower() for n in combined)) != len(combined):
        raise PlanError(f"join would produce duplicate column names: {combined}")
    if join_type not in JOIN_TYPES:
        raise PlanError(f"unknown join type {join_type!r}")
    return join_output_names(build_names, probe_names, join_type)


def _join_rows(
    build: _BuildTable,
    rows: Iterable[tuple],
    probe_idx: int,
    join_type: str,
    match_pred: Callable[[tuple], object] | None,
    null_pad: tuple,
) -> Iterator[tuple]:
    """Join one batch of probe rows against the built table."""
    get = build.table.get
    if join_type == "anti_null" and build.has_null:
        return  # NOT IN over a set containing NULL is never true
    for row in rows:
        matches = get(row[probe_idx])
        if match_pred is None:
            matched = matches or ()
        else:
            matched = [b for b in (matches or ()) if match_pred(b + row)]
        if join_type == "inner":
            for build_row in matched:
                yield build_row + row
        elif join_type == "left":
            if matched:
                for build_row in matched:
                    yield build_row + row
            else:
                yield null_pad + row
        elif join_type == "semi":
            if matched:
                yield row
        else:  # anti / anti_null
            if join_type == "anti_null" and row[probe_idx] is None:
                continue  # NULL NOT IN (non-empty set) is unknown, not true
            if not matched:
                yield row


def hash_join_batches(
    build_rows: list[tuple],
    build_names: Sequence[str],
    probe_batches: Iterable[Batch],
    probe_names: Sequence[str],
    build_key: str,
    probe_key: str,
    tally: CpuTally | None = None,
    join_type: str = "inner",
    match_pred: Callable[[tuple], object] | None = None,
) -> tuple[list[str], Iterator[Batch]]:
    """Streaming :func:`hash_join`: build eagerly, probe batch by batch.

    The build side is a pipeline breaker (hashed up front, charged to
    ``tally`` immediately); the probe side streams, so joined batches
    reach downstream operators while later probe batches are still being
    produced.  Returns ``(output_names, joined_batches)``.
    """
    out_names = _check_names(build_names, probe_names, join_type)
    build_idx = _index_of(build_names, build_key)
    probe_idx = _index_of(probe_names, probe_key)

    build = _BuildTable(build_rows, build_idx)
    if tally is not None:
        tally.add_seconds(build.num_rows * SERVER_CPU_PER_ROW["hash_build"])
    null_pad = (None,) * len(build_names)

    def probe() -> Iterator[Batch]:
        per_row = SERVER_CPU_PER_ROW["hash_probe"]
        get = build.table.get
        fast_inner = join_type == "inner" and match_pred is None
        for batch in probe_batches:
            if tally is not None:
                tally.add_seconds(len(batch) * per_row)
            out: list[tuple] = []
            if fast_inner and isinstance(batch, ColumnBatch):
                # Probe the key column directly; only matching rows are
                # ever materialized as tuples.
                row_of = batch.row
                for i, key in enumerate(batch.column(probe_idx)):
                    matches = get(key)
                    if matches:
                        row = row_of(i)
                        for build_row in matches:
                            out.append(build_row + row)
            else:
                rows = batch.iter_rows() if isinstance(batch, ColumnBatch) else batch
                out.extend(
                    _join_rows(build, rows, probe_idx, join_type, match_pred, null_pad)
                )
            yield out

    return out_names, probe()


def hash_join(
    build_rows: list[tuple],
    build_names: Sequence[str],
    probe_rows: list[tuple],
    probe_names: Sequence[str],
    build_key: str,
    probe_key: str,
    join_type: str = "inner",
    match_pred: Callable[[tuple], object] | None = None,
) -> OpResult:
    """Materialized equi-join (see module docstring for join types).

    Raises:
        PlanError: if output column names would collide (TPC-H names are
            globally unique, so collisions indicate a planning bug).
    """
    out_names = _check_names(build_names, probe_names, join_type)
    build_idx = _index_of(build_names, build_key)
    probe_idx = _index_of(probe_names, probe_key)

    build = _BuildTable(build_rows, build_idx)
    null_pad = (None,) * len(build_names)
    out = list(
        _join_rows(build, probe_rows, probe_idx, join_type, match_pred, null_pad)
    )

    cpu = (
        len(build_rows) * SERVER_CPU_PER_ROW["hash_build"]
        + len(probe_rows) * SERVER_CPU_PER_ROW["hash_probe"]
    )
    return OpResult(rows=out, column_names=out_names, cpu_seconds=cpu)


def _index_of(names: Sequence[str], wanted: str) -> int:
    lowered = [n.lower() for n in names]
    try:
        return lowered.index(wanted.lower())
    except ValueError:
        raise PlanError(f"join key {wanted!r} not in columns {list(names)}") from None
