"""Local hash join (build + probe), the core of all three join strategies.

The paper's joins are two-phase hash joins (Section V): the build phase
hashes the smaller table, the probe phase streams the bigger one.  What
differs between baseline / filtered / Bloom join is only *which rows
reach the query node*; they all finish here.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.cloud.perf import SERVER_CPU_PER_ROW
from repro.common.errors import PlanError
from repro.engine.batch import Batch as ColumnBatch
from repro.engine.operators.base import Batch, CpuTally, OpResult


def hash_join_batches(
    build_rows: list[tuple],
    build_names: Sequence[str],
    probe_batches: Iterable[Batch],
    probe_names: Sequence[str],
    build_key: str,
    probe_key: str,
    tally: CpuTally | None = None,
) -> tuple[list[str], Iterator[Batch]]:
    """Streaming :func:`hash_join`: build eagerly, probe batch by batch.

    The build side is a pipeline breaker (hashed up front, charged to
    ``tally`` immediately); the probe side streams, so joined batches
    reach downstream operators while later probe batches are still being
    produced.  Returns ``(output_names, joined_batches)``.
    """
    out_names = [*build_names, *probe_names]
    if len(set(n.lower() for n in out_names)) != len(out_names):
        raise PlanError(f"join would produce duplicate column names: {out_names}")

    build_idx = _index_of(build_names, build_key)
    probe_idx = _index_of(probe_names, probe_key)

    table: dict[object, list[tuple]] = {}
    for row in build_rows:
        key = row[build_idx]
        if key is None:
            continue  # NULL never matches an equi-join
        table.setdefault(key, []).append(row)
    if tally is not None:
        tally.add_seconds(len(build_rows) * SERVER_CPU_PER_ROW["hash_build"])

    def probe() -> Iterator[Batch]:
        per_row = SERVER_CPU_PER_ROW["hash_probe"]
        get = table.get
        for batch in probe_batches:
            if tally is not None:
                tally.add_seconds(len(batch) * per_row)
            out: list[tuple] = []
            if isinstance(batch, ColumnBatch):
                # Probe the key column directly; only matching rows are
                # ever materialized as tuples.
                row_of = batch.row
                for i, key in enumerate(batch.column(probe_idx)):
                    matches = get(key)
                    if matches:
                        row = row_of(i)
                        for build_row in matches:
                            out.append(build_row + row)
            else:
                for row in batch:
                    matches = get(row[probe_idx])
                    if matches:
                        for build_row in matches:
                            out.append(build_row + row)
            yield out

    return out_names, probe()


def hash_join(
    build_rows: list[tuple],
    build_names: Sequence[str],
    probe_rows: list[tuple],
    probe_names: Sequence[str],
    build_key: str,
    probe_key: str,
) -> OpResult:
    """Equi-join; output columns are build columns then probe columns.

    Raises:
        PlanError: if output column names would collide (TPC-H names are
            globally unique, so collisions indicate a planning bug).
    """
    out_names = [*build_names, *probe_names]
    if len(set(n.lower() for n in out_names)) != len(out_names):
        raise PlanError(f"join would produce duplicate column names: {out_names}")

    build_idx = _index_of(build_names, build_key)
    probe_idx = _index_of(probe_names, probe_key)

    table: dict[object, list[tuple]] = {}
    for row in build_rows:
        key = row[build_idx]
        if key is None:
            continue  # NULL never matches an equi-join
        table.setdefault(key, []).append(row)

    out: list[tuple] = []
    for row in probe_rows:
        matches = table.get(row[probe_idx])
        if matches:
            for build_row in matches:
                out.append(build_row + row)

    cpu = (
        len(build_rows) * SERVER_CPU_PER_ROW["hash_build"]
        + len(probe_rows) * SERVER_CPU_PER_ROW["hash_probe"]
    )
    return OpResult(rows=out, column_names=out_names, cpu_seconds=cpu)


def _index_of(names: Sequence[str], wanted: str) -> int:
    lowered = [n.lower() for n in names]
    try:
        return lowered.index(wanted.lower())
    except ValueError:
        raise PlanError(f"join key {wanted!r} not in columns {list(names)}") from None
