"""Local (query-node) operator primitives.

PushdownDB executes whatever S3 Select cannot on the query node.  Each
local operator comes in two shapes:

* a **materialized** function (``filter_rows``, ``project``, ...) that
  transforms full row lists and returns an :class:`OpResult`;
* a **streaming** variant (``filter_batches``, ``project_batches``, ...)
  that consumes and produces iterators of RecordBatches, charging the
  same per-row CPU into a :class:`CpuTally` as the batches flow.
  Pipeline-breaking operators (sort, group-by, top-K) drain their input
  internally and return an :class:`OpResult`.

A RecordBatch comes in two currencies that coexist in one stream: a
plain ``list[tuple]`` chunk (the historical shape, still produced by
S3 Select result decoding and accepted everywhere), or a columnar
:class:`repro.engine.batch.Batch`.  Streaming operators dispatch per
batch — columnar input takes the vectorized kernels from
:mod:`repro.expr.vector`, list input keeps the row-wise path — and both
charge identical modeled CPU.

Estimated CPU time is folded into the owning phase's
``server_cpu_seconds`` so the performance model can charge local compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Union

from repro.engine.batch import Batch as ColumnBatch
from repro.storage.csvcodec import chunk_rows

#: One RecordBatch: a chunk of row tuples (legacy list currency) or a
#: columnar :class:`~repro.engine.batch.Batch` flowing through the pipeline.
Batch = Union[List[tuple], ColumnBatch]


@dataclass
class OpResult:
    """Rows out of a local operator plus its estimated CPU cost."""

    rows: list[tuple]
    column_names: list[str]
    cpu_seconds: float = 0.0


@dataclass
class CpuTally:
    """Accumulates local CPU across several operators in one phase."""

    seconds: float = 0.0

    def add(self, result: OpResult) -> OpResult:
        self.seconds += result.cpu_seconds
        return result

    def add_seconds(self, seconds: float) -> None:
        self.seconds += seconds


def batches_of(rows: Iterable[tuple], batch_size: int) -> Iterator[Batch]:
    """Chunk a row iterable into RecordBatches of ``batch_size`` rows."""
    return chunk_rows(rows, batch_size)


def rows_of(batches: Iterable[Batch]) -> Iterator[tuple]:
    """Flatten a batch stream back into individual rows."""
    for batch in batches:
        yield from batch


def materialize(batches: Iterable[Batch]) -> list[tuple]:
    """Drain a batch stream into one row list (the pipeline's sink)."""
    out: list[tuple] = []
    for batch in batches:
        out.extend(batch)
    return out


class BatchCounter:
    """Counts rows flowing through a batch stream without buffering it.

    The planner wraps scan sources in one of these so ingest accounting
    (records / fields materialized on the query node) reflects what the
    pipeline actually pulled.
    """

    __slots__ = ("_batches", "rows")

    def __init__(self, batches: Iterable[Batch]):
        self._batches = batches
        self.rows = 0

    def __iter__(self) -> Iterator[Batch]:
        for batch in self._batches:
            self.rows += len(batch)
            yield batch
