"""Local (query-node) operator primitives.

PushdownDB executes whatever S3 Select cannot on the query node.  Each
local operator here transforms materialized row batches and reports an
estimated CPU time, which strategies fold into their phases'
``server_cpu_seconds`` so the performance model can charge local compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OpResult:
    """Rows out of a local operator plus its estimated CPU cost."""

    rows: list[tuple]
    column_names: list[str]
    cpu_seconds: float = 0.0


@dataclass
class CpuTally:
    """Accumulates local CPU across several operators in one phase."""

    seconds: float = 0.0

    def add(self, result: OpResult) -> OpResult:
        self.seconds += result.cpu_seconds
        return result

    def add_seconds(self, seconds: float) -> None:
        self.seconds += seconds
