"""Local projection: evaluate select-list expressions per row."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.cloud.perf import SERVER_CPU_PER_ROW
from repro.engine.batch import Batch as ColumnBatch
from repro.engine.operators.base import Batch, CpuTally, OpResult
from repro.expr.compiler import compile_expr
from repro.expr.vector import compile_expr_vector
from repro.sqlparser import ast


def _compile_items(
    column_names: Sequence[str], items: Sequence[ast.SelectItem]
) -> tuple[list, list[str]]:
    """Extractor functions + output names for a select list."""
    schema = {name: i for i, name in enumerate(column_names)}
    extractors = []
    out_names: list[str] = []
    for ordinal, item in enumerate(items, start=1):
        if isinstance(item.expr, ast.Star):
            for idx, name in enumerate(column_names):
                extractors.append(lambda row, i=idx: row[i])
                out_names.append(name)
            continue
        extractors.append(compile_expr(item.expr, schema))
        out_names.append(item.output_name(ordinal))
    return extractors, out_names


def _compile_items_vector(
    column_names: Sequence[str], items: Sequence[ast.SelectItem]
) -> list:
    """Vectorized twin of :func:`_compile_items`: batch -> column funcs."""
    schema = {name: i for i, name in enumerate(column_names)}
    extractors = []
    for item in items:
        if isinstance(item.expr, ast.Star):
            for idx in range(len(column_names)):
                extractors.append(lambda batch, i=idx: batch.column(i))
            continue
        extractors.append(compile_expr_vector(item.expr, schema))
    return extractors


def projected_names(
    column_names: Sequence[str], items: Sequence[ast.SelectItem]
) -> list[str]:
    """Output column names of :func:`project` without evaluating rows."""
    return _compile_items(column_names, items)[1]


def project_batches(
    batches: Iterable[Batch],
    column_names: Sequence[str],
    items: Sequence[ast.SelectItem],
    tally: CpuTally | None = None,
) -> Iterator[Batch]:
    """Streaming :func:`project`: evaluate the select list per batch.

    Output names are available up front via :func:`projected_names`.
    """
    vec_extractors = _compile_items_vector(column_names, items)
    extractors = None
    per_row = len(vec_extractors) * SERVER_CPU_PER_ROW["filter"]
    for batch in batches:
        if tally is not None:
            tally.add_seconds(len(batch) * per_row)
        if isinstance(batch, ColumnBatch):
            yield ColumnBatch([fn(batch) for fn in vec_extractors], len(batch))
        else:
            if extractors is None:
                extractors = _compile_items(column_names, items)[0]
            yield [tuple(fn(row) for fn in extractors) for row in batch]


def project(
    rows: list[tuple],
    column_names: Sequence[str],
    items: Sequence[ast.SelectItem],
) -> OpResult:
    """Project ``rows`` through ``items`` (no aggregates, no ``*``)."""
    extractors, out_names = _compile_items(column_names, items)
    out = [tuple(fn(row) for fn in extractors) for row in rows]
    cpu = len(rows) * len(extractors) * SERVER_CPU_PER_ROW["filter"]
    return OpResult(rows=out, column_names=out_names, cpu_seconds=cpu)


def project_columns(
    rows: list[tuple], column_names: Sequence[str], wanted: Sequence[str]
) -> OpResult:
    """Fast path: project to named columns only."""
    schema = {name.lower(): i for i, name in enumerate(column_names)}
    idxs = [schema[w.lower()] for w in wanted]
    out = [tuple(row[i] for i in idxs) for row in rows]
    cpu = len(rows) * len(idxs) * SERVER_CPU_PER_ROW["filter"]
    return OpResult(rows=out, column_names=list(wanted), cpu_seconds=cpu)
