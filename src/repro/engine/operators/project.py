"""Local projection: evaluate select-list expressions per row."""

from __future__ import annotations

from typing import Sequence

from repro.cloud.perf import SERVER_CPU_PER_ROW
from repro.engine.operators.base import OpResult
from repro.expr.compiler import compile_expr
from repro.sqlparser import ast


def project(
    rows: list[tuple],
    column_names: Sequence[str],
    items: Sequence[ast.SelectItem],
) -> OpResult:
    """Project ``rows`` through ``items`` (no aggregates, no ``*``)."""
    schema = {name: i for i, name in enumerate(column_names)}
    extractors = []
    out_names = []
    for ordinal, item in enumerate(items, start=1):
        if isinstance(item.expr, ast.Star):
            for idx, name in enumerate(column_names):
                extractors.append(lambda row, i=idx: row[i])
                out_names.append(name)
            continue
        extractors.append(compile_expr(item.expr, schema))
        out_names.append(item.output_name(ordinal))
    out = [tuple(fn(row) for fn in extractors) for row in rows]
    cpu = len(rows) * len(extractors) * SERVER_CPU_PER_ROW["filter"]
    return OpResult(rows=out, column_names=out_names, cpu_seconds=cpu)


def project_columns(
    rows: list[tuple], column_names: Sequence[str], wanted: Sequence[str]
) -> OpResult:
    """Fast path: project to named columns only."""
    schema = {name.lower(): i for i, name in enumerate(column_names)}
    idxs = [schema[w.lower()] for w in wanted]
    out = [tuple(row[i] for i in idxs) for row in rows]
    cpu = len(rows) * len(idxs) * SERVER_CPU_PER_ROW["filter"]
    return OpResult(rows=out, column_names=list(wanted), cpu_seconds=cpu)
