"""Local top-K selection using a bounded heap.

The paper's top-K strategies both finish with a heap on the query node
(Section VII: "The algorithm then uses a heap to select the top-K records
from all returned records"); a heap is O(n log K) instead of a full
O(n log n) sort, which matters in Figure 9's CPU-cost trend as K grows.
"""

from __future__ import annotations

import heapq
import math
from typing import Sequence

from repro.cloud.perf import SERVER_CPU_PER_ROW
from repro.engine.operators.base import OpResult
from repro.sqlparser import ast
from repro.engine.operators.sort import make_key_fn


def top_k(
    rows: list[tuple],
    column_names: Sequence[str],
    order_items: Sequence[ast.OrderItem],
    k: int,
) -> OpResult:
    """The K smallest rows under the ORDER BY items, in sorted order."""
    if k < 0:
        raise ValueError(f"K must be non-negative, got {k}")
    key_fn = make_key_fn(column_names, order_items)
    out = heapq.nsmallest(k, rows, key=key_fn)
    n = len(rows)
    cpu = n * max(1.0, math.log2(max(k, 2))) * SERVER_CPU_PER_ROW["heap"]
    return OpResult(rows=out, column_names=list(column_names), cpu_seconds=cpu)
