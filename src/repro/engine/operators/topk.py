"""Local top-K selection using a bounded heap.

The paper's top-K strategies both finish with a heap on the query node
(Section VII: "The algorithm then uses a heap to select the top-K records
from all returned records"); a heap is O(n log K) instead of a full
O(n log n) sort, which matters in Figure 9's CPU-cost trend as K grows.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Iterable, Sequence

from repro.cloud.perf import SERVER_CPU_PER_ROW
from repro.engine.batch import Batch as ColumnBatch
from repro.engine.operators.base import Batch, OpResult
from repro.sqlparser import ast
from repro.engine.operators.sort import make_key_fn, make_vector_key_fn


def top_k_batches(
    batches: Iterable[Batch],
    column_names: Sequence[str],
    order_items: Sequence[ast.OrderItem],
    k: int,
) -> OpResult:
    """Streaming :func:`top_k`: drains its input keeping only K rows live.

    Equivalent to ``nsmallest`` over the whole input (ties keep input
    order), but memory is bounded by K + one batch instead of the full
    row set.  Rows are carried as ``(key, seq, row)`` heap entries — the
    globally increasing ``seq`` breaks key ties by arrival order, so the
    row payload itself is never compared; columnar batches compute keys
    column-at-a-time and only materialize the (at most K) surviving row
    tuples per batch.
    """
    if k < 0:
        raise ValueError(f"K must be non-negative, got {k}")
    key_fn = None
    keys_fn = None
    best: list[tuple] = []
    n = 0
    for batch in batches:
        # Bind the running row count now: the entry generators are lazy,
        # and seq must reflect arrival order, not post-increment state.
        base = n
        n += len(batch)
        if isinstance(batch, ColumnBatch):
            if keys_fn is None:
                keys_fn = make_vector_key_fn(column_names, order_items)
            entries = (
                (key, base + i, batch, i)
                for i, key in enumerate(keys_fn(batch))
            )
        else:
            if key_fn is None:
                key_fn = make_key_fn(column_names, order_items)
            entries = (
                (key_fn(row), base + i, None, row)
                for i, row in enumerate(batch)
            )
        best = heapq.nsmallest(k, itertools.chain(best, entries))
        # Pin at most K rows, not whole batches: swap surviving columnar
        # references for materialized row tuples right away.
        best = [
            (key, seq, None, b.row(payload) if b is not None else payload)
            for key, seq, b, payload in best
        ]
    rows = [payload for _, _, _, payload in best]
    cpu = n * max(1.0, math.log2(max(k, 2))) * SERVER_CPU_PER_ROW["heap"]
    return OpResult(rows=rows, column_names=list(column_names), cpu_seconds=cpu)


def top_k(
    rows: list[tuple],
    column_names: Sequence[str],
    order_items: Sequence[ast.OrderItem],
    k: int,
) -> OpResult:
    """The K smallest rows under the ORDER BY items, in sorted order."""
    if k < 0:
        raise ValueError(f"K must be non-negative, got {k}")
    key_fn = make_key_fn(column_names, order_items)
    out = heapq.nsmallest(k, rows, key=key_fn)
    n = len(rows)
    cpu = n * max(1.0, math.log2(max(k, 2))) * SERVER_CPU_PER_ROW["heap"]
    return OpResult(rows=out, column_names=list(column_names), cpu_seconds=cpu)
