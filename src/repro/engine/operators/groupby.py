"""Local hash group-by with aggregates.

Used by the server-side / filtered group-by strategies, by hybrid
group-by for its small-group tail, and by the SQL planner for TPC-H
queries with GROUP BY.

Both batch currencies feed one :class:`_GroupByState`: columnar batches
extract group keys and aggregate inputs column-at-a-time and fold each
group's slice with :meth:`Accumulator.add_many`; list batches keep the
per-row loop.  Keys, accumulation order, and the modeled CPU charge are
identical either way, so a stream may mix the two freely.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cloud.perf import SERVER_CPU_PER_ROW
from repro.engine.batch import Batch as ColumnBatch
from repro.engine.operators.base import Batch, OpResult
from repro.expr.aggregates import CompiledAggregate, split_aggregate_expr
from repro.expr.compiler import compile_expr
from repro.expr.vector import compile_aggregate_input_vector, compile_expr_vector
from repro.sqlparser import ast


class _GroupByState:
    """Incremental hash-aggregation state shared by both input shapes."""

    def __init__(
        self,
        column_names: Sequence[str],
        group_exprs: Sequence[ast.Expr],
        agg_items: Sequence[ast.SelectItem],
    ):
        schema = {name: i for i, name in enumerate(column_names)}
        self.group_exprs = list(group_exprs)
        self.group_fns = [compile_expr(g, schema) for g in group_exprs]
        self.compiled_items: list[tuple[list[CompiledAggregate], object]] = []
        self.flat_agg_nodes: list[ast.Aggregate] = []
        self.out_names: list[str] = []
        for i, g in enumerate(group_exprs):
            self.out_names.append(g.name if isinstance(g, ast.Column) else f"group_{i}")
        for ordinal, item in enumerate(agg_items, start=1):
            agg_nodes, finisher = split_aggregate_expr(item.expr)
            compiled = [CompiledAggregate(node, schema) for node in agg_nodes]
            self.compiled_items.append((compiled, finisher))
            self.flat_agg_nodes.extend(agg_nodes)
            self.out_names.append(item.output_name(ordinal))
        self.total_aggs = len(self.flat_agg_nodes)
        # Vectorized extractors, compiled on the first columnar batch.
        self._vec_group_fns: list | None = None
        self._vec_input_fns: list | None = None
        self._vec_schema = schema

        self.groups: dict[tuple, list] = {}
        if not group_exprs:
            # A global aggregate (no GROUP BY) always produces exactly one
            # output row, even over zero input rows (SQL semantics: SUM of
            # nothing is NULL, COUNT of nothing is 0).
            self.groups[()] = self._new_state()
        self.n_aggs = 0

    def _new_state(self) -> list:
        return [
            [agg.new_accumulator() for agg in compiled]
            for compiled, _ in self.compiled_items
        ]

    def add_rows(self, rows: Iterable[tuple]) -> None:
        groups = self.groups
        for row in rows:
            key = tuple(fn(row) for fn in self.group_fns)
            state = groups.get(key)
            if state is None:
                state = self._new_state()
                groups[key] = state
            for (compiled, _), accs in zip(self.compiled_items, state):
                for agg, acc in zip(compiled, accs):
                    acc.add(agg.input_value(row))
                    self.n_aggs += 1

    def add_batch(self, batch: ColumnBatch) -> None:
        n = len(batch)
        if n == 0:
            return
        if self._vec_input_fns is None:
            schema = self._vec_schema
            self._vec_group_fns = [
                compile_expr_vector(g, schema) for g in self.group_exprs
            ]
            self._vec_input_fns = [
                compile_aggregate_input_vector(node, schema)
                for node in self.flat_agg_nodes
            ]
        input_cols = [fn(batch) for fn in self._vec_input_fns]
        groups = self.groups
        if not self.group_fns:
            self._fold(groups[()], input_cols, None)
        else:
            key_cols = [fn(batch) for fn in self._vec_group_fns]
            buckets: dict[tuple, list[int]] = {}
            setdefault = buckets.setdefault
            for i, key in enumerate(zip(*key_cols)):
                setdefault(key, []).append(i)
            for key, idxs in buckets.items():
                state = groups.get(key)
                if state is None:
                    state = self._new_state()
                    groups[key] = state
                self._fold(state, input_cols, None if len(idxs) == n else idxs)
        self.n_aggs += n * self.total_aggs

    def _fold(self, state: list, input_cols: list, idxs: list[int] | None):
        flat_accs = (acc for accs in state for acc in accs)
        if idxs is None:
            for col, acc in zip(input_cols, flat_accs):
                acc.add_many(col)
        else:
            for col, acc in zip(input_cols, flat_accs):
                acc.add_many([col[i] for i in idxs])

    def finish(self) -> OpResult:
        out: list[tuple] = []
        for key, state in self.groups.items():
            values: list[object] = list(key)
            for (compiled, finisher), accs in zip(self.compiled_items, state):
                results = [acc.result() for acc in accs]
                values.append(results[0] if finisher is None else finisher(results))
            out.append(tuple(values))
        cpu = self.n_aggs * SERVER_CPU_PER_ROW["aggregate"]
        return OpResult(rows=out, column_names=self.out_names, cpu_seconds=cpu)


def group_by_batches(
    batches: Iterable[Batch],
    column_names: Sequence[str],
    group_exprs: Sequence[ast.Expr],
    agg_items: Sequence[ast.SelectItem],
) -> OpResult:
    """Streaming :func:`group_by_aggregate`: a pipeline breaker.

    Drains the batch stream into hash-table accumulators as batches
    arrive — nothing upstream is ever materialized whole.
    """
    state = _GroupByState(column_names, group_exprs, agg_items)
    for batch in batches:
        if isinstance(batch, ColumnBatch):
            state.add_batch(batch)
        else:
            state.add_rows(batch)
    return state.finish()


def group_by_aggregate(
    rows: Iterable[tuple],
    column_names: Sequence[str],
    group_exprs: Sequence[ast.Expr],
    agg_items: Sequence[ast.SelectItem],
) -> OpResult:
    """Group ``rows`` by ``group_exprs`` and evaluate ``agg_items``.

    Each aggregate item may be a bare aggregate or arithmetic over
    aggregates (``SUM(a) / SUM(b)``).  Output columns are the group
    expressions followed by one column per aggregate item; output order
    follows first appearance of each group (deterministic).
    """
    state = _GroupByState(column_names, group_exprs, agg_items)
    state.add_rows(rows)
    return state.finish()
