"""Local hash group-by with aggregates.

Used by the server-side / filtered group-by strategies, by hybrid
group-by for its small-group tail, and by the SQL planner for TPC-H
queries with GROUP BY.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cloud.perf import SERVER_CPU_PER_ROW
from repro.engine.operators.base import Batch, OpResult, rows_of
from repro.expr.aggregates import CompiledAggregate, split_aggregate_expr
from repro.expr.compiler import compile_expr
from repro.sqlparser import ast


def group_by_batches(
    batches: Iterable[Batch],
    column_names: Sequence[str],
    group_exprs: Sequence[ast.Expr],
    agg_items: Sequence[ast.SelectItem],
) -> OpResult:
    """Streaming :func:`group_by_aggregate`: a pipeline breaker.

    Drains the batch stream into hash-table accumulators as batches
    arrive — nothing upstream is ever materialized whole.
    """
    return group_by_aggregate(rows_of(batches), column_names, group_exprs, agg_items)


def group_by_aggregate(
    rows: Iterable[tuple],
    column_names: Sequence[str],
    group_exprs: Sequence[ast.Expr],
    agg_items: Sequence[ast.SelectItem],
) -> OpResult:
    """Group ``rows`` by ``group_exprs`` and evaluate ``agg_items``.

    Each aggregate item may be a bare aggregate or arithmetic over
    aggregates (``SUM(a) / SUM(b)``).  Output columns are the group
    expressions followed by one column per aggregate item; output order
    follows first appearance of each group (deterministic).
    """
    schema = {name: i for i, name in enumerate(column_names)}
    group_fns = [compile_expr(g, schema) for g in group_exprs]

    compiled_items: list[tuple[list[CompiledAggregate], object]] = []
    out_names: list[str] = []
    for i, g in enumerate(group_exprs):
        out_names.append(g.name if isinstance(g, ast.Column) else f"group_{i}")
    for ordinal, item in enumerate(agg_items, start=1):
        agg_nodes, finisher = split_aggregate_expr(item.expr)
        compiled = [CompiledAggregate(node, schema) for node in agg_nodes]
        compiled_items.append((compiled, finisher))
        out_names.append(item.output_name(ordinal))

    groups: dict[tuple, list] = {}
    if not group_exprs:
        # A global aggregate (no GROUP BY) always produces exactly one
        # output row, even over zero input rows (SQL semantics: SUM of
        # nothing is NULL, COUNT of nothing is 0).
        groups[()] = [
            [agg.new_accumulator() for agg in compiled]
            for compiled, _ in compiled_items
        ]
    n_aggs = 0
    for row in rows:
        key = tuple(fn(row) for fn in group_fns)
        state = groups.get(key)
        if state is None:
            state = [
                [agg.new_accumulator() for agg in compiled]
                for compiled, _ in compiled_items
            ]
            groups[key] = state
        for (compiled, _), accs in zip(compiled_items, state):
            for agg, acc in zip(compiled, accs):
                acc.add(agg.input_value(row))
                n_aggs += 1

    out: list[tuple] = []
    for key, state in groups.items():
        values: list[object] = list(key)
        for (compiled, finisher), accs in zip(compiled_items, state):
            results = [acc.result() for acc in accs]
            values.append(results[0] if finisher is None else finisher(results))
        out.append(tuple(values))

    cpu = n_aggs * SERVER_CPU_PER_ROW["aggregate"]
    return OpResult(rows=out, column_names=out_names, cpu_seconds=cpu)
