"""Local LIMIT: truncate a row batch."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.engine.operators.base import Batch, OpResult


def limit_batches(batches: Iterable[Batch], n: int | None) -> Iterator[Batch]:
    """Streaming LIMIT: stop pulling upstream once ``n`` rows have passed.

    This is where streaming pays off end to end — upstream scans and
    operators past the cut-off batch are never evaluated.
    """
    if n is None:
        yield from batches
        return
    if n < 0:
        raise ValueError(f"LIMIT must be non-negative, got {n}")
    remaining = n
    if remaining == 0:
        return
    for batch in batches:
        if len(batch) >= remaining:
            yield batch[:remaining]
            return
        remaining -= len(batch)
        if batch:
            yield batch


def limit_rows(rows: list[tuple], column_names: Sequence[str], n: int | None) -> OpResult:
    """Keep the first ``n`` rows (``None`` keeps everything)."""
    if n is None:
        return OpResult(rows=list(rows), column_names=list(column_names))
    if n < 0:
        raise ValueError(f"LIMIT must be non-negative, got {n}")
    return OpResult(rows=rows[:n], column_names=list(column_names))
