"""Local LIMIT: truncate a row batch."""

from __future__ import annotations

from typing import Sequence

from repro.engine.operators.base import OpResult


def limit_rows(rows: list[tuple], column_names: Sequence[str], n: int | None) -> OpResult:
    """Keep the first ``n`` rows (``None`` keeps everything)."""
    if n is None:
        return OpResult(rows=list(rows), column_names=list(column_names))
    if n < 0:
        raise ValueError(f"LIMIT must be non-negative, got {n}")
    return OpResult(rows=rows[:n], column_names=list(column_names))
