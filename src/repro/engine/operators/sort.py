"""Local sort with multi-key ASC/DESC support."""

from __future__ import annotations

import math
from typing import Sequence

from repro.cloud.perf import SERVER_CPU_PER_ROW
from repro.engine.operators.base import OpResult, materialize
from repro.expr.compiler import compile_expr
from repro.expr.vector import compile_expr_vector
from repro.sqlparser import ast


class SortKey:
    """Wrapper making any comparable value order-reversible.

    Lets one ``sorted`` call handle mixed ASC/DESC keys without numeric
    negation tricks (which would break on strings/dates).  NULLs sort
    first ascending, last descending.
    """

    __slots__ = ("value", "descending")

    def __init__(self, value: object, descending: bool):
        self.value = value
        self.descending = descending

    def __lt__(self, other: "SortKey") -> bool:
        a, b = self.value, other.value
        if a is None or b is None:
            if a is None and b is None:
                return False
            ascending_result = a is None  # NULLs first when ascending
            return ascending_result != self.descending
        if self.descending:
            return b < a
        return a < b

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SortKey) and self.value == other.value


def make_key_fn(column_names: Sequence[str], order_items: Sequence[ast.OrderItem]):
    """Build a ``row -> sort key tuple`` function."""
    schema = {name: i for i, name in enumerate(column_names)}
    compiled = [(compile_expr(o.expr, schema), o.descending) for o in order_items]

    def key_fn(row: tuple) -> tuple:
        return tuple(SortKey(fn(row), desc) for fn, desc in compiled)
    return key_fn


def make_vector_key_fn(
    column_names: Sequence[str], order_items: Sequence[ast.OrderItem]
):
    """Vectorized :func:`make_key_fn`: ``batch -> list of sort key tuples``.

    Evaluates each ORDER BY expression once per column instead of once
    per row; the key tuples compare identically to the row-wise ones.
    """
    schema = {name: i for i, name in enumerate(column_names)}
    compiled = [
        (compile_expr_vector(o.expr, schema), o.descending) for o in order_items
    ]

    def keys_fn(batch) -> list[tuple]:
        cols = [
            [SortKey(v, desc) for v in fn(batch)] for fn, desc in compiled
        ]
        return list(zip(*cols)) if cols else [()] * len(batch)
    return keys_fn


def sort_batches(
    batches,
    column_names: Sequence[str],
    order_items: Sequence[ast.OrderItem],
) -> OpResult:
    """Streaming :func:`sort_rows`: a pipeline breaker (drains its input)."""
    return sort_rows(materialize(batches), column_names, order_items)


def sort_rows(
    rows: list[tuple],
    column_names: Sequence[str],
    order_items: Sequence[ast.OrderItem],
) -> OpResult:
    """Sort ``rows`` by the ORDER BY items."""
    key_fn = make_key_fn(column_names, order_items)
    out = sorted(rows, key=key_fn)
    n = len(rows)
    comparisons = n * max(1.0, math.log2(n)) if n else 0.0
    cpu = comparisons * len(order_items) * SERVER_CPU_PER_ROW["sort_per_cmp"]
    return OpResult(rows=out, column_names=list(column_names), cpu_seconds=cpu)
