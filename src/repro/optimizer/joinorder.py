"""Join-graph construction and cost-based join-order search.

The paper evaluates pushdown joins pairwise; real TPC-H shapes join
three or more tables (lineitem ⋈ orders ⋈ customer).  This module lifts
the planner past that limit:

* :func:`build_join_graph` decomposes an N-table query's ``WHERE``
  conjunction into per-table predicates, equi-join edges, and residual
  cross-table conjuncts;
* :class:`JoinOrderSearch` enumerates left-deep join orders — exact
  dynamic programming over connected subsets up to
  :data:`DP_TABLE_LIMIT` tables, a greedy minimum-intermediate-rows
  fallback above — and prices every candidate through the existing
  :class:`~repro.optimizer.cost.CostModel` phase machinery, so the
  context's calibrated :class:`~repro.cloud.perf.PerfModel` and
  :class:`~repro.cloud.pricing.Pricing` carry over unchanged;
* :func:`plan_join_order` is the planner/EXPLAIN entry point returning
  the picked order plus the per-candidate estimate table.

Cardinalities use the System-R containment assumption:
``|A ⋈ B| = |A| · |B| / max(V(A,k), V(B,k))`` with distinct counts from
the statistics layer, capped by the filtered input sizes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.bloom.filter import optimal_num_bits, optimal_num_hashes
from repro.cloud.context import CloudContext
from repro.cloud.perf import SERVER_CPU_PER_ROW
from repro.common.errors import PlanError
from repro.engine.catalog import Catalog, TableInfo
from repro.optimizer.cost import (
    CostModel,
    StrategyEstimate,
    _conjuncts,
    _phase,
    objective_key,
)
from repro.optimizer.selectivity import estimate_selectivity
from repro.s3select.validator import EXPRESSION_LIMIT_BYTES
from repro.sqlparser import ast
from repro.strategies.join import DEFAULT_FPR

#: Exact DP over connected subsets is run up to this many tables;
#: larger FROM lists fall back to the greedy search.
DP_TABLE_LIMIT = 6


# ----------------------------------------------------------------------
# join graph
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class JoinEdge:
    """One equi-join condition ``left.left_key = right.right_key``."""

    left: str
    right: str
    left_key: str
    right_key: str

    def touches(self, table: str) -> bool:
        return table in (self.left, self.right)

    def key_for(self, table: str) -> str:
        if table == self.left:
            return self.left_key
        if table == self.right:
            return self.right_key
        raise PlanError(f"edge {self} does not touch table {table!r}")

    def other(self, table: str) -> str:
        if table == self.left:
            return self.right
        if table == self.right:
            return self.left
        raise PlanError(f"edge {self} does not touch table {table!r}")

    def to_expr(self) -> ast.Expr:
        return ast.Binary(
            "=", ast.Column(self.left_key), ast.Column(self.right_key)
        )


@dataclass
class JoinGraph:
    """Decomposed N-way join: tables, per-table predicates, edges."""

    #: lower-cased table name -> catalog entry, in FROM order.
    tables: dict[str, TableInfo]
    #: lower-cased table name -> conjunction of its single-table predicates.
    predicates: dict[str, ast.Expr | None]
    edges: list[JoinEdge]
    #: Cross-table conjuncts that are not equi-join edges (plus duplicate
    #: equi conjuncts over an already-connected pair); applied after the
    #: full join chain.
    residual: ast.Expr | None

    def table_names(self) -> list[str]:
        return list(self.tables)

    def edges_between(self, table: str, others: set[str]) -> list[JoinEdge]:
        """Edges connecting ``table`` to any table in ``others``."""
        return [
            e for e in self.edges
            if e.touches(table) and e.other(table) in others
        ]

    def is_connected(self) -> bool:
        names = list(self.tables)
        if not names:
            return False
        seen = {names[0]}
        frontier = [names[0]]
        while frontier:
            current = frontier.pop()
            for edge in self.edges:
                if edge.touches(current):
                    nxt = edge.other(current)
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
        return len(seen) == len(names)


def _owner_of(
    column: ast.Column, tables: dict[str, TableInfo]
) -> str | None:
    """Which table a column reference belongs to (lower name), if any."""
    if column.table:
        key = column.table.lower()
        if key not in tables:
            return None
        if not tables[key].schema.has_column(column.name):
            raise PlanError(
                f"table {key!r} has no column {column.name!r}"
            )
        return key
    owners = [
        name for name, info in tables.items()
        if info.schema.has_column(column.name)
    ]
    if len(owners) > 1:
        raise PlanError(
            f"ambiguous column {column.name!r}: qualify it with a table name"
        )
    return owners[0] if owners else None


def build_join_graph(catalog: Catalog, query: ast.Query) -> JoinGraph:
    """Extract the join graph from an N-table query's WHERE conjunction."""
    names = [t.lower() for t in query.from_tables]
    if len(set(names)) != len(names):
        raise PlanError(f"duplicate table in FROM list: {query.from_tables}")
    tables = {name: catalog.get(name) for name in names}

    side_preds: dict[str, list[ast.Expr]] = {name: [] for name in names}
    edges: list[JoinEdge] = []
    connected_pairs: set[frozenset] = set()
    residual: list[ast.Expr] = []

    for conjunct in ast.split_conjuncts(query.where):
        if (
            isinstance(conjunct, ast.Binary)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.Column)
            and isinstance(conjunct.right, ast.Column)
        ):
            lo = _owner_of(conjunct.left, tables)
            ro = _owner_of(conjunct.right, tables)
            if lo is not None and ro is not None and lo != ro:
                pair = frozenset((lo, ro))
                if pair not in connected_pairs:
                    connected_pairs.add(pair)
                    edges.append(JoinEdge(
                        left=lo, right=ro,
                        left_key=conjunct.left.name,
                        right_key=conjunct.right.name,
                    ))
                else:
                    # A second equality over an already-connected pair
                    # cannot drive the hash join; keep it as a residual
                    # filter over the joined rows.
                    residual.append(conjunct)
                continue
        owners = set()
        for node in ast.walk(conjunct):
            if isinstance(node, ast.Column):
                owner = _owner_of(node, tables)
                if owner is not None:
                    owners.add(owner)
        if len(owners) == 1:
            side_preds[next(iter(owners))].append(conjunct)
        else:
            residual.append(conjunct)

    graph = JoinGraph(
        tables=tables,
        predicates={name: ast.and_join(side_preds[name]) for name in names},
        edges=edges,
        residual=ast.and_join(residual),
    )
    if len(names) > 1 and not graph.is_connected():
        raise PlanError(
            "multi-table queries need equi-join conditions (a.k = b.k)"
            " connecting every table; cross joins are not supported"
        )
    return graph


def needed_columns(graph: JoinGraph, query: ast.Query) -> dict[str, list[str]]:
    """Per-table column lists the join pipeline must scan.

    Join keys of every edge touching the table plus any column the
    select list, GROUP BY, ORDER BY or residual predicate references;
    ``SELECT *`` keeps every column.  Schema order is preserved so scan
    projections stay deterministic.
    """
    referenced: set[str] = set()
    star = False
    exprs: list[ast.Expr] = [i.expr for i in query.select_items]
    exprs += list(query.group_by)
    exprs += [o.expr for o in query.order_by]
    if graph.residual is not None:
        exprs.append(graph.residual)
    for expr in exprs:
        if isinstance(expr, ast.Star):
            star = True
            continue
        referenced |= {c.lower() for c in ast.referenced_columns(expr)}
    for edge in graph.edges:
        referenced.add(edge.left_key.lower())
        referenced.add(edge.right_key.lower())

    out: dict[str, list[str]] = {}
    for name, info in graph.tables.items():
        if star:
            out[name] = list(info.schema.names)
        else:
            out[name] = [
                c for c in info.schema.names if c.lower() in referenced
            ]
    return out


# ----------------------------------------------------------------------
# cost-based search
# ----------------------------------------------------------------------

@dataclass
class JoinOrderDecision:
    """Outcome of one join-order search."""

    graph: JoinGraph
    #: Picked left-deep order (lower-cased table names).
    order: list[str]
    #: Priced estimate of the optimized pushdown chain for the pick.
    estimate: StrategyEstimate
    #: Priced estimate of the baseline (GET everything) chain.
    baseline: StrategyEstimate
    #: Every candidate order considered at the top level, priced.
    candidates: list[StrategyEstimate] = field(default_factory=list)
    method: str = "dp"

    def candidate_table(self) -> list[dict]:
        """Compact join-order rows for EXPLAIN / experiment output."""
        return [
            {
                "order": " -> ".join(c.notes["order"]),
                "est_rows": round(float(c.notes.get("est_rows", 0.0)), 1),
                "runtime_s": round(c.runtime_seconds, 6),
                "cost": round(c.total_cost, 9),
                "picked": list(c.notes["order"]) == list(self.order),
            }
            for c in self.candidates
        ]


@dataclass(frozen=True)
class _TableShape:
    """Pre-computed per-table quantities the search prices with."""

    info: TableInfo
    selectivity: float
    filtered_rows: float
    columns: list[str]
    row_bytes: float
    conjuncts: int


class JoinOrderSearch:
    """Left-deep join-order enumeration priced through the cost model."""

    def __init__(
        self,
        ctx: CloudContext,
        catalog: Catalog,
        graph: JoinGraph,
        query: ast.Query,
        fpr: float = DEFAULT_FPR,
    ):
        self.ctx = ctx
        self.graph = graph
        self.query = query
        self.fpr = fpr
        self.model = CostModel(ctx, catalog)
        columns = needed_columns(graph, query)
        self.shapes: dict[str, _TableShape] = {}
        for name, info in graph.tables.items():
            stats = info.stats_or_default()
            pred = graph.predicates[name]
            sel = estimate_selectivity(pred, stats)
            self.shapes[name] = _TableShape(
                info=info,
                selectivity=sel,
                filtered_rows=sel * info.num_rows,
                columns=columns[name],
                row_bytes=stats.projected_row_bytes(columns[name]),
                conjuncts=_conjuncts(pred),
            )

    # -- cardinality -------------------------------------------------
    def _key_distinct(self, table: str, key: str, rows: float) -> float:
        stats = self.graph.tables[table].stats_or_default()
        col = stats.column(key)
        distinct = max(col.distinct, 1) if col is not None else max(rows, 1.0)
        return max(1.0, min(float(distinct), max(rows, 1.0)))

    def _join_rows(
        self, inter_rows: float, inter_tables: set[str], table: str,
    ) -> float:
        """Containment estimate of joining ``table`` onto the intermediate."""
        shape = self.shapes[table]
        rows = inter_rows * shape.filtered_rows
        for i, edge in enumerate(self.graph.edges_between(table, inter_tables)):
            other = edge.other(table)
            d_new = self._key_distinct(table, edge.key_for(table),
                                       shape.filtered_rows)
            d_old = self._key_distinct(
                other, edge.key_for(other),
                min(inter_rows, self.shapes[other].filtered_rows),
            )
            rows /= max(d_new, d_old)
            if i > 0:
                # System-R independence: every extra edge multiplies its
                # own 1/max(V) in.  Extra edges act as compound-key
                # refinements, so additionally cap the estimate at the
                # smaller input — such a join cannot fan out past either
                # side even when the distinct counts are uninformative.
                rows = min(rows, inter_rows, shape.filtered_rows)
        return max(rows, 0.0)

    # -- pricing -----------------------------------------------------
    def price_order(
        self, order: list[str], final: bool = True
    ) -> StrategyEstimate:
        """Predicted profile of the optimized pushdown chain for ``order``.

        Mirrors the planner's execution: every table is scanned with its
        predicate and projection pushed into S3 Select; each join step
        hashes the smaller side; the outermost probe scan gets a Bloom
        predicate when the build key is an integer.  ``final=False``
        prices the order as a plan *prefix* (DP intermediate levels):
        its last step is not outermost yet, so no Bloom bonus applies.
        """
        phases = []
        first = self.shapes[order[0]]
        n0 = first.info.num_rows
        phases.append(_phase(
            f"scan-{order[0]}", first.info.partitions,
            scan_bytes=float(first.info.total_bytes),
            returned_bytes=first.filtered_rows * first.row_bytes,
            term_evals=n0 * first.conjuncts,
            records=first.filtered_rows,
            fields=first.filtered_rows * max(len(first.columns), 1),
        ))
        inter_rows = first.filtered_rows
        joined: set[str] = {order[0]}

        for step, name in enumerate(order[1:], start=1):
            shape = self.shapes[name]
            n = shape.info.num_rows
            outermost = final and step == len(order) - 1
            table_is_probe = shape.filtered_rows >= inter_rows
            build_rows = min(inter_rows, shape.filtered_rows)
            probe_rows = max(inter_rows, shape.filtered_rows)
            cpu = (
                build_rows * SERVER_CPU_PER_ROW["hash_build"]
                + probe_rows * SERVER_CPU_PER_ROW["hash_probe"]
            )

            returned_rows = shape.filtered_rows
            term_evals = float(n * shape.conjuncts)
            bloom = None
            if outermost and table_is_probe:
                bloom = self._bloom_shape(name, inter_rows, joined)
            if bloom is not None:
                pass_rows, hashes = bloom
                returned_rows = min(returned_rows, pass_rows)
                term_evals += n * hashes
                cpu += build_rows * SERVER_CPU_PER_ROW["bloom_insert"]
            phases.append(_phase(
                f"scan-{name}", shape.info.partitions,
                scan_bytes=float(shape.info.total_bytes),
                returned_bytes=returned_rows * shape.row_bytes,
                term_evals=term_evals,
                cpu_seconds=cpu,
                records=returned_rows,
                fields=returned_rows * max(len(shape.columns), 1),
            ))
            inter_rows = self._join_rows(inter_rows, joined, name)
            joined.add(name)

        return self.model.price_phases(
            "join-order " + " -> ".join(order), phases,
            {"order": list(order), "est_rows": inter_rows},
        )

    def _bloom_shape(
        self, probe: str, build_rows: float, build_tables: set[str]
    ) -> tuple[float, int] | None:
        """(expected probe rows passing, hash count) or None if ineligible."""
        edges = self.graph.edges_between(probe, build_tables)
        if not edges:
            return None
        edge = edges[0]
        build_table = edge.other(probe)
        build_key = edge.key_for(build_table)
        column = self.graph.tables[build_table].schema.column(build_key)
        if column.type != "int":
            return None
        shape = self.shapes[probe]
        distinct_keys = self._key_distinct(build_table, build_key, build_rows)
        hashes = optimal_num_hashes(self.fpr)
        bits = optimal_num_bits(int(max(distinct_keys, 1)), self.fpr)
        if hashes * (bits + 60) > EXPRESSION_LIMIT_BYTES:
            return None
        probe_distinct = self._key_distinct(
            probe, edge.key_for(probe), shape.filtered_rows
        )
        match_fraction = min(1.0, distinct_keys / probe_distinct)
        matched = shape.filtered_rows * match_fraction
        pass_rows = matched + (shape.filtered_rows - matched) * self.fpr
        return pass_rows, hashes

    def price_baseline(self, order: list[str]) -> StrategyEstimate:
        """Predicted profile of the baseline chain: GET every table whole."""
        get_bytes = 0.0
        records = 0.0
        fields = 0.0
        streams = 0
        cpu = 0.0
        inter_rows = self.shapes[order[0]].filtered_rows
        joined = {order[0]}
        for step, name in enumerate(order):
            shape = self.shapes[name]
            n = shape.info.num_rows
            get_bytes += float(shape.info.total_bytes)
            records += n
            fields += n * len(shape.info.schema)
            streams += shape.info.partitions
            if self.graph.predicates[name] is not None:
                cpu += n * SERVER_CPU_PER_ROW["filter"]
            if step > 0:
                build = min(inter_rows, shape.filtered_rows)
                probe = max(inter_rows, shape.filtered_rows)
                cpu += (
                    build * SERVER_CPU_PER_ROW["hash_build"]
                    + probe * SERVER_CPU_PER_ROW["hash_probe"]
                )
                inter_rows = self._join_rows(inter_rows, joined, name)
                joined.add(name)
        return self.model.price_phases(
            "baseline multi-join",
            [_phase(
                "load+join", streams,
                get_bytes=get_bytes, cpu_seconds=cpu,
                records=records, fields=fields,
            )],
            {"order": list(order), "est_rows": inter_rows},
        )

    # -- enumeration -------------------------------------------------
    def search(self, objective: str = "cost") -> JoinOrderDecision:
        names = self.graph.table_names()
        if len(names) > DP_TABLE_LIMIT:
            order = self._greedy_order()
            estimate = self.price_order(order)
            return JoinOrderDecision(
                graph=self.graph,
                order=order,
                estimate=estimate,
                baseline=self.price_baseline(order),
                candidates=[estimate],
                method="greedy",
            )
        candidates = self._dp_candidates(objective)
        best = min(candidates, key=objective_key(objective))
        order = list(best.notes["order"])
        return JoinOrderDecision(
            graph=self.graph,
            order=order,
            estimate=best,
            baseline=self.price_baseline(order),
            candidates=sorted(candidates, key=objective_key(objective)),
            method="dp",
        )

    def _dp_candidates(self, objective: str) -> list[StrategyEstimate]:
        """DP over connected subsets; top-level expansions are returned.

        ``best[S]`` holds the cheapest left-deep order joining exactly
        the tables in ``S``; subsets that cannot be formed without a
        cross join are skipped.  The full set's expansions (one per
        viable final table) become the EXPLAIN candidate list.
        """
        names = self.graph.table_names()
        key = objective_key(objective)
        best: dict[frozenset, StrategyEstimate] = {}
        for name in names:
            single = frozenset((name,))
            best[single] = self.price_order([name], final=len(names) == 1)
        for size in range(2, len(names) + 1):
            final_level = size == len(names)
            level_candidates: list[StrategyEstimate] = []
            for subset in itertools.combinations(names, size):
                subset_key = frozenset(subset)
                expansions: list[StrategyEstimate] = []
                for last in subset:
                    rest = subset_key - {last}
                    prior = best.get(rest)
                    if prior is None:
                        continue
                    if not self.graph.edges_between(last, set(rest)):
                        continue
                    order = list(prior.notes["order"]) + [last]
                    expansions.append(self.price_order(order, final=final_level))
                if not expansions:
                    continue
                best[subset_key] = min(expansions, key=key)
                if final_level:
                    level_candidates = expansions
            if final_level:
                if not level_candidates:
                    raise PlanError(
                        "no connected left-deep join order exists for"
                        f" tables {names}"
                    )
                return level_candidates
        # Single-table degenerate call.
        return [best[frozenset(names)]]

    def _greedy_order(self) -> list[str]:
        """Smallest filtered table first, then minimum intermediate rows."""
        names = self.graph.table_names()
        start = min(names, key=lambda n: self.shapes[n].filtered_rows)
        order = [start]
        joined = {start}
        inter_rows = self.shapes[start].filtered_rows
        while len(order) < len(names):
            frontier = [
                n for n in names
                if n not in joined and self.graph.edges_between(n, joined)
            ]
            if not frontier:
                raise PlanError(
                    "no connected left-deep join order exists for"
                    f" tables {names}"
                )
            nxt = min(frontier, key=lambda n: self._join_rows(inter_rows, joined, n))
            inter_rows = self._join_rows(inter_rows, joined, nxt)
            order.append(nxt)
            joined.add(nxt)
        return order


def enumerate_left_deep_orders(graph: JoinGraph) -> list[list[str]]:
    """Every connected left-deep order (experiment sweeps; small N only)."""
    names = graph.table_names()
    orders: list[list[str]] = []
    for perm in itertools.permutations(names):
        ok = all(
            graph.edges_between(perm[i], set(perm[:i]))
            for i in range(1, len(perm))
        )
        if ok:
            orders.append(list(perm))
    return orders


def plan_join_order(
    ctx: CloudContext,
    catalog: Catalog,
    query: ast.Query,
    objective: str = "cost",
    graph: JoinGraph | None = None,
) -> JoinOrderDecision:
    """Build the join graph (unless given) and run the order search."""
    if graph is None:
        graph = build_join_graph(catalog, query)
    return JoinOrderSearch(ctx, catalog, graph, query).search(objective)
