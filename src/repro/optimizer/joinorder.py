"""Join-graph construction and cost-based join-order search.

The paper evaluates pushdown joins pairwise; real TPC-H shapes join
three or more tables (lineitem ⋈ orders ⋈ customer).  This module lifts
the planner past that limit:

* :func:`build_join_graph` decomposes an N-table query's ``WHERE``
  conjunction into per-table predicates, equi-join edges, and residual
  cross-table conjuncts;
* :class:`JoinOrderSearch` enumerates join trees — exact dynamic
  programming over connected subset *pairs* (bushy trees, not just
  left-deep chains) up to :data:`DP_TABLE_LIMIT` tables, a greedy
  minimum-intermediate-rows fallback above — building each candidate as
  a :mod:`repro.planner.physical` operator tree and pricing it through
  the existing :class:`~repro.optimizer.cost.CostModel` phase machinery,
  so the context's calibrated :class:`~repro.cloud.perf.PerfModel` and
  :class:`~repro.cloud.pricing.Pricing` carry over unchanged.  Bloom
  predicates are attached to *every* probe-side scan whose build key is
  an integer — inner (non-outermost) probes included, which snowflake
  shapes need;
* disconnected FROM lists (cross joins) are planned per connected
  component and combined with
  :class:`~repro.planner.physical.CrossProductNode` when the estimated
  product stays under :data:`CROSS_PRODUCT_LIMIT` rows;
* :func:`plan_join_order` is the planner/EXPLAIN entry point returning
  the picked tree plus the per-candidate estimate table.

Cardinalities use the System-R containment assumption:
``|A ⋈ B| = |A| · |B| / max(V(A,k), V(B,k))`` with distinct counts from
the statistics layer, capped by the filtered input sizes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.bloom.filter import optimal_num_bits, optimal_num_hashes
from repro.cloud.context import CloudContext
from repro.cloud.perf import SERVER_CPU_PER_ROW
from repro.common.errors import PlanError
from repro.engine.catalog import Catalog, TableInfo
from repro.optimizer.cost import (
    CostModel,
    StrategyEstimate,
    _conjuncts,
    _phase,
    objective_key,
)
from repro.optimizer.feedback import (
    estimate_selectivity_with_feedback,
    predicate_signature,
)
from repro.planner import physical
from repro.planner.physical import (
    CrossProductNode,
    HashJoinNode,
    PlanNode,
    ScanNode,
)
from repro.s3select.validator import EXPRESSION_LIMIT_BYTES
from repro.sqlparser import ast
from repro.strategies.join import DEFAULT_FPR

#: Exact DP over connected subsets is run up to this many tables (per
#: connected component); larger components fall back to the greedy search.
DP_TABLE_LIMIT = 6

#: Disconnected FROM lists execute as cross products only while the
#: estimated row product stays under this bound; larger products are
#: rejected as unplannable cross joins.
CROSS_PRODUCT_LIMIT = 1_000_000.0


# ----------------------------------------------------------------------
# join graph
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class JoinEdge:
    """One equi-join condition ``left.left_key = right.right_key``."""

    left: str
    right: str
    left_key: str
    right_key: str

    def touches(self, table: str) -> bool:
        return table in (self.left, self.right)

    def key_for(self, table: str) -> str:
        if table == self.left:
            return self.left_key
        if table == self.right:
            return self.right_key
        raise PlanError(f"edge {self} does not touch table {table!r}")

    def other(self, table: str) -> str:
        if table == self.left:
            return self.right
        if table == self.right:
            return self.left
        raise PlanError(f"edge {self} does not touch table {table!r}")

    def to_expr(self) -> ast.Expr:
        return ast.Binary(
            "=", ast.Column(self.left_key), ast.Column(self.right_key)
        )


@dataclass
class JoinGraph:
    """Decomposed N-way join: tables, per-table predicates, edges."""

    #: lower-cased table name -> catalog entry, in FROM order.
    tables: dict[str, TableInfo]
    #: lower-cased table name -> conjunction of its single-table predicates.
    predicates: dict[str, ast.Expr | None]
    edges: list[JoinEdge]
    #: Cross-table conjuncts that are not equi-join edges (plus duplicate
    #: equi conjuncts over an already-connected pair); applied after the
    #: full join tree.
    residual: ast.Expr | None

    def table_names(self) -> list[str]:
        return list(self.tables)

    def edges_between(self, table: str, others: set[str]) -> list[JoinEdge]:
        """Edges connecting ``table`` to any table in ``others``."""
        return [
            e for e in self.edges
            if e.touches(table) and e.other(table) in others
        ]

    def edges_across(self, left: frozenset, right: frozenset) -> list[JoinEdge]:
        """Edges with one endpoint in ``left`` and the other in ``right``."""
        return [
            e for e in self.edges
            if (e.left in left and e.right in right)
            or (e.left in right and e.right in left)
        ]

    def connected_components(self) -> list[list[str]]:
        """Connected components, each in FROM order (FROM order overall)."""
        names = list(self.tables)
        seen: set[str] = set()
        components: list[list[str]] = []
        for start in names:
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            while frontier:
                current = frontier.pop()
                for edge in self.edges:
                    if edge.touches(current):
                        nxt = edge.other(current)
                        if nxt not in component:
                            component.add(nxt)
                            frontier.append(nxt)
            seen |= component
            components.append([n for n in names if n in component])
        return components

    def is_connected(self) -> bool:
        return len(self.connected_components()) == 1 if self.tables else False


def _owner_of(
    column: ast.Column, tables: dict[str, TableInfo]
) -> str | None:
    """Which table a column reference belongs to (lower name), if any."""
    if column.table:
        key = column.table.lower()
        if key not in tables:
            return None
        if not tables[key].schema.has_column(column.name):
            raise PlanError(
                f"table {key!r} has no column {column.name!r}"
            )
        return key
    owners = [
        name for name, info in tables.items()
        if info.schema.has_column(column.name)
    ]
    if len(owners) > 1:
        raise PlanError(
            f"ambiguous column {column.name!r}: qualify it with a table name"
        )
    return owners[0] if owners else None


def build_join_graph(catalog: Catalog, query: ast.Query) -> JoinGraph:
    """Extract the join graph from an N-table query's WHERE conjunction.

    Disconnected graphs (cross joins) are legal here; whether they are
    *plannable* is the search's call (small estimated products become
    :class:`~repro.planner.physical.CrossProductNode` plans, anything
    bigger raises).
    """
    names = [t.lower() for t in query.from_tables]
    if len(set(names)) != len(names):
        raise PlanError(f"duplicate table in FROM list: {query.from_tables}")
    tables = {name: catalog.get(name) for name in names}

    side_preds: dict[str, list[ast.Expr]] = {name: [] for name in names}
    edges: list[JoinEdge] = []
    connected_pairs: set[frozenset] = set()
    residual: list[ast.Expr] = []

    for conjunct in ast.split_conjuncts(query.where):
        if (
            isinstance(conjunct, ast.Binary)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.Column)
            and isinstance(conjunct.right, ast.Column)
        ):
            lo = _owner_of(conjunct.left, tables)
            ro = _owner_of(conjunct.right, tables)
            if lo is not None and ro is not None and lo != ro:
                pair = frozenset((lo, ro))
                if pair not in connected_pairs:
                    connected_pairs.add(pair)
                    edges.append(JoinEdge(
                        left=lo, right=ro,
                        left_key=conjunct.left.name,
                        right_key=conjunct.right.name,
                    ))
                else:
                    # A second equality over an already-connected pair
                    # cannot drive the hash join; keep it as a residual
                    # filter over the joined rows.
                    residual.append(conjunct)
                continue
        owners = set()
        for node in ast.walk(conjunct):
            if isinstance(node, ast.Column):
                owner = _owner_of(node, tables)
                if owner is not None:
                    owners.add(owner)
        if len(owners) == 1:
            side_preds[next(iter(owners))].append(conjunct)
        else:
            residual.append(conjunct)

    return JoinGraph(
        tables=tables,
        predicates={name: ast.and_join(side_preds[name]) for name in names},
        edges=edges,
        residual=ast.and_join(residual),
    )


def needed_columns(
    graph: JoinGraph, query: ast.Query, extra=()
) -> dict[str, list[str]]:
    """Per-table column lists the join pipeline must scan.

    Join keys of every edge touching the table plus any column the
    select list, GROUP BY, ORDER BY, HAVING or residual predicate
    references; ``SELECT *`` keeps every column.  ``extra`` adds
    lower-cased names a decorrelated sub-join probes or evaluates (they
    belong to no clause the core query can see).  Schema order is
    preserved so scan projections stay deterministic.  A table nothing
    references (a bare cross-join factor under ``COUNT``-style outputs)
    keeps its first column so the scan projection stays valid.
    """
    referenced: set[str] = {c.lower() for c in extra}
    star = False
    exprs: list[ast.Expr] = [i.expr for i in query.select_items]
    exprs += list(query.group_by)
    exprs += [o.expr for o in query.order_by]
    if query.having is not None:
        exprs.append(query.having)
    if graph.residual is not None:
        exprs.append(graph.residual)
    for expr in exprs:
        if isinstance(expr, ast.Star):
            star = True
            continue
        referenced |= {c.lower() for c in ast.referenced_columns(expr)}
    for edge in graph.edges:
        referenced.add(edge.left_key.lower())
        referenced.add(edge.right_key.lower())

    out: dict[str, list[str]] = {}
    for name, info in graph.tables.items():
        if star:
            out[name] = list(info.schema.names)
        else:
            out[name] = [
                c for c in info.schema.names if c.lower() in referenced
            ] or [info.schema.names[0]]
    return out


# ----------------------------------------------------------------------
# cost-based search
# ----------------------------------------------------------------------

@dataclass
class JoinOrderDecision:
    """Outcome of one join-order search."""

    graph: JoinGraph
    #: Left-deep-equivalent display order of the picked tree (for bushy
    #: picks this is the leaf sequence; the tree is the real contract).
    order: list[str]
    #: The picked join tree as optimized-mode physical plan nodes.
    tree: PlanNode
    #: Priced estimate of the optimized pushdown tree for the pick.
    estimate: StrategyEstimate
    #: Priced estimate of the baseline (GET everything) plan.
    baseline: StrategyEstimate
    #: Every candidate tree considered at the top level, priced.
    candidates: list[StrategyEstimate] = field(default_factory=list)
    method: str = "dp"

    @property
    def shape(self):
        """Serialized tree shape (the planner's forced-plan contract)."""
        return physical.serialize_shape(self.tree)

    def candidate_table(self) -> list[dict]:
        """Compact join-order rows for EXPLAIN / experiment output."""
        picked = physical.join_tree_label(self.tree)
        return [
            {
                "order": c.notes.get("label", ""),
                "est_rows": round(float(c.notes.get("est_rows", 0.0)), 1),
                "runtime_s": round(c.runtime_seconds, 6),
                "cost": round(c.total_cost, 9),
                "picked": c.notes.get("label") == picked,
            }
            for c in self.candidates
        ]


def _leaves(node: PlanNode) -> list[ScanNode]:
    """All scan leaves of a join subtree, left to right."""
    if isinstance(node, ScanNode):
        return [node]
    return [leaf for child in node.children() for leaf in _leaves(child)]


@dataclass(frozen=True)
class _TableShape:
    """Pre-computed per-table quantities the search prices with."""

    info: TableInfo
    selectivity: float
    filtered_rows: float
    columns: list[str]
    row_bytes: float
    conjuncts: int


class JoinOrderSearch:
    """Join-tree enumeration priced through the shared physical-plan IR.

    Candidates are built as :mod:`repro.planner.physical` node trees and
    priced via :func:`physical.predicted_phases` — the *same* per-node
    phase assembly EXPLAIN annotates with — so search ranking, EXPLAIN
    estimates and execution metering all read from one IR.
    """

    def __init__(
        self,
        ctx: CloudContext,
        catalog: Catalog,
        graph: JoinGraph,
        query: ast.Query,
        fpr: float = DEFAULT_FPR,
        extra_refs: frozenset = frozenset(),
    ):
        self.ctx = ctx
        self.graph = graph
        self.query = query
        self.fpr = fpr
        self.model = CostModel(ctx, catalog)
        self.feedback = getattr(ctx, "feedback", None)
        #: Per-table ``(name, predicate_signature)`` pairs, precomputed
        #: once so warm-session DP candidates can build their feedback
        #: signatures without re-serializing predicates per candidate.
        self._pred_sigs = {
            name: (name, predicate_signature(graph.predicates[name]))
            for name in graph.tables
        }
        columns = needed_columns(graph, query, extra=extra_refs)
        self.shapes: dict[str, _TableShape] = {}
        for name, info in graph.tables.items():
            stats = info.stats_or_default()
            pred = graph.predicates[name]
            sel = estimate_selectivity_with_feedback(
                self.feedback, name, pred, stats
            )
            self.shapes[name] = _TableShape(
                info=info,
                selectivity=sel,
                filtered_rows=sel * info.num_rows,
                columns=columns[name],
                row_bytes=stats.projected_row_bytes(columns[name]),
                conjuncts=_conjuncts(pred),
            )

    # -- cardinality -------------------------------------------------
    def _key_distinct(self, table: str, key: str, rows: float) -> float:
        stats = self.graph.tables[table].stats_or_default()
        col = stats.column(key)
        distinct = max(col.distinct, 1) if col is not None else max(rows, 1.0)
        return max(1.0, min(float(distinct), max(rows, 1.0)))

    def _pair_rows(
        self, left: PlanNode, right: PlanNode, edges: list[JoinEdge]
    ) -> float:
        """Containment estimate of joining two subtrees along ``edges``."""
        rows = left.est_rows * right.est_rows
        for i, edge in enumerate(edges):
            l_end = edge.left if edge.left in left.tables else edge.right
            r_end = edge.other(l_end)
            d_left = self._key_distinct(
                l_end, edge.key_for(l_end),
                min(left.est_rows, self.shapes[l_end].filtered_rows),
            )
            d_right = self._key_distinct(
                r_end, edge.key_for(r_end),
                min(right.est_rows, self.shapes[r_end].filtered_rows),
            )
            rows /= max(d_left, d_right)
            if i > 0:
                # System-R independence: every extra edge multiplies its
                # own 1/max(V) in.  Extra edges act as compound-key
                # refinements, so additionally cap the estimate at the
                # smaller input — such a join cannot fan out past either
                # side even when the distinct counts are uninformative.
                rows = min(rows, left.est_rows, right.est_rows)
        return max(rows, 0.0)

    def _candidate_signature(self, node: PlanNode) -> tuple | None:
        """Feedback signature of a DP candidate subtree.

        Equivalent to ``join_signature(*physical.tree_signature(node))``
        for trees this search built, but reads the per-table predicate
        signatures precomputed at construction instead of re-serializing
        every predicate inside the DP's inner loop.  Materialized leaves
        are walked through their sources, which were planned from this
        same graph, so the memo applies to them too.
        """
        names: list[str] = []
        edges: list[tuple[str, str]] = []

        def collect(n: PlanNode) -> bool:
            if isinstance(n, physical.MaterializedNode):
                return n.source is not None and collect(n.source)
            if isinstance(n, ScanNode):
                names.append(n.table.name.lower())
                return True
            if isinstance(n, HashJoinNode):
                edges.append((n.build_key, n.probe_key))
                return collect(n.build) and collect(n.probe)
            return False

        if not collect(node):
            return None
        tables = tuple(sorted(self._pred_sigs[name] for name in names))
        edge_sigs = tuple(sorted(
            tuple(sorted((a.lower(), b.lower()))) for a, b in edges
        ))
        return tables, edge_sigs

    # -- tree construction -------------------------------------------
    def leaf(self, name: str) -> ScanNode:
        """A fresh optimized-mode scan node for one table."""
        shape = self.shapes[name]
        node = ScanNode(
            shape.info, shape.columns, self.graph.predicates[name],
            pushdown=True, phase_label=f"scan-{name}",
            prune=getattr(self.ctx, "prune_partitions", True),
        )
        node.est_rows = shape.filtered_rows
        node.est_filtered_rows = shape.filtered_rows
        node.est_terms = float(shape.info.num_rows * shape.conjuncts)
        return node

    def _orient(self, t1: PlanNode, t2: PlanNode):
        """Hash-build side = smaller estimated input (ties: fewer tables,
        then lexicographic), matching the executor's build-side rule."""
        key1 = (t1.est_rows, len(t1.tables), tuple(sorted(t1.tables)))
        key2 = (t2.est_rows, len(t2.tables), tuple(sorted(t2.tables)))
        return (t1, t2) if key1 <= key2 else (t2, t1)

    def combine(
        self, t1: PlanNode, t2: PlanNode, orient: bool = True
    ) -> HashJoinNode:
        """Join two subtrees on their first crossing edge.

        Children are cloned so memoized DP subtrees are never mutated by
        Bloom annotations of one particular candidate.  ``orient=False``
        keeps ``t1`` as the build side (rebuilding a serialized shape).
        """
        edges = self.graph.edges_across(t1.tables, t2.tables)
        if not edges:
            raise PlanError(
                f"no equi-join edge connects {sorted(t1.tables)} and"
                f" {sorted(t2.tables)}"
            )
        est_rows = self._pair_rows(t1, t2, edges)
        build, probe = self._orient(t1, t2) if orient else (t1, t2)
        build, probe = physical.clone_tree(build), physical.clone_tree(probe)
        edge = edges[0]
        build_end = edge.left if edge.left in build.tables else edge.right
        probe_end = edge.other(build_end)
        node = HashJoinNode(
            build, probe,
            build_key=edge.key_for(build_end),
            probe_key=edge.key_for(probe_end),
        )
        node.extra_edges = list(edges[1:])
        if node.extra_edges:
            # The hash join itself only applies ``edges[0]``; the rest
            # are filtered in the residual above the tree, so the rows
            # this node *emits* are estimated from the hash edge alone.
            node.est_out_rows = self._pair_rows(t1, t2, edges[:1])
        if self.feedback is not None and self.feedback.has_join_feedback():
            # A join this session already executed (same tables, same
            # pushed predicates, same hash edges) has a *measured* output
            # cardinality; it replaces the containment estimate.  The
            # emptiness guard keeps signature construction out of the
            # cold DP's inner loop.  (Measured counts are pre-residual,
            # i.e. exactly what the node emits.)
            signature = self._candidate_signature(node)
            if signature is not None:
                measured = self.feedback.lookup_join(signature)
                if measured is not None:
                    if node.est_out_rows:
                        # Measured counts are what the node *emits*
                        # (pre-residual).  est_rows keeps its all-edges
                        # semantics, so deferred-edge selectivity is
                        # re-applied at the model's own ratio — warm and
                        # cold candidates stay ranked on one quantity.
                        est_rows = measured * (est_rows / node.est_out_rows)
                    else:
                        est_rows = measured
                    node.est_out_rows = measured
        node.est_rows = est_rows
        node.est_build_rows = min(build.est_rows, probe.est_rows)
        node.est_probe_rows = max(build.est_rows, probe.est_rows)
        cpu = (
            node.est_build_rows * SERVER_CPU_PER_ROW["hash_build"]
            + node.est_probe_rows * SERVER_CPU_PER_ROW["hash_probe"]
        )
        node.est_cpu_plain = cpu
        bloom = self._bloom_shape(node, build_end, probe_end)
        if bloom is not None:
            pass_rows, hashes = bloom
            node.bloom = True
            probe.bloom_attr = node.probe_key
            probe.est_rows = min(probe.est_rows, pass_rows)
            probe.est_terms += probe.table.num_rows * hashes
            cpu += build.est_rows * SERVER_CPU_PER_ROW["bloom_insert"]
        node.est_cpu = cpu
        return node

    def cross(
        self, t1: PlanNode, t2: PlanNode, orient: bool = True
    ) -> CrossProductNode:
        """Cartesian product of two subtrees, guarded by the size limit."""
        est_rows = t1.est_rows * t2.est_rows
        if est_rows > CROSS_PRODUCT_LIMIT:
            raise PlanError(
                "multi-table queries need equi-join conditions (a.k = b.k)"
                " connecting every table; this cross join's estimated"
                f" product ({est_rows:.0f} rows) exceeds the"
                f" {CROSS_PRODUCT_LIMIT:.0f}-row cross-product fallback"
            )
        columns = [
            c.lower()
            for tree in (t1, t2)
            for leaf in _leaves(tree)
            for c in leaf.columns
        ]
        if len(set(columns)) != len(columns):
            # Fail at plan time, before any scan request is billed; the
            # executor keeps a defensive check for hand-built plans.
            raise PlanError(
                "cross product would produce duplicate column names:"
                f" {sorted(columns)}"
            )
        build, probe = self._orient(t1, t2) if orient else (t1, t2)
        build, probe = physical.clone_tree(build), physical.clone_tree(probe)
        node = CrossProductNode(build, probe)
        node.est_rows = est_rows
        node.est_build_rows = min(build.est_rows, probe.est_rows)
        node.est_probe_rows = max(build.est_rows, probe.est_rows)
        node.est_cpu = (
            build.est_rows * SERVER_CPU_PER_ROW["hash_build"]
            + est_rows * SERVER_CPU_PER_ROW["hash_probe"]
        )
        node.est_cpu_plain = node.est_cpu
        return node

    def _bloom_shape(
        self, node: HashJoinNode, build_end: str, probe_end: str
    ) -> tuple[float, int] | None:
        """(expected probe rows passing, hash count) or None if ineligible.

        Eligible whenever the probe child is a pushdown scan and the
        build-side key column is an integer — inner probes included.
        """
        probe = node.probe
        if not isinstance(probe, ScanNode):
            return None
        build_key = node.build_key
        column = self.graph.tables[build_end].schema.column(build_key)
        if column.type != "int":
            return None
        shape = self.shapes[probe_end]
        distinct_keys = self._key_distinct(
            build_end, build_key, node.build.est_rows
        )
        hashes = optimal_num_hashes(self.fpr)
        bits = optimal_num_bits(int(max(distinct_keys, 1)), self.fpr)
        if hashes * (bits + 60) > EXPRESSION_LIMIT_BYTES:
            return None
        probe_distinct = self._key_distinct(
            probe_end, node.probe_key, shape.filtered_rows
        )
        match_fraction = min(1.0, distinct_keys / probe_distinct)
        matched = shape.filtered_rows * match_fraction
        pass_rows = matched + (shape.filtered_rows - matched) * self.fpr
        return pass_rows, hashes

    def left_deep_tree(self, order: list[str]) -> PlanNode:
        """The join tree a forced left-deep ``order`` executes as."""
        tree: PlanNode = self.leaf(order[0])
        for name in order[1:]:
            tree = self.combine(tree, self.leaf(name))
        return tree

    def build_tree(self, shape) -> PlanNode:
        """Rebuild a serialized tree shape with fresh estimates.

        ``shape`` is :func:`physical.serialize_shape` output: a table
        name, or ``[kind, build_shape, probe_shape]`` with the build
        orientation preserved.
        """
        if isinstance(shape, str):
            return self.leaf(shape.lower())
        kind, build_shape, probe_shape = shape
        build = self.build_tree(build_shape)
        probe = self.build_tree(probe_shape)
        if kind == "cross":
            return self.cross(build, probe, orient=False)
        return self.combine(build, probe, orient=False)

    # -- pricing -----------------------------------------------------
    def price_tree(self, tree: PlanNode) -> StrategyEstimate:
        """Predicted profile of the optimized pushdown plan for ``tree``.

        The tree's own :func:`physical.predicted_phases` run through the
        shared :meth:`CostModel.price_phases` — scan phases mirror the
        executor's per-scan metering (Bloom-reduced returned rows on
        probe scans), join CPU lands on the phase preceding each join.
        """
        label = physical.join_tree_label(tree)
        return self.model.price_phases(
            f"join-order {label}",
            physical.predicted_phases(tree, self.model.ctx),
            {
                "order": physical.join_leaf_order(tree),
                "label": label,
                "tree": physical.serialize_shape(tree),
                "est_rows": tree.est_rows,
            },
        )

    def price_order(self, order: list[str], final: bool = True
                    ) -> StrategyEstimate:
        """Price a forced left-deep order (``final`` kept for backward
        compatibility; Bloom placement is per-node now, so prefix and
        final pricing coincide)."""
        del final
        return self.price_tree(self.left_deep_tree(list(order)))

    def price_baseline(self, tree) -> StrategyEstimate:
        """Predicted profile of the baseline plan: GET every table whole.

        Accepts a tree or a left-deep order list (test/back-compat).
        """
        if isinstance(tree, list):
            tree = self.left_deep_tree(tree)
        get_bytes = records = fields = 0.0
        streams = 0
        cpu = 0.0

        def walk(node: PlanNode) -> None:
            nonlocal get_bytes, records, fields, streams, cpu
            if isinstance(node, ScanNode):
                info = node.table
                get_bytes += float(info.total_bytes)
                records += info.num_rows
                fields += info.num_rows * len(info.schema)
                streams += info.partitions
                if node.predicate is not None:
                    cpu += info.num_rows * SERVER_CPU_PER_ROW["filter"]
                return
            for child in node.children():
                walk(child)
            cpu += node.est_cpu_plain

        walk(tree)
        return self.model.price_phases(
            "baseline multi-join",
            [_phase(
                "load+join", streams,
                get_bytes=get_bytes, cpu_seconds=cpu,
                records=records, fields=fields,
            )],
            {
                "order": physical.join_leaf_order(tree),
                "label": physical.join_tree_label(tree),
                "est_rows": tree.est_rows,
            },
        )

    # -- enumeration -------------------------------------------------
    def search(self, objective: str = "cost") -> JoinOrderDecision:
        """Pick the cheapest join tree under ``objective``.

        Each connected component is planned by bushy DP (greedy above
        :data:`DP_TABLE_LIMIT`); multiple components combine smallest
        first through guarded cross products.
        """
        key = objective_key(objective)
        components = self.graph.connected_components()
        trees: list[PlanNode] = []
        candidates: list[StrategyEstimate] = []
        methods: set[str] = set()
        for component in components:
            if len(component) == 1:
                trees.append(self.leaf(component[0]))
                continue
            if len(component) > DP_TABLE_LIMIT:
                trees.append(self.left_deep_tree(self._greedy_order(component)))
                methods.add("greedy")
                continue
            expansions = self._dp_component(component, objective)
            best = min(expansions, key=lambda pair: key(pair[1]))
            trees.append(best[0])
            if len(components) == 1:
                candidates = sorted(
                    (est for _, est in expansions), key=key
                )
            methods.add("dp")

        trees.sort(
            key=lambda t: (t.est_rows, tuple(sorted(t.tables)))
        )
        tree = trees[0]
        for other in trees[1:]:
            # orient=True: the accumulated product grows past each new
            # component, so the smaller side becomes the build again.
            tree = self.cross(tree, other)
        estimate = self.price_tree(tree)
        if not candidates:
            candidates = [estimate]
        method = "+".join(sorted(methods))
        if len(components) > 1:
            # Pure cross combines (all components single tables) never
            # ran a DP, so the method reports just "cross".
            method = f"{method}+cross" if method else "cross"
        elif not method:
            method = "dp"
        return JoinOrderDecision(
            graph=self.graph,
            order=physical.join_leaf_order(tree),
            tree=tree,
            estimate=estimate,
            baseline=self.price_baseline(physical.clone_tree(tree)),
            candidates=candidates,
            method=method,
        )

    def _dp_component(
        self, names: list[str], objective: str
    ) -> list[tuple[PlanNode, StrategyEstimate]]:
        """Bushy DP over one connected component's subsets.

        Callers handle single-table components themselves, so ``names``
        always holds at least two tables.
        """
        assert len(names) >= 2, "single-table components never reach the DP"
        level = self._dp_leaves([self.leaf(name) for name in names], objective)
        if not level:
            raise PlanError(
                f"no connected join tree exists for tables {names}"
            )
        return level

    def _dp_leaves(
        self, leaves: list[PlanNode], objective: str
    ) -> list[tuple[PlanNode, StrategyEstimate]]:
        """The bushy DP itself, over generic leaves.

        ``best[S]`` holds the cheapest join tree over exactly the leaves
        in ``S``, found by splitting ``S`` into every connected pair of
        disjoint subsets — single-leaf extensions (left-deep) fall out
        as the ``|S2| = 1`` splits.  The full set's splits are returned
        (the EXPLAIN candidate list).  One loop serves both the
        plan-time search (every leaf a fresh scan) and mid-flight
        re-planning (materialized intermediates mixed in); connectivity
        is judged on each subset's union of base tables.
        """
        key = objective_key(objective)
        n = len(leaves)
        best: dict[frozenset, PlanNode] = {
            frozenset((i,)): leaves[i] for i in range(n)
        }
        tables_of = {i: leaves[i].tables for i in range(n)}
        level: list[tuple[PlanNode, StrategyEstimate]] = []
        for size in range(2, n + 1):
            final_level = size == n
            for subset in itertools.combinations(range(n), size):
                subset_key = frozenset(subset)
                anchor, rest = subset[0], subset[1:]
                options: list[tuple[PlanNode, StrategyEstimate]] = []
                for k in range(0, size - 1):
                    for extra in itertools.combinations(rest, k):
                        s1 = frozenset((anchor, *extra))
                        s2 = subset_key - s1
                        t1, t2 = best.get(s1), best.get(s2)
                        if t1 is None or t2 is None:
                            continue
                        u1 = frozenset().union(*(tables_of[i] for i in s1))
                        u2 = frozenset().union(*(tables_of[i] for i in s2))
                        if not self.graph.edges_across(u1, u2):
                            continue
                        tree = self.combine(t1, t2)
                        options.append((tree, self.price_tree(tree)))
                if not options:
                    continue
                best[subset_key] = min(
                    options, key=lambda pair: key(pair[1])
                )[0]
                if final_level:
                    level = options
        return level

    def replan_remaining(
        self, leaves: list[PlanNode], objective: str = "cost"
    ) -> PlanNode:
        """Bushy DP over the remaining relations of a *running* query.

        The adaptive executor calls this after a pipeline breaker's
        observed cardinality blows past its estimate.  ``leaves`` mix
        not-yet-started scans with materialized intermediates
        (:class:`~repro.planner.physical.MaterializedNode`) whose
        cardinalities are now facts; both carry ``tables`` /
        ``est_rows``, which is all :meth:`combine` needs.  Candidates are
        priced through the same :meth:`price_tree` machinery as the
        plan-time search — materialized leaves contribute no predicted
        phases (their work is already billed), so the ranking reflects
        only the work still to do.
        """
        if len(leaves) < 2:
            raise PlanError(
                "replanning needs at least two remaining relations"
            )
        # Pending scans re-enter the search as fresh leaves: the live
        # tree's scan nodes carry plan-time Bloom annotations (reduced
        # est_rows, extra hash terms) that no longer apply once the tree
        # around them changes.  Their selectivity estimates are still
        # the plan-time ones (self.shapes is frozen at construction);
        # only materialized leaves carry measured cardinalities.
        leaves = [
            self.leaf(next(iter(leaf.tables)))
            if isinstance(leaf, ScanNode) else leaf
            for leaf in leaves
        ]
        if len(leaves) > DP_TABLE_LIMIT:
            # Mirror the plan-time search's guard: exhaustive subset
            # enumeration mid-query would stall execution on wide joins.
            return self._greedy_leaves(leaves)
        options = self._dp_leaves(leaves, objective)
        if not options:
            raise PlanError(
                "no connected join tree exists over the remaining relations"
            )
        return min(options, key=lambda pair: objective_key(objective)(pair[1]))[0]

    def _greedy_leaves(self, leaves: list[PlanNode]) -> PlanNode:
        """Greedy minimum-intermediate-rows combine over mixed leaves
        (the wide-join fallback of :meth:`replan_remaining`)."""
        remaining = list(leaves)
        tree = min(
            remaining,
            key=lambda leaf: (leaf.est_rows, tuple(sorted(leaf.tables))),
        )
        remaining.remove(tree)
        while remaining:
            frontier = [
                leaf for leaf in remaining
                if self.graph.edges_across(tree.tables, leaf.tables)
            ]
            if not frontier:
                raise PlanError(
                    "no connected join tree exists over the remaining"
                    " relations"
                )
            nxt = min(
                frontier,
                key=lambda leaf: self._pair_rows(
                    tree, leaf,
                    self.graph.edges_across(tree.tables, leaf.tables),
                ),
            )
            tree = self.combine(tree, nxt)
            remaining.remove(nxt)
        return tree

    def _greedy_order(self, names: list[str] | None = None) -> list[str]:
        """Smallest filtered table first, then minimum intermediate rows."""
        if names is None:
            names = self.graph.table_names()
        start = min(names, key=lambda n: self.shapes[n].filtered_rows)
        tree: PlanNode = self.leaf(start)
        order = [start]
        joined = {start}
        while len(order) < len(names):
            frontier = [
                n for n in names
                if n not in joined and self.graph.edges_between(n, joined)
            ]
            if not frontier:
                raise PlanError(
                    "no connected left-deep join order exists for"
                    f" tables {names}"
                )
            def grown_rows(name: str) -> float:
                return self._pair_rows(
                    tree, self.leaf(name),
                    self.graph.edges_across(tree.tables, frozenset((name,))),
                )
            nxt = min(frontier, key=grown_rows)
            tree = self.combine(tree, self.leaf(nxt))
            order.append(nxt)
            joined.add(nxt)
        return order


def enumerate_left_deep_orders(graph: JoinGraph) -> list[list[str]]:
    """Every connected left-deep order (experiment sweeps; small N only)."""
    names = graph.table_names()
    orders: list[list[str]] = []
    for perm in itertools.permutations(names):
        ok = all(
            graph.edges_between(perm[i], set(perm[:i]))
            for i in range(1, len(perm))
        )
        if ok:
            orders.append(list(perm))
    return orders


def plan_join_order(
    ctx: CloudContext,
    catalog: Catalog,
    query: ast.Query,
    objective: str = "cost",
    graph: JoinGraph | None = None,
) -> JoinOrderDecision:
    """Build the join graph (unless given) and run the tree search."""
    if graph is None:
        graph = build_join_graph(catalog, query)
    return JoinOrderSearch(ctx, catalog, graph, query).search(objective)
