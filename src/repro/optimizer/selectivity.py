"""Predicate selectivity estimation for the cost-based optimizer.

Two tiers, per the classic System-R recipe adapted to the statistics we
collect at load time:

* :func:`estimate_selectivity` — free, purely from
  :class:`~repro.optimizer.stats.TableStats`: min/max interpolation for
  range predicates, MCV/distinct counts for equality, three-valued
  combinators for AND/OR/NOT;
* :func:`probe_selectivity` — a cheap *metered* ScanRange probe that
  pushes ``SUM(CASE WHEN p THEN 1 ELSE 0 END)`` over a leading fraction
  of each partition.  It spends a few requests and scanned bytes (every
  one accounted like any other query work) to replace a heuristic with a
  measurement — worth it when a crossover sits nearby.
"""

from __future__ import annotations

from repro.optimizer.stats import ColumnStats, TableStats
from repro.sqlparser import ast

#: Fallback selectivity for predicates the estimator cannot decompose.
DEFAULT_SELECTIVITY = 1.0 / 3.0

#: Fallback for LIKE with leading wildcards.
LIKE_SELECTIVITY = 0.25

#: Fallback for LIKE anchored at the start (``'abc%'``).
PREFIX_LIKE_SELECTIVITY = 0.1


def estimate_selectivity(predicate: ast.Expr | None, stats: TableStats) -> float:
    """Estimated fraction of rows satisfying ``predicate`` (in [0, 1])."""
    if predicate is None:
        return 1.0
    return _clamp(_estimate(predicate, stats))


def _clamp(s: float) -> float:
    return min(max(s, 0.0), 1.0)


def _estimate(expr: ast.Expr, stats: TableStats) -> float:
    if isinstance(expr, ast.Binary):
        if expr.op == "AND":
            return _estimate(expr.left, stats) * _estimate(expr.right, stats)
        if expr.op == "OR":
            a, b = _estimate(expr.left, stats), _estimate(expr.right, stats)
            return a + b - a * b
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            return _comparison(expr, stats)
        return DEFAULT_SELECTIVITY
    if isinstance(expr, ast.Unary) and expr.op == "NOT":
        return 1.0 - _estimate(expr.operand, stats)
    if isinstance(expr, ast.Between):
        return _between(expr, stats)
    if isinstance(expr, ast.InList):
        return _in_list(expr, stats)
    if isinstance(expr, ast.Like):
        return _like(expr, stats)
    if isinstance(expr, ast.IsNull):
        return _is_null(expr, stats)
    if isinstance(expr, ast.Literal):
        if expr.value is True:
            return 1.0
        if expr.value in (False, None):
            return 0.0
    return DEFAULT_SELECTIVITY


def _column_literal(expr: ast.Binary) -> tuple[ast.Column, object, str] | None:
    """Normalize ``col op lit`` / ``lit op col`` to (column, value, op)."""
    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
    if isinstance(expr.left, ast.Column) and isinstance(expr.right, ast.Literal):
        return expr.left, expr.right.value, expr.op
    if isinstance(expr.right, ast.Column) and isinstance(expr.left, ast.Literal):
        return expr.right, expr.left.value, flip[expr.op]
    return None


def _non_null_fraction(col: ColumnStats, stats: TableStats) -> float:
    if not stats.row_count:
        return 1.0
    return 1.0 - col.null_count / stats.row_count


def _equality(col: ColumnStats, value: object, stats: TableStats) -> float:
    for mcv_value, count in col.mcvs:
        if mcv_value == value:
            return count / max(stats.row_count, 1)
    if col.distinct:
        # An MCV miss means the value is one of the *cold* keys: spread
        # the non-MCV mass over the non-MCV distinct values.  Dividing
        # the full non-NULL fraction by the distinct count would hand
        # every cold key the table's average frequency, which on a
        # hot-key (Zipf) table overestimates by the MCV-covered mass.
        non_null = _non_null_fraction(col, stats)
        if col.mcvs:
            mcv_frac = col.mcv_fraction(stats.row_count, len(col.mcvs))
            cold_keys = max(col.distinct - len(col.mcvs), 1)
            return _clamp((non_null - mcv_frac) / cold_keys)
        return non_null / col.distinct
    return 0.0


def _range_fraction(col: ColumnStats, value: object, op: str) -> float | None:
    """Fraction of non-NULL values satisfying ``col op value``.

    Prefers the column's equi-depth histogram (exact bucket mass plus
    within-bucket interpolation — robust under skew); falls back to
    plain min/max interpolation, and ``None`` when the domain is not
    interpolable."""
    if col.histogram is not None:
        fraction = col.histogram.fraction(op, value)
        if fraction is not None:
            return fraction
    lo, hi = col.min_value, col.max_value
    if lo is None or hi is None:
        return None
    if not all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in (lo, hi, value)
    ):
        return None
    if hi <= lo:
        span_le = 1.0 if value >= lo else 0.0
        return span_le if op in ("<=", "<") else 1.0 - span_le
    # Integer domains get the half-open correction so dense permutations
    # (the fig01 table) estimate exactly.
    unit = 1.0 if isinstance(lo, int) and isinstance(hi, int) else 0.0
    width = hi - lo + unit
    if op == "<":
        return (value - lo) / width
    if op == "<=":
        return (value - lo + unit) / width
    if op == ">":
        return (hi - value) / width
    if op == ">=":
        return (hi - value + unit) / width
    return None


def _comparison(expr: ast.Binary, stats: TableStats) -> float:
    normalized = _column_literal(expr)
    if normalized is None:
        return DEFAULT_SELECTIVITY
    column, value, op = normalized
    col = stats.column(column.name)
    if col is None or value is None:
        return 0.0 if value is None else DEFAULT_SELECTIVITY
    if op == "=":
        return _equality(col, value, stats)
    if op == "<>":
        return _non_null_fraction(col, stats) - _equality(col, value, stats)
    fraction = _range_fraction(col, value, op)
    if fraction is None:
        return DEFAULT_SELECTIVITY
    return _clamp(fraction) * _non_null_fraction(col, stats)


def _between(expr: ast.Between, stats: TableStats) -> float:
    if not isinstance(expr.operand, ast.Column):
        return DEFAULT_SELECTIVITY
    ge = _estimate(ast.Binary(">=", expr.operand, expr.low), stats)
    le = _estimate(ast.Binary("<=", expr.operand, expr.high), stats)
    inside = _clamp(ge + le - 1.0)
    if not expr.negated:
        return inside
    # NOT BETWEEN is never true for NULL operands (3VL): the complement
    # is taken within the non-NULL fraction, mirroring _in_list.
    col = stats.column(expr.operand.name)
    if col is not None:
        return _clamp(_non_null_fraction(col, stats) - inside)
    return 1.0 - inside


def _in_list(expr: ast.InList, stats: TableStats) -> float:
    if not isinstance(expr.operand, ast.Column):
        return DEFAULT_SELECTIVITY
    col = stats.column(expr.operand.name)
    if col is None:
        return DEFAULT_SELECTIVITY
    total = 0.0
    for item in expr.items:
        if isinstance(item, ast.Literal) and item.value is not None:
            total += _equality(col, item.value, stats)
        else:
            total += 1.0 / max(col.distinct, 1)
    inside = _clamp(total)
    return _clamp(_non_null_fraction(col, stats) - inside) if expr.negated else inside


def _like(expr: ast.Like, stats: TableStats) -> float:
    if not isinstance(expr.pattern, ast.Literal) or not isinstance(
        expr.pattern.value, str
    ):
        return DEFAULT_SELECTIVITY
    pattern = expr.pattern.value
    if "%" not in pattern and "_" not in pattern:
        if isinstance(expr.operand, ast.Column):
            col = stats.column(expr.operand.name)
            if col is not None:
                s = _equality(col, pattern, stats)
                return _negate_like(expr, s, stats) if expr.negated else s
        s = DEFAULT_SELECTIVITY
    elif pattern and not pattern.startswith(("%", "_")):
        s = PREFIX_LIKE_SELECTIVITY
    else:
        s = LIKE_SELECTIVITY
    return _negate_like(expr, s, stats) if expr.negated else s


def _negate_like(expr: ast.Like, s: float, stats: TableStats) -> float:
    """3VL complement of a LIKE match fraction: NULL operands match
    neither ``LIKE`` nor ``NOT LIKE``, so the complement is taken within
    the column's non-NULL fraction when stats are available."""
    if isinstance(expr.operand, ast.Column):
        col = stats.column(expr.operand.name)
        if col is not None:
            return _clamp(_non_null_fraction(col, stats) - s)
    return 1.0 - s


def _is_null(expr: ast.IsNull, stats: TableStats) -> float:
    if isinstance(expr.operand, ast.Column):
        col = stats.column(expr.operand.name)
        if col is not None and stats.row_count:
            s = col.null_count / stats.row_count
            return 1.0 - s if expr.negated else s
    return 0.05 if not expr.negated else 0.95


def probe_selectivity(
    ctx,
    table,
    predicate: ast.Expr,
    fraction: float = 0.02,
    refresh: bool = False,
) -> float:
    """Measure selectivity on a leading slice of every partition.

    Pushes one aggregate-only S3 Select per partition over a ScanRange of
    ``fraction`` of the object — requests and scanned bytes are metered
    exactly like query work, so a chooser that probes pays for what it
    learns (and the EXPLAIN report says so).

    The session's :class:`~repro.optimizer.feedback.FeedbackStore` is
    consulted first: a selectivity already measured this session (by an
    earlier probe *or* by an executed scan) is returned without issuing
    any request, so repeated queries stop paying for probes.  The
    measurement is recorded back into the store either way.
    ``refresh=True`` forces a fresh metered probe.
    """
    from repro.strategies.scans import projection_sql, select_table

    store = getattr(ctx, "feedback", None)
    if store is not None and not refresh:
        cached = store.lookup_selectivity(table.name, predicate)
        if cached is not None:
            return cached
    sql = projection_sql(
        [f"SUM(CASE WHEN {predicate.to_sql()} THEN 1 ELSE 0 END)", "SUM(1)"]
    )
    rows, _ = select_table(ctx, table, sql, scan_range_fraction=fraction)
    matched = sum(r[0] or 0 for r in rows)
    seen = sum(r[1] or 0 for r in rows)
    if not seen:
        return estimate_selectivity(predicate, table.stats_or_default())
    measured = matched / seen
    if store is not None:
        store.record_selectivity(table.name, predicate, measured, source="probe")
    return measured
