"""Session-scoped execution feedback: the optimizer learns what it ran.

PR 4 made every physical-plan execution record per-node
estimate-vs-actual cardinalities (``details["actuals"]``) — and then
threw them away.  This module closes the loop:

* a :class:`FeedbackStore` lives on the
  :class:`~repro.cloud.context.CloudContext` (one per PushdownDB
  session) and maps **normalized signatures** to **measured
  cardinalities**:

  - ``(table, predicate)`` → observed selectivity, harvested from every
    executed scan (pushdown or GET + local filter) and from every
    metered :func:`~repro.optimizer.selectivity.probe_selectivity`
    run — probes are paid for once and reused for the rest of the
    session;
  - join signatures (table set + per-table predicates + applied hash
    edges) → observed join output rows, harvested from every executed
    hash join;

* :func:`estimate_selectivity_with_feedback` is the estimator every
  cost-model call site goes through: a recorded measurement wins over
  the System-R heuristic, per conjunct, so *similar* queries (sharing
  some predicates) improve too.  With an empty store it reduces exactly
  to :func:`~repro.optimizer.selectivity.estimate_selectivity`, so a
  cold session plans byte-identically to the pre-feedback planner;

* :func:`harvest_plan` walks an executed plan tree and records every
  fully-drained node (subtrees cut short by a streaming ``LIMIT`` are
  skipped — their observed counts are lower bounds, not measurements).

The store is thread-safe (scans may execute under ``workers > 1``) and
strictly session-scoped: two ``PushdownDB`` instances never share
feedback, and :meth:`FeedbackStore.reset` returns a session to the
cold-start System-R behavior.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.optimizer.selectivity import estimate_selectivity
from repro.optimizer.stats import TableStats
from repro.sqlparser import ast


def predicate_signature(predicate: ast.Expr | None) -> str:
    """Normalized signature of a predicate: sorted top-level conjuncts.

    ``a < 5 AND b = 2`` and ``b = 2 AND a < 5`` share one signature, so
    feedback recorded under either spelling serves both.
    """
    if predicate is None:
        return ""
    return " AND ".join(sorted(c.to_sql() for c in ast.split_conjuncts(predicate)))


def join_signature(
    tables_with_predicates: list[tuple[str, ast.Expr | None]],
    edges: list[tuple[str, str]],
) -> tuple:
    """Normalized signature of a join subtree's semantic content.

    ``tables_with_predicates`` pairs each base table with the
    single-table predicate pushed into its scan; ``edges`` are the
    ``(build_key, probe_key)`` pairs of the hash joins *applied inside*
    the subtree.  Bloom predicates are deliberately absent: they only
    prune rows the join would drop anyway (modulo false positives that
    the join still drops), so the output cardinality is Bloom-invariant.
    """
    tables = tuple(sorted(
        (name.lower(), predicate_signature(pred))
        for name, pred in tables_with_predicates
    ))
    edge_sigs = tuple(sorted(
        tuple(sorted((a.lower(), b.lower()))) for a, b in edges
    ))
    return tables, edge_sigs


@dataclass
class FeedbackRecord:
    """One learned measurement (selectivity or cardinality)."""

    value: float
    source: str
    observations: int = 1


@dataclass
class FeedbackStore:
    """Measured selectivities and join cardinalities for one session."""

    _selectivities: dict = field(default_factory=dict)
    _joins: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    #: Counters for reports/tests: how often lookups hit or missed.
    hits: int = 0
    misses: int = 0

    # -- selectivity ----------------------------------------------------
    def record_selectivity(
        self,
        table: str,
        predicate: ast.Expr | None,
        selectivity: float,
        source: str = "execution",
    ) -> None:
        """Record the measured fraction of ``table`` rows passing ``predicate``."""
        if predicate is None:
            return
        key = (table.lower(), predicate_signature(predicate))
        value = min(max(float(selectivity), 0.0), 1.0)
        with self._lock:
            prior = self._selectivities.get(key)
            if prior is None:
                self._selectivities[key] = FeedbackRecord(value, source)
            else:
                # Exact measurements simply refresh; the newest run wins
                # (data and literals are fixed within a session, so
                # repeated observations agree up to probe sampling).
                prior.value = value
                prior.source = source
                prior.observations += 1

    def lookup_selectivity(
        self, table: str, predicate: ast.Expr | None
    ) -> float | None:
        if predicate is None:
            return None
        key = (table.lower(), predicate_signature(predicate))
        with self._lock:
            record = self._selectivities.get(key)
            if record is None:
                self.misses += 1
                return None
            self.hits += 1
            return record.value

    # -- joins ----------------------------------------------------------
    def record_join(self, signature: tuple, actual_rows: float,
                    source: str = "execution") -> None:
        with self._lock:
            prior = self._joins.get(signature)
            if prior is None:
                self._joins[signature] = FeedbackRecord(
                    float(actual_rows), source
                )
            else:
                prior.value = float(actual_rows)
                prior.source = source
                prior.observations += 1

    def lookup_join(self, signature: tuple) -> float | None:
        with self._lock:
            record = self._joins.get(signature)
            if record is None:
                self.misses += 1
                return None
            self.hits += 1
            return record.value

    def has_join_feedback(self) -> bool:
        """Cheap emptiness check: the join-order DP skips signature
        construction and lock traffic entirely on cold sessions."""
        return bool(self._joins)

    # -- session management ---------------------------------------------
    def forget_table(self, table: str) -> None:
        """Drop every measurement involving ``table``.

        Called when a table is (re)loaded: measurements taken against
        the old rows are no longer facts, and keeping them would let a
        stale "measured" selectivity suppress fresh probes and mislead
        every estimate for the rest of the session.
        """
        key = table.lower()
        with self._lock:
            self._selectivities = {
                sig: record
                for sig, record in self._selectivities.items()
                if sig[0] != key
            }
            self._joins = {
                sig: record
                for sig, record in self._joins.items()
                if all(name != key for name, _ in sig[0])
            }

    def reset(self) -> None:
        """Forget everything: back to cold-start System-R estimates."""
        with self._lock:
            self._selectivities.clear()
            self._joins.clear()
            self.hits = 0
            self.misses = 0

    def summary(self) -> dict:
        with self._lock:
            return {
                "selectivities": len(self._selectivities),
                "joins": len(self._joins),
                "hits": self.hits,
                "misses": self.misses,
            }


def estimate_selectivity_with_feedback(
    store: FeedbackStore | None,
    table: str,
    predicate: ast.Expr | None,
    stats: TableStats,
) -> float:
    """Feedback-first selectivity: measurements override System-R.

    Resolution order per the whole predicate, then per top-level
    conjunct: an exact signature hit returns the measured value; a
    conjunction combines per-conjunct answers (measured where known,
    System-R where not) under the independence assumption.  With no
    feedback recorded this computes *exactly* what
    :func:`~repro.optimizer.selectivity.estimate_selectivity` computes,
    so cold sessions keep byte-identical plans.
    """
    if predicate is None:
        return 1.0
    if store is None:
        return estimate_selectivity(predicate, stats)
    exact = store.lookup_selectivity(table, predicate)
    if exact is not None:
        return exact
    conjuncts = ast.split_conjuncts(predicate)
    if len(conjuncts) <= 1:
        return estimate_selectivity(predicate, stats)
    product = 1.0
    for conjunct in conjuncts:
        measured = store.lookup_selectivity(table, conjunct)
        product *= (
            measured if measured is not None
            else estimate_selectivity(conjunct, stats)
        )
    return min(max(product, 0.0), 1.0)


# ----------------------------------------------------------------------
# harvesting executed plans
# ----------------------------------------------------------------------

def scan_feedback_entries(root) -> list[tuple[str, ast.Expr, float]]:
    """``(table, predicate, selectivity)`` for every harvestable scan.

    A scan is harvestable when it ran to completion (no streaming LIMIT
    above it cut the pull short), carries a predicate, and has no Bloom
    predicate attached (a Bloom-reduced count measures predicate x
    Bloom, not the predicate alone).
    """
    from repro.planner import physical

    out: list[tuple[str, ast.Expr, float]] = []

    def walk(node, complete: bool) -> None:
        if isinstance(node, physical.MaterializedNode):
            if node.source is not None:
                walk(node.source, complete)
            return
        if isinstance(node, physical.ScanNode):
            if (
                complete
                and node.predicate is not None
                and node.bloom_attr is None
                and node.actual_rows is not None
                and node.table.num_rows > 0
            ):
                out.append((
                    node.table.name,
                    node.predicate,
                    node.actual_rows / node.table.num_rows,
                ))
            return
        child_complete = complete and not isinstance(
            node, physical.LimitNode
        )
        for child in node.children():
            walk(child, child_complete)

    walk(root, True)
    return out


def join_feedback_entries(root) -> list[tuple[tuple, float]]:
    """``(signature, actual_rows)`` for every fully-drained hash join."""
    from repro.planner import physical

    out: list[tuple[tuple, float]] = []

    def walk(node, complete: bool) -> None:
        if isinstance(node, physical.MaterializedNode):
            if node.source is not None:
                walk(node.source, complete)
            return
        if isinstance(node, physical.HashJoinNode):
            if complete and node.actual_rows is not None:
                parts = physical.tree_signature(node)
                if parts is not None:
                    out.append((
                        join_signature(*parts), float(node.actual_rows)
                    ))
        child_complete = complete and not isinstance(
            node, physical.LimitNode
        )
        for child in node.children():
            walk(child, child_complete)

    walk(root, True)
    return out


def harvest_plan(store: FeedbackStore, root) -> int:
    """Record everything an executed plan tree measured; returns count.

    Called by the physical executor after every execution, so the
    session's very next query already plans with corrected estimates —
    no extra metered requests are spent learning what was just paid for.
    """
    recorded = 0
    for table, predicate, selectivity in scan_feedback_entries(root):
        store.record_selectivity(table, predicate, selectivity)
        recorded += 1
    for signature, actual_rows in join_feedback_entries(root):
        store.record_join(signature, actual_rows)
        recorded += 1
    return recorded
